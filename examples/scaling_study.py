"""Mini scaling study: solver-free vs solver-based ADMM across deployments.

A compressed, runnable version of the paper's evaluation on one mid-size
feeder: measures real per-component local-update costs for both algorithms,
replays them through the simulated CPU cluster (Fig. 1 mechanics), and
compares against the modeled A100 execution (Fig. 4 mechanics).

Run:  python examples/scaling_study.py
"""

import numpy as np

import repro
from repro.core import BenchmarkADMM
from repro.feeders import ieee123
from repro.gpu import A100, iteration_times
from repro.parallel import CPU_CLUSTER_COMM, SimulatedCluster
from repro.utils import format_table


def main() -> None:
    net = ieee123()
    lp = repro.build_centralized_lp(net)
    dec = repro.decompose(lp)
    print(f"{net.summary()}  ->  S = {dec.n_components} components")

    solver = repro.SolverFreeADMM(dec)
    bench = BenchmarkADMM(dec)
    print("measuring per-component local-update costs (ours vs benchmark)...")
    ours_costs = solver.measure_local_costs(repeats=3)
    bench_costs = bench.measure_local_costs(repeats=1)
    print(
        f"  ours:      mean {ours_costs.mean() * 1e6:8.1f} us/component\n"
        f"  benchmark: mean {bench_costs.mean() * 1e6:8.1f} us/component "
        f"({bench_costs.mean() / ours_costs.mean():.0f}x more expensive)"
    )

    rows = []
    for n_cpus in (1, 2, 4, 8, 16, 32, 64, 128):
        t_ours = SimulatedCluster(dec, ours_costs, n_cpus, CPU_CLUSTER_COMM).local_update_timing()
        t_bench = SimulatedCluster(dec, bench_costs, n_cpus, CPU_CLUSTER_COMM).local_update_timing()
        rows.append(
            [
                n_cpus,
                f"{t_ours.total_s * 1e3:.3f}",
                f"{t_ours.compute_s * 1e3:.3f}",
                f"{t_ours.comm_s * 1e3:.3f}",
                f"{t_bench.total_s * 1e3:.3f}",
                f"{t_bench.compute_s * 1e3:.3f}",
            ]
        )
    print()
    print(
        format_table(
            ["#CPUs", "ours total", "ours comp", "comm", "bench total", "bench comp"],
            rows,
            title="Simulated local-update wall time per iteration (ms) - Fig. 1 analogue",
        )
    )

    gpu = iteration_times(A100, dec)
    best_cpu = min(
        SimulatedCluster(dec, ours_costs, n, CPU_CLUSTER_COMM).local_update_timing().total_s
        for n in (1, 2, 4, 8, 16)
    )
    print(
        f"\nmodeled A100 local update: {gpu.local_s * 1e3:.4f} ms/iteration "
        f"vs best simulated <=16-CPU: {best_cpu * 1e3:.4f} ms/iteration"
    )

    result = solver.solve()
    print(f"\nfull solve: {result.summary()}")
    print(
        f"modeled A100 total time for those iterations: "
        f"{gpu.total_s * result.iterations:.3f} s"
    )


if __name__ == "__main__":
    main()
