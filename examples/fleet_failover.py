"""Fleet failover: kill a worker mid-run, lose nothing.

The fleet frontend shards scenario-serving traffic across workers by
*topology affinity* — a consistent-hash ring over each request's feeder
hash — so every worker's projection/warm-start caches stay hot for the
topologies it owns.  This example runs the acceptance scenario of
docs/SERVING.md (fleet section) end to end, in deterministic sim mode:

* a 2-worker fleet serves a seeded mixed ieee13/synthetic workload,
* worker ``w0`` **crashes** (fail-stop) after serving its third batch,
* the frontend detects the death, removes ``w0`` from the ring, and
  re-routes its un-served requests to the survivor.

Because the crash fires at a batch boundary (served work is already
answered, queued work is requeued), **no accepted request is lost** —
and with warm-starting disabled the re-routed solves are bit-identical
to a fault-free run, which the script verifies scenario for scenario.

Everything is seeded: rerunning reproduces the same routing, the same
crash point, and the same recovery.

Run:  python examples/fleet_failover.py
"""

from repro.fleet import FleetConfig, FleetFrontend, generate_mixed_scenarios
from repro.resilience import FaultPlan, WorkerCrash
from repro.serve import STATUS_CONVERGED

FEEDERS = ["ieee13", "synthetic:20:0", "synthetic:20:2", "synthetic:20:9"]
N_REQUESTS = 12
CRASH_AFTER_SERVED = 3


def main() -> None:
    requests = generate_mixed_scenarios(FEEDERS, N_REQUESTS, seed=7)
    config = FleetConfig(n_workers=2, mode="sim", max_batch=4, warm_start=False)
    plan = FaultPlan(seed=7, faults=(WorkerCrash(worker="w0", after_served=CRASH_AFTER_SERVED),))
    print(f"fault plan (seed {plan.seed}):")
    for fault in plan.faults:
        print(f"  - {fault}")

    with FleetFrontend(config, fault_plan=plan) as fleet:
        print("\ntopology shards:")
        for req, worker in sorted(fleet.assignment(requests).items()):
            print(f"  {req} -> {worker}")
        chaos = {r.request_id: r for r in fleet.serve(requests)}
        snap = fleet.snapshot()

    with FleetFrontend(config) as fleet:
        clean = {r.request_id: r for r in fleet.serve(requests)}

    assert set(chaos) == set(clean) == {r.request_id for r in requests}, (
        "an accepted request was lost in the failover"
    )
    for rid, resp in sorted(chaos.items()):
        assert resp.status == STATUS_CONVERGED, f"{rid}: {resp.status}"
        assert resp.objective == clean[rid].objective, f"{rid} drifted"
    print(f"\nall {len(chaos)} responses converged, objectives bit-identical")
    print("to the fault-free run — no accepted request was lost")

    print("\nfleet counters:")
    for name in ("fleet.worker_deaths", "fleet.rerouted", "fleet.accepted"):
        print(f"  {name:22s} {snap[name]}")
    assert snap["fleet.worker_deaths"] == 1
    assert snap["fleet.rerouted"] >= 1

    print("\nworkers:")
    for wid, ws in sorted(snap["workers"].items()):
        state = "alive" if ws["worker.alive"] else "dead"
        print(f"  {wid}: served {ws['worker.served']:2d}  {state}")


if __name__ == "__main__":
    main()
