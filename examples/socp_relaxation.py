"""The paper's future work, working today: solver-free conic ADMM.

Builds the branch-flow SOCP relaxation of the IEEE 13-bus feeder's
positive-sequence equivalent and solves it with consensus ADMM in which
*every* local update is still closed form — affine projections for the
linear components, rotated second-order-cone projections for the current
constraints.  Verifies exactness of the relaxation (radial feeder) and
compares against an SLSQP reference.

Run:  python examples/socp_relaxation.py
"""

import numpy as np

import repro
from repro.socp import ConicSolverFreeADMM, build_bfm_socp, decompose_conic
from repro.utils import format_table


def main() -> None:
    net = repro.ieee13()
    prob = build_bfm_socp(net, le_max=10.0)
    print(
        f"branch-flow SOCP: {prob.n_vars} variables, {len(prob.rows)} linear "
        f"rows, {len(prob.cones)} rotated-SOC constraints"
    )

    dec = decompose_conic(prob)
    print(
        f"conic decomposition: {len(dec.linear)} linear components + "
        f"{dec.cone_cols.shape[0]} cone components, all closed-form"
    )

    solver = ConicSolverFreeADMM(
        dec, repro.ADMMConfig(eps_rel=1e-4, max_iter=100_000, record_history=False)
    )
    res = solver.solve()
    print(res.summary())

    a, b = prob.linear_system()
    print(
        f"feasibility: linear {np.abs(a @ res.x - b).max():.2e}, "
        f"cone violation {prob.cone_violation(res.x):.2e}"
    )

    # Relaxation tightness per line (exact for radial feeders).
    vi = prob.var_index
    slacks = prob.cone_slack(res.x)
    rows = []
    for k, cone in enumerate(prob.cones):
        p = res.x[vi.index(cone.w_keys[0])]
        ell = prob.squared_current(res.x, cone.line)
        rows.append(
            [cone.line, f"{p:.4f}", f"{ell:.5f}", f"{slacks[k]:.2e}"]
        )
    print(
        format_table(
            ["line", "P [pu]", "ell [pu]", "cone slack"],
            rows,
            title="relaxation tightness (slack ~ 0 = exact)",
        )
    )

    # Losses now appear physically: r * le per line.
    from repro.socp import positive_sequence_impedance

    loss = sum(
        positive_sequence_impedance(net.lines[c.line])[0]
        * prob.squared_current(res.x, c.line)
        for c in prob.cones
    )
    print(
        f"\nSOCP dispatch: generation {res.objective:.4f} pu, "
        f"series losses {loss:.5f} pu "
        f"({loss / max(res.objective, 1e-9) * 100:.2f}% of generation)"
    )
    assert res.converged


if __name__ == "__main__":
    main()
