"""Privacy and bandwidth: the two deployment frictions, quantified.

The paper's closing discussion names the two practical frictions of the
central-aggregator architecture — agents' privacy and communication burden
— and points at differential privacy and lossy compression as mitigations.
This example runs both on the IEEE 13-bus feeder and prints the resulting
three-way tradeoff (accuracy vs privacy vs bytes), plus an operator-style
solution report for the configuration a utility might actually pick.

Run:  python examples/private_compressed_consensus.py
"""

import repro
from repro.core import PrivacyConfig, PrivateSolverFreeADMM
from repro.network.analysis import solution_report
from repro.parallel import (
    CompressedSolverFreeADMM,
    ErrorFeedback,
    TopKCompressor,
    UniformQuantizer,
)
from repro.utils import format_table

MAX_ITER = 30_000


def main() -> None:
    net = repro.ieee13()
    lp = repro.build_centralized_lp(net)
    dec = repro.decompose(lp)
    ref = repro.solve_reference(lp)
    cfg = repro.ADMMConfig(max_iter=MAX_ITER, record_history=False)

    rows = []

    base = repro.SolverFreeADMM(dec, cfg).solve()
    rows.append(
        ["exact, dense", base.iterations, f"{ref.compare_objective(base.objective):.1e}",
         "-", "1.0x"]
    )

    # --- privacy sweep ----------------------------------------------------
    for sigma in (1e-5, 1e-4, 1e-3):
        solver = PrivateSolverFreeADMM(dec, PrivacyConfig(clip=1.0, sigma=sigma), cfg)
        res = solver.solve()
        rows.append(
            [
                f"private sigma={sigma:g}",
                res.iterations,
                f"{ref.compare_objective(res.objective):.1e}",
                f"{solver.accountant.epsilon(1e-6):.1e}",
                "1.0x",
            ]
        )

    # --- compression sweep --------------------------------------------------
    for tag, compressor in (
        ("topk 30% + EF", ErrorFeedback(TopKCompressor(0.3))),
        ("quant 8b + EF", ErrorFeedback(UniformQuantizer(8))),
        ("quant 4b + EF", ErrorFeedback(UniformQuantizer(4))),
    ):
        solver = CompressedSolverFreeADMM(dec, compressor, cfg)
        res = solver.solve()
        rows.append(
            [
                f"compressed {tag}",
                res.iterations,
                f"{ref.compare_objective(res.objective):.1e}",
                "-",
                f"{solver.compression_ratio:.1f}x",
            ]
        )

    print(
        format_table(
            ["variant", "iterations", "objective gap", "eps(1e-6)", "bytes saved"],
            rows,
            title="IEEE13: accuracy / privacy / bandwidth tradeoff",
        )
    )

    # --- the deployable pick: 4-bit quantized uploads ----------------------
    pick = CompressedSolverFreeADMM(dec, ErrorFeedback(UniformQuantizer(4)), cfg)
    res = pick.solve()
    report = solution_report(lp, res.x)
    print(
        format_table(
            ["quantity", "value"],
            [[k, v] for k, v in report.items()],
            title="\noperator report for 'quant 4b + EF' (the nearly-free option)",
        )
    )
    assert res.converged


if __name__ == "__main__":
    main()
