"""DER hosting study: how much rooftop PV can a feeder absorb?

Sweeps the installed DER capacity on a synthetic feeder and, for each level,
re-dispatches with the solver-free ADMM to find (a) the substation import
and (b) the worst-case voltage rise — the two quantities a distribution
operator watches when approving interconnection requests.  The upper voltage
bound (2b) is what eventually binds.

Run:  python examples/der_hosting.py
"""

import numpy as np

import repro
from repro.feeders import SyntheticFeederSpec, build_synthetic_feeder
from repro.network import Generator
from repro.utils import format_table


def main() -> None:
    base = build_synthetic_feeder(
        SyntheticFeederSpec(name="hosting", n_buses=50, seed=77, load_density=0.8)
    )
    hosts = [b.name for b in base.buses.values() if b.n_phases == 3][2::3]
    print(base.summary())
    print(f"candidate PV buses: {', '.join(hosts)}\n")

    rows = []
    prev = None
    for level_kw in (0.0, 20.0, 50.0, 100.0, 200.0):
        net = base.copy()
        cap_pu = level_kw / 1000.0 / net.mva_base
        for k, bus in enumerate(hosts):
            phases = net.buses[bus].phases
            net.add_generator(
                Generator(
                    f"pv{k}", bus=bus, phases=phases,
                    p_min=0.0, p_max=cap_pu, q_min=-0.3 * cap_pu - 1e-12,
                    q_max=0.3 * cap_pu + 1e-12, cost=0.0,
                )
            )
        lp = repro.build_centralized_lp(net)
        dec = repro.decompose(lp)
        result = repro.SolverFreeADMM(dec, repro.ADMMConfig(max_iter=120000)).solve(
            x0=prev if prev is not None and len(prev) == lp.n_vars else None
        )
        vi = lp.var_index
        sub_import = sum(
            result.value(vi, ("pg", "source", phi)) for phi in (1, 2, 3)
        )
        w = result.x[vi.indices_of_kind("w")]
        pv_total = sum(
            result.x[vi.index(("pg", f"pv{k}", phi))]
            for k, bus in enumerate(hosts)
            for phi in net.buses[bus].phases
        )
        rows.append(
            [
                f"{level_kw:.0f} kW/bus",
                f"{pv_total * net.mva_base * 1000:.0f} kW",
                f"{sub_import * net.mva_base * 1000:.0f} kW",
                f"{np.sqrt(w.max()):.4f} pu",
                result.iterations,
                "yes" if result.converged else "NO",
            ]
        )

    print(
        format_table(
            ["PV capacity", "PV dispatched", "substation import", "max |V|", "iters", "conv"],
            rows,
            title="DER hosting sweep (solver-free ADMM dispatch)",
        )
    )
    print(
        "\nReading: PV displaces substation import roughly 1:1 until the "
        "voltage ceiling binds; past that the dispatch curtails."
    )


if __name__ == "__main__":
    main()
