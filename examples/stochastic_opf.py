"""Two-stage stochastic OPF with CVaR, plus a rolling-horizon schedule.

Commits the DER feeder's dispatchable units *before* the uncertainty
(load and PV) is revealed, hedging over a seeded scenario set: the
first-stage variables stay unsuffixed and shared across every scenario's
components, so the ADMM consensus average *is* the non-anticipativity
constraint, and all K scenarios solve as one stacked batch.  Compares
the risk-neutral (expected-cost) commitment against the CVaR-0.9
risk-averse one, measures the value of the stochastic solution, then
runs the rolling-horizon storage scheduler on the same feeder.

Run:  python examples/stochastic_opf.py
"""

import numpy as np

from repro.core import ADMMConfig
from repro.feeders import ieee13, ieee13_der
from repro.multiperiod import Storage, rolling_horizon
from repro.stochastic import (
    ScenarioSampler,
    solve_two_stage,
    value_of_stochastic_solution,
)
from repro.utils import format_table

#: Scenario-expanded instances favour rho ~ 10 (docs/STOCHASTIC.md).
CONFIG = ADMMConfig(rho=10.0, eps_rel=1e-3, max_iter=60_000)


def main() -> None:
    net = ieee13_der()
    sampler = ScenarioSampler.from_network(net, seed=11)
    scenarios = sampler.sample(16)
    print(
        f"{net.summary()}  |  {scenarios.n_scenarios} scenarios "
        f"(antithetic, load sigma {scenarios.model.load_sigma:g}, "
        f"pv sigma {scenarios.model.pv_sigma:g})"
    )

    solutions = {
        name: solve_two_stage(
            net, scenarios, objective=name, alpha=0.9, config=CONFIG
        )
        for name in ("expected", "cvar")
    }
    rows = []
    for name, sol in solutions.items():
        rows.append([
            name,
            "yes" if sol.converged else "no",
            sol.iterations,
            f"{sol.objective:.6f}",
            f"{sol.expected_cost:.6f}",
            f"{sol.cvar_cost:.6f}",
        ])
    print(format_table(
        ["objective", "conv", "iters", "optimum", "E[cost]", "CVaR_0.9"],
        rows,
        title="two-stage stochastic OPF (solver-free ADMM, rho 10)",
    ))

    # The risk-averse commitment trades expected cost for tail cost.
    rows = [
        [name, *(f"{float(np.sum(sol.first_stage[g])):.4f}"
                 for g in sorted(sol.first_stage))]
        for name, sol in solutions.items()
    ]
    print(format_table(
        ["objective", *sorted(solutions["expected"].first_stage)],
        rows,
        title="first-stage DER commitment (total pu over phases)",
    ))

    report = value_of_stochastic_solution(net, scenarios)
    print(
        f"\nvalue of the stochastic solution: {report.vss:.6f} "
        f"(mean-scenario plan costs {report.deterministic_eval:.6f}, "
        f"hedged plan {report.stochastic_eval:.6f})"
    )

    # Rolling-horizon storage schedule on a stylized 6-period day.  The
    # plain 13-bus feeder imports everything from the substation, so the
    # committed cost is the (price-weighted) energy purchase the battery
    # arbitrages against.
    load = [0.7, 0.8, 1.0, 1.2, 1.1, 0.9]
    price = [0.5 + 0.7 * (x - 0.7) / 0.5 for x in load]
    battery = Storage(
        "bat675", "675", p_ch_max=0.05, p_dis_max=0.05,
        energy_max=0.2, soc0=0.1,
    )
    schedule = rolling_horizon(
        ieee13(), load, price, [battery], window=3, config=CONFIG
    )
    soc = schedule.soc_trajectory("bat675")
    rows = [
        [step.period, f"{load[step.period]:.2f}", f"{price[step.period]:.2f}",
         f"{(step.storage_discharge['bat675'] - step.storage_charge['bat675'])*1e3:+.1f}",
         f"{soc[step.period + 1]:.3f}"]
        for step in schedule.steps
    ]
    print(format_table(
        ["t", "load x", "price", "battery [mpu]", "SOC [puh]"],
        rows,
        title="rolling-horizon schedule (positive = discharging)",
    ))
    print(f"committed cost over the day: {schedule.committed_cost:.6f}")

    assert all(sol.converged for sol in solutions.values())
    assert solutions["cvar"].objective >= solutions["expected"].objective - 1e-6
    assert report.vss > 0


if __name__ == "__main__":
    main()
