"""Dynamic topology reconfiguration with warm-started re-solves.

The paper motivates component-wise decomposition with *dynamically changing
network configurations*: components can join or leave the control region
without re-deriving the whole problem.  This example simulates an operating
sequence on a synthetic feeder:

  1. solve the base case;
  2. a lateral drops off (storm damage) -> re-decompose, warm start;
  3. the lateral is restored and a new DER joins -> warm start again;

and reports how warm starting cuts the iteration count at each step.

Run:  python examples/dynamic_reconfiguration.py
"""

import numpy as np

import repro
from repro.feeders import SyntheticFeederSpec, build_synthetic_feeder
from repro.network import Generator


def transfer_warm_start(lp_old, res_old, lp_new) -> np.ndarray:
    """Map a previous global solution onto a new variable space; variables
    new to the model fall back to the paper's initialization rule."""
    x0 = lp_new.initial_point()
    for i, key in enumerate(lp_new.var_index.keys):
        if key in lp_old.var_index:
            x0[i] = res_old.x[lp_old.var_index.index(key)]
    return x0


def solve(net, x0=None, label=""):
    lp = repro.build_centralized_lp(net)
    dec = repro.decompose(lp)
    solver = repro.SolverFreeADMM(dec, repro.ADMMConfig(max_iter=100000))
    result = solver.solve(x0=x0)
    ref = repro.solve_reference(lp)
    print(
        f"{label:<28s} S={dec.n_components:4d}  iterations={result.iterations:6d}  "
        f"objective={result.objective:.5f}  gap={ref.compare_objective(result.objective):.1e}"
    )
    return lp, result


def main() -> None:
    net = build_synthetic_feeder(
        SyntheticFeederSpec(name="dyn", n_buses=60, seed=42, load_density=0.7)
    )
    print(net.summary())

    # --- Base case -------------------------------------------------------
    lp0, res0 = solve(net, label="base case (cold)")

    # --- Contingency: a leaf lateral drops off ---------------------------
    leaf = net.leaf_buses()[-1]
    removed_loads = [net.remove_load(l.name) for l in list(net.loads_at(leaf))]
    removed_gens = [net.remove_generator(g.name) for g in list(net.generators_at(leaf))]
    removed_line = net.remove_line(net.lines_at(leaf)[0].name)
    removed_bus = net.buses.pop(leaf)
    net._invalidate()
    net.validate(require_radial=True)
    print(f"\ncontingency: bus {leaf} and line {removed_line.name} dropped")

    lp1, res1_cold = solve(net, label="contingency (cold)")
    x0 = transfer_warm_start(lp0, res0, lp1)
    lp1, res1_warm = solve(net, x0=x0, label="contingency (warm)")
    speedup = res1_cold.iterations / max(res1_warm.iterations, 1)
    print(f"warm start cut iterations by {speedup:.1f}x")

    # --- Restoration + a new DER joins the control region ----------------
    net.add_bus(removed_bus)
    net.add_line(removed_line)
    for load in removed_loads:
        net.add_load(load)
    for gen in removed_gens:
        net.add_generator(gen)
    three_phase = [b for b in net.buses.values() if b.n_phases == 3]
    host = three_phase[len(three_phase) // 2]
    net.add_generator(
        Generator(
            "new_der", bus=host.name, phases=host.phases,
            p_min=0.0, p_max=0.05, q_min=-0.05, q_max=0.05, cost=0.0,
        )
    )
    net.validate(require_radial=True)
    print(f"\nrestoration + DER at bus {host.name}")

    lp2, res2_cold = solve(net, label="restored + DER (cold)")
    x0 = transfer_warm_start(lp1, res1_warm, lp2)
    _, res2_warm = solve(net, x0=x0, label="restored + DER (warm)")
    print(
        f"warm start cut iterations by "
        f"{res2_cold.iterations / max(res2_warm.iterations, 1):.1f}x; "
        f"DER lowered substation draw by "
        f"{res1_warm.objective - res2_warm.objective:.5f} pu"
    )


if __name__ == "__main__":
    main()
