"""Chaos run: a seeded fault storm against the fault-tolerant runner.

The distributed solver of the paper assumes healthy ranks; real clusters
crash, straggle and drop packets.  This example runs the acceptance
scenario of docs/RESILIENCE.md end to end:

* rank 2 **crashes** (fail-stop) at iteration 40,
* rank 1 runs **10x slow** from iteration 10,

against :class:`repro.resilience.FaultTolerantADMMRunner` with consensus
checkpoints every 25 iterations.  The runner detects the crash through the
missed gather deadline, restores the iteration-25 checkpoint, reassigns the
dead rank's components to the survivors — and, because checkpoints capture
the exact consensus state ``(z, lam, rho)``, the recovered trajectory is
**bit-identical** to a fault-free run.  The script verifies that claim and
prints the failover timeline plus the telemetry counters.

Everything is seeded: rerunning the script reproduces the same faults, the
same recovery, and the same iterates.

Run:  python examples/chaos_run.py
"""

import numpy as np

from repro.core import ADMMConfig
from repro.decomposition import decompose
from repro.feeders import ieee13
from repro.formulation import build_centralized_lp
from repro.parallel import CPU_CLUSTER_COMM, DistributedADMMRunner
from repro.resilience import (
    FaultPlan,
    FaultTolerantADMMRunner,
    RankCrash,
    StragglerSlowdown,
)

N_RANKS = 4
CHECKPOINT_EVERY = 25


def main() -> None:
    dec = decompose(build_centralized_lp(ieee13()))
    cfg = ADMMConfig(max_iter=20_000)

    plan = FaultPlan(
        seed=7,
        faults=(
            RankCrash(rank=2, at_iteration=40),
            StragglerSlowdown(rank=1, factor=10.0, from_iteration=10),
        ),
    )
    print(f"fault plan (seed {plan.seed}):")
    for fault in plan.faults:
        print(f"  - {fault}")

    chaos = FaultTolerantADMMRunner(
        dec,
        N_RANKS,
        CPU_CLUSTER_COMM,
        cfg,
        fault_plan=plan,
        checkpoint_every=CHECKPOINT_EVERY,
    ).solve()
    clean = DistributedADMMRunner(dec, N_RANKS, CPU_CLUSTER_COMM, cfg).solve()

    result = chaos.result
    print(f"\nconverged: {result.converged} after {result.iterations} iterations")
    print(f"objective: {result.objective:.6f}")
    assert result.converged, "chaos run must still converge"

    print("\nfailover timeline:")
    for event in chaos.failovers:
        print(
            f"  iteration {event.iteration}: rank {event.rank} declared dead, "
            f"resumed from checkpoint {event.resumed_from}, "
            f"survivors {list(event.survivors)}"
        )

    # The recovery guarantee: identical trajectory, bit for bit.
    assert np.array_equal(result.x, clean.result.x), "x diverged from clean run"
    assert np.array_equal(result.z, clean.result.z), "z diverged from clean run"
    assert result.iterations == clean.result.iterations
    print("\nrecovered trajectory is bit-identical to the fault-free run")
    print(
        f"simulated wall time: {chaos.simulated_total_s:.4f}s chaotic vs "
        f"{clean.simulated_total_s:.4f}s clean "
        f"(straggler + failover cost, virtual clocks)"
    )

    print("\ntelemetry counters:")
    for name, value in sorted(chaos.metrics.snapshot().items()):
        print(f"  {name:30s} {value}")


if __name__ == "__main__":
    main()
