"""Scenario serving: many perturbed OPF instances through one engine.

Operators rarely solve one OPF: intra-day re-dispatch, DER hosting checks
and contingency screening all ask for *families* of scenarios on the same
feeder.  This example pushes a day of hourly load profiles (plus a DER
re-dispatch sweep) through :class:`repro.serve.ScenarioEngine`, which

* precomputes the partition and projection factorizations once per feeder,
* groups same-feeder requests into stacked batches for the batched
  projection kernels (the paper's amortization, applied across scenarios),
* warm-starts each scenario from the nearest previously converged state.

Run:  python examples/scenario_serving.py
"""

import numpy as np

from repro.serve import OPFRequest, ScenarioEngine


def hourly_profile(hour: int) -> float:
    """A stylized residential load shape (evening peak, night valley)."""
    return 0.75 + 0.30 * np.exp(-((hour - 19) % 24) ** 2 / 18.0) + 0.08 * np.sin(
        np.pi * hour / 12.0
    )


def main() -> None:
    engine = ScenarioEngine(max_batch=8, cache_capacity=64)

    # 1. A day of hourly scenarios: the same feeder under a moving load.
    day = [
        OPFRequest(
            request_id=f"hour-{h:02d}",
            feeder="ieee13",
            load_scale=float(hourly_profile(h)),
        )
        for h in range(24)
    ]
    responses = engine.serve(day)
    print("hour  scale   status      iters  start  objective")
    for h, r in zip(range(24), responses):
        print(
            f"{h:4d}  {hourly_profile(h):5.3f}  {r.status:<10s}"
            f"{r.iterations:7d}  {'warm' if r.warm_started else 'cold':<5s}"
            f"  {r.objective:9.5f}"
        )

    # 2. Re-serve the same day with each load nudged a little: every hour
    #    now warm-starts from its own converged state of the first pass.
    nudged = [
        OPFRequest(
            request_id=f"redo-{h:02d}",
            feeder="ieee13",
            load_scale=float(hourly_profile(h) * 1.01),
        )
        for h in range(24)
    ]
    redo = engine.serve(nudged)
    warm = [r.iterations for r in redo if r.warm_started]
    cold = [r.iterations for r in responses if not r.warm_started]
    print(
        f"\nre-dispatch pass: {len(warm)}/{len(redo)} warm-started, "
        f"mean {np.mean(warm):.0f} iterations vs {np.mean(cold):.0f} cold "
        f"({100 * (1 - np.mean(warm) / np.mean(cold)):.0f}% saved)"
    )

    # 3. Serving metrics: throughput, cache behaviour, batch occupancy.
    snap = engine.snapshot()
    print(
        f"\nserved {snap['served']} scenarios in {snap['wall_seconds']:.2f}s "
        f"({snap['scenarios_per_second']:.1f}/s), "
        f"batch occupancy {100 * snap['batch_occupancy']:.0f}%, "
        f"cache hit rate {100 * snap['cache_hit_rate']:.0f}%, "
        f"projections reused {snap['factorizations_reused']}"
    )


if __name__ == "__main__":
    main()
