"""Multi-period dispatch with energy storage: arbitrage and peak shaving.

Time-expands a feeder over a 12-period day (morning ramp, evening peak),
attaches a battery, and solves the whole horizon with the distributed
solver-free ADMM.  The storage's state-of-charge chain is a single
*component spanning all periods* — the rest of the decomposition stays
period-local — which is exactly the adaptability argument of the paper's
component-wise strategy applied to the multi-period setting of its
comparison baseline [15].

Run:  python examples/multiperiod_storage.py
"""

import numpy as np

import repro
from repro.feeders import SyntheticFeederSpec, build_synthetic_feeder
from repro.multiperiod import (
    MultiPeriodSolverFreeADMM,
    Storage,
    build_multiperiod_lp,
    decompose_multiperiod,
)
from repro.utils import format_table

#: A stylized daily shape: overnight valley, morning ramp, evening peak.
LOAD = np.array([0.55, 0.5, 0.55, 0.7, 0.9, 1.0, 1.05, 1.1, 1.3, 1.25, 0.95, 0.7])
PRICE = np.array([0.4, 0.35, 0.4, 0.6, 0.9, 1.0, 1.1, 1.3, 2.0, 1.8, 1.0, 0.6])


def main() -> None:
    net = build_synthetic_feeder(
        SyntheticFeederSpec(name="daily", n_buses=20, seed=11, load_density=0.8)
    )
    host = [b for b in net.buses.values() if b.n_phases == 3][1]
    battery = Storage(
        "battery",
        host.name,
        p_ch_max=0.08,
        p_dis_max=0.08,
        energy_max=0.25,
        soc0=0.12,
    )
    print(f"{net.summary()}  |  battery at {host.name}")

    prob = build_multiperiod_lp(net, LOAD, PRICE, [battery])
    print(
        f"time-expanded LP: {prob.n_vars} variables over {prob.n_periods} "
        f"periods, {len(prob.rows)} rows"
    )
    dec = decompose_multiperiod(prob)
    print(f"decomposition: {dec.n_components} components "
          f"(the battery's SOC chain is one component spanning the day)")

    res = MultiPeriodSolverFreeADMM(
        dec, repro.ADMMConfig(max_iter=300_000, record_history=False)
    ).solve()
    print(res.summary())
    ref = repro.solve_reference(prob.to_centralized())
    print(f"centralized reference: {ref.objective:.5f} "
          f"(gap {ref.compare_objective(res.objective):.1e})")

    # Compare against the storage-free dispatch.
    prob0 = build_multiperiod_lp(net, LOAD, PRICE)
    ref0 = repro.solve_reference(prob0.to_centralized())
    saving = (ref0.objective - res.objective) / ref0.objective * 100

    soc = prob.soc_trajectory(res.x, "battery")
    power = prob.storage_power(res.x, "battery")
    sub = prob.substation_power(res.x)
    sub0 = prob0.substation_power(ref0.x)
    rows = [
        [t, f"{LOAD[t]:.2f}", f"{PRICE[t]:.2f}", f"{power[t]*1e3:+.1f}",
         f"{soc[t+1]:.3f}", f"{sub[t]*1e3:.1f}", f"{sub0[t]*1e3:.1f}"]
        for t in range(prob.n_periods)
    ]
    print(
        format_table(
            ["t", "load x", "price x", "battery [mpu]", "SOC [puh]",
             "substation [mpu]", "(no ESS)"],
            rows,
            title="daily dispatch (positive battery power = discharging)",
        )
    )
    print(
        f"\nenergy-cost saving from the battery: {saving:.2f}%  |  "
        f"peak substation draw: {sub.max()*1e3:.1f} vs {sub0.max()*1e3:.1f} mpu"
    )
    assert res.converged


if __name__ == "__main__":
    main()
