"""Quickstart: solve the IEEE 13-bus multi-phase OPF with solver-free ADMM.

Builds the feeder, assembles the linearized OPF (7), decomposes it
component-wise (9), runs Algorithm 1 with the paper's default settings, and
validates the result against the centralized HiGHS optimum.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro


def main() -> None:
    # 1. The network model: buses, lines, transformers, wye/delta ZIP loads.
    net = repro.ieee13()
    print(net.summary())

    # 2. The centralized LP (7): min c'x s.t. Ax = b, lb <= x <= ub.
    lp = repro.build_centralized_lp(net)
    print(f"centralized LP: A is {lp.shape[0]} x {lp.shape[1]}")

    # 3. Component-wise decomposition (9): one agent per bus/line/leaf.
    dec = repro.decompose(lp)
    ms, ns = dec.size_stats()
    print(
        f"decomposed into S = {dec.n_components} components "
        f"(mean subproblem: {ms.mean:.1f} rows x {ns.mean:.1f} vars)"
    )

    # 4. Algorithm 1 with the paper's defaults (rho = 100, eps_rel = 1e-3).
    solver = repro.SolverFreeADMM(dec)
    result = solver.solve()
    print(result.summary())

    # 5. Validate against the centralized optimum.
    ref = repro.solve_reference(lp)
    gap = ref.compare_objective(result.objective)
    print(f"reference objective {ref.objective:.6f}  |  relative gap {gap:.2e}")

    # 6. Inspect the solution: substation dispatch and voltage profile.
    vi = lp.var_index
    pg = [result.value(vi, ("pg", "source", phi)) for phi in (1, 2, 3)]
    print(
        "substation dispatch per phase (pu):",
        " ".join(f"{p:.4f}" for p in pg),
    )
    w_stats = [result.value(vi, ("w", b, phi)) for b in net.buses for phi in net.buses[b].phases]
    print(
        f"squared voltage magnitudes: min {min(w_stats):.4f}, "
        f"max {max(w_stats):.4f} (bounds [0.81, 1.21])"
    )
    assert result.converged and gap < 5e-3


if __name__ == "__main__":
    main()
