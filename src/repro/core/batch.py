"""Batched (GPU-kernel-style) local update data (paper Sections III-B, IV-D).

Algorithm 1's precomputation builds, for every component ``s``,

    Abar_s = A_s^T (A_s A_s^T)^{-1} A_s - I        (15b)
    bbar_s = A_s^T (A_s A_s^T)^{-1} b_s            (15c)

and the local update (15a) is then ``x_s = (1/rho) Abar_s d_s + bbar_s``
with ``d_s = -rho B_s x - lam_s``.  Writing ``v_s = B_s x + lam_s / rho``,
this is the affine projection

    x_s = M_s v_s + bbar_s,        M_s := I - A_s^T (A_s A_s^T)^{-1} A_s,

onto the affine subspace ``{A_s x = b_s}`` — notably independent of ``rho``.

On a GPU each CUDA block would own one component and its threads the entries
of ``x_s`` (Section IV-D).  The NumPy equivalent is a *padded batched
matmul*: components are grouped into width buckets (power-of-two padded
``n_s``), each bucket holding a dense ``(S_b, width, width)`` tensor, so one
``matmul`` call per bucket performs every component's projection — the exact
data-parallel structure of the paper's kernel, bounded padding waste
included.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg as sla

from repro.backend import Backend, get_backend
from repro.decomposition.decomposed import DecomposedOPF
from repro.utils.exceptions import DecompositionError


def projection_data(a: np.ndarray, b: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Compute ``(M, bbar)`` of one component from its full-row-rank system.

    Raises
    ------
    DecompositionError
        If ``A A^T`` is numerically singular (``A`` not full row rank —
        row-reduce first).
    """
    n = a.shape[1]
    m = a.shape[0]
    if m == 0:
        return np.eye(n), np.zeros(n)
    k = a @ a.T
    try:
        cho = sla.cho_factor(k, check_finite=False)
    except sla.LinAlgError as exc:
        raise DecompositionError(
            "A_s A_s^T is singular; A_s must have full row rank (apply row reduction)"
        ) from exc
    g = sla.cho_solve(cho, a, check_finite=False)  # (A A^T)^{-1} A
    mmat = np.eye(n) - a.T @ g
    bbar = a.T @ sla.cho_solve(cho, b, check_finite=False)
    return mmat, bbar


def _bucket_width(n: int, minimum: int = 4) -> int:
    """Power-of-two padding width for a component of size ``n``."""
    w = minimum
    while w < n:
        w <<= 1
    return w


@dataclass
class _Bucket:
    width: int
    comp_indices: np.ndarray  # (S_b,)
    proj: np.ndarray  # (S_b, width, width) in the backend's compute dtype
    bbar: np.ndarray  # (S_b, width)
    stack_idx: np.ndarray  # positions of bucket entries in the stacked z
    pad_idx: np.ndarray  # flat positions into (S_b * width,)
    v_pad: np.ndarray = field(repr=False, default=None)  # type: ignore[assignment]


@dataclass
class BatchedLocalSolver:
    """Precomputed batched projection operators for all components."""

    n_local: int
    n_components: int
    buckets: list[_Bucket]
    component_location: dict[int, tuple[int, int]]  # comp -> (bucket, row)
    sizes: np.ndarray  # (S,) n_s per component
    flops: np.ndarray  # (S,) flop count of one local update per component
    backend: Backend = None  # type: ignore[assignment]

    @classmethod
    def from_decomposition(
        cls, dec: DecomposedOPF, backend: Backend | None = None
    ) -> "BatchedLocalSolver":
        return cls.from_parts(dec.components, dec.offsets, backend=backend)

    @classmethod
    def from_parts(
        cls, comps, offsets, projections=None, backend: Backend | None = None
    ) -> "BatchedLocalSolver":
        """Build from any sequence of equality components.

        Each component needs ``a`` (full-row-rank), ``b`` and ``n_vars``;
        ``offsets`` are the stacked slice boundaries.  This entry point is
        shared with the conic extension, whose *linear* components reuse the
        exact same batched projection kernels.

        ``projections``, if given, is a sequence aligned with ``comps`` of
        precomputed ``(M, bbar)`` pairs (the output of
        :func:`projection_data`); matching entries skip the factorization.
        The serving engine uses this to share factorizations across
        scenarios that leave a component's local system unchanged.

        ``backend`` chooses the execution substrate and dtype of the
        projection tensors; factorizations always run in fp64 (SciPy) and
        are rounded once when stored.  Defaults to pinned ``numpy64``
        (bit-identical to the historical implementation) — callers wanting
        the process default must resolve it themselves.
        """
        backend = backend if backend is not None else get_backend("numpy64")
        offsets = np.asarray(offsets, dtype=np.int64)
        if projections is not None and len(projections) != len(comps):
            raise ValueError("projections must align with comps")
        widths = [_bucket_width(c.n_vars) for c in comps]
        by_width: dict[int, list[int]] = {}
        for s, w in enumerate(widths):
            by_width.setdefault(w, []).append(s)

        buckets: list[_Bucket] = []
        location: dict[int, tuple[int, int]] = {}
        for width in sorted(by_width):
            idxs = by_width[width]
            sb = len(idxs)
            proj = np.zeros((sb, width, width))
            bbar = np.zeros((sb, width))
            stack_parts = []
            pad_parts = []
            for row, s in enumerate(idxs):
                comp = comps[s]
                n_s = comp.n_vars
                if projections is not None and projections[s] is not None:
                    mmat, bb = projections[s]
                else:
                    mmat, bb = projection_data(comp.a, comp.b)
                proj[row, :n_s, :n_s] = mmat
                bbar[row, :n_s] = bb
                start = int(offsets[s])
                stack_parts.append(np.arange(start, start + n_s, dtype=np.int64))
                pad_parts.append(np.arange(row * width, row * width + n_s, dtype=np.int64))
                location[s] = (len(buckets), row)
            bucket = _Bucket(
                width=width,
                comp_indices=np.asarray(idxs, dtype=np.int64),
                proj=backend.asarray(proj),
                bbar=backend.asarray(bbar),
                stack_idx=backend.index_array(np.concatenate(stack_parts)),
                pad_idx=backend.index_array(np.concatenate(pad_parts)),
            )
            bucket.v_pad = backend.zeros(sb * width)
            buckets.append(bucket)
        sizes = np.array([c.n_vars for c in comps], dtype=np.int64)
        # One local update per component: dense matvec (2 n^2) plus the
        # add; the 2.0 factor promotes the int64 sizes to float.
        flops = 2.0 * sizes * sizes + sizes
        return cls(
            n_local=int(offsets[-1]),
            n_components=len(comps),
            buckets=buckets,
            component_location=location,
            sizes=sizes,
            flops=flops,
            backend=backend,
        )

    def solve(self, v: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Apply every component's projection to the stacked vector ``v``.

        ``z[s] = M_s v_s + bbar_s`` for all components, via one batched
        matmul per width bucket.
        """
        if v.shape != (self.n_local,):
            raise ValueError(f"expected stacked vector of length {self.n_local}")
        b = self.backend
        z = out if out is not None else b.empty(self.n_local)
        for bucket in self.buckets:
            vp = bucket.v_pad
            vp[bucket.pad_idx] = v[bucket.stack_idx]
            zp = b.matmul_batched(bucket.proj, vp)
            zp += bucket.bbar.reshape(-1)
            z[bucket.stack_idx] = zp[bucket.pad_idx]
        return z

    def solve_one(self, s: int, v_s: np.ndarray) -> np.ndarray:
        """Un-batched single-component projection (CPU-agent execution path;
        also the unit the parallel simulator times)."""
        bucket_id, row = self.component_location[s]
        bucket = self.buckets[bucket_id]
        n_s = int(self.sizes[s])
        mmat = bucket.proj[row, :n_s, :n_s]
        return mmat @ v_s + bucket.bbar[row, :n_s]

    @property
    def padded_elements(self) -> int:
        """Total stored tensor elements (padding diagnostics)."""
        return int(sum(b.proj.size for b in self.buckets))
