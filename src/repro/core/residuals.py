"""Primal/dual residuals and the termination criterion (paper eq. (16)).

The paper's quantities are sums over components; because every component's
``B_s`` has orthonormal rows (each local variable copies exactly one global
variable, and local variables within a component are distinct), the
component sums collapse to plain stacked-vector norms:

    pres   = || B x - z ||_2
    dres   = rho * || z - z_prev ||_2          (= rho * sqrt(sum ||B_s^T d_s||^2))
    eps_p  = eps_rel * max(||B x||_2, ||z||_2)
    eps_d  = eps_rel * || lam ||_2             (= eps_rel * sqrt(sum ||B_s^T lam_s||^2))

where ``B x`` is the gather ``x[global_cols]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Residuals:
    pres: float
    dres: float
    eps_prim: float
    eps_dual: float

    @property
    def converged(self) -> bool:
        return self.pres <= self.eps_prim and self.dres <= self.eps_dual

    @property
    def finite(self) -> bool:
        """False as soon as any iterate went non-finite.

        The four scalars are norms over ``x``, ``z``, ``z_prev`` and
        ``lam``, so a single NaN/inf anywhere in the state surfaces here —
        the divergence guards check this instead of re-scanning the vectors.
        """
        return bool(
            np.isfinite(self.pres)
            and np.isfinite(self.dres)
            and np.isfinite(self.eps_prim)
            and np.isfinite(self.eps_dual)
        )


def compute_residuals(
    bx: np.ndarray,
    z: np.ndarray,
    z_prev: np.ndarray,
    lam: np.ndarray,
    rho: float,
    eps_rel: float,
    backend=None,
) -> Residuals:
    """Evaluate (16) from the stacked iterates.

    Parameters
    ----------
    bx:
        The gathered global solution ``x[global_cols]`` (i.e. ``B x``).
    z, z_prev:
        Current and previous stacked local solutions.
    lam:
        Stacked consensus duals.
    backend:
        Array-execution backend whose fp64-accumulated :meth:`norm` is
        used; defaults to numpy fp64, which is bit-identical to the
        historical ``np.linalg.norm`` on fp64 iterates.
    """
    if backend is None:
        from repro.backend import get_backend

        backend = get_backend("numpy64")
    norm = backend.norm
    pres = norm(bx - z)
    dres = float(rho * norm(z - z_prev))
    eps_prim = float(eps_rel * max(norm(bx), norm(z)))
    eps_dual = float(eps_rel * norm(lam))
    return Residuals(pres=pres, dres=dres, eps_prim=eps_prim, eps_dual=eps_dual)
