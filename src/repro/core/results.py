"""Result containers for the ADMM algorithms."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.formulation.variables import VarKey


@dataclass
class IterationHistory:
    """Per-iteration traces (primal/dual residuals and tolerances, rho)."""

    pres: list[float] = field(default_factory=list)
    dres: list[float] = field(default_factory=list)
    eps_prim: list[float] = field(default_factory=list)
    eps_dual: list[float] = field(default_factory=list)
    rho: list[float] = field(default_factory=list)

    def append(self, pres, dres, eps_prim, eps_dual, rho) -> None:
        self.pres.append(float(pres))
        self.dres.append(float(dres))
        self.eps_prim.append(float(eps_prim))
        self.eps_dual.append(float(eps_dual))
        self.rho.append(float(rho))

    def __len__(self) -> int:
        return len(self.pres)

    def arrays(self) -> dict[str, np.ndarray]:
        return {
            "pres": np.asarray(self.pres),
            "dres": np.asarray(self.dres),
            "eps_prim": np.asarray(self.eps_prim),
            "eps_dual": np.asarray(self.eps_dual),
            "rho": np.asarray(self.rho),
        }


@dataclass
class ADMMResult:
    """Outcome of one distributed solve.

    ``x`` is the global solution vector of (9); ``z`` and ``lam`` are the
    stacked local solutions and consensus duals (warm-start inputs for the
    next solve after a topology change).  ``timers`` holds accumulated wall
    time per update phase ("global", "local", "dual", "residual").
    """

    x: np.ndarray
    z: np.ndarray
    lam: np.ndarray
    objective: float
    iterations: int
    converged: bool
    pres: float
    dres: float
    history: IterationHistory | None
    timers: dict[str, float]
    algorithm: str

    def value(self, var_index, key: VarKey) -> float:
        """Value of one named variable in the global solution."""
        return float(self.x[var_index.index(key)])

    @property
    def total_time(self) -> float:
        return float(sum(self.timers.values()))

    def summary(self) -> str:
        status = "converged" if self.converged else "NOT converged"
        return (
            f"{self.algorithm}: {status} in {self.iterations} iterations, "
            f"objective {self.objective:.6f}, pres {self.pres:.3e}, "
            f"dres {self.dres:.3e}, wall {self.total_time:.3f}s"
        )
