"""Differentially private consensus (the paper's future-work pointer [13]).

The paper notes that the central aggregator sees every agent's local
iterates, "potentially raising privacy concern", and points to
differentially private distributed optimization as the mitigation.  This
module implements the standard recipe — per-agent **output perturbation**:
each component clips its reported local solution update to a bounded L2
norm and adds Gaussian noise *before* it is sent to the operator, so the
aggregator (and anything downstream) only ever sees privatized iterates.

Accounting uses zero-concentrated differential privacy: one Gaussian
release with L2 sensitivity ``clip`` and noise ``sigma`` costs
``rho = clip^2 / (2 sigma^2)`` zCDP; T iterations compose additively, and
``eps(delta) = rho_total + 2 sqrt(rho_total ln(1/delta))``.

The privatized algorithm inherits ADMM's robustness to inexact local
solutions: convergence degrades gracefully to a noise floor governed by
``sigma`` (quantified by ``bench_ablation_privacy`` and the
``privacy_compression`` example).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.config import ADMMConfig
from repro.core.loop import ADMMLoop
from repro.core.results import ADMMResult
from repro.core.solver_free import SolverFreeADMM
from repro.decomposition.decomposed import DecomposedOPF


@dataclass(frozen=True)
class PrivacyConfig:
    """Gaussian-mechanism parameters.

    Attributes
    ----------
    clip:
        L2 clipping bound applied per component to the *change* of its
        reported solution (the per-iteration release).
    sigma:
        Gaussian noise standard deviation (absolute, same units as the
        iterates).
    seed:
        Noise stream seed (runs are reproducible).
    """

    clip: float = 1.0
    sigma: float = 1e-3
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clip <= 0:
            raise ValueError("clip must be positive")
        if self.sigma < 0:
            raise ValueError("sigma must be nonnegative")

    def rho_zcdp_per_release(self) -> float:
        """zCDP cost of one noisy release per component."""
        if self.sigma == 0:
            return math.inf
        return self.clip**2 / (2.0 * self.sigma**2)


@dataclass
class PrivacyAccountant:
    """Additive zCDP composition over iterations."""

    rho_per_release: float
    releases: int = 0

    def record(self, n: int = 1) -> None:
        self.releases += n

    @property
    def rho_total(self) -> float:
        return self.rho_per_release * self.releases

    def epsilon(self, delta: float = 1e-6) -> float:
        """Convert accumulated zCDP to (eps, delta)-DP."""
        if not 0 < delta < 1:
            raise ValueError("delta must be in (0, 1)")
        rho = self.rho_total
        if math.isinf(rho):
            return math.inf
        return rho + 2.0 * math.sqrt(rho * math.log(1.0 / delta))


class PrivateSolverFreeADMM(SolverFreeADMM):
    """Algorithm 1 with per-component privatized uploads.

    Each iteration, every component's reported solution is
    ``z_s + noise`` where the *update* ``z_s - z_s_prev`` is L2-clipped to
    ``privacy.clip`` and Gaussian noise of scale ``privacy.sigma`` is added.
    The operator's global and dual updates consume only privatized values.

    The termination criterion sees noisy residuals, so a noise floor below
    which it cannot certify convergence is expected; callers should size
    ``eps_rel`` accordingly (see the ablation benchmark).
    """

    algorithm_name = "solver-free ADMM (differentially private)"
    #: The noise stream and zCDP accountant are tied to this run; an fp64
    #: refinement twin would double-spend the privacy budget.
    refinement_supported = False
    supports_balancing = False

    def __init__(
        self,
        dec: DecomposedOPF,
        privacy: PrivacyConfig,
        config: ADMMConfig | None = None,
        backend=None,
        precision: str | None = None,
    ):
        super().__init__(dec, config, backend=backend, precision=precision)
        if self.config.residual_balancing:
            raise ValueError("privacy mode supports fixed rho only")
        self.privacy = privacy
        self.accountant = PrivacyAccountant(privacy.rho_zcdp_per_release())
        self._rng = np.random.default_rng(privacy.seed)

    def _privatize(self, z: np.ndarray, z_prev: np.ndarray) -> np.ndarray:
        """Clip each component's update and add Gaussian noise."""
        dec = self.dec
        out = np.empty_like(z)
        p = self.privacy
        noise = self._rng.normal(0.0, p.sigma, size=z.shape) if p.sigma else 0.0
        for s in range(dec.n_components):
            sl = dec.component_slice(s)
            delta = z[sl] - z_prev[sl]
            norm = self.backend.norm(delta)
            if norm > p.clip:
                delta = delta * (p.clip / norm)
            out[sl] = z_prev[sl] + delta
        out += noise
        self.accountant.record(dec.n_components)
        return out

    def local_step(self, bx_eff, z_prev, lam, rho):
        z_exact = self.local_solver.solve(bx_eff + lam / rho)
        # Only the privatized solution leaves the agent.
        return self._privatize(z_exact, z_prev)

    def _make_loop(self, *, watch_stall: bool = True) -> ADMMLoop:
        # The historical private loop kept no phase timers or spans, and
        # the noise floor makes the divergence guard's best-state capture
        # pointless churn — but the guard itself still applies.
        return ADMMLoop(
            self,
            self.config,
            backend=self.backend,
            tracer=self.tracer,
            record_timers=False,
            phase_spans=False,
            watch_stall=False,
        )
