"""The paper's primary contribution: solver-free ADMM (Algorithm 1) and the
solver-based benchmark ADMM it is evaluated against."""

from repro.core.baseline import BenchmarkADMM
from repro.core.batch import BatchedLocalSolver, projection_data
from repro.core.config import ADMMConfig
from repro.core.diagnostics import (
    consensus_gaps_by_kind,
    convergence_report,
    is_stalled,
    residual_tail_slope,
)
from repro.core.privacy import PrivacyAccountant, PrivacyConfig, PrivateSolverFreeADMM
from repro.core.residuals import Residuals, compute_residuals
from repro.core.results import ADMMResult, IterationHistory
from repro.core.rho import ResidualBalancer
from repro.core.solver_free import SolverFreeADMM

__all__ = [
    "SolverFreeADMM",
    "BenchmarkADMM",
    "ADMMConfig",
    "ADMMResult",
    "IterationHistory",
    "Residuals",
    "compute_residuals",
    "BatchedLocalSolver",
    "projection_data",
    "ResidualBalancer",
    "PrivateSolverFreeADMM",
    "PrivacyConfig",
    "PrivacyAccountant",
    "convergence_report",
    "consensus_gaps_by_kind",
    "is_stalled",
    "residual_tail_slope",
]
