"""The paper's benchmark: solver-based ADMM on model (8) (Section V-B).

Identical global and dual updates to Algorithm 1 — but the bound
constraints stay *inside* the component subproblems, so

* the global update is the **unclipped** minimizer ``x_hat`` of (10), and
* every local update must solve the box-constrained QP

      min 1/2 rho ||x_s||^2 + d_s^T x_s   s.t.  A_s x_s = b_s,
                                                lb_s <= x_s <= ub_s,

  which has no closed form and requires an optimization solver per
  component per iteration — the cost the paper's figures attribute to
  existing component-wise ADMM methods.

Two local execution modes:

* ``"interior_point"`` (default): the authentic path; calls the dense
  interior-point solver of :mod:`repro.qp` for every component, so measured
  wall time reflects real solver cost.
* ``"projection"``: a fast exact path (semismooth-Newton projection) that
  produces the *same iterate sequence* — used to count iterations on large
  instances where running thousands of solver-based iterations is
  impractical on this machine.  Timing benchmarks never use it.

The iteration skeleton is :class:`repro.core.loop.ADMMLoop`; this class
supplies the benchmark's update rules.  The per-component QP solves are
always fp64 (SciPy); under an fp32 backend only the consensus state is
reduced precision.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backend import refinement_backend, resolve_backend
from repro.core.config import ADMMConfig
from repro.core.loop import ADMMLoop, IterationStrategy, LoopOutcome
from repro.core.results import ADMMResult
from repro.decomposition.decomposed import DecomposedOPF
from repro.qp.interior_point import solve_qp_box_eq
from repro.qp.projection import project_box_affine
from repro.telemetry import NULL_TRACER


class BenchmarkADMM(IterationStrategy):
    """Solver-based component ADMM (the paper's comparison baseline)."""

    algorithm_name = "benchmark ADMM (solver-based)"
    # The baseline deliberately runs the plain algorithm: no
    # over-relaxation, no residual balancing.
    use_relaxation = False
    supports_balancing = False
    refinement_supported = True

    def __init__(
        self,
        dec: DecomposedOPF,
        config: ADMMConfig | None = None,
        local_mode: str = "interior_point",
        tracer=None,
        backend=None,
        precision: str | None = None,
    ):
        if local_mode not in ("interior_point", "projection"):
            raise ValueError(f"unknown local_mode {local_mode!r}")
        self.dec = dec
        self.config = config or ADMMConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.local_mode = local_mode
        self.backend = resolve_backend(backend, precision)
        b = self.backend
        lp = dec.lp
        self.n = lp.n_vars
        self.n_local = dec.n_local
        self.c = b.asarray(lp.cost)
        self.gcols = b.index_array(dec.global_cols)
        self.counts = b.asarray(dec.counts)
        self.components = dec.components
        self.offsets = dec.offsets

    # ------------------------------------------------------------------
    def global_update(self, z, lam, rho: float):
        """Unclipped x_hat of (10) — bounds live in the local subproblems."""
        b = self.backend
        scatter = b.scatter_add(self.gcols, z - lam / rho, self.n)
        return (scatter - self.c / rho) / self.counts

    def solve_local(self, s: int, v_s: np.ndarray, rho: float) -> np.ndarray:
        """Solve component ``s``'s box-constrained QP for target ``v_s``."""
        comp = self.components[s]
        if self.local_mode == "projection":
            return project_box_affine(v_s, comp.a, comp.b, comp.lb, comp.ub)
        n_s = comp.n_vars
        result = solve_qp_box_eq(
            rho * np.eye(n_s),
            -rho * v_s,
            comp.a,
            comp.b,
            comp.lb,
            comp.ub,
            tol=self.config.qp_tol,
        )
        return result.x

    def local_update(self, bx, lam, rho: float):
        v = bx + lam / rho
        z = self.backend.empty(self.n_local)
        for s in range(len(self.components)):
            sl = self.dec.component_slice(s)
            z[sl] = self.solve_local(s, v[sl], rho)
        return z

    def dual_update(self, lam, bx, z, rho: float):
        return lam + rho * (bx - z)

    # ------------------------------------------------------------------
    # Engine hooks (repro.core.loop)
    # ------------------------------------------------------------------
    def global_step(self, z, lam, rho):
        return self.global_update(z, lam, rho)

    def local_step(self, bx_eff, z_prev, lam, rho):
        return self.local_update(bx_eff, lam, rho)

    def dual_step(self, lam, bx_eff, z, rho):
        return self.dual_update(lam, bx_eff, z, rho)

    def span_args(self) -> dict:
        return {"n_vars": self.n, "local_mode": self.local_mode}

    # ------------------------------------------------------------------
    def initial_state(self, x0=None, z0=None, lam0=None):
        b = self.backend
        x = (
            b.from_numpy(self.dec.lp.initial_point())
            if x0 is None
            else b.asarray(x0, copy=True)
        )
        z = x[self.gcols].copy() if z0 is None else b.asarray(z0, copy=True)
        lam = b.zeros(self.n_local) if lam0 is None else b.asarray(lam0, copy=True)
        return x, z, lam

    def _make_loop(self, *, watch_stall: bool = True) -> ADMMLoop:
        return ADMMLoop(
            self,
            self.config,
            backend=self.backend,
            tracer=self.tracer,
            watch_stall=watch_stall,
        )

    def solve(
        self,
        x0=None,
        z0=None,
        lam0=None,
        max_iter: int | None = None,
        callback=None,
    ) -> ADMMResult:
        """Run the benchmark ADMM until (16) holds or the budget is hit."""
        cfg = self.config
        budget = cfg.max_iter if max_iter is None else max_iter
        x, z, lam = self.initial_state(x0, z0, lam0)
        loop = self._make_loop()
        outcome = loop.run(x, z, lam, budget=budget, callback=callback)
        if outcome.stalled and self.refinement_supported:
            return self._refine(loop, outcome, budget, callback)
        return loop.result(outcome)

    # ------------------------------------------------------------------
    def _refinement_solver(self, backend) -> "BenchmarkADMM":
        return type(self)(
            self.dec, self.config, local_mode=self.local_mode,
            tracer=self.tracer, backend=backend,
        )

    def _refine(
        self, loop: ADMMLoop, outcome: LoopOutcome, budget: int, callback
    ) -> ADMMResult:
        """Continue a stalled low-precision solve in fp64 (same scheme as
        :meth:`repro.core.solver_free.SolverFreeADMM._refine`)."""
        remaining = budget - outcome.iterations
        twin = self._refinement_solver(refinement_backend(self.backend))
        if remaining <= 0 or twin is None:
            return loop.result(outcome)
        b = self.backend
        x64, z64, lam64 = twin.initial_state(
            b.to_numpy(outcome.x), b.to_numpy(outcome.z), b.to_numpy(outcome.lam)
        )
        loop64 = twin._make_loop(watch_stall=False)
        out64 = loop64.run(x64, z64, lam64, budget=remaining, callback=callback)
        result = loop64.result(out64)
        result.iterations += outcome.iterations
        if outcome.history is not None and out64.history is not None:
            merged = outcome.history
            for name in ("pres", "dres", "eps_prim", "eps_dual", "rho"):
                getattr(merged, name).extend(getattr(out64.history, name))
            result.history = merged
        timers = dict(outcome.timers)
        for key, val in result.timers.items():
            timers[key] = timers.get(key, 0.0) + val
        result.timers = timers
        result.algorithm = f"{self.algorithm_name} (fp32 + fp64 refinement)"
        return result

    # ------------------------------------------------------------------
    def measure_local_costs(self, repeats: int = 3, rho: float | None = None) -> np.ndarray:
        """Measured seconds of one authentic (interior-point) local solve per
        component — the benchmark's per-agent unit of work."""
        rho = self.config.rho if rho is None else rho
        rng = np.random.default_rng(0)
        costs = np.empty(len(self.components))
        for s, comp in enumerate(self.components):
            v = rng.standard_normal(comp.n_vars) * 0.1
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                solve_qp_box_eq(
                    rho * np.eye(comp.n_vars),
                    -rho * v,
                    comp.a,
                    comp.b,
                    comp.lb,
                    comp.ub,
                    tol=self.config.qp_tol,
                )
                best = min(best, time.perf_counter() - t0)
            costs[s] = best
        return costs
