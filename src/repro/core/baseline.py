"""The paper's benchmark: solver-based ADMM on model (8) (Section V-B).

Identical global and dual updates to Algorithm 1 — but the bound
constraints stay *inside* the component subproblems, so

* the global update is the **unclipped** minimizer ``x_hat`` of (10), and
* every local update must solve the box-constrained QP

      min 1/2 rho ||x_s||^2 + d_s^T x_s   s.t.  A_s x_s = b_s,
                                                lb_s <= x_s <= ub_s,

  which has no closed form and requires an optimization solver per
  component per iteration — the cost the paper's figures attribute to
  existing component-wise ADMM methods.

Two local execution modes:

* ``"interior_point"`` (default): the authentic path; calls the dense
  interior-point solver of :mod:`repro.qp` for every component, so measured
  wall time reflects real solver cost.
* ``"projection"``: a fast exact path (semismooth-Newton projection) that
  produces the *same iterate sequence* — used to count iterations on large
  instances where running thousands of solver-based iterations is
  impractical on this machine.  Timing benchmarks never use it.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.config import ADMMConfig
from repro.core.residuals import compute_residuals
from repro.core.results import ADMMResult, IterationHistory
from repro.core.solver_free import _raise_divergence
from repro.decomposition.decomposed import DecomposedOPF
from repro.qp.interior_point import solve_qp_box_eq
from repro.qp.projection import project_box_affine
from repro.telemetry import NULL_TRACER
from repro.utils.exceptions import ConvergenceError
from repro.utils.timing import PhaseTimer


class BenchmarkADMM:
    """Solver-based component ADMM (the paper's comparison baseline)."""

    algorithm_name = "benchmark ADMM (solver-based)"

    def __init__(
        self,
        dec: DecomposedOPF,
        config: ADMMConfig | None = None,
        local_mode: str = "interior_point",
        tracer=None,
    ):
        if local_mode not in ("interior_point", "projection"):
            raise ValueError(f"unknown local_mode {local_mode!r}")
        self.dec = dec
        self.config = config or ADMMConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.local_mode = local_mode
        lp = dec.lp
        self.n = lp.n_vars
        self.n_local = dec.n_local
        self.c = lp.cost
        self.gcols = dec.global_cols
        self.counts = dec.counts
        self.components = dec.components
        self.offsets = dec.offsets

    # ------------------------------------------------------------------
    def global_update(self, z: np.ndarray, lam: np.ndarray, rho: float) -> np.ndarray:
        """Unclipped x_hat of (10) — bounds live in the local subproblems."""
        scatter = np.bincount(self.gcols, weights=z - lam / rho, minlength=self.n)
        return (scatter - self.c / rho) / self.counts

    def solve_local(self, s: int, v_s: np.ndarray, rho: float) -> np.ndarray:
        """Solve component ``s``'s box-constrained QP for target ``v_s``."""
        comp = self.components[s]
        if self.local_mode == "projection":
            return project_box_affine(v_s, comp.a, comp.b, comp.lb, comp.ub)
        n_s = comp.n_vars
        result = solve_qp_box_eq(
            rho * np.eye(n_s),
            -rho * v_s,
            comp.a,
            comp.b,
            comp.lb,
            comp.ub,
            tol=self.config.qp_tol,
        )
        return result.x

    def local_update(self, bx: np.ndarray, lam: np.ndarray, rho: float) -> np.ndarray:
        v = bx + lam / rho
        z = np.empty(self.n_local)
        for s in range(len(self.components)):
            sl = self.dec.component_slice(s)
            z[sl] = self.solve_local(s, v[sl], rho)
        return z

    # ------------------------------------------------------------------
    def solve(
        self,
        x0: np.ndarray | None = None,
        z0: np.ndarray | None = None,
        lam0: np.ndarray | None = None,
        max_iter: int | None = None,
        callback=None,
    ) -> ADMMResult:
        """Run the benchmark ADMM until (16) holds or the budget is hit."""
        cfg = self.config
        budget = cfg.max_iter if max_iter is None else max_iter
        rho = cfg.rho
        x = self.dec.lp.initial_point() if x0 is None else np.asarray(x0, dtype=float).copy()
        z = x[self.gcols].copy() if z0 is None else np.asarray(z0, dtype=float).copy()
        lam = np.zeros(self.n_local) if lam0 is None else np.asarray(lam0, dtype=float).copy()
        history = IterationHistory() if cfg.record_history else None
        timers = PhaseTimer()
        tracer = self.tracer
        solve_span = tracer.span(
            "admm.solve",
            algorithm=self.algorithm_name,
            n_vars=self.n,
            local_mode=self.local_mode,
        )
        solve_span.__enter__()
        res = None
        iteration = 0
        best = None  # (iteration, x, z, lam, res) of the last finite state
        try:
            for iteration in range(1, budget + 1):
                t0 = time.perf_counter()
                x = self.global_update(z, lam, rho)
                t1 = time.perf_counter()
                bx = x[self.gcols]
                z_prev = z
                z = self.local_update(bx, lam, rho)
                t2 = time.perf_counter()
                lam = lam + rho * (bx - z)
                t3 = time.perf_counter()
                res = compute_residuals(bx, z, z_prev, lam, rho, cfg.eps_rel)
                t4 = time.perf_counter()
                timers.add("global", t1 - t0)
                timers.add("local", t2 - t1)
                timers.add("dual", t3 - t2)
                timers.add("residual", t4 - t3)
                if tracer:
                    tracer.add_complete("admm.global", t0, t1, cat="admm")
                    tracer.add_complete("admm.local", t1, t2, cat="admm")
                    tracer.add_complete("admm.dual", t2, t3, cat="admm")
                    tracer.add_complete("admm.residual", t3, t4, cat="admm")
                if cfg.divergence_guard:
                    if res.finite:
                        best = (iteration, x, z, lam, res)
                    else:
                        _raise_divergence(
                            self.algorithm_name, iteration, res, best,
                            self.c, history, timers,
                        )
                if history is not None:
                    history.append(res.pres, res.dres, res.eps_prim, res.eps_dual, rho)
                if callback is not None:
                    callback(iteration, x, z, lam, res)
                if res.converged:
                    break
        finally:
            solve_span.__exit__(None, None, None)
        converged = bool(res is not None and res.converged)
        if not converged and cfg.raise_on_max_iter:
            raise ConvergenceError(f"benchmark ADMM: no convergence in {budget} iterations")
        return ADMMResult(
            x=x,
            z=z,
            lam=lam,
            objective=float(self.c @ x),
            iterations=iteration,
            converged=converged,
            pres=res.pres if res else float("inf"),
            dres=res.dres if res else float("inf"),
            history=history,
            timers=timers.as_dict(),
            algorithm=self.algorithm_name,
        )

    # ------------------------------------------------------------------
    def measure_local_costs(self, repeats: int = 3, rho: float | None = None) -> np.ndarray:
        """Measured seconds of one authentic (interior-point) local solve per
        component — the benchmark's per-agent unit of work."""
        rho = self.config.rho if rho is None else rho
        rng = np.random.default_rng(0)
        costs = np.empty(len(self.components))
        for s, comp in enumerate(self.components):
            v = rng.standard_normal(comp.n_vars) * 0.1
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                solve_qp_box_eq(
                    rho * np.eye(comp.n_vars),
                    -rho * v,
                    comp.a,
                    comp.b,
                    comp.lb,
                    comp.ub,
                    tol=self.config.qp_tol,
                )
                best = min(best, time.perf_counter() - t0)
            costs[s] = best
        return costs
