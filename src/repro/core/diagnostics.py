"""Convergence diagnostics for distributed solves.

ADMM runs that stop on the relative criterion (16) can hide very different
solution qualities (see EXPERIMENTS.md); this module turns a finished
:class:`~repro.core.results.ADMMResult` into the quantities worth looking
at before trusting a dispatch:

* per-variable-kind consensus gaps (where do global and local copies still
  disagree — voltages? flows? load variables?),
* residual-trace health (tail slope, stall detection),
* a one-call :func:`convergence_report`.
"""

from __future__ import annotations

# Post-hoc host-side analytics over a *finished* solve: nothing here runs
# in the iteration hot path or on device arrays, so raw NumPy fp64 is the
# right tool and backend routing would add nothing.
# repro-lint: disable-file=R001,R003

from dataclasses import dataclass

import numpy as np

from repro.core.results import ADMMResult
from repro.decomposition.decomposed import DecomposedOPF


@dataclass(frozen=True)
class KindGap:
    """Consensus disagreement statistics for one variable kind."""

    kind: str
    n_copies: int
    max_gap: float
    rms_gap: float


def consensus_gaps_by_kind(dec: DecomposedOPF, result: ADMMResult) -> list[KindGap]:
    """Split ``|B x - z|`` by the variable kind of each local copy."""
    bx = result.x[dec.global_cols]
    gap = np.abs(bx - result.z)
    kinds = np.array([dec.lp.var_index.key_of(g)[0] for g in dec.global_cols])
    out: list[KindGap] = []
    for kind in sorted(set(kinds)):
        mask = kinds == kind
        g = gap[mask]
        out.append(
            KindGap(
                kind=kind,
                n_copies=int(mask.sum()),
                max_gap=float(g.max()),
                rms_gap=float(np.sqrt(np.mean(g**2))),
            )
        )
    return out


def residual_tail_slope(values, window: int = 100) -> float:
    """Log-linear slope of the last ``window`` residuals per iteration.

    Negative = still improving; ~0 = stalled.  Returns 0 for short traces.
    """
    v = np.asarray(values, dtype=float)
    v = v[-window:]
    v = v[v > 0]
    if v.size < 3:
        return 0.0
    y = np.log(v)
    t = np.arange(y.size, dtype=float)
    slope = float(np.polyfit(t, y, 1)[0])
    return slope


def is_stalled(result: ADMMResult, window: int = 200, tol: float = 1e-5) -> bool:
    """True if both residual traces stopped improving over the tail window.

    Raises
    ------
    ValueError
        If the result carries no history.
    """
    if result.history is None:
        raise ValueError("stall detection needs record_history=True")
    sp = residual_tail_slope(result.history.pres, window)
    sd = residual_tail_slope(result.history.dres, window)
    return sp > -tol and sd > -tol


def convergence_report(dec: DecomposedOPF, result: ADMMResult) -> dict:
    """One-call solution-quality summary."""
    lp = dec.lp
    report = {
        "algorithm": result.algorithm,
        "converged": result.converged,
        "iterations": result.iterations,
        "objective": result.objective,
        "pres": result.pres,
        "dres": result.dres,
        "equality_violation": lp.equality_violation(result.x),
        "bound_violation": lp.bound_violation(result.x),
        "worst_consensus_kind": None,
        "stalled": None,
    }
    gaps = consensus_gaps_by_kind(dec, result)
    worst = max(gaps, key=lambda g: g.max_gap)
    report["worst_consensus_kind"] = f"{worst.kind} (max {worst.max_gap:.2e})"
    if result.history is not None:
        report["stalled"] = is_stalled(result)
    return report
