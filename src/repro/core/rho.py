"""Residual balancing (the acceleration pointer [29] of Section III-D).

Keeps the primal and dual residuals within a factor ``mu`` of each other by
multiplying / dividing ``rho`` by ``tau``.  In the solver-free algorithm the
precomputed projection operators are *independent of rho* (see
``repro.core.batch``), so adapting rho costs nothing — one of the nice
structural consequences of isolating the bound constraints at the global
level.  Shipped as an opt-in ablation; the paper's headline runs keep rho
fixed at 100.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ResidualBalancer:
    """Multiplicative rho adaptation triggered by residual imbalance.

    Residuals are compared after normalization by their tolerances from
    (16), following the *relative* residual-balancing recommendation of
    [29]: raw ``dres`` carries an explicit factor of rho, so comparing raw
    values creates a positive feedback loop (shrinking rho shrinks dres,
    which asks for more shrinking) that collapses rho on LPs.
    """

    mu: float = 10.0
    tau: float = 2.0
    every: int = 50
    rho_min: float = 1e-4
    rho_max: float = 1e8
    #: Adaptation budget: rho freezes after this many changes so the tail of
    #: the run is plain fixed-rho ADMM (whose convergence is guaranteed);
    #: unbounded adaptation can oscillate forever on LPs.
    max_adaptations: int = 10
    _adaptations: int = 0

    def reset(self) -> None:
        """Restore the adaptation budget (call at the start of each solve)."""
        self._adaptations = 0

    def adapt(
        self,
        rho: float,
        iteration: int,
        pres: float,
        dres: float,
        eps_prim: float = 1.0,
        eps_dual: float = 1.0,
    ) -> float:
        """Return the (possibly updated) rho for the next iteration."""
        if self.every <= 0 or iteration % self.every != 0:
            return rho
        if self._adaptations >= self.max_adaptations:
            return rho
        rel_p = pres / max(eps_prim, 1e-300)
        rel_d = dres / max(eps_dual, 1e-300)
        new_rho = rho
        if rel_p > self.mu * rel_d:
            new_rho = min(rho * self.tau, self.rho_max)
        elif rel_d > self.mu * rel_p:
            new_rho = max(rho / self.tau, self.rho_min)
        if new_rho != rho:
            self._adaptations += 1
        return new_rho
