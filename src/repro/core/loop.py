"""The one ADMM iteration engine every solver variant runs on.

Historically each variant — solver-free, solver-based benchmark,
compressed-upload, differentially private, conic, the two simulated-MPI
runners and the serving engine's stacked batch solve — re-implemented the
same iteration skeleton:

    global update -> gather B x -> (over-relax) -> local update
        -> dual update -> residuals (16) -> guard / history / callback
        -> termination -> rho balancing

:class:`ADMMLoop` owns that skeleton exactly once.  Variants are thin
:class:`IterationStrategy` objects that supply the update rules (and
optional hooks for per-iteration bookkeeping such as virtual-clock
timelines or consensus checkpoints); the engine owns control flow,
divergence guarding with best-so-far capture, phase timing, telemetry
spans, iteration history, residual balancing, and the mixed-precision
stall watch that triggers the fp64 refinement fallback.

All array work flows through a :class:`repro.backend.Backend`, so the
same engine runs fp64 NumPy (bit-identical to the historical loops),
fp32 with fp64 residual accumulation, or CuPy.
"""

from __future__ import annotations

import contextlib
import time

from repro.backend import Backend, resolve_backend
from repro.core.config import ADMMConfig
from repro.core.residuals import Residuals, compute_residuals
from repro.core.results import ADMMResult, IterationHistory
from repro.core.rho import ResidualBalancer
from repro.telemetry import NULL_TRACER
from repro.utils.exceptions import ConvergenceError, DivergenceError
from repro.utils.timing import PhaseTimer


def truncate_history(history: IterationHistory | None, n: int) -> None:
    """Drop entries beyond iteration ``n`` (checkpoint rewind support)."""
    if history is None:
        return
    for name in ("pres", "dres", "eps_prim", "eps_dual", "rho"):
        del getattr(history, name)[n:]


class RewindSignal(Exception):
    """Raised from a strategy update hook to rewind the loop.

    Carries the iteration number and the consensus state ``(z, lam)`` to
    resume from; the engine truncates the history accordingly and
    continues.  Used by the fault-tolerant runner to replay from the last
    checkpoint after a failover.
    """

    def __init__(self, iteration: int, z, lam):
        super().__init__(f"rewind to iteration {iteration}")
        self.iteration = int(iteration)
        self.z = z
        self.lam = lam


class LoopOutcome:
    """Raw outcome of :meth:`ADMMLoop.run` (pre-:class:`ADMMResult`)."""

    __slots__ = ("x", "z", "lam", "res", "iterations", "converged", "stalled",
                 "history", "timers")

    def __init__(self, x, z, lam, res, iterations, converged, stalled,
                 history, timers):
        self.x = x
        self.z = z
        self.lam = lam
        self.res = res
        self.iterations = iterations
        self.converged = converged
        self.stalled = stalled
        self.history = history
        self.timers = timers


class IterationStrategy:
    """Update rules + hooks one ADMM variant plugs into :class:`ADMMLoop`.

    Concrete strategies must provide :meth:`global_step` and
    :meth:`local_step` (or the fused :attr:`local_dual_step`) and set
    the attributes ``algorithm_name``, ``gcols`` (the consensus gather
    index), ``c`` (the cost vector) and ``backend``.
    """

    algorithm_name = "ADMM"
    #: Honor ``config.relaxation`` (the benchmark baseline never did).
    use_relaxation = True
    #: Honor ``config.residual_balancing`` (fixed-rho variants opt out).
    supports_balancing = True
    #: Honor ``config.divergence_guard`` (variants that handle non-finite
    #: iterates themselves, like the stacked serving solve, opt out).
    guard_enabled = True
    #: Set to a callable to replace the engine's residual computation.
    residuals = None
    #: Set to a callable ``(bx_eff, z_prev, lam, rho) -> (z, lam)`` to fuse
    #: the local and dual updates (rank-explicit runners do both per rank).
    local_dual_step = None

    backend: Backend
    gcols = None
    c = None

    # -- update rules ---------------------------------------------------
    def global_step(self, z, lam, rho):
        raise NotImplementedError

    def gather(self, x):
        """``B x`` — the consensus gather."""
        return x[self.gcols]

    def local_step(self, bx_eff, z_prev, lam, rho):
        raise NotImplementedError

    def dual_step(self, lam, bx_eff, z, rho):
        """Eq. (19)."""
        return lam + rho * (bx_eff - z)

    def objective(self, x) -> float:
        """Cost of a (possibly fp32 / device) solution, fp64-accumulated."""
        return self.backend.dot(self.c, x)

    # -- hooks ----------------------------------------------------------
    def span_args(self) -> dict:
        """Extra attributes for the ``admm.solve`` telemetry span."""
        return {}

    def on_iteration_start(self, iteration: int, z, lam, rho):
        """Called before the global update; may transform ``(z, lam)``."""
        return z, lam

    def after_residuals(self, iteration: int, res) -> None:
        """Called after the residual test (timelines, barriers)."""

    def on_iteration_continue(self, iteration: int, z, lam, rho) -> None:
        """Called when the loop continues past ``iteration`` (checkpoints)."""

    def final_timers(self, timers: dict) -> dict:
        """Map the engine's phase timers to the result's ``timers`` dict."""
        return timers

    def final_algorithm_name(self) -> str:
        return self.algorithm_name


class ADMMLoop:
    """The shared iteration engine.

    Parameters
    ----------
    strategy:
        The variant's update rules and hooks.
    config:
        ADMM hyper-parameters.
    backend:
        Array-execution backend; defaults to the strategy's.
    tracer:
        Optional telemetry tracer (``admm.solve`` + per-phase spans).
    record_timers:
        Accumulate wall time per phase (serial solvers do; the simulated
        runners charge virtual clocks instead).
    phase_spans:
        Emit ``admm.{global,local,dual,residual}`` spans when the tracer
        is enabled (rank-explicit runners emit per-rank spans instead).
    watch_stall:
        Arm the mixed-precision stall watch when the backend's policy has
        refinement enabled; a stalled run breaks with ``stalled=True`` so
        the caller can continue under an fp64 backend.
    """

    def __init__(
        self,
        strategy: IterationStrategy,
        config: ADMMConfig,
        *,
        backend: Backend | None = None,
        tracer=None,
        record_timers: bool = True,
        phase_spans: bool = True,
        record_history: bool | None = None,
        watch_stall: bool = True,
        balancer: ResidualBalancer | None = None,
    ):
        self.strategy = strategy
        self.config = config
        self.backend = backend if backend is not None else resolve_backend(
            getattr(strategy, "backend", None)
        )
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.record_timers = record_timers
        self.phase_spans = phase_spans
        self.record_history = (
            config.record_history if record_history is None else record_history
        )
        self.watch_stall = watch_stall
        self.balancer = balancer

    # ------------------------------------------------------------------
    def _default_residuals(self, bx, z, z_prev, lam, rho) -> Residuals:
        """Eq. (16) with norms accumulated per the backend's policy."""
        return compute_residuals(
            bx, z, z_prev, lam, rho, self.config.eps_rel, backend=self.backend
        )

    def _raise_divergence(self, iteration, res, best, history, timers) -> None:
        """Build the best-so-far result and raise :class:`DivergenceError`.

        ``best`` is ``(iteration, x, z, lam, res)`` from the last iteration
        whose state was entirely finite, or ``None``.
        """
        strat = self.strategy
        b = self.backend
        result = None
        if best is not None:
            b_iter, b_x, b_z, b_lam, b_res = best
            result = ADMMResult(
                x=b.to_numpy(b_x),
                z=b.to_numpy(b_z),
                lam=b.to_numpy(b_lam),
                objective=strat.objective(b_x),
                iterations=b_iter,
                converged=False,
                pres=b_res.pres,
                dres=b_res.dres,
                history=history,
                timers=strat.final_timers(timers.as_dict() if timers else {}),
                algorithm=strat.final_algorithm_name(),
            )
        raise DivergenceError(
            f"{strat.algorithm_name}: non-finite iterate at iteration {iteration} "
            f"(pres {res.pres}, dres {res.dres}); "
            f"best finite state is iteration {best[0] if best else 0}",
            iteration=iteration,
            pres=res.pres,
            dres=res.dres,
            result=result,
        )

    # ------------------------------------------------------------------
    def run(self, x, z, lam, *, budget: int | None = None,
            rho: float | None = None, callback=None) -> LoopOutcome:
        """Iterate until (16) holds, the budget runs out, a non-finite
        iterate trips the guard, or the mixed-precision stall watch fires.
        """
        cfg = self.config
        strat = self.strategy
        budget = cfg.max_iter if budget is None else budget
        rho = cfg.rho if rho is None else rho
        relax = cfg.relaxation if strat.use_relaxation else 1.0
        history = IterationHistory() if self.record_history else None
        timers = PhaseTimer() if self.record_timers else None
        tracer = self.tracer
        balancing = (
            cfg.residual_balancing
            and strat.supports_balancing
            and self.balancer is not None
        )
        policy = self.backend.policy
        stall_watch = self.watch_stall and policy.refine
        stall_best = None  # running best of the stall metric
        stall_best_at_check = None  # its value at the previous check
        fused = strat.local_dual_step is not None
        guard = cfg.divergence_guard and strat.guard_enabled
        spans = self.phase_spans
        # perf_counter stamps feed the phase timers and/or the phase spans.
        res = None
        iteration = 0
        best = None  # (iteration, x, z, lam, res) of the last finite state
        stalled = False
        with (
            tracer.span(
                "admm.solve",
                algorithm=strat.algorithm_name,
                backend=self.backend.name,
                precision=policy.name,
                **strat.span_args(),
            )
            if spans
            else contextlib.nullcontext()
        ):
            while iteration < budget:
                iteration += 1
                z, lam = strat.on_iteration_start(iteration, z, lam, rho)
                stamp = self.record_timers or (spans and tracer)
                try:
                    t0 = time.perf_counter() if stamp else 0.0
                    x = strat.global_step(z, lam, rho)
                    t1 = time.perf_counter() if stamp else 0.0
                    bx = strat.gather(x)
                    z_prev = z
                    # Over-relaxation (alpha = 1 is the plain algorithm).
                    bx_eff = bx if relax == 1.0 else (
                        relax * bx + (1.0 - relax) * z_prev
                    )
                    if fused:
                        z, lam = strat.local_dual_step(bx_eff, z_prev, lam, rho)
                        t2 = t3 = time.perf_counter() if stamp else 0.0
                    else:
                        z = strat.local_step(bx_eff, z_prev, lam, rho)
                        t2 = time.perf_counter() if stamp else 0.0
                        lam = strat.dual_step(lam, bx_eff, z, rho)
                        t3 = time.perf_counter() if stamp else 0.0
                except RewindSignal as rewind:
                    z, lam = rewind.z, rewind.lam
                    truncate_history(history, rewind.iteration)
                    iteration = rewind.iteration
                    continue
                if strat.residuals is not None:
                    res = strat.residuals(iteration, x, bx, z, z_prev, lam, rho)
                else:
                    res = self._default_residuals(bx, z, z_prev, lam, rho)
                t4 = time.perf_counter() if stamp else 0.0
                if timers is not None:
                    timers.add("global", t1 - t0)
                    timers.add("local", t2 - t1)
                    timers.add("dual", t3 - t2)
                    timers.add("residual", t4 - t3)
                if spans and tracer:
                    tracer.add_complete("admm.global", t0, t1, cat="admm")
                    tracer.add_complete("admm.local", t1, t2, cat="admm")
                    tracer.add_complete("admm.dual", t2, t3, cat="admm")
                    tracer.add_complete("admm.residual", t3, t4, cat="admm")
                if guard:
                    if res.finite:
                        # Updates never mutate x/z/lam in place, so keeping
                        # references (no copies) is safe.
                        best = (iteration, x, z, lam, res)
                    else:
                        self._raise_divergence(iteration, res, best, history, timers)
                strat.after_residuals(iteration, res)
                if history is not None:
                    history.append(res.pres, res.dres, res.eps_prim, res.eps_dual, rho)
                if callback is not None:
                    callback(iteration, x, z, lam, res)
                if res.converged:
                    break
                if balancing:
                    rho = self.balancer.adapt(
                        rho, iteration, res.pres, res.dres, res.eps_prim, res.eps_dual
                    )
                strat.on_iteration_continue(iteration, z, lam, rho)
                if stall_watch:
                    # ADMM residuals oscillate, so single-iterate
                    # comparisons would routinely flag healthy runs; the
                    # watch tracks the *running best* of the worst
                    # residual-to-tolerance ratio and fires only when a
                    # whole check window fails to improve it.
                    metric = max(
                        res.pres / max(res.eps_prim, 1e-300),
                        res.dres / max(res.eps_dual, 1e-300),
                    )
                    if stall_best is None or metric < stall_best:
                        stall_best = metric
                    if (
                        iteration >= policy.refine_after
                        and iteration % policy.refine_check_every == 0
                    ):
                        if stall_best_at_check is not None and stall_best > 1.0:
                            progress = (
                                stall_best_at_check - stall_best
                            ) / stall_best_at_check
                            if progress < policy.refine_min_progress:
                                stalled = True
                                break
                        stall_best_at_check = stall_best
        converged = bool(res is not None and res.converged)
        if not converged and not stalled and cfg.raise_on_max_iter:
            detail = ""
            if res is not None:
                detail = (
                    f" (pres {res.pres:.2e} vs {res.eps_prim:.2e}, "
                    f"dres {res.dres:.2e} vs {res.eps_dual:.2e})"
                )
            raise ConvergenceError(
                f"{strat.algorithm_name}: no convergence in {budget} iterations"
                + detail
            )
        return LoopOutcome(
            x=x, z=z, lam=lam, res=res, iterations=iteration,
            converged=converged, stalled=stalled, history=history,
            timers=timers.as_dict() if timers is not None else {},
        )

    # ------------------------------------------------------------------
    def result(self, outcome: LoopOutcome) -> ADMMResult:
        """Package a :class:`LoopOutcome` as the public :class:`ADMMResult`
        (host fp64 arrays, whatever the execution backend was)."""
        strat = self.strategy
        b = self.backend
        res = outcome.res
        return ADMMResult(
            x=b.to_numpy(outcome.x),
            z=b.to_numpy(outcome.z),
            lam=b.to_numpy(outcome.lam),
            objective=strat.objective(outcome.x),
            iterations=outcome.iterations,
            converged=outcome.converged,
            pres=res.pres if res else float("inf"),
            dres=res.dres if res else float("inf"),
            history=outcome.history,
            timers=strat.final_timers(outcome.timers),
            algorithm=strat.final_algorithm_name(),
        )
