"""ADMM configuration shared by the solver-free and benchmark algorithms."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass
class ADMMConfig:
    """Hyper-parameters of Algorithm 1 and the benchmark ADMM.

    The defaults are the paper's experimental settings (Section V-A):
    ``rho = 100`` and ``eps_rel = 1e-3``.

    Attributes
    ----------
    rho:
        Augmented-Lagrangian penalty (rho > 0).
    eps_rel:
        Relative tolerance in the termination criterion (16).
    max_iter:
        Iteration budget; hitting it returns ``converged=False`` (or raises
        if ``raise_on_max_iter``).
    record_history:
        Store per-iteration primal/dual residuals (needed for Fig. 2).
    residual_balancing:
        Enable the rho-adaptation acceleration of [29] (ablation feature;
        off by default, the paper's experiments keep rho fixed).
    balancing_mu, balancing_tau:
        Balancing trigger ratio and multiplicative rho step.
    balancing_every:
        Only adapt rho every this many iterations.
    relaxation:
        Over-relaxation parameter alpha in (0, 2): the local/dual updates
        see ``alpha * B x + (1 - alpha) * z_prev`` instead of ``B x``.
        1.0 reproduces Algorithm 1 exactly; 1.5-1.8 is the classical
        acceleration range (an alternative to the paper's cited
        acceleration pointers, shipped as an ablation).
    divergence_guard:
        Raise :class:`~repro.utils.exceptions.DivergenceError` as soon as
        an iterate goes non-finite (NaN/inf) instead of silently burning
        the remaining budget.  The check is two scalar ``isfinite`` tests
        per iteration on residual norms already being computed, so the
        clean-path cost is negligible (benchmarked in
        ``bench_resilience_overhead.py``).
    qp_tol:
        (Benchmark only) KKT tolerance of the per-component QP solves.
    """

    rho: float = 100.0
    eps_rel: float = 1e-3
    max_iter: int = 100_000
    relaxation: float = 1.0
    divergence_guard: bool = True
    record_history: bool = True
    raise_on_max_iter: bool = False
    residual_balancing: bool = False
    balancing_mu: float = 10.0
    balancing_tau: float = 2.0
    balancing_every: int = 50
    qp_tol: float = 1e-9

    def __post_init__(self) -> None:
        if self.rho <= 0:
            raise ValueError("rho must be positive")
        if self.eps_rel <= 0:
            raise ValueError("eps_rel must be positive")
        if self.max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        if self.balancing_mu <= 1 or self.balancing_tau <= 1:
            raise ValueError("balancing parameters must exceed 1")
        if not 0.0 < self.relaxation < 2.0:
            raise ValueError("relaxation must lie in (0, 2)")
