"""The paper's core contribution: solver-free ADMM (Algorithm 1).

One iteration consists of three closed-form stages over the stacked
consensus structure of Section IV-C:

* **global update** (13)/(18): a scatter-add of the local solutions and
  duals, a diagonal scaling by the copy counts ``diag(B^T B)``, and a clip
  to the global bounds — the *only* place the bound constraints (9d) live;
* **local update** (15): one batched affine projection per component
  (``repro.core.batch``), replacing the per-component QP solver of the
  benchmark with a matrix-vector product;
* **dual update** (12)/(19).

Termination follows the relative primal/dual criterion (16).  The
iteration skeleton itself lives in :class:`repro.core.loop.ADMMLoop`;
this class supplies Algorithm 1's update rules and runs on any
:class:`repro.backend.Backend` — fp64 NumPy (default, bit-identical to
the historical implementation), fp32 with the automatic fp64-refinement
fallback, or CuPy.  Warm starting from a previous result is supported,
which the dynamic-topology examples rely on.
"""

from __future__ import annotations

import time

import numpy as np

from repro.backend import refinement_backend, resolve_backend
from repro.core.batch import BatchedLocalSolver
from repro.core.config import ADMMConfig
from repro.core.loop import ADMMLoop, IterationStrategy, LoopOutcome
from repro.core.results import ADMMResult
from repro.core.rho import ResidualBalancer
from repro.decomposition.decomposed import DecomposedOPF
from repro.telemetry import NULL_TRACER


class SolverFreeADMM(IterationStrategy):
    """Algorithm 1 on a decomposed OPF model.

    Parameters
    ----------
    dec:
        The decomposed model (9).
    config:
        Hyper-parameters; defaults to the paper's settings.
    tracer:
        Optional :class:`repro.telemetry.Tracer`; when enabled, every
        iteration's global/local/dual/residual phases become spans (from
        the ``perf_counter`` stamps the phase timers take anyway).
    backend:
        Array-execution backend (instance or registry name); defaults to
        the process default (``$REPRO_BACKEND`` or ``numpy64``).
    precision:
        Optional ``fp64`` / ``fp32`` / ``mixed`` overlay on the backend's
        dtype policy.

    Examples
    --------
    >>> from repro.feeders import ieee13
    >>> from repro.formulation import build_centralized_lp
    >>> from repro.decomposition import decompose
    >>> lp = build_centralized_lp(ieee13())
    >>> result = SolverFreeADMM(decompose(lp)).solve()
    >>> result.converged
    True
    """

    algorithm_name = "solver-free ADMM"
    #: Mixed-precision runs may continue a stalled fp32 solve in fp64;
    #: variants with solver state the continuation cannot reconstruct
    #: (compression codecs, privacy accountants) opt out.
    refinement_supported = True

    def __init__(
        self,
        dec: DecomposedOPF,
        config: ADMMConfig | None = None,
        tracer=None,
        backend=None,
        precision: str | None = None,
    ):
        self.dec = dec
        self.config = config or ADMMConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.backend = resolve_backend(backend, precision)
        b = self.backend
        lp = dec.lp
        self.n = lp.n_vars
        self.n_local = dec.n_local
        self.c = b.asarray(lp.cost)
        self.lb = b.asarray(lp.lb)
        self.ub = b.asarray(lp.ub)
        self.gcols = b.index_array(dec.global_cols)
        self.counts = b.asarray(dec.counts)
        # Precomputation (Algorithm 1, lines 2-3): rho-independent.
        self.local_solver = BatchedLocalSolver.from_decomposition(dec, backend=b)
        self._balancer = ResidualBalancer(
            mu=self.config.balancing_mu,
            tau=self.config.balancing_tau,
            every=self.config.balancing_every,
        )

    # ------------------------------------------------------------------
    # Update stages (exposed individually for tests and instrumentation)
    # ------------------------------------------------------------------
    def global_update(self, z, lam, rho: float):
        """Eq. (18): closed-form bound-projected global minimizer."""
        b = self.backend
        scatter = b.scatter_add(self.gcols, z - lam / rho, self.n)
        xhat = (scatter - self.c / rho) / self.counts
        return b.clip(xhat, self.lb, self.ub)

    def local_update(self, bx, lam, rho: float):
        """Eq. (15): batched projection of ``v = B x + lam / rho``."""
        return self.local_solver.solve(bx + lam / rho)

    def dual_update(self, lam, bx, z, rho: float):
        """Eq. (19)."""
        return lam + rho * (bx - z)

    # ------------------------------------------------------------------
    # Engine hooks (repro.core.loop) — delegate to the public stages
    # ------------------------------------------------------------------
    def global_step(self, z, lam, rho):
        return self.global_update(z, lam, rho)

    def local_step(self, bx_eff, z_prev, lam, rho):
        return self.local_update(bx_eff, lam, rho)

    def dual_step(self, lam, bx_eff, z, rho):
        return self.dual_update(lam, bx_eff, z, rho)

    def span_args(self) -> dict:
        return {"n_vars": self.n, "n_components": self.dec.n_components}

    # ------------------------------------------------------------------
    def initial_state(
        self,
        x0=None,
        z0=None,
        lam0=None,
    ):
        """Paper's initialization (line 1), or a warm start if given."""
        b = self.backend
        x = (
            b.from_numpy(self.dec.lp.initial_point())
            if x0 is None
            else b.asarray(x0, copy=True)
        )
        if x.shape != (self.n,):
            raise ValueError("warm-start vectors have inconsistent shapes")
        z = x[self.gcols].copy() if z0 is None else b.asarray(z0, copy=True)
        lam = b.zeros(self.n_local) if lam0 is None else b.asarray(lam0, copy=True)
        if z.shape != (self.n_local,) or lam.shape != (self.n_local,):
            raise ValueError("warm-start vectors have inconsistent shapes")
        return x, z, lam

    def _make_loop(self, *, watch_stall: bool = True) -> ADMMLoop:
        return ADMMLoop(
            self,
            self.config,
            backend=self.backend,
            tracer=self.tracer,
            balancer=self._balancer,
            watch_stall=watch_stall,
        )

    def solve(
        self,
        x0=None,
        z0=None,
        lam0=None,
        max_iter: int | None = None,
        callback=None,
    ) -> ADMMResult:
        """Run Algorithm 1 until (16) holds or the iteration budget is hit.

        Parameters
        ----------
        x0, z0, lam0:
            Optional warm start (e.g. the previous :class:`ADMMResult`'s
            ``x``, ``z``, ``lam`` after a topology change).
        max_iter:
            Override the configured budget.
        callback:
            Optional ``callback(iteration, x, z, lam, residuals)`` invoked
            every iteration (used by instrumented benchmark runs).

        Raises
        ------
        ConvergenceError
            Only if ``config.raise_on_max_iter`` and the budget is exhausted.
        DivergenceError
            If ``config.divergence_guard`` and an iterate goes non-finite;
            the error carries the best (last finite) state as ``result``.

        Notes
        -----
        Under a backend whose precision policy enables refinement (the
        ``numpy32`` default), a solve whose relative residuals stall above
        tolerance is continued in fp64, warm-started from the fp32
        iterate; the returned result merges both segments.
        """
        cfg = self.config
        budget = cfg.max_iter if max_iter is None else max_iter
        x, z, lam = self.initial_state(x0, z0, lam0)
        self._balancer.reset()
        loop = self._make_loop()
        outcome = loop.run(x, z, lam, budget=budget, callback=callback)
        if outcome.stalled and self.refinement_supported:
            return self._refine(loop, outcome, budget, callback)
        return loop.result(outcome)

    # ------------------------------------------------------------------
    def _refinement_solver(self, backend) -> "SolverFreeADMM | None":
        """An fp64 twin of this solver for the refinement continuation."""
        return type(self)(self.dec, self.config, tracer=self.tracer, backend=backend)

    def _refine(
        self, loop: ADMMLoop, outcome: LoopOutcome, budget: int, callback
    ) -> ADMMResult:
        """Continue a stalled low-precision solve in fp64.

        Classic ADMM-level iterative refinement: the fp32 iterate is a
        good warm start, and the fp64 continuation recovers the digits
        fp32 rounding cannot represent.
        """
        remaining = budget - outcome.iterations
        twin = self._refinement_solver(refinement_backend(self.backend))
        if remaining <= 0 or twin is None:
            return loop.result(outcome)
        b = self.backend
        x64, z64, lam64 = twin.initial_state(
            b.to_numpy(outcome.x), b.to_numpy(outcome.z), b.to_numpy(outcome.lam)
        )
        twin._balancer.reset()
        loop64 = twin._make_loop(watch_stall=False)
        out64 = loop64.run(x64, z64, lam64, budget=remaining, callback=callback)
        result = loop64.result(out64)
        result.iterations += outcome.iterations
        if outcome.history is not None and out64.history is not None:
            merged = outcome.history
            for name in ("pres", "dres", "eps_prim", "eps_dual", "rho"):
                getattr(merged, name).extend(getattr(out64.history, name))
            result.history = merged
        timers = dict(outcome.timers)
        for key, val in result.timers.items():
            timers[key] = timers.get(key, 0.0) + val
        result.timers = timers
        result.algorithm = f"{self.algorithm_name} (fp32 + fp64 refinement)"
        return result

    # ------------------------------------------------------------------
    # Instrumentation for the parallel/GPU performance studies
    # ------------------------------------------------------------------
    def measure_local_costs(self, repeats: int = 5) -> np.ndarray:
        """Measured wall seconds of one *un-batched* local update per
        component (the unit of work a CPU agent performs each iteration).

        Used by the simulated cluster to replay per-rank compute time.
        """
        rng = np.random.default_rng(0)
        costs = np.empty(self.dec.n_components)
        for s in range(self.dec.n_components):
            n_s = int(self.local_solver.sizes[s])
            v = rng.standard_normal(n_s)
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                self.local_solver.solve_one(s, v)
                best = min(best, time.perf_counter() - t0)
            costs[s] = best
        return costs
