"""The paper's core contribution: solver-free ADMM (Algorithm 1).

One iteration consists of three closed-form stages over the stacked
consensus structure of Section IV-C:

* **global update** (13)/(18): a scatter-add of the local solutions and
  duals, a diagonal scaling by the copy counts ``diag(B^T B)``, and a clip
  to the global bounds — the *only* place the bound constraints (9d) live;
* **local update** (15): one batched affine projection per component
  (``repro.core.batch``), replacing the per-component QP solver of the
  benchmark with a matrix-vector product;
* **dual update** (12)/(19).

Termination follows the relative primal/dual criterion (16).  The
implementation is fully vectorized over components — the NumPy equivalent
of the paper's CUDA kernels — and supports warm starting from a previous
result, which the dynamic-topology examples rely on.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.batch import BatchedLocalSolver
from repro.core.config import ADMMConfig
from repro.core.residuals import compute_residuals
from repro.core.results import ADMMResult, IterationHistory
from repro.core.rho import ResidualBalancer
from repro.decomposition.decomposed import DecomposedOPF
from repro.telemetry import NULL_TRACER
from repro.utils.exceptions import ConvergenceError, DivergenceError
from repro.utils.timing import PhaseTimer


def _raise_divergence(
    algorithm: str,
    iteration: int,
    res,
    best: tuple | None,
    cost: np.ndarray,
    history,
    timers,
) -> None:
    """Build the best-so-far result and raise :class:`DivergenceError`.

    ``best`` is ``(iteration, x, z, lam, res)`` from the last iteration whose
    state was entirely finite, or ``None`` if divergence hit immediately.
    Shared by the solver-free and benchmark ADMM loops.
    """
    result = None
    if best is not None:
        b_iter, b_x, b_z, b_lam, b_res = best
        result = ADMMResult(
            x=b_x,
            z=b_z,
            lam=b_lam,
            objective=float(cost @ b_x),
            iterations=b_iter,
            converged=False,
            pres=b_res.pres,
            dres=b_res.dres,
            history=history,
            timers=timers.as_dict(),
            algorithm=algorithm,
        )
    raise DivergenceError(
        f"{algorithm}: non-finite iterate at iteration {iteration} "
        f"(pres {res.pres}, dres {res.dres}); "
        f"best finite state is iteration {best[0] if best else 0}",
        iteration=iteration,
        pres=res.pres,
        dres=res.dres,
        result=result,
    )


class SolverFreeADMM:
    """Algorithm 1 on a decomposed OPF model.

    Parameters
    ----------
    dec:
        The decomposed model (9).
    config:
        Hyper-parameters; defaults to the paper's settings.
    tracer:
        Optional :class:`repro.telemetry.Tracer`; when enabled, every
        iteration's global/local/dual/residual phases become spans (from
        the ``perf_counter`` stamps the phase timers take anyway).

    Examples
    --------
    >>> from repro.feeders import ieee13
    >>> from repro.formulation import build_centralized_lp
    >>> from repro.decomposition import decompose
    >>> lp = build_centralized_lp(ieee13())
    >>> result = SolverFreeADMM(decompose(lp)).solve()
    >>> result.converged
    True
    """

    algorithm_name = "solver-free ADMM"

    def __init__(
        self,
        dec: DecomposedOPF,
        config: ADMMConfig | None = None,
        tracer=None,
    ):
        self.dec = dec
        self.config = config or ADMMConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        lp = dec.lp
        self.n = lp.n_vars
        self.n_local = dec.n_local
        self.c = lp.cost
        self.lb = lp.lb
        self.ub = lp.ub
        self.gcols = dec.global_cols
        self.counts = dec.counts
        # Precomputation (Algorithm 1, lines 2-3): rho-independent.
        self.local_solver = BatchedLocalSolver.from_decomposition(dec)
        self._balancer = ResidualBalancer(
            mu=self.config.balancing_mu,
            tau=self.config.balancing_tau,
            every=self.config.balancing_every,
        )

    # ------------------------------------------------------------------
    # Update stages (exposed individually for tests and instrumentation)
    # ------------------------------------------------------------------
    def global_update(self, z: np.ndarray, lam: np.ndarray, rho: float) -> np.ndarray:
        """Eq. (18): closed-form bound-projected global minimizer."""
        scatter = np.bincount(self.gcols, weights=z - lam / rho, minlength=self.n)
        xhat = (scatter - self.c / rho) / self.counts
        return np.clip(xhat, self.lb, self.ub)

    def local_update(self, bx: np.ndarray, lam: np.ndarray, rho: float) -> np.ndarray:
        """Eq. (15): batched projection of ``v = B x + lam / rho``."""
        return self.local_solver.solve(bx + lam / rho)

    def dual_update(
        self, lam: np.ndarray, bx: np.ndarray, z: np.ndarray, rho: float
    ) -> np.ndarray:
        """Eq. (19)."""
        return lam + rho * (bx - z)

    # ------------------------------------------------------------------
    def initial_state(
        self,
        x0: np.ndarray | None = None,
        z0: np.ndarray | None = None,
        lam0: np.ndarray | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Paper's initialization (line 1), or a warm start if given."""
        x = self.dec.lp.initial_point() if x0 is None else np.asarray(x0, dtype=float).copy()
        if x.shape != (self.n,):
            raise ValueError("warm-start vectors have inconsistent shapes")
        z = x[self.gcols].copy() if z0 is None else np.asarray(z0, dtype=float).copy()
        lam = (
            np.zeros(self.n_local) if lam0 is None else np.asarray(lam0, dtype=float).copy()
        )
        if z.shape != (self.n_local,) or lam.shape != (self.n_local,):
            raise ValueError("warm-start vectors have inconsistent shapes")
        return x, z, lam

    def solve(
        self,
        x0: np.ndarray | None = None,
        z0: np.ndarray | None = None,
        lam0: np.ndarray | None = None,
        max_iter: int | None = None,
        callback=None,
    ) -> ADMMResult:
        """Run Algorithm 1 until (16) holds or the iteration budget is hit.

        Parameters
        ----------
        x0, z0, lam0:
            Optional warm start (e.g. the previous :class:`ADMMResult`'s
            ``x``, ``z``, ``lam`` after a topology change).
        max_iter:
            Override the configured budget.
        callback:
            Optional ``callback(iteration, x, z, lam, residuals)`` invoked
            every iteration (used by instrumented benchmark runs).

        Raises
        ------
        ConvergenceError
            Only if ``config.raise_on_max_iter`` and the budget is exhausted.
        DivergenceError
            If ``config.divergence_guard`` and an iterate goes non-finite;
            the error carries the best (last finite) state as ``result``.
        """
        cfg = self.config
        budget = cfg.max_iter if max_iter is None else max_iter
        rho = cfg.rho
        x, z, lam = self.initial_state(x0, z0, lam0)
        self._balancer.reset()
        history = IterationHistory() if cfg.record_history else None
        timers = PhaseTimer()
        tracer = self.tracer
        solve_span = tracer.span(
            "admm.solve",
            algorithm=self.algorithm_name,
            n_vars=self.n,
            n_components=self.dec.n_components,
        )
        solve_span.__enter__()
        res = None
        iteration = 0
        best = None  # (iteration, x, z, lam, res) of the last finite state
        try:
            for iteration in range(1, budget + 1):
                t0 = time.perf_counter()
                x = self.global_update(z, lam, rho)
                t1 = time.perf_counter()
                bx = x[self.gcols]
                z_prev = z
                # Over-relaxation (alpha = 1 is plain Algorithm 1).
                bx_eff = bx if cfg.relaxation == 1.0 else (
                    cfg.relaxation * bx + (1.0 - cfg.relaxation) * z_prev
                )
                z = self.local_solver.solve(bx_eff + lam / rho)
                t2 = time.perf_counter()
                lam = lam + rho * (bx_eff - z)
                t3 = time.perf_counter()
                res = compute_residuals(bx, z, z_prev, lam, rho, cfg.eps_rel)
                t4 = time.perf_counter()
                timers.add("global", t1 - t0)
                timers.add("local", t2 - t1)
                timers.add("dual", t3 - t2)
                timers.add("residual", t4 - t3)
                if tracer:
                    tracer.add_complete("admm.global", t0, t1, cat="admm")
                    tracer.add_complete("admm.local", t1, t2, cat="admm")
                    tracer.add_complete("admm.dual", t2, t3, cat="admm")
                    tracer.add_complete("admm.residual", t3, t4, cat="admm")
                if cfg.divergence_guard:
                    if res.finite:
                        # The loop never mutates x/z/lam in place, so keeping
                        # references (no copies) is safe.
                        best = (iteration, x, z, lam, res)
                    else:
                        _raise_divergence(
                            self.algorithm_name, iteration, res, best,
                            self.c, history, timers,
                        )
                if history is not None:
                    history.append(res.pres, res.dres, res.eps_prim, res.eps_dual, rho)
                if callback is not None:
                    callback(iteration, x, z, lam, res)
                if res.converged:
                    break
                if cfg.residual_balancing:
                    rho = self._balancer.adapt(
                        rho, iteration, res.pres, res.dres, res.eps_prim, res.eps_dual
                    )
        finally:
            solve_span.__exit__(None, None, None)
        converged = bool(res is not None and res.converged)
        if not converged and cfg.raise_on_max_iter:
            raise ConvergenceError(
                f"solver-free ADMM: no convergence in {budget} iterations "
                f"(pres {res.pres:.2e} vs {res.eps_prim:.2e}, "
                f"dres {res.dres:.2e} vs {res.eps_dual:.2e})"
            )
        return ADMMResult(
            x=x,
            z=z,
            lam=lam,
            objective=float(self.c @ x),
            iterations=iteration,
            converged=converged,
            pres=res.pres if res else float("inf"),
            dres=res.dres if res else float("inf"),
            history=history,
            timers=timers.as_dict(),
            algorithm=self.algorithm_name,
        )

    # ------------------------------------------------------------------
    # Instrumentation for the parallel/GPU performance studies
    # ------------------------------------------------------------------
    def measure_local_costs(self, repeats: int = 5) -> np.ndarray:
        """Measured wall seconds of one *un-batched* local update per
        component (the unit of work a CPU agent performs each iteration).

        Used by the simulated cluster to replay per-rank compute time.
        """
        rng = np.random.default_rng(0)
        costs = np.empty(self.dec.n_components)
        for s in range(self.dec.n_components):
            n_s = int(self.local_solver.sizes[s])
            v = rng.standard_normal(n_s)
            best = float("inf")
            for _ in range(repeats):
                t0 = time.perf_counter()
                self.local_solver.solve_one(s, v)
                best = min(best, time.perf_counter() - t0)
            costs[s] = best
        return costs
