"""Centralized LP reference solutions (HiGHS) for validating the ADMM
algorithms."""

from repro.reference.linprog import ReferenceSolution, solve_reference

__all__ = ["solve_reference", "ReferenceSolution"]
