"""Centralized reference solutions via scipy's HiGHS LP solver.

The distributed algorithms are validated against the optimum of the
centralized LP (7): both ADMM variants must converge (in objective and in
consensus) to this solution.  This plays the role of the paper's implicit
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.backend.policy import HOST_DTYPE
from repro.formulation.centralized import CentralizedLP
from repro.utils.exceptions import InfeasibleError


@dataclass
class ReferenceSolution:
    """A centralized optimum with basic diagnostics."""

    x: np.ndarray
    objective: float
    status: str

    def compare_objective(self, other_objective: float) -> float:
        """Relative objective gap of ``other_objective`` vs the reference."""
        denom = max(abs(self.objective), 1e-12)
        return abs(other_objective - self.objective) / denom


def solve_reference(lp: CentralizedLP) -> ReferenceSolution:
    """Solve the centralized LP (7) with HiGHS.

    Raises
    ------
    InfeasibleError
        If HiGHS reports the LP infeasible or unbounded — this indicates a
        modeling problem in the network data, not an algorithmic failure.
    """
    bounds = [
        (lo if np.isfinite(lo) else None, hi if np.isfinite(hi) else None)
        for lo, hi in zip(lp.lb, lp.ub)
    ]
    result = linprog(
        c=lp.cost,
        A_eq=lp.a_matrix,
        b_eq=lp.b_vector,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise InfeasibleError(
            f"centralized LP for {lp.network.name!r} not solved: {result.message}"
        )
    return ReferenceSolution(
        x=np.asarray(result.x, dtype=HOST_DTYPE),
        objective=float(result.fun),
        status=result.message,
    )
