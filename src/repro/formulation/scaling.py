"""Column equilibration of the centralized LP (conditioning extension).

ADMM applies one penalty ``rho`` to every consensus coordinate, so its
convergence constant depends on how uniformly the variables are scaled.
Distribution OPF data is naturally heterogeneous — per-unit voltages sit
near 1 while individual service loads are 1e-4 — and the constraint columns
inherit that spread.  This module rescales variables by (the inverse of)
the geometric mean of their column magnitudes,

    x = D x',    A' = A D,    lb' = D^{-1} lb,   ub' = D^{-1} ub,
    c' = D c,

which leaves the problem mathematically identical but presents ADMM with
equilibrated columns.  :func:`scale_lp` produces a scaled
:class:`CentralizedLP` whose rows keep their component owners (so the
decomposition pipeline is unchanged) plus the diagonal needed to map
solutions back; ``bench_ablation_scaling`` measures the effect.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.policy import HOST_DTYPE

from repro.formulation.centralized import CentralizedLP
from repro.formulation.rows import Row, rows_to_matrix
from repro.formulation.variables import VariableIndex, VarKey


@dataclass
class ScaledLP:
    """A scaled problem plus the inverse map to original units."""

    lp: CentralizedLP
    col_scale: np.ndarray  # d: x_original = d * x_scaled

    def unscale(self, x_scaled: np.ndarray) -> np.ndarray:
        """Map a scaled-space solution back to original units."""
        return self.col_scale * x_scaled

    def scale_point(self, x: np.ndarray) -> np.ndarray:
        """Map an original-units point (e.g. a warm start) into scaled space."""
        return x / self.col_scale


def column_scales(
    lp: CentralizedLP, clip: float = 1e4, include_cost: bool = True
) -> np.ndarray:
    """Geometric-mean column equilibration factors ``d`` (clipped).

    Columns with no nonzeros keep ``d = 1``.  ``clip`` bounds the dynamic
    range of the scaling itself (extreme factors would trade one kind of
    ill-conditioning for another).
    """
    a = lp.a_matrix.tocsc()
    n = lp.n_vars
    d = np.ones(n)
    for j in range(n):
        vals = np.abs(a.data[a.indptr[j] : a.indptr[j + 1]])
        vals = vals[vals > 0]
        entries = list(vals)
        if include_cost and lp.cost[j] != 0:
            entries.append(abs(lp.cost[j]))
        if entries:
            gm = float(np.exp(np.mean(np.log(entries))))
            d[j] = 1.0 / gm
    return np.clip(d, 1.0 / clip, clip)


def scale_lp(lp: CentralizedLP, d: np.ndarray | None = None) -> ScaledLP:
    """Build the equilibrated problem ``min c'D x'  s.t.  A D x' = b``.

    The returned LP's rows keep their owners/tags, so
    :func:`repro.decomposition.decompose` applies unchanged; solve in scaled
    space and call :meth:`ScaledLP.unscale` on the result.
    """
    if d is None:
        d = column_scales(lp)
    d = np.asarray(d, dtype=HOST_DTYPE)
    if d.shape != (lp.n_vars,) or np.any(d <= 0):
        raise ValueError("scale vector must be positive with one entry per column")

    old_vi = lp.var_index
    scale_of: dict[VarKey, float] = {k: float(d[old_vi.index(k)]) for k in old_vi.keys}

    new_vi = VariableIndex()
    lb = lp.lb
    ub = lp.ub
    volt = old_vi.voltage_mask()
    x0_old = old_vi.initial_point()
    for i, key in enumerate(old_vi.keys):
        new_vi.add(
            key,
            lb=lb[i] / d[i],
            ub=ub[i] / d[i],
            cost=lp.cost[i] * d[i],
            # The paper's "voltage -> 1" rule is units-specific; carry the
            # initialization through the scaling instead.
            is_voltage=False,
            init=float(x0_old[i] / d[i]),
        )
        _ = volt  # voltage handling folded into init above

    new_rows = [
        Row(
            {k: coef * scale_of[k] for k, coef in row.coeffs.items()},
            row.rhs,
            row.owner,
            tag=row.tag,
        )
        for row in lp.rows
    ]
    a, b = rows_to_matrix(new_rows, new_vi)
    scaled = CentralizedLP(
        network=lp.network,
        var_index=new_vi,
        rows=new_rows,
        a_matrix=a,
        b_vector=b,
        cost=new_vi.costs(),
        lb=new_vi.lower_bounds(),
        ub=new_vi.upper_bounds(),
    )
    return ScaledLP(lp=scaled, col_scale=d)
