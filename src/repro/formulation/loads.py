"""Voltage-dependent load model rows (paper eqs. (4a)-(4j)).

Two ingredients:

1. **ZIP linearization** (4a)-(4b): consumption is affine in the squared
   voltage magnitude applied to the load, ``w_hat``, which is the bus ``w``
   for wye loads (4c) and ``3 w`` for delta loads (4d).  The linearization
   is taken around the *nominal* applied voltage (1 for wye, 3 for delta in
   line-to-neutral per-unit), so the delta tripling cancels against its
   nominal and both connections consume exactly their reference at ``w = 1``.

2. **Connection mapping** from consumption ``(p^d, q^d)`` to bus withdrawals
   ``(p^b, q^b)``: identity for wye (4e); for delta connections a linear map
   derived from nominal balanced voltage phasors.  For the full three-branch
   delta this map is algebraically identical to the paper's implicit system
   (4f)-(4j) (verified in tests); the phasor form additionally covers partial
   deltas (loads spanning a single phase pair), which occur in the IEEE
   feeders.

Nominal-phasor delta map
------------------------
With nominal phasors ``V_a = 1∠0°, V_b = 1∠-120°, V_c = 1∠120°``, a delta
branch between phases (f, t) carrying complex consumption ``S`` draws

    S_f^b = (V_f / V_ft) S        and        S_t^b = -(V_t / V_ft) S,

and for every branch the complex ratios are the constants
``c_from = (1/√3)∠-30°`` and ``c_to = (1/√3)∠30°``.  Multiplication by a
complex constant ``a + jb`` acts on ``(p, q)`` as the rotation-scaling
``[[a, -b], [b, a]]``, giving constant real coefficients.
"""

from __future__ import annotations

import cmath
import math

from repro.formulation.rows import Row
from repro.network.components import Connection, Load
from repro.network.phases import DELTA_BRANCH_PHASES

SQRT3 = math.sqrt(3.0)

#: Complex withdrawal ratio at the *from* phase of any delta branch.
C_FROM = complex(0.5, -0.5 / SQRT3)
#: Complex withdrawal ratio at the *to* phase of any delta branch.
C_TO = complex(0.5, 0.5 / SQRT3)


def consumption_rows(load: Load) -> list[Row]:
    """ZIP linearization rows (4a)-(4b) for each phase/branch of ``load``.

    The linearization is affine in the *normalized* applied squared voltage
    ``w_hat / w_hat_nom``: for a wye phase the applied voltage is the bus
    ``w`` with nominal 1 (4c); for a delta branch it is ``w_hat = 3 w`` (4d)
    with nominal ``3`` (line-to-line), so the tripling cancels and both
    connections reduce to the same row over ``w``::

        p^d - (a*alpha/2) * w = a * (1 - alpha/2)

    with ``w`` the bus voltage at the phase (for delta branches, at the
    branch's id-aligned phase, matching the paper's index convention).  At
    nominal voltage (``w = 1``) every ZIP type therefore consumes exactly
    its reference ``a``, for either connection.
    """
    owner = ("bus", load.bus)
    rows: list[Row] = []
    for j, phi in enumerate(load.phases):
        a = load.p_ref[j]
        b = load.q_ref[j]
        alpha = load.alpha[j]
        beta = load.beta[j]
        w_phase = DELTA_BRANCH_PHASES[phi][0] if load.is_delta else phi
        w_key = ("w", load.bus, w_phase)
        rows.append(
            Row(
                {("pd", load.name, phi): 1.0, w_key: -a * alpha / 2.0},
                rhs=a * (1.0 - alpha / 2.0),
                owner=owner,
                tag=f"load-p:{load.name}:{phi}",
            )
        )
        rows.append(
            Row(
                {("qd", load.name, phi): 1.0, w_key: -b * beta / 2.0},
                rhs=b * (1.0 - beta / 2.0),
                owner=owner,
                tag=f"load-q:{load.name}:{phi}",
            )
        )
    return rows


def wye_link_rows(load: Load) -> list[Row]:
    """Identity link (4e): ``p^b = p^d`` and ``q^b = q^d`` per phase."""
    if load.connection is not Connection.WYE:
        raise ValueError(f"load {load.name} is not wye connected")
    owner = ("bus", load.bus)
    rows: list[Row] = []
    for phi in load.phases:
        rows.append(
            Row(
                {("pb", load.name, phi): 1.0, ("pd", load.name, phi): -1.0},
                0.0,
                owner,
                tag=f"wye-p:{load.name}:{phi}",
            )
        )
        rows.append(
            Row(
                {("qb", load.name, phi): 1.0, ("qd", load.name, phi): -1.0},
                0.0,
                owner,
                tag=f"wye-q:{load.name}:{phi}",
            )
        )
    return rows


def delta_withdrawal_map(load: Load) -> dict[int, dict[int, complex]]:
    """Complex coefficients ``T[phase][branch]`` such that the bus withdrawal
    at ``phase`` is ``sum_branch T[phase][branch] * S_d[branch]``."""
    if not load.is_delta:
        raise ValueError(f"load {load.name} is not delta connected")
    table: dict[int, dict[int, complex]] = {p: {} for p in load.bus_phases}
    for branch in load.phases:
        f, t = DELTA_BRANCH_PHASES[branch]
        table[f][branch] = table[f].get(branch, 0j) + C_FROM
        table[t][branch] = table[t].get(branch, 0j) + C_TO
    return table


def delta_link_rows(load: Load) -> list[Row]:
    """Explicit delta link rows: ``p^b/q^b`` minus the phasor map of
    ``p^d/q^d`` equals zero, two rows per touched bus phase.

    For a full three-branch delta these rows span the same solution set as
    the paper's implicit system (4f)-(4j) (see
    :func:`delta_link_rows_paper` and the consistency tests).
    """
    if not load.is_delta:
        raise ValueError(f"load {load.name} is not delta connected")
    owner = ("bus", load.bus)
    table = delta_withdrawal_map(load)
    rows: list[Row] = []
    for phase in load.bus_phases:
        p_coeffs: dict = {("pb", load.name, phase): 1.0}
        q_coeffs: dict = {("qb", load.name, phase): 1.0}
        for branch, c in table[phase].items():
            a, b = c.real, c.imag
            # S^b = c * S^d  =>  p^b = a p^d - b q^d,  q^b = b p^d + a q^d.
            p_coeffs[("pd", load.name, branch)] = p_coeffs.get(("pd", load.name, branch), 0.0) - a
            p_coeffs[("qd", load.name, branch)] = p_coeffs.get(("qd", load.name, branch), 0.0) + b
            q_coeffs[("pd", load.name, branch)] = q_coeffs.get(("pd", load.name, branch), 0.0) - b
            q_coeffs[("qd", load.name, branch)] = q_coeffs.get(("qd", load.name, branch), 0.0) - a
        rows.append(Row(p_coeffs, 0.0, owner, tag=f"delta-p:{load.name}:{phase}"))
        rows.append(Row(q_coeffs, 0.0, owner, tag=f"delta-q:{load.name}:{phase}"))
    return rows


def delta_link_rows_paper(load: Load) -> list[Row]:
    """The paper's literal delta system (4f)-(4j) for a full 3-branch delta.

    Provided for fidelity checks; :func:`delta_link_rows` is used in the
    assembled model because it covers partial deltas uniformly.

    Raises
    ------
    ValueError
        If the load is not a full three-branch delta.
    """
    if not load.is_delta or load.phases != (1, 2, 3):
        raise ValueError(f"load {load.name}: (4f)-(4j) require a full 3-branch delta")
    owner = ("bus", load.bus)
    nm = load.name

    def pb(p):
        return ("pb", nm, p)

    def qb(p):
        return ("qb", nm, p)

    def pd(p):
        return ("pd", nm, p)

    def qd(p):
        return ("qd", nm, p)

    rows = [
        # (4f) total real / reactive power conservation.
        Row(
            {pb(1): 1, pb(2): 1, pb(3): 1, pd(1): -1, pd(2): -1, pd(3): -1},
            0.0,
            owner,
            tag=f"delta-4f-p:{nm}",
        ),
        Row(
            {qb(1): 1, qb(2): 1, qb(3): 1, qd(1): -1, qd(2): -1, qd(3): -1},
            0.0,
            owner,
            tag=f"delta-4f-q:{nm}",
        ),
        # (4g)
        Row(
            {pb(2): 1.5, qb(2): -SQRT3 / 2, pd(2): -1.0, pd(1): -0.5, qd(1): SQRT3 / 2},
            0.0,
            owner,
            tag=f"delta-4g:{nm}",
        ),
        # (4h)
        Row(
            {pb(2): SQRT3 / 2, qb(2): 1.5, pd(1): -SQRT3 / 2, qd(1): -0.5, qd(2): -1.0},
            0.0,
            owner,
            tag=f"delta-4h:{nm}",
        ),
        # (4i)
        Row(
            {
                qb(2): SQRT3,
                pb(3): 1.5,
                qb(3): -SQRT3 / 2,
                pd(1): -0.5,
                qd(1): -SQRT3 / 2,
                pd(3): -1.0,
            },
            0.0,
            owner,
            tag=f"delta-4i:{nm}",
        ),
        # (4j)
        Row(
            {
                pb(2): -SQRT3,
                pb(3): SQRT3 / 2,
                qb(3): 1.5,
                pd(1): SQRT3 / 2,
                qd(1): -0.5,
                qd(3): -1.0,
            },
            0.0,
            owner,
            tag=f"delta-4j:{nm}",
        ),
    ]
    return rows


def load_rows(load: Load) -> list[Row]:
    """All model rows for one load: ZIP consumption plus connection link."""
    rows = consumption_rows(load)
    if load.connection is Connection.WYE:
        rows.extend(wye_link_rows(load))
    else:
        rows.extend(delta_link_rows(load))
    return rows


def nominal_phasor(phase: int) -> complex:
    """Nominal balanced voltage phasor of ``phase`` (1 pu, 120° apart)."""
    if phase not in (1, 2, 3):
        raise ValueError(f"invalid phase {phase}")
    return cmath.exp(-1j * 2.0 * math.pi * (phase - 1) / 3.0)
