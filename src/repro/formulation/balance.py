"""Nodal power balance rows (paper eqs. (3a)-(3b)).

For every bus ``i`` and phase ``phi`` present at the bus::

    sum_{lines e at i} p_e(i-side) + sum_{loads l at i} p^b_l
        + g^sh_i w_i - sum_{gens k at i} p^g_k = 0

and the reactive counterpart with ``-b^sh_i w_i``.  The *i-side* flow
variable is ``pf`` when ``i`` is the line's from-bus and ``pt`` otherwise
(both flows are oriented as withdrawals from their own terminal bus).
"""

from __future__ import annotations

from repro.formulation.rows import Row
from repro.network.network import DistributionNetwork


def balance_rows(net: DistributionNetwork, bus_name: str) -> list[Row]:
    """Power balance rows for all phases of one bus, owned by the bus."""
    bus = net.buses[bus_name]
    owner = ("bus", bus_name)
    lines = net.lines_at(bus_name)
    gens = net.generators_at(bus_name)
    loads = net.loads_at(bus_name)
    rows: list[Row] = []
    for a, phi in enumerate(bus.phases):
        p_coeffs: dict = {}
        q_coeffs: dict = {}

        def bump(coeffs, key, val):
            coeffs[key] = coeffs.get(key, 0.0) + val

        for line in lines:
            if phi not in line.phases:
                continue
            side = "f" if line.from_bus == bus_name else "t"
            bump(p_coeffs, (f"p{side}", line.name, phi), 1.0)
            bump(q_coeffs, (f"q{side}", line.name, phi), 1.0)
        for load in loads:
            if phi in load.bus_phases:
                bump(p_coeffs, ("pb", load.name, phi), 1.0)
                bump(q_coeffs, ("qb", load.name, phi), 1.0)
        bump(p_coeffs, ("w", bus_name, phi), bus.g_sh[a])
        bump(q_coeffs, ("w", bus_name, phi), -bus.b_sh[a])
        for gen in gens:
            if phi in gen.phases:
                bump(p_coeffs, ("pg", gen.name, phi), -1.0)
                bump(q_coeffs, ("qg", gen.name, phi), -1.0)
        rows.append(Row(p_coeffs, 0.0, owner, tag=f"balance-p:{bus_name}:{phi}"))
        rows.append(Row(q_coeffs, 0.0, owner, tag=f"balance-q:{bus_name}:{phi}"))
    return rows
