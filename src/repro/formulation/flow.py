"""Linearized multi-phase power flow rows (paper eqs. (5a)-(5c)).

For every line ``e = (i, j)`` and phase ``phi`` of the line:

* (5a) loss-linearized real-power coupling:
  ``p_eij + p_eji = g^s_eij w_i + g^s_eji w_j``
* (5b) reactive counterpart with shunt susceptances,
* (5c) voltage drop across the line, coupling all phases through the
  rotation matrices ``M^p`` / ``M^q`` built from the series impedance.

The M matrices follow the paper's closed form: diagonal entries ``-2 r`` /
``-2 x`` and off-diagonal entries ``r ∓ √3 x`` / ``x ± √3 r`` where the sign
alternates with the cyclic phase order (the ``∠±120°`` rotation between
phases).  For lines carrying a subset of phases the matrices restrict to the
present phase pairs while keeping the *absolute* phase identities for the
sign pattern.
"""

from __future__ import annotations

import math

import numpy as np

from repro.formulation.rows import Row
from repro.network.components import Line

SQRT3 = math.sqrt(3.0)


def _cyclic_next(phase: int) -> int:
    """Phase following ``phase`` in the a->b->c->a cycle."""
    return phase % 3 + 1


def voltage_drop_matrices(line: Line) -> tuple[np.ndarray, np.ndarray]:
    """The ``M^p`` and ``M^q`` matrices of (5c) for ``line``.

    Returns arrays of shape ``(P, P)`` aligned with ``line.phases``.
    """
    phases = line.phases
    n = len(phases)
    mp = np.zeros((n, n))
    mq = np.zeros((n, n))
    for a, phi in enumerate(phases):
        for b, psi in enumerate(phases):
            r = line.r[a, b]
            x = line.x[a, b]
            if phi == psi:
                mp[a, b] = -2.0 * r
                mq[a, b] = -2.0 * x
            elif psi == _cyclic_next(phi):
                # psi leads phi by one position in the cycle (e.g. (1,2)).
                mp[a, b] = r - SQRT3 * x
                mq[a, b] = x + SQRT3 * r
            else:
                # psi trails phi (e.g. (2,1)).
                mp[a, b] = r + SQRT3 * x
                mq[a, b] = x - SQRT3 * r
    return mp, mq


def flow_rows(line: Line) -> list[Row]:
    """All linearized flow rows (5a)-(5c) for one line, owned by the line."""
    owner = ("line", line.name)
    nm = line.name
    i, j = line.from_bus, line.to_bus
    mp, mq = voltage_drop_matrices(line)
    rows: list[Row] = []
    for a, phi in enumerate(line.phases):
        # (5a): p_f + p_t - g^s_fr w_i - g^s_to w_j = 0
        rows.append(
            Row(
                {
                    ("pf", nm, phi): 1.0,
                    ("pt", nm, phi): 1.0,
                    ("w", i, phi): -line.g_sh_fr[a],
                    ("w", j, phi): -line.g_sh_to[a],
                },
                0.0,
                owner,
                tag=f"flow-p:{nm}:{phi}",
            )
        )
        # (5b): q_f + q_t + b^s_fr w_i + b^s_to w_j = 0
        rows.append(
            Row(
                {
                    ("qf", nm, phi): 1.0,
                    ("qt", nm, phi): 1.0,
                    ("w", i, phi): line.b_sh_fr[a],
                    ("w", j, phi): line.b_sh_to[a],
                },
                0.0,
                owner,
                tag=f"flow-q:{nm}:{phi}",
            )
        )
        # (5c): w_i - tau w_j + sum_psi Mp (p_f - g^s_fr w_i)
        #                     + sum_psi Mq (q_f + b^s_fr w_i) = 0
        coeffs: dict = {}

        def bump(key, val, coeffs=coeffs):
            coeffs[key] = coeffs.get(key, 0.0) + val

        bump(("w", i, phi), 1.0)
        bump(("w", j, phi), -line.tap[a])
        for b, psi in enumerate(line.phases):
            bump(("pf", nm, psi), mp[a, b])
            bump(("w", i, psi), -mp[a, b] * line.g_sh_fr[b])
            bump(("qf", nm, psi), mq[a, b])
            bump(("w", i, psi), mq[a, b] * line.b_sh_fr[b])
        rows.append(Row(coeffs, 0.0, owner, tag=f"vdrop:{nm}:{phi}"))
    return rows
