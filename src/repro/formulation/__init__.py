"""Linearized multi-phase OPF formulation (paper Section II).

Builds the centralized LP (7) from a network model, with every constraint
row tagged by the component that owns it so the component-wise decomposition
is a pure regrouping.
"""

from repro.formulation.balance import balance_rows
from repro.formulation.centralized import CentralizedLP, build_centralized_lp, build_rows
from repro.formulation.flow import flow_rows, voltage_drop_matrices
from repro.formulation.loads import (
    consumption_rows,
    delta_link_rows,
    delta_link_rows_paper,
    delta_withdrawal_map,
    load_rows,
    wye_link_rows,
)
from repro.formulation.rows import Row, rows_to_dense_local, rows_to_matrix
from repro.formulation.scaling import ScaledLP, column_scales, scale_lp
from repro.formulation.variables import VariableIndex, VarKey

__all__ = [
    "CentralizedLP",
    "build_centralized_lp",
    "build_rows",
    "balance_rows",
    "flow_rows",
    "voltage_drop_matrices",
    "load_rows",
    "consumption_rows",
    "wye_link_rows",
    "delta_link_rows",
    "delta_link_rows_paper",
    "delta_withdrawal_map",
    "Row",
    "scale_lp",
    "ScaledLP",
    "column_scales",
    "rows_to_matrix",
    "rows_to_dense_local",
    "VariableIndex",
    "VarKey",
]
