"""Centralized multi-phase linearized OPF assembly (paper eq. (7)).

:func:`build_centralized_lp` turns a :class:`DistributionNetwork` into the
abstract LP

    min c^T x   s.t.   A x = b,   x_lb <= x <= x_ub

with the global variable ordering of (7): generation, squared voltages, load
variables, then directed line flows.  The produced :class:`CentralizedLP`
also keeps the symbolic :class:`~repro.formulation.rows.Row` list with
component ownership tags, which the decomposition package regroups into
component subproblems without re-deriving any constraint.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.formulation.balance import balance_rows
from repro.formulation.flow import flow_rows
from repro.formulation.loads import load_rows
from repro.formulation.rows import Row, rows_to_matrix
from repro.formulation.variables import VariableIndex
from repro.network.network import DistributionNetwork
from repro.utils.exceptions import FormulationError


@dataclass
class CentralizedLP:
    """The assembled centralized LP (7) plus its symbolic structure."""

    network: DistributionNetwork
    var_index: VariableIndex
    rows: list[Row]
    a_matrix: sp.csr_matrix
    b_vector: np.ndarray
    cost: np.ndarray
    lb: np.ndarray
    ub: np.ndarray

    @property
    def n_vars(self) -> int:
        return self.var_index.n

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    @property
    def shape(self) -> tuple[int, int]:
        """(rows, columns) of A — the quantity reported in Table II."""
        return (self.n_rows, self.n_vars)

    def initial_point(self) -> np.ndarray:
        return self.var_index.initial_point()

    def objective(self, x: np.ndarray) -> float:
        return float(self.cost @ x)

    def equality_violation(self, x: np.ndarray) -> float:
        """Infinity norm of ``A x - b`` at ``x``."""
        return float(np.max(np.abs(self.a_matrix @ x - self.b_vector))) if self.n_rows else 0.0

    def bound_violation(self, x: np.ndarray) -> float:
        return float(
            max(
                np.max(np.maximum(self.lb - x, 0.0), initial=0.0),
                np.max(np.maximum(x - self.ub, 0.0), initial=0.0),
            )
        )


def _register_variables(net: DistributionNetwork) -> VariableIndex:
    """Register all global variables in the paper's ordering for (7)."""
    vi = VariableIndex()
    for gen in net.generators.values():
        for a, phi in enumerate(gen.phases):
            vi.add(("pg", gen.name, phi), gen.p_min[a], gen.p_max[a], cost=gen.cost)
            vi.add(("qg", gen.name, phi), gen.q_min[a], gen.q_max[a])
    for bus in net.buses.values():
        for a, phi in enumerate(bus.phases):
            vi.add(("w", bus.name, phi), bus.w_min[a], bus.w_max[a], is_voltage=True)
    for load in net.loads.values():
        for phi in load.bus_phases:
            vi.add(("pb", load.name, phi))
            vi.add(("qb", load.name, phi))
        for phi in load.phases:
            vi.add(("pd", load.name, phi))
            vi.add(("qd", load.name, phi))
    for line in net.lines.values():
        for a, phi in enumerate(line.phases):
            vi.add(("pf", line.name, phi), line.p_min[a], line.p_max[a])
            vi.add(("qf", line.name, phi), line.q_min[a], line.q_max[a])
            vi.add(("pt", line.name, phi), line.p_min[a], line.p_max[a])
            vi.add(("qt", line.name, phi), line.q_min[a], line.q_max[a])
    return vi


def build_rows(net: DistributionNetwork) -> list[Row]:
    """All equality rows of the model: balance (3), loads (4), flows (5)."""
    rows: list[Row] = []
    for bus_name in net.buses:
        rows.extend(balance_rows(net, bus_name))
    for load in net.loads.values():
        rows.extend(load_rows(load))
    for line in net.lines.values():
        rows.extend(flow_rows(line))
    return rows


def build_centralized_lp(net: DistributionNetwork, validate: bool = True) -> CentralizedLP:
    """Assemble the centralized LP (7) from a network model.

    Parameters
    ----------
    net:
        The network; must pass :meth:`DistributionNetwork.validate`.
    validate:
        Set to False to skip re-validation (e.g. inside tight loops).

    Raises
    ------
    FormulationError
        If the network has no generation (the LP would be trivially
        infeasible under any positive load).
    """
    if validate:
        net.validate()
    if not net.generators:
        raise FormulationError(f"network {net.name!r} has no generators")
    vi = _register_variables(net)
    rows = build_rows(net)
    a, b = rows_to_matrix(rows, vi)
    return CentralizedLP(
        network=net,
        var_index=vi,
        rows=rows,
        a_matrix=a,
        b_vector=b,
        cost=vi.costs(),
        lb=vi.lower_bounds(),
        ub=vi.upper_bounds(),
    )
