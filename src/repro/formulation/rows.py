"""Sparse constraint rows.

A :class:`Row` is one linear equality ``sum coeffs[k] * x[k] = rhs`` expressed
over symbolic variable keys, tagged with the component that *owns* it.  Row
ownership is what makes the component-wise decomposition (Section II-B) a
pure regrouping of the centralized constraint set: the centralized matrix A
is the stack of all rows; each component subproblem matrix ``A_s`` is the
stack of rows it owns, restricted to its local variables.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
import scipy.sparse as sp

from repro.formulation.variables import VariableIndex, VarKey

#: Owner handle: ("bus", bus_name) or ("line", line_name).
Owner = tuple


@dataclass
class Row:
    """One linear equality constraint over symbolic variable keys."""

    coeffs: dict[VarKey, float]
    rhs: float
    owner: Owner
    tag: str = ""

    def __post_init__(self) -> None:
        # Drop exact zeros so the row support matches the true sparsity.
        self.coeffs = {k: float(v) for k, v in self.coeffs.items() if v != 0.0}
        self.rhs = float(self.rhs)

    def support(self) -> set[VarKey]:
        return set(self.coeffs)


def rows_to_matrix(
    rows: list[Row], var_index: VariableIndex
) -> tuple[sp.csr_matrix, np.ndarray]:
    """Assemble rows into a CSR matrix and RHS vector over the global index."""
    data: list[float] = []
    indices: list[int] = []
    indptr: list[int] = [0]
    b = np.empty(len(rows))
    for i, row in enumerate(rows):
        for key, coef in row.coeffs.items():
            indices.append(var_index.index(key))
            data.append(coef)
        indptr.append(len(data))
        b[i] = row.rhs
    a = sp.csr_matrix(
        (np.asarray(data), np.asarray(indices, dtype=np.int64), np.asarray(indptr, dtype=np.int64)),
        shape=(len(rows), var_index.n),
    )
    return a, b


def rows_to_dense_local(
    rows: list[Row], local_keys: list[VarKey]
) -> tuple[np.ndarray, np.ndarray]:
    """Assemble rows into a dense matrix over a *local* key ordering.

    Used for component subproblem matrices ``A_s`` (which are tiny).

    Raises
    ------
    KeyError
        If a row references a key absent from ``local_keys``.
    """
    pos = {k: j for j, k in enumerate(local_keys)}
    a = np.zeros((len(rows), len(local_keys)))
    b = np.empty(len(rows))
    for i, row in enumerate(rows):
        for key, coef in row.coeffs.items():
            a[i, pos[key]] = coef
        b[i] = row.rhs
    return a, b
