"""Global variable registry for the multi-phase OPF LP (7).

Every scalar decision variable is identified by a hashable *key*::

    ("pg", gen, phase)   ("qg", gen, phase)        generation (2a)
    ("w",  bus, phase)                             squared voltage (2b)
    ("pb", load, phase)  ("qb", load, phase)       bus withdrawals
    ("pd", load, phase)  ("qd", load, phase)       load consumption (4)
    ("pf", line, phase)  ("qf", line, phase)       from->to flow (2c)-(2d)
    ("pt", line, phase)  ("qt", line, phase)       to->from flow

For delta loads the ``phase`` of ``pd``/``qd`` keys is the *branch id* while
``pb``/``qb`` keys use bus phases, mirroring the paper's indexing.

:class:`VariableIndex` assigns consecutive column indices, carries bounds and
objective coefficients, and produces the paper's initial point rule: zero for
unbounded variables, the bound midpoint for bounded ones, and one for squared
voltage magnitudes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.backend.policy import HOST_DTYPE

VarKey = tuple  # (kind, owner name, phase/branch id)

#: Variable kinds in the order of the global vector x in (7).  ``le`` is the
#: squared branch-current variable of the SOCP branch-flow extension;
#: ``sc``/``sd``/``se`` are the charge/discharge/state-of-charge variables of
#: the multi-period storage extension; ``ct``/``cu``/``cs`` are the CVaR
#: epigraph variables (VaR level, per-scenario excess, equality slack) of
#: the two-stage stochastic extension.
VAR_KINDS = (
    "pg", "qg", "w", "pb", "qb", "pd", "qd", "pf", "qf", "pt", "qt",
    "le", "sc", "sd", "se", "ct", "cu", "cs",
)


@dataclass
class VariableIndex:
    """Ordered registry of global LP variables with bounds and costs."""

    _index: dict[VarKey, int] = field(default_factory=dict)
    _keys: list[VarKey] = field(default_factory=list)
    _lb: list[float] = field(default_factory=list)
    _ub: list[float] = field(default_factory=list)
    _cost: list[float] = field(default_factory=list)
    _is_voltage: list[bool] = field(default_factory=list)
    _init: list[float | None] = field(default_factory=list)

    def add(
        self,
        key: VarKey,
        lb: float = -np.inf,
        ub: float = np.inf,
        cost: float = 0.0,
        is_voltage: bool = False,
        init: float | None = None,
    ) -> int:
        """Register ``key`` and return its column index.

        Raises
        ------
        ValueError
            If the key is already registered or the bounds are inverted.
        """
        if key in self._index:
            raise ValueError(f"duplicate variable {key}")
        if key[0] not in VAR_KINDS:
            raise ValueError(f"unknown variable kind {key[0]!r}")
        if lb > ub:
            raise ValueError(f"variable {key}: lb {lb} > ub {ub}")
        idx = len(self._keys)
        self._index[key] = idx
        self._keys.append(key)
        self._lb.append(float(lb))
        self._ub.append(float(ub))
        self._cost.append(float(cost))
        self._is_voltage.append(bool(is_voltage))
        self._init.append(None if init is None else float(init))
        return idx

    def index(self, key: VarKey) -> int:
        try:
            return self._index[key]
        except KeyError as exc:
            raise KeyError(f"unknown variable {key}") from exc

    def __contains__(self, key: VarKey) -> bool:
        return key in self._index

    def __len__(self) -> int:
        return len(self._keys)

    @property
    def n(self) -> int:
        return len(self._keys)

    @property
    def keys(self) -> list[VarKey]:
        return list(self._keys)

    def key_of(self, idx: int) -> VarKey:
        return self._keys[idx]

    def lower_bounds(self) -> np.ndarray:
        return np.asarray(self._lb, dtype=HOST_DTYPE)

    def upper_bounds(self) -> np.ndarray:
        return np.asarray(self._ub, dtype=HOST_DTYPE)

    def costs(self) -> np.ndarray:
        return np.asarray(self._cost, dtype=HOST_DTYPE)

    def voltage_mask(self) -> np.ndarray:
        return np.asarray(self._is_voltage, dtype=bool)

    def initial_point(self) -> np.ndarray:
        """Paper's initialization (Section V-A): voltage -> 1, bounded ->
        bound midpoint, otherwise 0; per-variable ``init`` overrides win."""
        lb = self.lower_bounds()
        ub = self.upper_bounds()
        x0 = np.zeros(self.n)
        bounded = np.isfinite(lb) & np.isfinite(ub)
        x0[bounded] = 0.5 * (lb[bounded] + ub[bounded])
        x0[self.voltage_mask()] = 1.0
        for i, val in enumerate(self._init):
            if val is not None:
                x0[i] = val
        return x0

    def indices_of_kind(self, kind: str) -> np.ndarray:
        """Column indices of all variables of the given kind."""
        if kind not in VAR_KINDS:
            raise ValueError(f"unknown variable kind {kind!r}")
        return np.array(
            [i for i, k in enumerate(self._keys) if k[0] == kind], dtype=int
        )
