"""The fidelity ladder: one facade over linearized, QP and SOCP OPF.

The paper's algorithm is a single point on an accuracy-speed ladder.  This
package names the rungs (:class:`Method`), builds each rung's model and
solver through the shared ``ADMMLoop``/Backend engine, and validates every
rung against a HiGHS reference with per-method tolerance tiers — see
docs/METHODS.md for the ladder table.
"""

from repro.methods.facade import (
    METHOD_SPECS,
    Method,
    MethodProblem,
    MethodReport,
    MethodSpec,
    build_method_problem,
    make_method_solver,
    method_report,
    modeled_iteration_times,
    reference_objective,
    solve_with_method,
)
from repro.methods.reference import solve_reference_socp

__all__ = [
    "METHOD_SPECS",
    "Method",
    "MethodProblem",
    "MethodReport",
    "MethodSpec",
    "build_method_problem",
    "make_method_solver",
    "method_report",
    "modeled_iteration_times",
    "reference_objective",
    "solve_reference_socp",
    "solve_with_method",
]
