"""HiGHS reference optimum for the branch-flow SOCP.

The LP rungs of the ladder validate against :func:`repro.reference.
solve_reference` directly.  The SOCP rung needs a conic ground truth, and
scipy's HiGHS binding only speaks LP — so we solve the SOCP by *cutting
planes*: an outer approximation that starts from the linear rows and
bounds alone and iteratively adds supporting hyperplanes of the rotated
cones at the current LP optimum.

Each cone is the sublevel set of ``f(le, w, P, Q) = P^2 + Q^2 - 2 le w``
(convex on the ``w, le >= 0`` box enforced by the bounds), so the
linearization at a violating point ``x0``

    f(x0) + grad f(x0) . (x - x0) <= 0

is a valid cut: it removes ``x0`` while keeping every feasible point.
The LP objective is a lower bound on the SOCP optimum that increases
monotonically as cuts accumulate, and the iteration stops when the worst
cone violation drops below tolerance — at which point the LP optimum is
conic-feasible and therefore optimal.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from repro.backend.policy import HOST_DTYPE
from repro.reference.linprog import ReferenceSolution
from repro.socp.bfm import ConicProblem
from repro.utils.exceptions import InfeasibleError


def solve_reference_socp(
    problem: ConicProblem,
    tol: float = 1e-6,
    max_rounds: int = 200,
) -> ReferenceSolution:
    """Solve the branch-flow SOCP with HiGHS via cutting planes.

    Parameters
    ----------
    problem:
        The assembled conic model (:func:`repro.socp.bfm.build_bfm_socp`).
    tol:
        Worst allowed cone violation ``max(0, P^2+Q^2 - 2 le w)`` of the
        returned point.
    max_rounds:
        Cutting-plane iterations before giving up (each round adds one
        cut per violated cone; a few dozen suffice on the IEEE feeders).

    Raises
    ------
    InfeasibleError
        If HiGHS cannot solve an outer LP, or the violation fails to
        reach ``tol`` within ``max_rounds``.
    """
    # The equality rows come back sparse; HiGHS accepts them as-is.
    a_eq, b_eq = problem.linear_system()
    b_eq = np.asarray(b_eq, dtype=HOST_DTYPE)
    bounds = [
        (lo if np.isfinite(lo) else None, hi if np.isfinite(hi) else None)
        for lo, hi in zip(problem.lb, problem.ub)
    ]
    vi = problem.var_index
    cone_cols = np.array(
        [
            [
                vi.index(c.u_key),
                vi.index(c.v_key),
                vi.index(c.w_keys[0]),
                vi.index(c.w_keys[1]),
            ]
            for c in problem.cones
        ],
        dtype=np.int64,
    ).reshape(len(problem.cones), 4)

    cuts_a: list[np.ndarray] = []
    cuts_b: list[float] = []
    n = problem.n_vars
    result = None
    for _ in range(max_rounds):
        a_ub = np.asarray(cuts_a, dtype=HOST_DTYPE).reshape(len(cuts_a), n)
        b_ub = np.asarray(cuts_b, dtype=HOST_DTYPE)
        result = linprog(
            c=problem.cost,
            A_eq=a_eq,
            b_eq=b_eq,
            A_ub=a_ub if cuts_a else None,
            b_ub=b_ub if cuts_a else None,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            raise InfeasibleError(
                f"SOCP outer LP for {problem.network.name!r} not solved: "
                f"{result.message}"
            )
        x = np.asarray(result.x, dtype=HOST_DTYPE)
        le = x[cone_cols[:, 0]]
        w = x[cone_cols[:, 1]]
        p = x[cone_cols[:, 2]]
        q = x[cone_cols[:, 3]]
        f = p * p + q * q - 2.0 * le * w
        violated = np.flatnonzero(f > tol)
        if violated.size == 0:
            return ReferenceSolution(
                x=x,
                objective=float(result.fun),
                status=f"{result.message} (cutting planes: {len(cuts_a)} cuts)",
            )
        for k in violated:
            # grad f = (-2 w, -2 le, 2 P, 2 Q) over (le, w, P, Q);
            # cut: grad . x <= grad . x0 - f(x0).
            grad = np.zeros(n, dtype=HOST_DTYPE)
            grad[cone_cols[k, 0]] = -2.0 * w[k]
            grad[cone_cols[k, 1]] = -2.0 * le[k]
            grad[cone_cols[k, 2]] = 2.0 * p[k]
            grad[cone_cols[k, 3]] = 2.0 * q[k]
            cuts_a.append(grad)
            cuts_b.append(float(grad @ x - f[k]))
    raise InfeasibleError(
        f"SOCP cutting planes for {problem.network.name!r} did not reach "
        f"violation {tol:g} in {max_rounds} rounds "
        f"(worst {float(np.max(f)):.3e})"
    )
