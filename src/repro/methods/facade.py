"""The `Method` enum and the unified solver facade.

One entry point for every rung of the fidelity ladder:

* ``linearized`` — the paper's Algorithm 1 (:class:`~repro.core.
  solver_free.SolverFreeADMM`) on the linearized LP (7),
* ``qp`` — the solver-based baseline (:class:`~repro.core.baseline.
  BenchmarkADMM`) on the same LP, run in its closed-form ``projection``
  local mode by default (identical iterates to the interior-point mode,
  batchable),
* ``socp`` — the branch-flow second-order-cone relaxation
  (:class:`~repro.socp.solver.ConicSolverFreeADMM`), linear components
  through the same batched projections plus closed-form cone projections.

All three run on the shared :class:`~repro.core.loop.ADMMLoop`/Backend
protocol, so the GPU cost model prices them from the same component-size
vectors, and each validates against a HiGHS reference
(:func:`repro.reference.solve_reference` for the LP rungs,
:func:`repro.methods.reference.solve_reference_socp` for the conic rung)
within its per-method tolerance tier.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.backend.policy import HOST_DTYPE
from repro.core import ADMMConfig, BenchmarkADMM, SolverFreeADMM
from repro.core.results import ADMMResult
from repro.decomposition import decompose
from repro.formulation import build_centralized_lp
from repro.gpu.costmodel import UpdateTimes, iteration_times_from_sizes
from repro.gpu.device import A100, DeviceSpec
from repro.methods.reference import solve_reference_socp
from repro.reference import solve_reference
from repro.socp.bfm import build_bfm_socp
from repro.socp.solver import ConicSolverFreeADMM, decompose_conic


class Method(enum.Enum):
    """Rungs of the fidelity ladder, lowest fidelity first."""

    LINEARIZED = "linearized"
    QP = "qp"
    SOCP = "socp"

    @classmethod
    def parse(cls, value) -> "Method":
        """Coerce a CLI/request string (or a Method) to the enum member."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value))
        except ValueError:
            choices = ", ".join(m.value for m in cls)
            raise ValueError(
                f"unknown method {value!r} (choose from {choices})"
            ) from None

    def __str__(self) -> str:  # argparse-friendly
        return self.value


@dataclass(frozen=True)
class MethodSpec:
    """Per-method defaults and the validation tolerance tier.

    ``gap_tol`` is the admissible relative objective gap against the
    method's *own* HiGHS reference when solved at the spec's default
    tolerance — the tiers tighten as fidelity rises, which is what makes
    the ladder a ladder (docs/METHODS.md).
    """

    method: Method
    model: str
    eps_rel: float
    max_iter: int
    rho: float
    gap_tol: float
    #: Extra keyword arguments of the model builder (socp only).
    build_kwargs: dict = field(default_factory=dict)

    def default_config(self, **overrides) -> ADMMConfig:
        base = {
            "rho": self.rho,
            "eps_rel": self.eps_rel,
            "max_iter": self.max_iter,
        }
        base.update(overrides)
        return ADMMConfig(**base)


#: The ladder.  eps tiers: the LP rungs share one model but the qp rung
#: runs an order of magnitude tighter; the conic rung runs tighter still
#: relative to its own reference, so the measured gaps order
#: socp <= qp <= linearized on the Table-5 feeders (BENCH_methods.json).
METHOD_SPECS: dict[Method, MethodSpec] = {
    Method.LINEARIZED: MethodSpec(
        method=Method.LINEARIZED,
        model="linearized LP (7), solver-free ADMM (Algorithm 1)",
        eps_rel=1e-3,
        max_iter=20_000,
        rho=100.0,
        gap_tol=5e-3,
    ),
    Method.QP: MethodSpec(
        method=Method.QP,
        model="linearized LP (7), component box-QPs (benchmark ADMM)",
        eps_rel=1e-4,
        max_iter=100_000,
        rho=100.0,
        gap_tol=1e-3,
    ),
    Method.SOCP: MethodSpec(
        method=Method.SOCP,
        model="branch-flow SOCP relaxation, solver-free conic ADMM",
        eps_rel=2e-5,
        max_iter=300_000,
        rho=100.0,
        gap_tol=5e-4,
        build_kwargs={"le_max": 10.0},
    ),
}


@dataclass
class MethodProblem:
    """One feeder's model built for one method.

    The LP rungs carry ``(lp, dec)``; the conic rung carries
    ``(conic, conic_dec)``.  ``component_sizes`` is the width vector the
    GPU cost model prices (cone blocks are width-4 components).
    """

    method: Method
    network: object
    lp: object | None = None
    dec: object | None = None
    conic: object | None = None
    conic_dec: object | None = None

    @property
    def component_sizes(self) -> np.ndarray:
        if self.method is Method.SOCP:
            cdec = self.conic_dec
            linear = [c.n_vars for c in cdec.linear]
            cones = [4] * cdec.cone_cols.shape[0]
            return np.array(linear + cones, dtype=np.int64)
        return np.array(
            [c.n_vars for c in self.dec.components], dtype=np.int64
        )

    @property
    def n_vars(self) -> int:
        if self.method is Method.SOCP:
            return int(self.conic.n_vars)
        return int(self.lp.n_vars)

    def objective(self, x: np.ndarray) -> float:
        if self.method is Method.SOCP:
            return self.conic.objective(x)
        return float(np.asarray(self.lp.cost, dtype=HOST_DTYPE) @ x)


def build_method_problem(net, method) -> MethodProblem:
    """Build the model + decomposition of one ladder rung for a feeder."""
    method = Method.parse(method)
    if method is Method.SOCP:
        spec = METHOD_SPECS[method]
        conic = build_bfm_socp(net, **spec.build_kwargs)
        return MethodProblem(
            method=method,
            network=net,
            conic=conic,
            conic_dec=decompose_conic(conic),
        )
    lp = build_centralized_lp(net)
    return MethodProblem(method=method, network=net, lp=lp, dec=decompose(lp))


def make_method_solver(
    problem: MethodProblem,
    config: ADMMConfig | None = None,
    tracer=None,
    backend=None,
    precision: str | None = None,
):
    """Instantiate the rung's strategy on the shared loop/backend protocol.

    With ``config=None`` the method's spec defaults apply (its tolerance
    tier); pass an explicit :class:`ADMMConfig` to override.
    """
    spec = METHOD_SPECS[problem.method]
    cfg = config if config is not None else spec.default_config()
    if problem.method is Method.LINEARIZED:
        return SolverFreeADMM(
            problem.dec, cfg, tracer=tracer, backend=backend,
            precision=precision,
        )
    if problem.method is Method.QP:
        return BenchmarkADMM(
            problem.dec, cfg, local_mode="projection", tracer=tracer,
            backend=backend, precision=precision,
        )
    return ConicSolverFreeADMM(
        problem.conic_dec, cfg, backend=backend, precision=precision
    )


def solve_with_method(
    net,
    method,
    config: ADMMConfig | None = None,
    tracer=None,
    backend=None,
    precision: str | None = None,
) -> tuple[MethodProblem, ADMMResult]:
    """Build and solve one rung end to end; returns (problem, result)."""
    problem = build_method_problem(net, method)
    solver = make_method_solver(
        problem, config, tracer=tracer, backend=backend, precision=precision
    )
    return problem, solver.solve()


def reference_objective(problem: MethodProblem) -> float:
    """The rung's HiGHS ground truth (LP directly, SOCP by cutting planes)."""
    if problem.method is Method.SOCP:
        return solve_reference_socp(problem.conic).objective
    return solve_reference(problem.lp).objective


def modeled_iteration_times(
    problem: MethodProblem, device: DeviceSpec = A100
) -> UpdateTimes:
    """Price one ADMM iteration of the rung with the GPU cost model.

    Every rung is the same three-stage kernel stream — scatter-add/clip
    global step, batched local projections, saxpy dual step — so the
    model applies uniformly; the conic rung's cone projections enter as
    width-4 components (a handful of fused elementwise kernels, bounded
    above by the batched-matvec cost of a 4-wide block).
    """
    return iteration_times_from_sizes(
        device, problem.component_sizes, problem.n_vars
    )


@dataclass
class MethodReport:
    """One rung's measured accuracy and modeled cost on one feeder."""

    method: str
    converged: bool
    iterations: int
    objective: float
    reference_objective: float
    gap: float
    gap_tol: float
    within_tier: bool
    modeled_iteration_s: float
    modeled_solve_s: float
    cone_violation: float | None = None

    def to_dict(self) -> dict:
        return {
            "method": self.method,
            "converged": self.converged,
            "iterations": self.iterations,
            "objective": self.objective,
            "reference_objective": self.reference_objective,
            "gap": self.gap,
            "gap_tol": self.gap_tol,
            "within_tier": self.within_tier,
            "modeled_iteration_s": self.modeled_iteration_s,
            "modeled_solve_s": self.modeled_solve_s,
            "cone_violation": self.cone_violation,
        }


def method_report(
    net,
    methods=None,
    device: DeviceSpec = A100,
    backend=None,
    precision: str | None = None,
    metrics=None,
) -> list[MethodReport]:
    """Run the cross-method validation on one feeder.

    Solves each requested rung at its spec defaults, compares the
    objective against the rung's HiGHS reference, and prices the solve
    with the GPU cost model.  ``metrics`` (a
    :class:`~repro.telemetry.MetricsRegistry`) receives
    ``methods.validated`` / ``methods.tier_violations`` counters when
    provided.
    """
    wanted = [Method.parse(m) for m in (methods or list(Method))]
    reports = []
    for method in wanted:
        spec = METHOD_SPECS[method]
        problem, result = solve_with_method(
            net, method, backend=backend, precision=precision
        )
        ref = reference_objective(problem)
        x = np.asarray(result.x, dtype=HOST_DTYPE)
        obj = problem.objective(x)
        gap = abs(obj - ref) / max(abs(ref), 1e-12)
        times = modeled_iteration_times(problem, device)
        reports.append(
            MethodReport(
                method=method.value,
                converged=bool(result.converged),
                iterations=int(result.iterations),
                objective=obj,
                reference_objective=ref,
                gap=float(gap),
                gap_tol=spec.gap_tol,
                within_tier=bool(result.converged and gap <= spec.gap_tol),
                modeled_iteration_s=times.total_s,
                modeled_solve_s=times.total_s * int(result.iterations),
                cone_violation=(
                    problem.conic.cone_violation(x)
                    if method is Method.SOCP
                    else None
                ),
            )
        )
        if metrics is not None:
            metrics.counter("methods.validated").inc()
            if not reports[-1].within_tier:
                metrics.counter("methods.tier_violations").inc()
    return reports
