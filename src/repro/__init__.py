"""repro: GPU-accelerated solver-free ADMM for distributed multi-phase OPF.

A from-scratch reproduction of "A GPU-Accelerated Distributed Algorithm for
Optimal Power Flow in Distribution Systems" (IPPS 2025).

Quickstart
----------
>>> import repro
>>> net = repro.ieee13()
>>> lp = repro.build_centralized_lp(net)
>>> dec = repro.decompose(lp)
>>> result = repro.SolverFreeADMM(dec).solve()
>>> result.converged
True
"""

from repro.core import (
    ADMMConfig,
    ADMMResult,
    BenchmarkADMM,
    SolverFreeADMM,
)
from repro.decomposition import DecomposedOPF, decompose
from repro.feeders import ieee13
from repro.formulation import CentralizedLP, build_centralized_lp
from repro.network import (
    Bus,
    Connection,
    DistributionNetwork,
    Generator,
    Line,
    Load,
)
from repro.network.analysis import solution_report, voltage_profile
from repro.reference import solve_reference

__version__ = "1.0.0"

__all__ = [
    "SolverFreeADMM",
    "BenchmarkADMM",
    "ADMMConfig",
    "ADMMResult",
    "decompose",
    "DecomposedOPF",
    "build_centralized_lp",
    "CentralizedLP",
    "solve_reference",
    "DistributionNetwork",
    "Bus",
    "Line",
    "Load",
    "Generator",
    "Connection",
    "ieee13",
    "solution_report",
    "voltage_profile",
    "__version__",
]
