"""Dense primal-dual interior-point solver for box+equality QPs.

This is the *optimization solver* that the paper's **benchmark** ADMM must
call for every component at every iteration (Section V-B): the local
subproblem of model (8),

    min  1/2 x^T Q x + d^T x
    s.t. A x = b,        l <= x <= u,

with ``Q`` symmetric positive definite (the benchmark uses ``Q = rho I``).
Algorithm 1 never calls this module — that is the paper's entire point — but
the baseline's per-iteration cost is dominated by it, which is what Figures
1 and 3 measure.

The implementation is a standard infeasible-start primal-dual path-following
method on the KKT system

    Q x + d + A^T y - z_l + z_u = 0
    A x = b
    (x - l) .* z_l = mu,   (u - x) .* z_u = mu,   z_l, z_u >= 0

with a fraction-to-boundary step rule and a geometrically decreasing
barrier.  Infinite bounds are simply excluded from the barrier terms; a
problem with no finite bounds reduces to a single KKT solve.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.exceptions import QPSolverError


@dataclass
class QPResult:
    """Solution report of :func:`solve_qp_box_eq`."""

    x: np.ndarray
    y: np.ndarray  # equality multipliers
    iterations: int
    converged: bool
    kkt_residual: float


def _solve_kkt_equality(q, d, a, b):
    """Single KKT solve for the equality-only QP (no finite bounds)."""
    n = q.shape[0]
    m = a.shape[0]
    if m == 0:
        return np.linalg.solve(q, -d), np.zeros(0)
    kkt = np.block([[q, a.T], [a, np.zeros((m, m))]])
    rhs = np.concatenate([-d, b])
    try:
        sol = np.linalg.solve(kkt, rhs)
    except np.linalg.LinAlgError as exc:
        raise QPSolverError("singular KKT system (A not full row rank?)") from exc
    return sol[:n], sol[n:]


def solve_qp_box_eq(
    q: np.ndarray,
    d: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    tol: float = 1e-9,
    max_iter: int = 100,
) -> QPResult:
    """Solve ``min 1/2 x'Qx + d'x  s.t. Ax=b, lb<=x<=ub``.

    Parameters
    ----------
    q:
        SPD Hessian, shape (n, n).
    a, b:
        Equality system; ``a`` must have full row rank (row-reduce first).
    lb, ub:
        Bounds; ``±inf`` entries are unconstrained.
    tol:
        KKT residual tolerance (infinity norm).
    max_iter:
        Newton iteration budget.

    Raises
    ------
    QPSolverError
        On inconsistent bounds, singular KKT systems, or non-convergence.
    """
    q = np.asarray(q, dtype=float)
    d = np.asarray(d, dtype=float)
    a = np.asarray(a, dtype=float).reshape(-1, q.shape[0])
    b = np.asarray(b, dtype=float).reshape(-1)
    lb = np.asarray(lb, dtype=float)
    ub = np.asarray(ub, dtype=float)
    n = q.shape[0]
    m = a.shape[0]
    if np.any(lb > ub):
        raise QPSolverError("inconsistent bounds: lb > ub")

    has_l = np.isfinite(lb)
    has_u = np.isfinite(ub)
    if not has_l.any() and not has_u.any():
        x, y = _solve_kkt_equality(q, d, a, b)
        res = np.abs(q @ x + d + (a.T @ y if m else 0.0)).max() if n else 0.0
        return QPResult(x=x, y=y, iterations=1, converged=True, kkt_residual=float(res))

    il = np.where(has_l)[0]
    iu = np.where(has_u)[0]

    # Strictly interior primal start; duals start at 1.
    x = np.zeros(n)
    both = has_l & has_u
    x[both] = 0.5 * (lb[both] + ub[both])
    only_l = has_l & ~has_u
    x[only_l] = lb[only_l] + 1.0
    only_u = has_u & ~has_l
    x[only_u] = ub[only_u] - 1.0
    # Guard against degenerate boxes (lb == ub): nudge inside is impossible,
    # so shrink the complementarity target instead of perturbing x.
    width = np.where(both, ub - lb, np.inf)
    if np.any(width[both] <= 0):
        # Fixed variables: substitute and re-solve on the free subspace.
        fixed = both & (ub - lb <= 0)
        free = ~fixed
        if not free.any():
            xf = lb.copy()
            viol = np.abs(a @ xf - b).max() if m else 0.0
            if viol > 1e-8:
                raise QPSolverError("all variables fixed but Ax=b violated")
            return QPResult(x=xf, y=np.zeros(m), iterations=0, converged=True, kkt_residual=0.0)
        x_fixed = np.where(fixed, lb, 0.0)
        sub = solve_qp_box_eq(
            q[np.ix_(free, free)],
            d[free] + q[np.ix_(free, fixed)] @ lb[fixed],
            a[:, free],
            b - a[:, fixed] @ lb[fixed],
            lb[free],
            ub[free],
            tol=tol,
            max_iter=max_iter,
        )
        xf = x_fixed
        xf[free] = sub.x
        return QPResult(x=xf, y=sub.y, iterations=sub.iterations, converged=sub.converged, kkt_residual=sub.kkt_residual)

    y = np.zeros(m)
    zl = np.ones(len(il))
    zu = np.ones(len(iu))
    mu = 1.0

    for it in range(1, max_iter + 1):
        # Guard against slack underflow on strongly active bounds.
        sl = np.maximum(x[il] - lb[il], 1e-300)
        su = np.maximum(ub[iu] - x[iu], 1e-300)

        # KKT residuals.
        r_dual = q @ x + d + (a.T @ y if m else 0.0)
        np.subtract.at(r_dual, il, zl)
        np.add.at(r_dual, iu, zu)
        r_prim = a @ x - b if m else np.zeros(0)
        r_cl = sl * zl - mu
        r_cu = su * zu - mu

        kkt_res = max(
            np.abs(r_dual).max(initial=0.0),
            np.abs(r_prim).max(initial=0.0),
            (sl * zl).max(initial=0.0),
            (su * zu).max(initial=0.0),
        )
        if kkt_res < tol and mu < tol:
            return QPResult(x=x, y=y, iterations=it, converged=True, kkt_residual=float(kkt_res))

        # Condensed Newton system:
        #   (Q + D) dx + A^T dy = -r_dual - r_cl / sl + r_cu / su
        # obtained by eliminating dz_l, dz_u from the complementarity rows.
        diag = np.zeros(n)
        np.add.at(diag, il, zl / sl)
        np.add.at(diag, iu, zu / su)
        h = q + np.diag(diag)
        rhs_x = -r_dual.copy()
        np.subtract.at(rhs_x, il, r_cl / sl)
        np.add.at(rhs_x, iu, r_cu / su)

        if m:
            kkt = np.block([[h, a.T], [a, np.zeros((m, m))]])
            rhs = np.concatenate([rhs_x, -r_prim])
            try:
                sol = np.linalg.solve(kkt, rhs)
            except np.linalg.LinAlgError as exc:
                raise QPSolverError("singular Newton KKT system") from exc
            dx, dy = sol[:n], sol[n:]
        else:
            dx = np.linalg.solve(h, rhs_x)
            dy = np.zeros(0)

        dzl = (-r_cl - zl * dx[il]) / sl
        dzu = (-r_cu + zu * dx[iu]) / su

        # Fraction-to-boundary step lengths.
        def _max_step(v, dv):
            neg = dv < 0
            if not neg.any():
                return 1.0
            return min(1.0, float(0.995 * np.min(-v[neg] / dv[neg])))

        alpha_p = min(_max_step(sl, dx[il]), _max_step(su, -dx[iu]))
        alpha_d = min(_max_step(zl, dzl), _max_step(zu, dzu))

        x = x + alpha_p * dx
        y = y + alpha_d * dy
        zl = zl + alpha_d * dzl
        zu = zu + alpha_d * dzu

        # Barrier schedule: follow the central path down geometrically once
        # complementarity catches up with the barrier target.
        gap = (np.dot(x[il] - lb[il], zl) + np.dot(ub[iu] - x[iu], zu)) / max(
            len(il) + len(iu), 1
        )
        mu = min(mu, max(0.2 * gap, 1e-16))

    return QPResult(x=x, y=y, iterations=max_iter, converged=False, kkt_residual=float(kkt_res))
