"""Dense QP solver substrate used by the benchmark (solver-based) ADMM:
an interior-point method for box+equality QPs and an exact semismooth-Newton
projection onto box-affine intersections."""

from repro.qp.interior_point import QPResult, solve_qp_box_eq
from repro.qp.projection import project_box_affine

__all__ = ["solve_qp_box_eq", "QPResult", "project_box_affine"]
