"""Exact projection onto {Ax = b} ∩ [l, u] via semismooth Newton.

The benchmark ADMM's local subproblem — QP (14) plus the bound constraints
of model (8) — is mathematically the Euclidean projection of
``v = B_s x + lam_s / rho`` onto the intersection of an affine subspace and
a box.  The dual of that projection is an m-dimensional piecewise-smooth
root-finding problem

    phi(nu) = A clip(v - A^T nu, l, u) - b = 0,

whose generalized Jacobian is ``-A D A^T`` with ``D`` the 0/1 mask of
strictly-inside coordinates.  A damped semismooth Newton method with
Tikhonov-regularized steps solves it in a handful of iterations.

This module exists so the *iterate sequence* of the benchmark ADMM can be
reproduced quickly when only iteration counts (not authentic solver wall
time) are needed — e.g. running the 8500-bus baseline to convergence for
Table V's iteration column.  Timing experiments always use the authentic
interior-point path.
"""

from __future__ import annotations

import numpy as np

from repro.qp.interior_point import solve_qp_box_eq
from repro.utils.exceptions import QPSolverError


def project_box_affine(
    v: np.ndarray,
    a: np.ndarray,
    b: np.ndarray,
    lb: np.ndarray,
    ub: np.ndarray,
    tol: float = 1e-10,
    max_iter: int = 100,
) -> np.ndarray:
    """Project ``v`` onto ``{x : A x = b, lb <= x <= ub}``.

    Falls back to the interior-point solver on (rare) Newton breakdowns, so
    the result is always the exact projection.

    The Newton iteration itself always runs in fp64 (it solves
    regularized linear systems, where fp32 pivots are not trustworthy),
    but the result comes back in the caller's floating dtype: an fp32 hot
    loop that projects its iterates is not silently promoted to fp64
    state.

    Raises
    ------
    QPSolverError
        If both the Newton method and the interior-point fallback fail.
    """
    out_dtype = np.asarray(v).dtype
    if out_dtype.kind != "f":
        out_dtype = np.dtype(np.float64)
    v = np.asarray(v, dtype=float)
    a = np.asarray(a, dtype=float)
    b = np.asarray(b, dtype=float).reshape(-1)
    m, n = a.shape if a.ndim == 2 else (0, v.shape[0])
    if m == 0:
        return np.clip(v, lb, ub).astype(out_dtype, copy=False)

    nu = np.zeros(m)
    x = np.clip(v - a.T @ nu, lb, ub)
    phi = a @ x - b
    norm = np.linalg.norm(phi)
    scale = max(1.0, float(np.linalg.norm(b)))

    for _ in range(max_iter):
        if norm <= tol * scale:
            return x.astype(out_dtype, copy=False)
        inner = v - a.T @ nu
        active_free = (inner > lb) & (inner < ub)
        ad = a[:, active_free]
        jac0 = ad @ ad.T
        trace = max(np.trace(jac0) / max(m, 1), 1.0)
        # Levenberg-Marquardt: the generalized Jacobian is rank deficient
        # whenever more bounds are active than equality rows allow, so
        # escalate the regularization until a descent step is found.
        improved = False
        reg = 1e-12
        while reg <= 1e3 and not improved:
            jac = jac0 + reg * trace * np.eye(m)
            try:
                step = np.linalg.solve(jac, phi)
            except np.linalg.LinAlgError:
                reg *= 100.0
                continue
            t = 1.0
            for _ in range(30):
                nu_new = nu + t * step
                x_new = np.clip(v - a.T @ nu_new, lb, ub)
                phi_new = a @ x_new - b
                norm_new = np.linalg.norm(phi_new)
                if norm_new < norm * (1 - 1e-4 * t) or norm_new <= tol * scale:
                    nu, x, phi, norm = nu_new, x_new, phi_new, norm_new
                    improved = True
                    break
                t *= 0.5
            reg *= 100.0
        if not improved:
            break

    if norm <= 1e-8 * scale:
        return x.astype(out_dtype, copy=False)
    # Fallback: the problem as an explicit QP (Q = I, d = -v).
    result = solve_qp_box_eq(
        np.eye(n), -v, a, b, np.asarray(lb, dtype=float), np.asarray(ub, dtype=float)
    )
    if not result.converged:
        raise QPSolverError("projection failed in both Newton and interior-point paths")
    return result.x.astype(out_dtype, copy=False)
