"""Solution analysis: operator-facing quantities derived from an OPF result.

Turns the raw solution vector of a solve into the quantities a distribution
engineer reads: per-bus voltage profiles, feeder losses, line loadings,
phase imbalance and substation exchange.  Used by the examples and handy
for downstream adopters.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formulation.centralized import CentralizedLP


@dataclass(frozen=True)
class VoltageProfile:
    """Per-bus-phase voltage magnitudes (pu, not squared)."""

    buses: list[str]
    phases: list[int]
    magnitudes: np.ndarray

    @property
    def v_min(self) -> float:
        return float(self.magnitudes.min())

    @property
    def v_max(self) -> float:
        return float(self.magnitudes.max())

    def worst_bus(self) -> tuple[str, int, float]:
        """(bus, phase, |V|) at the lowest voltage."""
        i = int(np.argmin(self.magnitudes))
        return self.buses[i], self.phases[i], float(self.magnitudes[i])


def voltage_profile(lp: CentralizedLP, x: np.ndarray) -> VoltageProfile:
    """Extract the voltage profile from a solution vector."""
    buses: list[str] = []
    phases: list[int] = []
    mags: list[float] = []
    vi = lp.var_index
    for bus in lp.network.buses.values():
        for phi in bus.phases:
            w = float(x[vi.index(("w", bus.name, phi))])
            buses.append(bus.name)
            phases.append(phi)
            mags.append(float(np.sqrt(max(w, 0.0))))
    return VoltageProfile(buses=buses, phases=phases, magnitudes=np.asarray(mags))


def substation_exchange(lp: CentralizedLP, x: np.ndarray) -> tuple[float, float]:
    """Total (P, Q) injected by all generators at the substation bus."""
    net = lp.network
    if net.substation is None:
        raise ValueError("network has no substation designated")
    vi = lp.var_index
    p = q = 0.0
    for gen in net.generators_at(net.substation):
        for phi in gen.phases:
            p += float(x[vi.index(("pg", gen.name, phi))])
            q += float(x[vi.index(("qg", gen.name, phi))])
    return p, q


def total_losses(lp: CentralizedLP, x: np.ndarray) -> float:
    """Total real losses: sum over lines and phases of ``p_f + p_t``.

    In the linearized model (5a) losses reduce to the shunt terms, so this
    is exactly the generation-minus-consumption balance.
    """
    vi = lp.var_index
    loss = 0.0
    for line in lp.network.lines.values():
        for phi in line.phases:
            loss += float(x[vi.index(("pf", line.name, phi))])
            loss += float(x[vi.index(("pt", line.name, phi))])
    return loss


def line_loading(lp: CentralizedLP, x: np.ndarray) -> dict[str, float]:
    """Per-line worst-phase loading fraction ``|p| / p_max``."""
    vi = lp.var_index
    loading: dict[str, float] = {}
    for line in lp.network.lines.values():
        worst = 0.0
        for a, phi in enumerate(line.phases):
            limit = float(line.p_max[a])
            if limit <= 0 or not np.isfinite(limit):
                continue
            for kind in ("pf", "pt"):
                worst = max(worst, abs(float(x[vi.index((kind, line.name, phi))])) / limit)
        loading[line.name] = worst
    return loading


def phase_imbalance(lp: CentralizedLP, x: np.ndarray, bus: str) -> float:
    """Voltage imbalance at ``bus``: max deviation from the phase mean,
    normalized by the mean (0 for balanced or single-phase buses)."""
    net = lp.network
    if bus not in net.buses:
        raise KeyError(f"unknown bus {bus!r}")
    vi = lp.var_index
    mags = np.array(
        [np.sqrt(max(float(x[vi.index(("w", bus, phi))]), 0.0)) for phi in net.buses[bus].phases]
    )
    if mags.size <= 1:
        return 0.0
    mean = float(mags.mean())
    if mean == 0.0:
        return 0.0
    return float(np.max(np.abs(mags - mean)) / mean)


def solution_report(lp: CentralizedLP, x: np.ndarray) -> dict:
    """One-call summary used by the CLI and examples."""
    profile = voltage_profile(lp, x)
    p_sub, q_sub = substation_exchange(lp, x)
    loading = line_loading(lp, x)
    worst_line = max(loading, key=loading.get) if loading else None
    return {
        "objective": float(lp.cost @ x),
        "substation_p": p_sub,
        "substation_q": q_sub,
        "losses": total_losses(lp, x),
        "v_min": profile.v_min,
        "v_max": profile.v_max,
        "worst_bus": profile.worst_bus()[0],
        "max_loading": loading[worst_line] if worst_line else 0.0,
        "worst_line": worst_line,
        "equality_violation": lp.equality_violation(x),
        "bound_violation": lp.bound_violation(x),
    }
