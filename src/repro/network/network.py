"""The :class:`DistributionNetwork` container.

Holds buses, lines (incl. transformers), generators and loads, validates
cross-references and phase consistency, and exposes topology queries through
networkx.  All electrical data is per-unit on ``(mva_base, kv_base)``.

The container is mutable on purpose: the paper motivates component-wise
decomposition with *dynamically changing topologies*, and the examples
exercise online reconfiguration (removing/adding lines, adding DERs) followed
by warm-started re-solves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from repro.network.components import Bus, Generator, Line, Load
from repro.utils.exceptions import NetworkValidationError


@dataclass
class DistributionNetwork:
    """A multi-phase distribution network model.

    Parameters
    ----------
    name:
        Instance label (e.g. ``"ieee13"``).
    mva_base, kv_base:
        System bases; electrical data is already per-unit, the bases are
        carried for reporting and data import.
    """

    name: str = "network"
    mva_base: float = 1.0
    kv_base: float = 4.16
    buses: dict[str, Bus] = field(default_factory=dict)
    lines: dict[str, Line] = field(default_factory=dict)
    generators: dict[str, Generator] = field(default_factory=dict)
    loads: dict[str, Load] = field(default_factory=dict)
    substation: str | None = None
    # Lazily built bus -> attached-component indexes; invalidated by every
    # mutator so large networks get O(1) incidence queries.
    _adjacency: dict | None = field(default=None, repr=False, compare=False)

    def _invalidate(self) -> None:
        self._adjacency = None

    def _indexes(self) -> dict:
        if self._adjacency is None:
            lines_at: dict[str, list[str]] = {}
            gens_at: dict[str, list[str]] = {}
            loads_at: dict[str, list[str]] = {}
            for line in self.lines.values():
                lines_at.setdefault(line.from_bus, []).append(line.name)
                lines_at.setdefault(line.to_bus, []).append(line.name)
            for gen in self.generators.values():
                gens_at.setdefault(gen.bus, []).append(gen.name)
            for load in self.loads.values():
                loads_at.setdefault(load.bus, []).append(load.name)
            self._adjacency = {"lines": lines_at, "gens": gens_at, "loads": loads_at}
        return self._adjacency

    # ------------------------------------------------------------------
    # Mutation API
    # ------------------------------------------------------------------
    def add_bus(self, bus: Bus) -> Bus:
        if bus.name in self.buses:
            raise NetworkValidationError(f"duplicate bus {bus.name!r}")
        self.buses[bus.name] = bus
        self._invalidate()
        return bus

    def add_line(self, line: Line) -> Line:
        if line.name in self.lines:
            raise NetworkValidationError(f"duplicate line {line.name!r}")
        self._check_line(line)
        self.lines[line.name] = line
        self._invalidate()
        return line

    def add_generator(self, gen: Generator) -> Generator:
        if gen.name in self.generators:
            raise NetworkValidationError(f"duplicate generator {gen.name!r}")
        self._check_attached(gen.bus, gen.phases, f"generator {gen.name}")
        self.generators[gen.name] = gen
        self._invalidate()
        return gen

    def add_load(self, load: Load) -> Load:
        if load.name in self.loads:
            raise NetworkValidationError(f"duplicate load {load.name!r}")
        self._check_attached(load.bus, load.bus_phases, f"load {load.name}")
        self.loads[load.name] = load
        self._invalidate()
        return load

    def remove_line(self, name: str) -> Line:
        """Remove a line (topology reconfiguration); returns the removed line."""
        try:
            removed = self.lines.pop(name)
        except KeyError as exc:
            raise NetworkValidationError(f"no line {name!r}") from exc
        self._invalidate()
        return removed

    def remove_load(self, name: str) -> Load:
        try:
            removed = self.loads.pop(name)
        except KeyError as exc:
            raise NetworkValidationError(f"no load {name!r}") from exc
        self._invalidate()
        return removed

    def remove_generator(self, name: str) -> Generator:
        try:
            removed = self.generators.pop(name)
        except KeyError as exc:
            raise NetworkValidationError(f"no generator {name!r}") from exc
        self._invalidate()
        return removed

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def _check_line(self, line: Line) -> None:
        for end in (line.from_bus, line.to_bus):
            if end not in self.buses:
                raise NetworkValidationError(f"line {line.name}: unknown bus {end!r}")
        for end in (line.from_bus, line.to_bus):
            missing = set(line.phases) - set(self.buses[end].phases)
            if missing:
                raise NetworkValidationError(
                    f"line {line.name}: phases {sorted(missing)} absent at bus {end!r}"
                )

    def _check_attached(self, bus: str, phases: tuple[int, ...], what: str) -> None:
        if bus not in self.buses:
            raise NetworkValidationError(f"{what}: unknown bus {bus!r}")
        missing = set(phases) - set(self.buses[bus].phases)
        if missing:
            raise NetworkValidationError(
                f"{what}: phases {sorted(missing)} absent at bus {bus!r}"
            )

    def validate(self, require_radial: bool = False, require_connected: bool = True) -> None:
        """Re-validate all cross references and (optionally) topology.

        Raises
        ------
        NetworkValidationError
            On dangling references, phase mismatches, disconnection, or
            (if requested) a non-radial topology.
        """
        if not self.buses:
            raise NetworkValidationError("network has no buses")
        for line in self.lines.values():
            self._check_line(line)
        for gen in self.generators.values():
            self._check_attached(gen.bus, gen.phases, f"generator {gen.name}")
        for load in self.loads.values():
            self._check_attached(load.bus, load.bus_phases, f"load {load.name}")
        if self.substation is not None and self.substation not in self.buses:
            raise NetworkValidationError(f"substation bus {self.substation!r} unknown")
        g = self.graph()
        if require_connected and len(self.buses) > 1 and not nx.is_connected(g):
            n_cc = nx.number_connected_components(g)
            raise NetworkValidationError(f"network is disconnected ({n_cc} components)")
        if require_radial and not self.is_radial():
            raise NetworkValidationError("network is not radial")

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def graph(self) -> nx.MultiGraph:
        """Bus-level connectivity graph; parallel lines become parallel edges."""
        g = nx.MultiGraph()
        g.add_nodes_from(self.buses)
        for line in self.lines.values():
            g.add_edge(line.from_bus, line.to_bus, key=line.name, line=line.name)
        return g

    def is_radial(self) -> bool:
        """True if the network graph is a tree (connected and acyclic)."""
        g = self.graph()
        return g.number_of_nodes() - 1 == g.number_of_edges() and (
            g.number_of_nodes() <= 1 or nx.is_connected(g)
        )

    def lines_at(self, bus: str) -> list[Line]:
        """All lines incident to ``bus`` (either endpoint)."""
        return [self.lines[n] for n in self._indexes()["lines"].get(bus, [])]

    def generators_at(self, bus: str) -> list[Generator]:
        return [self.generators[n] for n in self._indexes()["gens"].get(bus, [])]

    def loads_at(self, bus: str) -> list[Load]:
        return [self.loads[n] for n in self._indexes()["loads"].get(bus, [])]

    def leaf_buses(self) -> list[str]:
        """Buses of degree 1 in the connectivity graph (excluding substation)."""
        g = self.graph()
        return [b for b in self.buses if g.degree(b) == 1 and b != self.substation]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def n_buses(self) -> int:
        return len(self.buses)

    @property
    def n_lines(self) -> int:
        return len(self.lines)

    @property
    def total_load_p(self) -> float:
        """Total reference real power demand (per unit)."""
        return float(sum(np.sum(l.p_ref) for l in self.loads.values()))

    def phase_counts(self) -> dict[int, int]:
        """Histogram of per-bus phase counts (diagnostics for Table IV)."""
        hist: dict[int, int] = {1: 0, 2: 0, 3: 0}
        for bus in self.buses.values():
            hist[bus.n_phases] += 1
        return hist

    def copy(self) -> "DistributionNetwork":
        """Deep copy (components are re-constructed; arrays are copied)."""
        import copy as _copy

        return _copy.deepcopy(self)

    def summary(self) -> str:
        return (
            f"DistributionNetwork({self.name!r}: {self.n_buses} buses, "
            f"{self.n_lines} lines, {len(self.generators)} generators, "
            f"{len(self.loads)} loads)"
        )
