"""Line impedance configurations and per-unit conversion.

The IEEE distribution test feeders specify overhead/underground conductor
*configurations* as phase-frame series impedance matrices in ohms per mile
(Kersting's reduced Carson matrices).  :class:`LineConfig` stores one such
configuration; :func:`line_impedance_pu` scales it by length and converts to
per-unit on a given base.

The configuration data encoded in :data:`IEEE13_CONFIGS` reproduces the
published IEEE 13-bus feeder configurations 601-607 (values transcribed from
the test-feeder documentation; see DESIGN.md for provenance notes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.policy import HOST_DTYPE
from repro.network.phases import phase_tuple

FEET_PER_MILE = 5280.0


@dataclass(frozen=True)
class LineConfig:
    """A conductor configuration: series impedance per mile over ``phases``."""

    name: str
    phases: tuple[int, ...]
    r_per_mile: np.ndarray  # ohm/mile, (P, P)
    x_per_mile: np.ndarray  # ohm/mile, (P, P)
    b_sh_per_mile: np.ndarray | None = None  # total charging susceptance, uS/mile

    def __post_init__(self) -> None:
        object.__setattr__(self, "phases", phase_tuple(self.phases))
        n = len(self.phases)
        r = np.asarray(self.r_per_mile, dtype=HOST_DTYPE)
        x = np.asarray(self.x_per_mile, dtype=HOST_DTYPE)
        if r.shape != (n, n) or x.shape != (n, n):
            raise ValueError(f"config {self.name}: impedance must be ({n},{n})")
        object.__setattr__(self, "r_per_mile", r)
        object.__setattr__(self, "x_per_mile", x)

    def submatrix(self, phases: tuple[int, ...]) -> tuple[np.ndarray, np.ndarray]:
        """Restrict the configuration to a subset of its phases."""
        phases = phase_tuple(phases)
        idx = [self.phases.index(p) for p in phases]
        return (
            self.r_per_mile[np.ix_(idx, idx)].copy(),
            self.x_per_mile[np.ix_(idx, idx)].copy(),
        )


def impedance_base_ohm(kv_ll: float, mva_base: float) -> float:
    """Impedance base (ohms) for a line-to-line kV and three-phase MVA base."""
    if kv_ll <= 0 or mva_base <= 0:
        raise ValueError("bases must be positive")
    return kv_ll**2 / mva_base


def line_impedance_pu(
    config: LineConfig,
    length_ft: float,
    kv_ll: float,
    mva_base: float,
    phases: tuple[int, ...] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-unit series ``(r, x)`` matrices for a segment of ``length_ft`` feet.

    Parameters
    ----------
    config:
        Conductor configuration (ohms/mile).
    length_ft:
        Segment length in feet.
    kv_ll:
        Line-to-line voltage base in kV.
    mva_base:
        Three-phase power base in MVA.
    phases:
        Optional phase subset; defaults to the configuration's phases.
    """
    if length_ft < 0:
        raise ValueError("length must be nonnegative")
    if phases is None:
        r_mile, x_mile = config.r_per_mile, config.x_per_mile
    else:
        r_mile, x_mile = config.submatrix(phases)
    zb = impedance_base_ohm(kv_ll, mva_base)
    scale = (length_ft / FEET_PER_MILE) / zb
    return r_mile * scale, x_mile * scale


def _cfg(name, phases, r, x):
    return LineConfig(name, phases, np.array(r), np.array(x))


#: IEEE 13-bus feeder configurations (ohms/mile).
IEEE13_CONFIGS: dict[str, LineConfig] = {
    "601": _cfg(
        "601",
        (1, 2, 3),
        [[0.3465, 0.1560, 0.1580], [0.1560, 0.3375, 0.1535], [0.1580, 0.1535, 0.3414]],
        [[1.0179, 0.5017, 0.4236], [0.5017, 1.0478, 0.3849], [0.4236, 0.3849, 1.0348]],
    ),
    "602": _cfg(
        "602",
        (1, 2, 3),
        [[0.7526, 0.1580, 0.1560], [0.1580, 0.7475, 0.1535], [0.1560, 0.1535, 0.7436]],
        [[1.1814, 0.4236, 0.5017], [0.4236, 1.2112, 0.3849], [0.5017, 0.3849, 1.2060]],
    ),
    # Two-phase overhead (phases b, c).
    "603": _cfg(
        "603",
        (2, 3),
        [[1.3294, 0.2066], [0.2066, 1.3238]],
        [[1.3471, 0.4591], [0.4591, 1.3569]],
    ),
    # Two-phase overhead (phases a, c).
    "604": _cfg(
        "604",
        (1, 3),
        [[1.3238, 0.2066], [0.2066, 1.3294]],
        [[1.3569, 0.4591], [0.4591, 1.3471]],
    ),
    # Single-phase overhead (phase c).
    "605": _cfg("605", (3,), [[1.3292]], [[1.3475]]),
    # Three-phase underground concentric neutral.
    "606": _cfg(
        "606",
        (1, 2, 3),
        [[0.7982, 0.3192, 0.2849], [0.3192, 0.7891, 0.3192], [0.2849, 0.3192, 0.7982]],
        [[0.4463, 0.0328, -0.0143], [0.0328, 0.4041, 0.0328], [-0.0143, 0.0328, 0.4463]],
    ),
    # Single-phase underground (phase a).
    "607": _cfg("607", (1,), [[1.3425]], [[0.5124]]),
}
