"""Multi-phase distribution network data model.

This package is the paper's physical substrate: buses, lines, transformers,
generators and wye/delta ZIP loads, with per-unit impedance handling and
topology utilities.  See :class:`repro.network.DistributionNetwork`.
"""

from repro.network.components import Bus, Connection, Generator, Line, Load, LoadType
from repro.network.impedance import (
    IEEE13_CONFIGS,
    LineConfig,
    impedance_base_ohm,
    line_impedance_pu,
)
from repro.network.network import DistributionNetwork
from repro.network.phases import (
    ALL_PHASES,
    DELTA_BRANCH_PHASES,
    phase_tuple,
    phases_of_delta_branches,
)

__all__ = [
    "Bus",
    "Generator",
    "Line",
    "Load",
    "Connection",
    "LoadType",
    "DistributionNetwork",
    "LineConfig",
    "IEEE13_CONFIGS",
    "line_impedance_pu",
    "impedance_base_ohm",
    "ALL_PHASES",
    "DELTA_BRANCH_PHASES",
    "phase_tuple",
    "phases_of_delta_branches",
]
