"""Phase bookkeeping for multi-phase (unbalanced) distribution networks.

Phases are identified by the integers ``1, 2, 3`` (phases a, b, c).  A phase
set is always stored as a sorted tuple so it can be used as a dict key and
iterated deterministically.

Delta-connected loads are described by *branches* between phase pairs; branch
``k`` connects the phase pair ``DELTA_BRANCH_PHASES[k]`` (1: a-b, 2: b-c,
3: c-a), following the indexing convention of the paper's equations (4g)-(4j).
"""

from __future__ import annotations

from collections.abc import Iterable

ALL_PHASES: tuple[int, int, int] = (1, 2, 3)

#: Delta branch id -> (from phase, to phase).
DELTA_BRANCH_PHASES: dict[int, tuple[int, int]] = {1: (1, 2), 2: (2, 3), 3: (3, 1)}


def phase_tuple(phases: Iterable[int]) -> tuple[int, ...]:
    """Normalize ``phases`` to a sorted, duplicate-free tuple.

    Raises
    ------
    ValueError
        If any phase is outside ``{1, 2, 3}`` or the set is empty.
    """
    ps = tuple(sorted(set(int(p) for p in phases)))
    if not ps:
        raise ValueError("phase set must be non-empty")
    if any(p not in ALL_PHASES for p in ps):
        raise ValueError(f"phases must be in {ALL_PHASES}, got {ps}")
    return ps


def delta_branch_tuple(branches: Iterable[int]) -> tuple[int, ...]:
    """Normalize delta branch ids (same domain ``{1, 2, 3}``)."""
    return phase_tuple(branches)


def phases_of_delta_branches(branches: Iterable[int]) -> tuple[int, ...]:
    """Bus phases touched by the given delta branches.

    A full three-branch delta touches all three phases; a single branch
    touches the two phases it spans.
    """
    touched: set[int] = set()
    for b in delta_branch_tuple(branches):
        touched.update(DELTA_BRANCH_PHASES[b])
    return tuple(sorted(touched))


def phase_index(phases: tuple[int, ...], phase: int) -> int:
    """Position of ``phase`` within the sorted phase tuple ``phases``."""
    try:
        return phases.index(phase)
    except ValueError as exc:
        raise ValueError(f"phase {phase} not in {phases}") from exc
