"""Physical component records of a multi-phase distribution network.

All electrical quantities are stored in per-unit on the network's system
base.  Per-phase quantities are NumPy arrays aligned with the component's
sorted ``phases`` tuple; matrix quantities (series impedance) are square
arrays over the same ordering.

The component set mirrors the paper's nomenclature (Table I):

* :class:`Bus` - node with squared-voltage-magnitude bounds and shunts,
* :class:`Generator` - dispatchable injection with box bounds (2a),
* :class:`Load` - voltage-dependent ZIP load, wye or delta connected (4),
* :class:`Line` - multi-phase series element (branch, transformer or
  regulator) with the linearized flow model (5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.backend.policy import HOST_DTYPE
from repro.network.phases import (
    DELTA_BRANCH_PHASES,
    delta_branch_tuple,
    phase_tuple,
    phases_of_delta_branches,
)


class Connection(enum.Enum):
    """Load connection type."""

    WYE = "wye"
    DELTA = "delta"


class LoadType(enum.Enum):
    """Named ZIP exponents: the paper labels loads as constant power,
    constant current, or constant impedance; the linearization (4a)-(4b)
    depends only on the exponent values ``alpha``/``beta``."""

    CONSTANT_POWER = 0.0
    CONSTANT_CURRENT = 1.0
    CONSTANT_IMPEDANCE = 2.0


def _per_phase(value, n: int, name: str) -> np.ndarray:
    """Broadcast a scalar or validate an array to a length-``n`` float array."""
    arr = np.asarray(value, dtype=HOST_DTYPE)
    if arr.ndim == 0:
        arr = np.full(n, float(arr))
    if arr.shape != (n,):
        raise ValueError(f"{name}: expected scalar or shape ({n},), got {arr.shape}")
    return arr.copy()


def _square(value, n: int, name: str) -> np.ndarray:
    arr = np.asarray(value, dtype=HOST_DTYPE)
    if arr.shape != (n, n):
        raise ValueError(f"{name}: expected shape ({n},{n}), got {arr.shape}")
    return arr.copy()


@dataclass
class Bus:
    """A network bus.

    Parameters
    ----------
    name:
        Unique bus identifier.
    phases:
        Phases present at the bus.
    w_min, w_max:
        Bounds on the squared voltage magnitude ``w`` per phase (2b).
    g_sh, b_sh:
        Per-phase shunt conductance / susceptance (used in (3)).
    """

    name: str
    phases: tuple[int, ...]
    w_min: np.ndarray = field(default=None)  # type: ignore[assignment]
    w_max: np.ndarray = field(default=None)  # type: ignore[assignment]
    g_sh: np.ndarray = field(default=None)  # type: ignore[assignment]
    b_sh: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        self.phases = phase_tuple(self.phases)
        n = len(self.phases)
        self.w_min = _per_phase(self.w_min if self.w_min is not None else 0.81, n, "w_min")
        self.w_max = _per_phase(self.w_max if self.w_max is not None else 1.21, n, "w_max")
        self.g_sh = _per_phase(self.g_sh if self.g_sh is not None else 0.0, n, "g_sh")
        self.b_sh = _per_phase(self.b_sh if self.b_sh is not None else 0.0, n, "b_sh")
        if np.any(self.w_min > self.w_max):
            raise ValueError(f"bus {self.name}: w_min exceeds w_max")

    @property
    def n_phases(self) -> int:
        return len(self.phases)


@dataclass
class Generator:
    """A dispatchable generation resource (substation head, PV inverter, ...).

    Box bounds per phase correspond to (2a); ``cost`` scales the generator's
    contribution to the linear objective (6a), which the paper takes as 1.
    """

    name: str
    bus: str
    phases: tuple[int, ...]
    p_min: np.ndarray = field(default=None)  # type: ignore[assignment]
    p_max: np.ndarray = field(default=None)  # type: ignore[assignment]
    q_min: np.ndarray = field(default=None)  # type: ignore[assignment]
    q_max: np.ndarray = field(default=None)  # type: ignore[assignment]
    cost: float = 1.0

    def __post_init__(self) -> None:
        self.phases = phase_tuple(self.phases)
        n = len(self.phases)
        self.p_min = _per_phase(self.p_min if self.p_min is not None else 0.0, n, "p_min")
        self.p_max = _per_phase(self.p_max if self.p_max is not None else 10.0, n, "p_max")
        self.q_min = _per_phase(self.q_min if self.q_min is not None else -10.0, n, "q_min")
        self.q_max = _per_phase(self.q_max if self.q_max is not None else 10.0, n, "q_max")
        if np.any(self.p_min > self.p_max) or np.any(self.q_min > self.q_max):
            raise ValueError(f"generator {self.name}: inconsistent bounds")

    @property
    def n_phases(self) -> int:
        return len(self.phases)


@dataclass
class Load:
    """A voltage-dependent (ZIP-linearized) load, wye or delta connected.

    For a **wye** load, ``phases`` are the bus phases it draws from, and the
    consumption model (4a)-(4b) is applied with ``w_hat = w`` (4c).

    For a **delta** load, ``phases`` are *branch ids* (1: a-b, 2: b-c, 3: c-a)
    and the model is applied with ``w_hat = 3 w`` (4d); the translation from
    branch consumption ``p^d`` to bus withdrawals ``p^b`` follows (4f)-(4j)
    for the full three-branch delta and a nominal-phasor linear map for
    partial deltas.

    Parameters
    ----------
    p_ref, q_ref:
        Reference consumptions ``a`` and ``b`` in (4a)-(4b), per phase/branch.
    alpha, beta:
        ZIP exponents per phase/branch (0: constant power, 1: constant
        current, 2: constant impedance).
    """

    name: str
    bus: str
    phases: tuple[int, ...]
    connection: Connection = Connection.WYE
    p_ref: np.ndarray = field(default=None)  # type: ignore[assignment]
    q_ref: np.ndarray = field(default=None)  # type: ignore[assignment]
    alpha: np.ndarray = field(default=None)  # type: ignore[assignment]
    beta: np.ndarray = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.connection is Connection.DELTA:
            self.phases = delta_branch_tuple(self.phases)
        else:
            self.phases = phase_tuple(self.phases)
        n = len(self.phases)
        self.p_ref = _per_phase(self.p_ref if self.p_ref is not None else 0.0, n, "p_ref")
        self.q_ref = _per_phase(self.q_ref if self.q_ref is not None else 0.0, n, "q_ref")
        self.alpha = _per_phase(self.alpha if self.alpha is not None else 0.0, n, "alpha")
        self.beta = _per_phase(self.beta if self.beta is not None else 0.0, n, "beta")
        if np.any(self.alpha < 0) or np.any(self.beta < 0):
            raise ValueError(f"load {self.name}: ZIP exponents must be nonnegative")

    @property
    def n_phases(self) -> int:
        return len(self.phases)

    @property
    def is_delta(self) -> bool:
        return self.connection is Connection.DELTA

    @property
    def bus_phases(self) -> tuple[int, ...]:
        """Bus phases at which the load withdraws power (``p^b`` indices)."""
        if self.is_delta:
            return phases_of_delta_branches(self.phases)
        return self.phases

    @property
    def branch_phase_pairs(self) -> tuple[tuple[int, int], ...]:
        """For delta loads, the (from, to) phase pair of each branch."""
        if not self.is_delta:
            raise ValueError(f"load {self.name} is not delta connected")
        return tuple(DELTA_BRANCH_PHASES[b] for b in self.phases)


@dataclass
class Line:
    """A multi-phase series element: an overhead/underground line segment, a
    transformer, or a voltage regulator.

    ``r``/``x`` are the series resistance/reactance matrices over the line's
    phase ordering, entering the voltage-drop matrices ``M^p``/``M^q`` of
    (5c).  ``g_sh_fr``/``b_sh_fr`` (and ``_to``) are the per-phase shunt
    admittances used in (5a)-(5b); ``tap`` is the per-phase ratio tau in (5c)
    (1 for plain lines).  Flow bounds per phase correspond to (2c)-(2d) and
    apply to both flow directions.
    """

    name: str
    from_bus: str
    to_bus: str
    phases: tuple[int, ...]
    r: np.ndarray = field(default=None)  # type: ignore[assignment]
    x: np.ndarray = field(default=None)  # type: ignore[assignment]
    g_sh_fr: np.ndarray = field(default=None)  # type: ignore[assignment]
    b_sh_fr: np.ndarray = field(default=None)  # type: ignore[assignment]
    g_sh_to: np.ndarray = field(default=None)  # type: ignore[assignment]
    b_sh_to: np.ndarray = field(default=None)  # type: ignore[assignment]
    tap: np.ndarray = field(default=None)  # type: ignore[assignment]
    p_min: np.ndarray = field(default=None)  # type: ignore[assignment]
    p_max: np.ndarray = field(default=None)  # type: ignore[assignment]
    q_min: np.ndarray = field(default=None)  # type: ignore[assignment]
    q_max: np.ndarray = field(default=None)  # type: ignore[assignment]
    is_transformer: bool = False

    def __post_init__(self) -> None:
        self.phases = phase_tuple(self.phases)
        n = len(self.phases)
        if self.from_bus == self.to_bus:
            raise ValueError(f"line {self.name}: from_bus equals to_bus")
        self.r = _square(self.r if self.r is not None else np.zeros((n, n)), n, "r")
        self.x = _square(self.x if self.x is not None else np.zeros((n, n)), n, "x")
        self.g_sh_fr = _per_phase(self.g_sh_fr if self.g_sh_fr is not None else 0.0, n, "g_sh_fr")
        self.b_sh_fr = _per_phase(self.b_sh_fr if self.b_sh_fr is not None else 0.0, n, "b_sh_fr")
        self.g_sh_to = _per_phase(self.g_sh_to if self.g_sh_to is not None else 0.0, n, "g_sh_to")
        self.b_sh_to = _per_phase(self.b_sh_to if self.b_sh_to is not None else 0.0, n, "b_sh_to")
        self.tap = _per_phase(self.tap if self.tap is not None else 1.0, n, "tap")
        self.p_min = _per_phase(self.p_min if self.p_min is not None else -10.0, n, "p_min")
        self.p_max = _per_phase(self.p_max if self.p_max is not None else 10.0, n, "p_max")
        self.q_min = _per_phase(self.q_min if self.q_min is not None else -10.0, n, "q_min")
        self.q_max = _per_phase(self.q_max if self.q_max is not None else 10.0, n, "q_max")
        if np.any(self.p_min > self.p_max) or np.any(self.q_min > self.q_max):
            raise ValueError(f"line {self.name}: inconsistent flow bounds")
        if np.any(self.tap <= 0):
            raise ValueError(f"line {self.name}: tap ratios must be positive")

    @property
    def n_phases(self) -> int:
        return len(self.phases)
