"""Real multi-process execution of the local update.

The simulated cluster (``repro.parallel.cluster``) models wall time; this
module actually *runs* the component projections in worker processes, to
demonstrate (and test) that the local update is embarrassingly parallel:
the result is bit-identical to the serial batched path regardless of the
rank layout.

Worker processes receive their chunk of precomputed ``(M_s, bbar_s)``
operators once at pool initialization (mirroring the paper's one-time
precomputation broadcast), and per iteration exchange only the stacked
``v`` / ``z`` slices — the same payload the communication model charges for.
"""

from __future__ import annotations

import multiprocessing as mp

import numpy as np

from repro.core.batch import projection_data
from repro.decomposition.decomposed import DecomposedOPF
from repro.parallel.assignment import assign_even

# Per-worker state installed by the pool initializer.
_WORKER_CHUNKS: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {}


def _init_worker(chunks: dict[int, list[tuple[np.ndarray, np.ndarray]]]) -> None:
    global _WORKER_CHUNKS
    _WORKER_CHUNKS = chunks


def _apply_chunk(args: tuple[int, list[np.ndarray]]) -> tuple[int, list[np.ndarray]]:
    rank, v_parts = args
    ops = _WORKER_CHUNKS[rank]
    out = [mmat @ v + bbar for (mmat, bbar), v in zip(ops, v_parts)]
    return rank, out


class ProcessParallelLocalUpdate:
    """A pool of worker processes, each owning a contiguous component chunk.

    Use as a context manager::

        with ProcessParallelLocalUpdate(dec, n_workers=2) as par:
            z = par.solve(v)
    """

    def __init__(self, dec: DecomposedOPF, n_workers: int = 2):
        if n_workers < 1:
            raise ValueError("need at least one worker")
        self.dec = dec
        self.owner = assign_even(dec.n_components, n_workers)
        self.n_workers = int(self.owner.max()) + 1
        chunks: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {
            r: [] for r in range(self.n_workers)
        }
        self._rank_components: dict[int, list[int]] = {r: [] for r in range(self.n_workers)}
        for s, comp in enumerate(dec.components):
            r = int(self.owner[s])
            chunks[r].append(projection_data(comp.a, comp.b))
            self._rank_components[r].append(s)
        ctx = mp.get_context("fork")
        self._pool = ctx.Pool(
            processes=self.n_workers, initializer=_init_worker, initargs=(chunks,)
        )

    def solve(self, v: np.ndarray) -> np.ndarray:
        """Scatter ``v`` slices to workers, gather projected slices."""
        if v.shape != (self.dec.n_local,):
            raise ValueError("stacked vector has wrong length")
        tasks = []
        for r in range(self.n_workers):
            parts = [v[self.dec.component_slice(s)] for s in self._rank_components[r]]
            tasks.append((r, parts))
        z = np.empty(self.dec.n_local)
        for rank, outs in self._pool.imap_unordered(_apply_chunk, tasks):
            for s, out in zip(self._rank_components[rank], outs):
                z[self.dec.component_slice(s)] = out
        return z

    def close(self) -> None:
        self._pool.close()
        self._pool.join()

    def __enter__(self) -> "ProcessParallelLocalUpdate":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
