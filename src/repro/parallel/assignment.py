"""Component-to-rank assignment strategies.

The paper distributes the S subsystems "nearly evenly" across ranks
(Section V-A).  :func:`assign_even` reproduces that; :func:`assign_greedy`
is a cost-aware longest-processing-time heuristic shipped as an extension
(ablated in the benchmarks — it tightens the makespan when component costs
are skewed, e.g. mixed leaf/trunk components).
"""

from __future__ import annotations

import numpy as np

from repro.backend.policy import HOST_DTYPE


def assign_even(n_components: int, n_ranks: int) -> np.ndarray:
    """Round-robin-free contiguous near-even split; returns rank per component.

    Raises
    ------
    ValueError
        If there are fewer components than ranks requested.
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    if n_components < 1:
        raise ValueError("need at least one component")
    n_ranks = min(n_ranks, n_components)
    # Contiguous blocks of size ceil or floor, matching MPI scatterv usage.
    base = n_components // n_ranks
    extra = n_components % n_ranks
    owner = np.empty(n_components, dtype=np.int64)
    start = 0
    for r in range(n_ranks):
        size = base + (1 if r < extra else 0)
        owner[start : start + size] = r
        start += size
    return owner


def assign_greedy(costs: np.ndarray, n_ranks: int) -> np.ndarray:
    """Longest-processing-time-first assignment by per-component cost."""
    costs = np.asarray(costs, dtype=HOST_DTYPE)
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    n_ranks = min(n_ranks, len(costs))
    owner = np.empty(len(costs), dtype=np.int64)
    totals = np.zeros(n_ranks)
    for s in np.argsort(-costs):
        r = int(np.argmin(totals))
        owner[s] = r
        totals[r] += costs[s]
    return owner


def rank_loads(costs: np.ndarray, owner: np.ndarray, n_ranks: int) -> np.ndarray:
    """Total cost per rank under an assignment."""
    return np.bincount(owner, weights=np.asarray(costs, dtype=HOST_DTYPE), minlength=n_ranks)


def rank_partition(
    offsets: np.ndarray, owner: np.ndarray, n_ranks: int
) -> tuple[list[list[int]], list[np.ndarray]]:
    """Per-rank component lists and stacked index arrays of an assignment.

    ``offsets`` are the stacked slice boundaries of the decomposition
    (``dec.offsets``); the returned ``slices[r]`` indexes rank r's entries
    of any stacked local vector (``z``, ``lam``, ``B x``).  Shared by the
    plain distributed runner and the fault-tolerant runner (which rebuilds
    the partition after a failover).
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    components: list[list[int]] = [[] for _ in range(n_ranks)]
    for s, r in enumerate(owner):
        components[int(r)].append(s)
    slices: list[np.ndarray] = []
    for r in range(n_ranks):
        if components[r]:
            idx = np.concatenate(
                [
                    np.arange(offsets[s], offsets[s + 1], dtype=np.int64)
                    for s in components[r]
                ]
            )
        else:
            idx = np.zeros(0, dtype=np.int64)
        slices.append(idx)
    return components, slices


def reassign_surviving(n_components: int, survivors: list[int]) -> np.ndarray:
    """Re-spread all components near-evenly over the surviving rank ids.

    Recovery path of the fault-tolerant runner: after a rank failure the
    dead rank's components must land on survivors.  The result reuses
    :func:`assign_even` over the compacted survivor set and maps the
    compact ids back to the actual (non-contiguous) surviving rank numbers,
    so the returned array is a drop-in ``owner`` vector for the original
    communicator size.
    """
    if not survivors:
        raise ValueError("no surviving ranks to reassign components to")
    survivors = sorted(survivors)
    compact = assign_even(n_components, len(survivors))
    mapping = np.asarray(survivors, dtype=np.int64)
    return mapping[compact]
