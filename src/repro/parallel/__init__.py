"""Parallel execution substrate: simulated multi-rank clusters (for the
paper's scaling studies) and a real multi-process executor (for correctness
of the embarrassingly parallel local update)."""

from repro.parallel.assignment import (
    assign_even,
    assign_greedy,
    rank_loads,
    rank_partition,
    reassign_surviving,
)
from repro.parallel.cluster import LocalUpdateTiming, SimulatedCluster, sweep_ranks
from repro.parallel.compression import (
    CompressedMessage,
    CompressedSolverFreeADMM,
    ErrorFeedback,
    TopKCompressor,
    UniformQuantizer,
)
from repro.parallel.comm import (
    BYTES_PER_VALUE,
    CPU_CLUSTER_COMM,
    GPU_CLUSTER_COMM,
    CommModel,
)
from repro.parallel.executor import ProcessParallelLocalUpdate
from repro.parallel.mpi_sim import SimComm
from repro.parallel.runner import (
    DistributedADMMRunner,
    DistributedRunResult,
    IterationTimeline,
)

__all__ = [
    "CommModel",
    "CPU_CLUSTER_COMM",
    "GPU_CLUSTER_COMM",
    "BYTES_PER_VALUE",
    "SimulatedCluster",
    "LocalUpdateTiming",
    "sweep_ranks",
    "assign_even",
    "assign_greedy",
    "rank_loads",
    "rank_partition",
    "reassign_surviving",
    "ProcessParallelLocalUpdate",
    "SimComm",
    "DistributedADMMRunner",
    "DistributedRunResult",
    "IterationTimeline",
    "CompressedSolverFreeADMM",
    "TopKCompressor",
    "UniformQuantizer",
    "ErrorFeedback",
    "CompressedMessage",
]
