"""A deterministic simulated MPI communicator.

The paper's implementation exchanges iterates over MPI (Section IV-E); on
this single-core machine we reproduce the *semantics* exactly — real data
moves between rank-local buffers — while wall time is tracked by per-rank
virtual clocks advanced with the alpha-beta model of
:mod:`repro.parallel.comm` (including the GPU device-host staging penalty
when ranks are GPUs).

The API mirrors the mpi4py verbs the algorithm needs:

* :meth:`SimComm.scatterv` — root sends each rank its slice (root endpoint
  serializes its messages, which is what makes aggregator communication
  grow with rank count, Fig. 1c);
* :meth:`SimComm.gatherv` — the reverse;
* :meth:`SimComm.bcast` — root to all, serialized at the root;
* :meth:`SimComm.barrier` — clock synchronization to the slowest rank.

Clocks only ever move forward; the communicator never reorders data, so a
program driven by :class:`SimComm` is bit-deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.parallel.comm import BYTES_PER_VALUE, CommModel


@dataclass
class SimComm:
    """A simulated communicator over ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks (>= 1).
    comm_model:
        Link model applied to every point-to-point message.
    """

    size: int
    comm_model: CommModel
    clocks: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("need at least one rank")
        self.clocks = np.zeros(self.size)

    # ------------------------------------------------------------------
    # Clock bookkeeping
    # ------------------------------------------------------------------
    def advance(self, rank: int, seconds: float) -> None:
        """Charge ``seconds`` of local compute to ``rank``."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self.clocks[rank] += seconds

    def elapsed(self) -> float:
        """Simulated wall time so far (slowest rank)."""
        return float(self.clocks.max())

    def barrier(self) -> None:
        """Synchronize every clock to the slowest rank."""
        self.clocks[:] = self.clocks.max()

    def _p2p(self, src: int, dst: int, n_values: int) -> None:
        """One message src -> dst; the sender's endpoint is busy for the
        message duration, the receiver finishes no earlier."""
        t = self.comm_model.message_time(n_values * BYTES_PER_VALUE)
        start = max(self.clocks[src], self.clocks[dst])
        self.clocks[src] = start + t
        self.clocks[dst] = start + t

    # ------------------------------------------------------------------
    # Collectives (data + time)
    # ------------------------------------------------------------------
    def scatterv(self, root: int, parts: list[np.ndarray]) -> list[np.ndarray]:
        """Root sends ``parts[r]`` to each rank r; returns received buffers.

        Root's endpoint serializes the sends (flat tree), so the root-side
        cost is ``sum_r (alpha + bytes_r / beta)``.
        """
        if len(parts) != self.size:
            raise ValueError("scatterv needs one part per rank")
        out: list[np.ndarray] = [None] * self.size  # type: ignore[list-item]
        for r in range(self.size):
            if r == root:
                out[r] = parts[r]
                continue
            self._p2p(root, r, parts[r].size)
            out[r] = parts[r].copy()
        return out

    def gatherv(self, root: int, part: dict[int, np.ndarray]) -> list[np.ndarray]:
        """Each rank contributes ``part[r]``; root receives them serially."""
        if set(part) != set(range(self.size)):
            raise ValueError("gatherv needs one part per rank")
        out: list[np.ndarray] = [None] * self.size  # type: ignore[list-item]
        for r in range(self.size):
            if r == root:
                out[r] = part[r]
                continue
            self._p2p(r, root, part[r].size)
            out[r] = part[r].copy()
        return out

    def bcast(self, root: int, value: np.ndarray) -> list[np.ndarray]:
        """Root sends the same buffer to every rank (flat tree)."""
        out: list[np.ndarray] = [None] * self.size  # type: ignore[list-item]
        for r in range(self.size):
            out[r] = value if r == root else value.copy()
            if r != root:
                self._p2p(root, r, value.size)
        return out
