"""A deterministic simulated MPI communicator.

The paper's implementation exchanges iterates over MPI (Section IV-E); on
this single-core machine we reproduce the *semantics* exactly — real data
moves between rank-local buffers — while wall time is tracked by per-rank
virtual clocks advanced with the alpha-beta model of
:mod:`repro.parallel.comm` (including the GPU device-host staging penalty
when ranks are GPUs).

The API mirrors the mpi4py verbs the algorithm needs:

* :meth:`SimComm.scatterv` — root sends each rank its slice (root endpoint
  serializes its messages, which is what makes aggregator communication
  grow with rank count, Fig. 1c);
* :meth:`SimComm.gatherv` — the reverse;
* :meth:`SimComm.bcast` — root to all, serialized at the root;
* :meth:`SimComm.barrier` — clock synchronization to the slowest rank.

Clocks only ever move forward; the communicator never reorders data, so a
program driven by :class:`SimComm` is bit-deterministic.

Fault injection (``repro.resilience``): an optional :attr:`SimComm.injector`
with a ``message_fault(src, dst) -> (dropped, delay_s)`` hook is consulted
on every point-to-point message.  A *delayed* message charges extra wire
time to both endpoints; a *dropped* message still occupies the sender's
endpoint (the bytes leave, the network loses them) but the data is never
delivered — the receiving slot of the collective comes back ``None``.
Callers that never set an injector observe the historical behavior exactly.
Collectives additionally support skipped ranks: a ``None`` part in
``scatterv`` sends nothing to that rank, and ``gatherv(..., partial=True)``
accepts contributions from a subset of ranks — both are what the
fault-tolerant runner uses to route around crashed or stale ranks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.parallel.comm import BYTES_PER_VALUE, CommModel


@dataclass
class SimComm:
    """A simulated communicator over ``size`` ranks.

    Parameters
    ----------
    size:
        Number of ranks (>= 1).
    comm_model:
        Link model applied to every point-to-point message.
    injector:
        Optional message-fault hook (see
        :class:`repro.resilience.FaultInjector`); ``None`` disables fault
        injection entirely.
    """

    size: int
    comm_model: CommModel
    injector: object | None = None
    clocks: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("need at least one rank")
        self.clocks = np.zeros(self.size)

    # ------------------------------------------------------------------
    # Clock bookkeeping
    # ------------------------------------------------------------------
    def advance(self, rank: int, seconds: float) -> None:
        """Charge ``seconds`` of local compute to ``rank``."""
        if seconds < 0:
            raise ValueError("cannot advance a clock backwards")
        self.clocks[rank] += seconds

    def elapsed(self) -> float:
        """Simulated wall time so far (slowest rank)."""
        return float(self.clocks.max())

    def barrier(self, ranks: list[int] | None = None) -> None:
        """Synchronize clocks to the slowest participant.

        With ``ranks`` given, only those ranks synchronize (the
        fault-tolerant runner barriers the survivors, never a dead rank).
        """
        if ranks is None:
            self.clocks[:] = self.clocks.max()
        elif ranks:
            idx = np.asarray(ranks, dtype=np.int64)
            self.clocks[idx] = self.clocks[idx].max()

    def _p2p(self, src: int, dst: int, n_values: int) -> bool:
        """One message src -> dst; the sender's endpoint is busy for the
        message duration, the receiver finishes no earlier.  Returns
        whether the payload was delivered (False only under an injected
        message drop)."""
        t = self.comm_model.message_time(n_values * BYTES_PER_VALUE)
        dropped = False
        if self.injector is not None:
            dropped, delay_s = self.injector.message_fault(src, dst)
            t += delay_s
        start = max(self.clocks[src], self.clocks[dst])
        self.clocks[src] = start + t
        self.clocks[dst] = start + t
        return not dropped

    # ------------------------------------------------------------------
    # Collectives (data + time)
    # ------------------------------------------------------------------
    def scatterv(self, root: int, parts: list[np.ndarray | None]) -> list:
        """Root sends ``parts[r]`` to each rank r; returns received buffers.

        Root's endpoint serializes the sends (flat tree), so the root-side
        cost is ``sum_r (alpha + bytes_r / beta)``.  A ``None`` part skips
        that rank entirely (no message, no time); a dropped message yields
        ``None`` in the corresponding output slot.
        """
        if len(parts) != self.size:
            raise ValueError("scatterv needs one part per rank")
        out: list[np.ndarray | None] = [None] * self.size
        for r in range(self.size):
            if parts[r] is None:
                continue
            if r == root:
                out[r] = parts[r]
                continue
            if self._p2p(root, r, parts[r].size):
                out[r] = parts[r].copy()
        return out

    def gatherv(
        self, root: int, part: dict[int, np.ndarray], partial: bool = False
    ) -> list:
        """Each rank contributes ``part[r]``; root receives them serially.

        ``partial=True`` allows a subset of ranks to contribute (crashed or
        skipped ranks simply have no entry); missing or dropped
        contributions come back as ``None``.
        """
        if not partial and set(part) != set(range(self.size)):
            raise ValueError("gatherv needs one part per rank")
        if partial and not set(part) <= set(range(self.size)):
            raise ValueError("gatherv got contributions from unknown ranks")
        out: list[np.ndarray | None] = [None] * self.size
        for r in range(self.size):
            if r not in part:
                continue
            if r == root:
                out[r] = part[r]
                continue
            if self._p2p(r, root, part[r].size):
                out[r] = part[r].copy()
        return out

    def bcast(self, root: int, value: np.ndarray) -> list:
        """Root sends the same buffer to every rank (flat tree)."""
        out: list[np.ndarray | None] = [None] * self.size
        for r in range(self.size):
            if r == root:
                out[r] = value
            elif self._p2p(root, r, value.size):
                out[r] = value.copy()
        return out
