"""Lossy communication compression (the paper's future-work pointer [37]).

The aggregator exchange carries the stacked ``(z, lambda)`` every iteration
(Section IV-E); on bandwidth-limited links that payload dominates.  This
module provides the standard compressed-consensus toolkit:

* :class:`TopKCompressor` — keep the k largest-magnitude entries;
* :class:`UniformQuantizer` — b-bit min/max scalar quantization;
* :class:`ErrorFeedback` — residual memory wrapped around any compressor,
  the fix that keeps compressed first-order methods convergent;
* :class:`CompressedSolverFreeADMM` — Algorithm 1 where the agents' uploads
  pass through a (stateful) compressor, with on-the-wire byte accounting.

The comm-bytes-vs-iterations tradeoff is quantified by
``bench_ablation_compression``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ADMMConfig
from repro.core.loop import ADMMLoop
from repro.core.results import ADMMResult
from repro.core.solver_free import SolverFreeADMM
from repro.decomposition.decomposed import DecomposedOPF


@dataclass(frozen=True)
class CompressedMessage:
    """A decompressed payload plus its on-the-wire size."""

    values: np.ndarray
    nbytes: int


class TopKCompressor:
    """Keep the ``fraction`` largest-magnitude entries (sparsification).

    Wire cost: 4 bytes index + 8 bytes value per kept entry.
    """

    def __init__(self, fraction: float):
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        self.fraction = fraction

    def compress(self, vec: np.ndarray) -> CompressedMessage:
        n = vec.size
        k = max(1, int(round(self.fraction * n)))
        if k >= n:
            return CompressedMessage(vec.copy(), 8 * n)
        idx = np.argpartition(np.abs(vec), n - k)[n - k :]
        out = np.zeros_like(vec)
        out[idx] = vec[idx]
        return CompressedMessage(out, 12 * k)


class UniformQuantizer:
    """b-bit uniform quantization between the vector's min and max.

    Wire cost: ``ceil(b n / 8)`` bytes plus two 8-byte range scalars.
    """

    def __init__(self, bits: int):
        if not 1 <= bits <= 16:
            raise ValueError("bits must be in [1, 16]")
        self.bits = bits

    def compress(self, vec: np.ndarray) -> CompressedMessage:
        lo = float(vec.min())
        hi = float(vec.max())
        nbytes = (self.bits * vec.size + 7) // 8 + 16
        if hi == lo:
            return CompressedMessage(np.full_like(vec, lo), nbytes)
        levels = (1 << self.bits) - 1
        q = np.round((vec - lo) / (hi - lo) * levels)
        return CompressedMessage(lo + q * (hi - lo) / levels, nbytes)


class ErrorFeedback:
    """Residual-memory wrapper: compress ``vec + memory`` and remember what
    the compressor dropped, so the error is re-injected next round."""

    def __init__(self, compressor):
        self.compressor = compressor
        self._memory: np.ndarray | None = None

    def compress(self, vec: np.ndarray) -> CompressedMessage:
        if self._memory is None:
            self._memory = np.zeros_like(vec)
        target = vec + self._memory
        msg = self.compressor.compress(target)
        self._memory = target - msg.values
        return msg

    def reset(self) -> None:
        self._memory = None


class CompressedSolverFreeADMM(SolverFreeADMM):
    """Algorithm 1 with compressed agent uploads.

    Following the standard compressed-consensus recipe, agents compress the
    *difference* between their new exact local solution and the value the
    operator last reconstructed (differences shrink as the run converges,
    so sparsification/quantization bite harder and harder); the operator
    and the agent both track the reconstructed stream, keeping dual updates
    consistent.  Error feedback (wrap the compressor in
    :class:`ErrorFeedback`) re-injects what compression dropped.  Byte
    savings are recorded in ``bytes_sent`` / ``bytes_dense``.
    """

    algorithm_name = "solver-free ADMM (compressed uploads)"
    #: Compressor state (error-feedback memory, byte counters) cannot be
    #: carried into an fp64 twin, so stalled fp32 runs are returned as-is.
    refinement_supported = False
    supports_balancing = False

    def __init__(
        self,
        dec: DecomposedOPF,
        compressor,
        config: ADMMConfig | None = None,
        backend=None,
        precision: str | None = None,
    ):
        super().__init__(dec, config, backend=backend, precision=precision)
        if self.config.residual_balancing:
            raise ValueError("compression mode supports fixed rho only")
        self.compressor = compressor
        self.bytes_sent = 0
        self.bytes_dense = 0

    def local_step(self, bx_eff, z_prev, lam, rho):
        z_exact = self.local_solver.solve(bx_eff + lam / rho)
        # Compress the innovation against the operator's current view.
        msg = self.compressor.compress(z_exact - z_prev)
        self.bytes_sent += msg.nbytes
        self.bytes_dense += z_exact.itemsize * z_exact.size
        return z_prev + msg.values

    def _make_loop(self, *, watch_stall: bool = True) -> ADMMLoop:
        # The historical compressed loop kept no phase timers or spans.
        return ADMMLoop(
            self,
            self.config,
            backend=self.backend,
            tracer=self.tracer,
            record_timers=False,
            phase_spans=False,
            watch_stall=False,
        )

    def solve(self, x0=None, z0=None, lam0=None, max_iter=None, callback=None) -> ADMMResult:
        self.bytes_sent = 0
        self.bytes_dense = 0
        if isinstance(self.compressor, ErrorFeedback):
            self.compressor.reset()
        return super().solve(x0, z0, lam0, max_iter, callback)

    @property
    def compression_ratio(self) -> float:
        """Dense bytes divided by bytes actually sent (>= 1 is a saving)."""
        return self.bytes_dense / self.bytes_sent if self.bytes_sent else 1.0
