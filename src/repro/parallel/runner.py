"""Rank-explicit distributed execution of Algorithm 1 over simulated MPI.

Where :class:`~repro.parallel.cluster.SimulatedCluster` *models* iteration
time from component costs, this runner actually *executes* the distributed
protocol of the paper's Section IV-E, rank by rank:

1. the aggregator (rank 0) scatters each rank's slice of ``B x``;
2. every rank performs its components' closed-form local updates and its
   dual updates, with its *measured* compute seconds charged to its own
   virtual clock;
3. the aggregator gathers the rank-local ``(z, lambda)`` slices and runs
   the global update and the termination test.

The produced iterates are bit-identical to the serial
:class:`~repro.core.solver_free.SolverFreeADMM` (tested), and the run
additionally yields a per-iteration timeline (compute vs communication per
rank) — the raw material of the paper's Fig. 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.backend import get_backend
from repro.core.batch import BatchedLocalSolver
from repro.core.config import ADMMConfig
from repro.core.loop import ADMMLoop, IterationStrategy
from repro.core.residuals import compute_residuals
from repro.core.results import ADMMResult
from repro.decomposition.decomposed import DecomposedOPF
from repro.parallel.assignment import assign_even, rank_partition
from repro.parallel.comm import CommModel
from repro.parallel.mpi_sim import SimComm
from repro.telemetry import TRACK_CLUSTER, NULL_TRACER


@dataclass
class IterationTimeline:
    """Per-iteration simulated timing of a distributed run."""

    total_s: list[float] = field(default_factory=list)
    compute_max_s: list[float] = field(default_factory=list)

    def append(self, total: float, compute_max: float) -> None:
        self.total_s.append(total)
        self.compute_max_s.append(compute_max)

    @property
    def mean_iteration_s(self) -> float:
        return sum(self.total_s) / len(self.total_s) if self.total_s else 0.0

    @property
    def mean_comm_s(self) -> float:
        if not self.total_s:
            return 0.0
        comm = [t - c for t, c in zip(self.total_s, self.compute_max_s)]
        return sum(comm) / len(comm)


@dataclass
class DistributedRunResult:
    """Outcome of a simulated-MPI distributed solve."""

    result: ADMMResult
    timeline: IterationTimeline
    n_ranks: int
    simulated_total_s: float


class DistributedADMMRunner(IterationStrategy):
    """Execute Algorithm 1 through the simulated MPI communicator.

    Parameters
    ----------
    dec:
        The decomposed model.
    n_ranks:
        Worker rank count; rank 0 doubles as the aggregator, matching the
        paper's server/agents architecture.
    comm_model:
        Interconnect model for all messages.
    config:
        ADMM settings (the relaxation/balancing extensions are not
        supported here; plain Algorithm 1 only).
    tracer:
        Optional :class:`repro.telemetry.Tracer`; when enabled, every
        rank's compute and communication intervals become spans on the
        ``cluster-sim`` track (one lane per rank, virtual-clock time) —
        the raw material of the paper's Fig. 1 rendered in Perfetto.

    The iteration skeleton is :class:`repro.core.loop.ADMMLoop`; this class
    supplies the rank-explicit hooks (fused local+dual update on per-rank
    virtual clocks, aggregator-side residuals, barrier, timeline).  The
    backend is pinned to ``numpy64``: the per-rank un-batched path must
    reproduce the serial batched iterates bit-for-bit, which fp32 matmul
    batching does not guarantee.
    """

    algorithm_name = "solver-free ADMM (simulated MPI)"
    use_relaxation = False
    supports_balancing = False

    def __init__(
        self,
        dec: DecomposedOPF,
        n_ranks: int,
        comm_model: CommModel,
        config: ADMMConfig | None = None,
        tracer=None,
    ):
        self.dec = dec
        self.config = config or ADMMConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.config.relaxation != 1.0 or self.config.residual_balancing:
            raise ValueError("the distributed runner executes plain Algorithm 1 only")
        self.backend = get_backend("numpy64")
        self.c = dec.lp.cost
        self.gcols = dec.global_cols
        self.local_solver = BatchedLocalSolver.from_decomposition(dec)
        self.owner = assign_even(dec.n_components, n_ranks)
        self.n_ranks = int(self.owner.max()) + 1
        self.comm_model = comm_model
        # Per-rank stacked index ranges (components are contiguous per rank).
        self._rank_components, self._rank_slices = rank_partition(
            dec.offsets, self.owner, self.n_ranks
        )

    # ------------------------------------------------------------------
    # Virtual-clock trace helpers
    # ------------------------------------------------------------------
    def _trace_rank(self, name: str, rank: int, start_s: float, end_s: float) -> None:
        if end_s > start_s:
            self.tracer.add_modeled(
                name,
                start_s,
                end_s - start_s,
                track=TRACK_CLUSTER,
                tid=rank,
                cat="cluster",
            )

    def _trace_collective(self, name: str, clocks_before: np.ndarray) -> None:
        for r in range(self.n_ranks):
            self._trace_rank(
                name, r, float(clocks_before[r]), float(self._comm.clocks[r])
            )

    # ------------------------------------------------------------------
    # Engine hooks (repro.core.loop)
    # ------------------------------------------------------------------
    def on_iteration_start(self, iteration, z, lam, rho):
        self._t_start = self._comm.elapsed()
        return z, lam

    def global_step(self, z, lam, rho):
        """Aggregator: global update (13)/(18), charged to rank 0's clock."""
        comm, dec = self._comm, self.dec
        clock0 = float(comm.clocks[0])
        t0 = time.perf_counter()
        scatter = self.backend.scatter_add(
            dec.global_cols, z - lam / rho, dec.lp.n_vars
        )
        xhat = (scatter - dec.lp.cost / rho) / dec.counts
        x = self.backend.clip(xhat, dec.lp.lb, dec.lp.ub)
        # The consensus gather happens on the aggregator, inside its
        # timed block; the engine's gather() just reads it back.
        self._bx = x[dec.global_cols]
        comm.advance(0, time.perf_counter() - t0)
        if self.tracer:
            self._trace_rank("rank.global_update", 0, clock0, float(comm.clocks[0]))
        return x

    def gather(self, x):
        return self._bx

    def local_dual_step(self, bx_eff, z_prev, lam, rho):
        """Scatter, per-rank local + dual updates, gather — on rank clocks."""
        comm, dec, tracer = self._comm, self.dec, self.tracer

        # Scatter each rank's B_s x slice (server -> agents).
        parts = [bx_eff[idx] for idx in self._rank_slices]
        clocks_before = comm.clocks.copy()
        received = comm.scatterv(0, parts)
        if tracer:
            self._trace_collective("comm.scatter", clocks_before)

        # Agents: local + dual updates on their own clocks.
        compute_times = np.zeros(self.n_ranks)
        z_parts: dict[int, np.ndarray] = {}
        lam_parts: dict[int, np.ndarray] = {}
        for r in range(self.n_ranks):
            idx = self._rank_slices[r]
            bx_r = received[r]
            lam_r = lam[idx]
            clock_r = float(comm.clocks[r])
            t0 = time.perf_counter()
            z_r = np.empty(idx.size)
            pos = 0
            for s in self._rank_components[r]:
                n_s = int(dec.offsets[s + 1] - dec.offsets[s])
                v_s = bx_r[pos : pos + n_s] + lam_r[pos : pos + n_s] / rho
                z_r[pos : pos + n_s] = self.local_solver.solve_one(s, v_s)
                pos += n_s
            lam_r = lam_r + rho * (bx_r - z_r)
            dt = time.perf_counter() - t0
            comm.advance(r, dt)
            if tracer:
                self._trace_rank("rank.local_update", r, clock_r, float(comm.clocks[r]))
            compute_times[r] = dt
            z_parts[r] = z_r
            lam_parts[r] = lam_r

        # Gather (z, lambda) back to the aggregator.
        clocks_before = comm.clocks.copy()
        z_back = comm.gatherv(0, z_parts)
        lam_back = comm.gatherv(0, lam_parts)
        if tracer:
            self._trace_collective("comm.gather", clocks_before)
        z = np.empty(dec.n_local)
        lam = np.empty(dec.n_local)
        for r in range(self.n_ranks):
            z[self._rank_slices[r]] = z_back[r]
            lam[self._rank_slices[r]] = lam_back[r]
        self._compute_times = compute_times
        return z, lam

    def residuals(self, iteration, x, bx, z, z_prev, lam, rho):
        """Aggregator: residuals and termination, then the iteration barrier."""
        comm = self._comm
        clock0 = float(comm.clocks[0])
        t0 = time.perf_counter()
        res = compute_residuals(bx, z, z_prev, lam, rho, self.config.eps_rel)
        comm.advance(0, time.perf_counter() - t0)
        if self.tracer:
            self._trace_rank("rank.residuals", 0, clock0, float(comm.clocks[0]))
        comm.barrier()
        return res

    def after_residuals(self, iteration, res):
        self._timeline.append(
            self._comm.elapsed() - self._t_start, float(self._compute_times.max())
        )

    def final_timers(self, timers: dict) -> dict:
        return {"simulated_total": self._comm.elapsed()}

    def final_algorithm_name(self) -> str:
        return f"solver-free ADMM (simulated MPI, {self.n_ranks} ranks)"

    # ------------------------------------------------------------------
    def solve(self, max_iter: int | None = None) -> DistributedRunResult:
        """Run to the (16) criterion; returns result + simulated timeline."""
        cfg = self.config
        budget = cfg.max_iter if max_iter is None else max_iter
        dec = self.dec
        self._comm = comm = SimComm(self.n_ranks, self.comm_model)
        self._timeline = IterationTimeline()

        x = dec.lp.initial_point()
        z = x[dec.global_cols].copy()
        lam = np.zeros(dec.n_local)
        # Virtual clocks replace wall timers; rank spans replace phase spans.
        loop = ADMMLoop(
            self,
            cfg,
            backend=self.backend,
            record_timers=False,
            phase_spans=False,
            watch_stall=False,
        )
        outcome = loop.run(x, z, lam, budget=budget)
        result = loop.result(outcome)
        return DistributedRunResult(
            result=result,
            timeline=self._timeline,
            n_ranks=self.n_ranks,
            simulated_total_s=comm.elapsed(),
        )
