"""Rank-explicit distributed execution of Algorithm 1 over simulated MPI.

Where :class:`~repro.parallel.cluster.SimulatedCluster` *models* iteration
time from component costs, this runner actually *executes* the distributed
protocol of the paper's Section IV-E, rank by rank:

1. the aggregator (rank 0) scatters each rank's slice of ``B x``;
2. every rank performs its components' closed-form local updates and its
   dual updates, with its *measured* compute seconds charged to its own
   virtual clock;
3. the aggregator gathers the rank-local ``(z, lambda)`` slices and runs
   the global update and the termination test.

The produced iterates are bit-identical to the serial
:class:`~repro.core.solver_free.SolverFreeADMM` (tested), and the run
additionally yields a per-iteration timeline (compute vs communication per
rank) — the raw material of the paper's Fig. 1.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import BatchedLocalSolver
from repro.core.config import ADMMConfig
from repro.core.residuals import compute_residuals
from repro.core.results import ADMMResult, IterationHistory
from repro.decomposition.decomposed import DecomposedOPF
from repro.parallel.assignment import assign_even, rank_partition
from repro.parallel.comm import CommModel
from repro.parallel.mpi_sim import SimComm
from repro.telemetry import TRACK_CLUSTER, NULL_TRACER


@dataclass
class IterationTimeline:
    """Per-iteration simulated timing of a distributed run."""

    total_s: list[float] = field(default_factory=list)
    compute_max_s: list[float] = field(default_factory=list)

    def append(self, total: float, compute_max: float) -> None:
        self.total_s.append(total)
        self.compute_max_s.append(compute_max)

    @property
    def mean_iteration_s(self) -> float:
        return float(np.mean(self.total_s)) if self.total_s else 0.0

    @property
    def mean_comm_s(self) -> float:
        if not self.total_s:
            return 0.0
        return float(np.mean(np.array(self.total_s) - np.array(self.compute_max_s)))


@dataclass
class DistributedRunResult:
    """Outcome of a simulated-MPI distributed solve."""

    result: ADMMResult
    timeline: IterationTimeline
    n_ranks: int
    simulated_total_s: float


class DistributedADMMRunner:
    """Execute Algorithm 1 through the simulated MPI communicator.

    Parameters
    ----------
    dec:
        The decomposed model.
    n_ranks:
        Worker rank count; rank 0 doubles as the aggregator, matching the
        paper's server/agents architecture.
    comm_model:
        Interconnect model for all messages.
    config:
        ADMM settings (the relaxation/balancing extensions are not
        supported here; plain Algorithm 1 only).
    tracer:
        Optional :class:`repro.telemetry.Tracer`; when enabled, every
        rank's compute and communication intervals become spans on the
        ``cluster-sim`` track (one lane per rank, virtual-clock time) —
        the raw material of the paper's Fig. 1 rendered in Perfetto.
    """

    def __init__(
        self,
        dec: DecomposedOPF,
        n_ranks: int,
        comm_model: CommModel,
        config: ADMMConfig | None = None,
        tracer=None,
    ):
        self.dec = dec
        self.config = config or ADMMConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        if self.config.relaxation != 1.0 or self.config.residual_balancing:
            raise ValueError("the distributed runner executes plain Algorithm 1 only")
        self.local_solver = BatchedLocalSolver.from_decomposition(dec)
        self.owner = assign_even(dec.n_components, n_ranks)
        self.n_ranks = int(self.owner.max()) + 1
        self.comm_model = comm_model
        # Per-rank stacked index ranges (components are contiguous per rank).
        self._rank_components, self._rank_slices = rank_partition(
            dec.offsets, self.owner, self.n_ranks
        )

    def solve(self, max_iter: int | None = None) -> DistributedRunResult:
        """Run to the (16) criterion; returns result + simulated timeline."""
        cfg = self.config
        budget = cfg.max_iter if max_iter is None else max_iter
        dec = self.dec
        rho = cfg.rho
        comm = SimComm(self.n_ranks, self.comm_model)

        x = dec.lp.initial_point()
        z = x[dec.global_cols].copy()
        lam = np.zeros(dec.n_local)
        history = IterationHistory() if cfg.record_history else None
        timeline = IterationTimeline()
        tracer = self.tracer

        def _trace_rank(name: str, rank: int, start_s: float, end_s: float) -> None:
            if end_s > start_s:
                tracer.add_modeled(
                    name,
                    start_s,
                    end_s - start_s,
                    track=TRACK_CLUSTER,
                    tid=rank,
                    cat="cluster",
                )

        def _trace_collective(name: str, clocks_before: np.ndarray) -> None:
            for r in range(self.n_ranks):
                _trace_rank(name, r, float(clocks_before[r]), float(comm.clocks[r]))

        res = None
        iteration = 0
        for iteration in range(1, budget + 1):
            t_start = comm.elapsed()

            # Aggregator: global update (13)/(18).
            clock0 = float(comm.clocks[0])
            t0 = time.perf_counter()
            scatter = np.bincount(dec.global_cols, weights=z - lam / rho, minlength=dec.lp.n_vars)
            xhat = (scatter - dec.lp.cost / rho) / dec.counts
            x = np.clip(xhat, dec.lp.lb, dec.lp.ub)
            bx = x[dec.global_cols]
            comm.advance(0, time.perf_counter() - t0)
            if tracer:
                _trace_rank("rank.global_update", 0, clock0, float(comm.clocks[0]))

            # Scatter each rank's B_s x slice (server -> agents).
            parts = [bx[idx] for idx in self._rank_slices]
            clocks_before = comm.clocks.copy()
            received = comm.scatterv(0, parts)
            if tracer:
                _trace_collective("comm.scatter", clocks_before)

            # Agents: local + dual updates on their own clocks.
            compute_times = np.zeros(self.n_ranks)
            z_parts: dict[int, np.ndarray] = {}
            lam_parts: dict[int, np.ndarray] = {}
            for r in range(self.n_ranks):
                idx = self._rank_slices[r]
                bx_r = received[r]
                lam_r = lam[idx]
                clock_r = float(comm.clocks[r])
                t0 = time.perf_counter()
                z_r = np.empty(idx.size)
                pos = 0
                for s in self._rank_components[r]:
                    n_s = int(dec.offsets[s + 1] - dec.offsets[s])
                    v_s = bx_r[pos : pos + n_s] + lam_r[pos : pos + n_s] / rho
                    z_r[pos : pos + n_s] = self.local_solver.solve_one(s, v_s)
                    pos += n_s
                lam_r = lam_r + rho * (bx_r - z_r)
                dt = time.perf_counter() - t0
                comm.advance(r, dt)
                if tracer:
                    _trace_rank("rank.local_update", r, clock_r, float(comm.clocks[r]))
                compute_times[r] = dt
                z_parts[r] = z_r
                lam_parts[r] = lam_r

            # Gather (z, lambda) back to the aggregator.
            clocks_before = comm.clocks.copy()
            z_back = comm.gatherv(0, z_parts)
            lam_back = comm.gatherv(0, lam_parts)
            if tracer:
                _trace_collective("comm.gather", clocks_before)
            z_prev = z
            z = np.empty(dec.n_local)
            lam = np.empty(dec.n_local)
            for r in range(self.n_ranks):
                z[self._rank_slices[r]] = z_back[r]
                lam[self._rank_slices[r]] = lam_back[r]

            # Aggregator: residuals and termination.
            clock0 = float(comm.clocks[0])
            t0 = time.perf_counter()
            res = compute_residuals(bx, z, z_prev, lam, rho, cfg.eps_rel)
            comm.advance(0, time.perf_counter() - t0)
            if tracer:
                _trace_rank("rank.residuals", 0, clock0, float(comm.clocks[0]))
            comm.barrier()

            timeline.append(comm.elapsed() - t_start, float(compute_times.max()))
            if history is not None:
                history.append(res.pres, res.dres, res.eps_prim, res.eps_dual, rho)
            if res.converged:
                break

        converged = bool(res is not None and res.converged)
        result = ADMMResult(
            x=x,
            z=z,
            lam=lam,
            objective=float(dec.lp.cost @ x),
            iterations=iteration,
            converged=converged,
            pres=res.pres if res else float("inf"),
            dres=res.dres if res else float("inf"),
            history=history,
            timers={"simulated_total": comm.elapsed()},
            algorithm=f"solver-free ADMM (simulated MPI, {self.n_ranks} ranks)",
        )
        return DistributedRunResult(
            result=result,
            timeline=timeline,
            n_ranks=self.n_ranks,
            simulated_total_s=comm.elapsed(),
        )
