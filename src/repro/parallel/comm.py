"""Communication cost models for the simulated cluster (paper Section IV-E).

Only one physical core is available in this environment, so multi-CPU and
multi-GPU runs are *simulated*: real measured per-component compute costs are
replayed against a standard latency-bandwidth (alpha-beta) communication
model.  Each ADMM iteration exchanges, between the aggregator and every rank,

* the relevant slice of the global iterate ``x`` (server -> ranks), and
* the rank's stacked local solutions and duals (ranks -> server),

so the bytes on the wire scale with the stacked local dimension while the
per-message latency term scales with the number of ranks — which is exactly
the growth the paper observes in Fig. 1(c).

For GPU ranks, MPI requires staging device buffers through host memory
(Section IV-E), adding a PCIe transfer on both sides of every message.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.policy import HOST_DTYPE

BYTES_PER_VALUE = 8  # float64 on the wire


@dataclass(frozen=True)
class CommModel:
    """Latency-bandwidth model of one interconnect.

    Attributes
    ----------
    latency_s:
        Per-message latency alpha (seconds).
    bandwidth_bytes_s:
        Sustained point-to-point bandwidth beta (bytes/second).
    staging_latency_s, staging_bandwidth_bytes_s:
        Optional device<->host staging cost applied to every message (zero
        for CPU ranks; PCIe-like values for GPU ranks using MPI).
    """

    latency_s: float = 2e-6
    bandwidth_bytes_s: float = 10e9
    staging_latency_s: float = 0.0
    staging_bandwidth_bytes_s: float = float("inf")

    def message_time(self, nbytes: float) -> float:
        """Time for one point-to-point message of ``nbytes``."""
        t = self.latency_s + nbytes / self.bandwidth_bytes_s
        if self.staging_latency_s or np.isfinite(self.staging_bandwidth_bytes_s):
            t += self.staging_latency_s + nbytes / self.staging_bandwidth_bytes_s
        return t

    def gather_scatter_time(self, per_rank_bytes: np.ndarray) -> float:
        """Aggregator-side time of one scatter + one gather round.

        The server serializes its endpoint of the N messages in each
        direction, giving the ``N * alpha + total_bytes / beta`` growth of
        Fig. 1(c); both directions carry the same payload sizes.
        """
        per_rank_bytes = np.asarray(per_rank_bytes, dtype=HOST_DTYPE)
        one_direction = float(
            sum(self.message_time(b) for b in per_rank_bytes)
        )
        return 2.0 * one_direction


#: Typical intra-cluster interconnect for CPU ranks (InfiniBand-class).
CPU_CLUSTER_COMM = CommModel(latency_s=2e-6, bandwidth_bytes_s=10e9)

#: GPU ranks speaking MPI: same fabric plus PCIe staging on every message.
GPU_CLUSTER_COMM = CommModel(
    latency_s=2e-6,
    bandwidth_bytes_s=10e9,
    staging_latency_s=8e-6,
    staging_bandwidth_bytes_s=12e9,
)
