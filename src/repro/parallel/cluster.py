"""Simulated multi-rank cluster execution of the distributed ADMM.

Reproduces the paper's multi-CPU (and multi-GPU) experiments on a single
machine: the *numerics* are executed exactly once (they do not depend on the
rank layout), while the *wall time* of a parallel deployment is derived from

* measured per-component local-update costs (replayed per rank: a rank's
  compute time is the sum of its components' costs; the iteration's compute
  time is the slowest rank — a bulk-synchronous model), and
* the alpha-beta communication model of :mod:`repro.parallel.comm` for the
  aggregator exchange.

This is the mechanism behind Fig. 1 (local-update wall / compute / comm vs
number of CPUs) and the top two rows of Fig. 3.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.policy import HOST_DTYPE

from repro.decomposition.decomposed import DecomposedOPF
from repro.parallel.assignment import assign_even, assign_greedy, rank_loads
from repro.parallel.comm import BYTES_PER_VALUE, CommModel


@dataclass(frozen=True)
class LocalUpdateTiming:
    """Per-iteration local-update timing split (the Fig. 1 quantities)."""

    n_ranks: int
    compute_s: float  # max over ranks of summed component costs (Fig. 1b)
    comm_s: float  # aggregator exchange (Fig. 1c)

    @property
    def total_s(self) -> float:  # Fig. 1a
        return self.compute_s + self.comm_s


@dataclass
class SimulatedCluster:
    """A bulk-synchronous rank layout over the components of one instance.

    Parameters
    ----------
    dec:
        The decomposed model (provides component sizes for message sizing).
    component_costs:
        Measured seconds of one local update per component (from
        ``SolverFreeADMM.measure_local_costs`` or the benchmark's
        equivalent).
    n_ranks:
        Cluster size.
    comm:
        Interconnect model.
    strategy:
        "even" (the paper's near-even split) or "greedy" (cost-balanced).
    slowdowns:
        Optional per-rank compute multipliers (``>= 1``), modeling
        stragglers in the bulk-synchronous timing: rank r's summed
        component cost is scaled by ``slowdowns[r]`` before the max over
        ranks.  ``None`` means a homogeneous cluster (historical behavior).
    """

    dec: DecomposedOPF
    component_costs: np.ndarray
    n_ranks: int
    comm: CommModel
    strategy: str = "even"
    slowdowns: np.ndarray | None = None

    def __post_init__(self) -> None:
        costs = np.asarray(self.component_costs, dtype=HOST_DTYPE)
        if costs.shape != (self.dec.n_components,):
            raise ValueError("component_costs must have one entry per component")
        if self.strategy == "even":
            self.owner = assign_even(self.dec.n_components, self.n_ranks)
        elif self.strategy == "greedy":
            self.owner = assign_greedy(costs, self.n_ranks)
        else:
            raise ValueError(f"unknown assignment strategy {self.strategy!r}")
        self.effective_ranks = int(self.owner.max()) + 1
        self._costs = costs
        if self.slowdowns is not None:
            factors = np.asarray(self.slowdowns, dtype=HOST_DTYPE)
            if factors.shape != (self.n_ranks,):
                raise ValueError("slowdowns must have one entry per rank")
            if np.any(factors < 1.0):
                raise ValueError("slowdown factors must be >= 1")
            self.slowdowns = factors[: self.effective_ranks]

    def per_rank_bytes(self) -> np.ndarray:
        """Wire bytes exchanged with each rank per iteration direction.

        A rank sends its stacked ``x_s`` and ``lambda_s`` (and receives the
        matching ``B_s x`` slice), so the payload is proportional to the sum
        of its components' local dimensions.
        """
        sizes = np.array([c.n_vars for c in self.dec.components], dtype=HOST_DTYPE)
        per_rank = np.bincount(self.owner, weights=sizes, minlength=self.effective_ranks)
        return per_rank * 2.0 * BYTES_PER_VALUE

    def local_update_timing(self) -> LocalUpdateTiming:
        """Simulated per-iteration local-update wall time on this layout."""
        loads = rank_loads(self._costs, self.owner, self.effective_ranks)
        if self.slowdowns is not None:
            loads = loads * self.slowdowns
        compute = float(loads.max())
        comm = (
            self.comm.gather_scatter_time(self.per_rank_bytes())
            if self.effective_ranks > 1
            else 0.0
        )
        return LocalUpdateTiming(
            n_ranks=self.effective_ranks, compute_s=compute, comm_s=comm
        )

    def iteration_time(self, global_s: float, dual_s: float) -> float:
        """Full simulated iteration: global + local (compute+comm) + dual.

        ``global_s`` and ``dual_s`` are the aggregator-side measured costs
        (they do not parallelize across ranks in the paper's architecture).
        """
        t = self.local_update_timing()
        return global_s + t.total_s + dual_s


def sweep_ranks(
    dec: DecomposedOPF,
    component_costs: np.ndarray,
    rank_counts: list[int],
    comm: CommModel,
    strategy: str = "even",
) -> list[LocalUpdateTiming]:
    """Fig. 1 sweep: local-update timing across cluster sizes."""
    return [
        SimulatedCluster(dec, component_costs, n, comm, strategy).local_update_timing()
        for n in rank_counts
    ]
