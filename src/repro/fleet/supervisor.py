"""Self-healing supervision over a :class:`~repro.fleet.FleetFrontend`.

PR 6 made the serving plane survive a worker death: failover re-routes
the dead worker's accepted requests to the survivors and the fleet keeps
answering — but *smaller*, and with the dead worker's topology-affinity
caches gone.  The supervisor closes the loop:

* **heartbeats** — every tick it probes each worker's liveness.  In sim
  mode the probe runs on the supervisor's own virtual clock, so death
  detection happens after exactly ``miss_threshold`` ticks and the whole
  recovery replays bit-identically from a seed.  In process mode the
  child posts :data:`~repro.fleet.worker.WORKER_HEARTBEAT` whenever its
  request get idles past the heartbeat interval, the frontend stamps
  ``last_heartbeat`` on *every* child message, and ``process.is_alive()``
  is the authoritative death signal (a stale heartbeat on a live process
  means *busy*, not dead — it is counted, never killed, unless
  ``kill_unresponsive_after_s`` is set).
* **auto-restart with seeded backoff** — a declared death schedules a
  restart after :class:`~repro.resilience.RetryPolicy` backoff
  (exponential, deterministic seeded jitter).  Each incarnation's chaos
  crash point comes from the fault plan's
  :meth:`~repro.resilience.FaultPlan.worker_crash_schedule`, so kill
  storms replay exactly.
* **crash-loop quarantine** — more than ``max_restarts`` deaths inside
  ``crash_loop_window_s`` quarantines the worker id: no further
  restarts, its vnodes stay rebalanced onto the survivors, and the
  configured capacity target drops by one (flapping is worse than
  running smaller).
* **cache re-warming** — after a restart the frontend replays the warm
  state for every topology the ring hands back to the worker, exported
  from the survivor that covered each key during the outage (see
  :meth:`FleetFrontend.rewarm_worker`), so post-restart routing returns
  to the original ring *with* recovered warm-hit rates instead of a cold
  cache.
* **graceful drain** — :meth:`FleetSupervisor.drain` takes a worker out
  of the ring first, lets it finish every request it had accepted, hands
  its warm state to the keys' new owners, and only then removes it —
  zero lost or duplicated requests, asserted against the outstanding
  ledger.

MTTR (death detected → restart complete, virtual seconds in sim) lands
on the ``fleet.restart.mttr_s`` histogram; counters live under
``fleet.heartbeat.*`` / ``fleet.restart.*`` / ``fleet.drain.*``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.fleet.frontend import MODE_SIM, FleetFrontend
from repro.resilience.policy import RetryPolicy
from repro.serve.requests import OPFRequest, OPFResponse
from repro.utils.exceptions import ReproError


@dataclass(frozen=True)
class SupervisorConfig:
    """Health-check cadence, restart policy and quarantine budget.

    ``max_restarts`` is the per-worker restart budget inside
    ``crash_loop_window_s``: death number ``max_restarts + 1`` within the
    window quarantines the id.  ``rewarm=False`` restarts workers cold
    (the control arm of the warm-hit recovery tests).
    """

    heartbeat_interval_s: float = 1.0
    miss_threshold: int = 3
    restart_base_delay_s: float = 0.05
    restart_multiplier: float = 2.0
    restart_max_delay_s: float = 5.0
    restart_jitter: float = 0.1
    max_restarts: int = 3
    crash_loop_window_s: float = 300.0
    rewarm: bool = True
    kill_unresponsive_after_s: float | None = None
    seed: int = 0

    def __post_init__(self) -> None:
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")
        if self.miss_threshold < 1:
            raise ValueError("miss_threshold must be at least 1")
        if self.max_restarts < 0:
            raise ValueError("max_restarts must be nonnegative")

    def backoff(self) -> RetryPolicy:
        """The seeded exponential restart backoff (attempt k = restart k)."""
        return RetryPolicy(
            max_retries=self.max_restarts,
            base_delay_s=self.restart_base_delay_s,
            max_delay_s=self.restart_max_delay_s,
            multiplier=self.restart_multiplier,
            jitter=self.restart_jitter,
            seed=self.seed,
        )


@dataclass
class WorkerHealth:
    """Supervisor-side health record of one worker id."""

    misses: int = 0
    down: bool = False
    quarantined: bool = False
    restarts: int = 0
    deaths: list = field(default_factory=list)  # clock times, window-pruned
    detected_at: float | None = None
    restart_due: float | None = None

    def as_dict(self) -> dict:
        return {
            "misses": self.misses,
            "down": self.down,
            "quarantined": self.quarantined,
            "restarts": self.restarts,
            "deaths": list(self.deaths),
        }


class FleetSupervisor:
    """Drives health checks, restarts, re-warming and drains.

    The supervisor owns no workers — it observes and commands the
    frontend.  One :meth:`tick` is one supervision round: poll the fleet
    for progress, probe liveness, declare deaths, quarantine crash
    loops, and execute due restarts.  In sim mode ``tick`` advances a
    virtual clock by ``heartbeat_interval_s`` per call, which makes the
    entire kill/detect/backoff/restart/rewarm cycle a deterministic
    function of (fleet seed, fault plan, supervisor seed).
    """

    def __init__(self, frontend: FleetFrontend, config: SupervisorConfig | None = None):
        self.frontend = frontend
        self.config = config if config is not None else SupervisorConfig()
        self._sim = frontend.config.mode == MODE_SIM
        self._vnow = 0.0  # virtual clock (sim mode only)
        self._backoff = self.config.backoff()
        self.health: dict[str, WorkerHealth] = {
            wid: WorkerHealth() for wid in frontend.workers
        }
        self._mttr = frontend.metrics.histogram("fleet.restart.mttr_s")
        for wid in frontend.workers:
            frontend.last_heartbeat.setdefault(wid, self.now())

    # -- clocks ---------------------------------------------------------
    def now(self) -> float:
        return self._vnow if self._sim else time.monotonic()

    # -- introspection --------------------------------------------------
    def quarantined(self) -> set[str]:
        return {wid for wid, h in self.health.items() if h.quarantined}

    def capacity(self) -> dict:
        """Alive count vs the current target (configured minus quarantined)."""
        alive = sum(1 for wid in self.frontend.workers if self.frontend._alive(wid))
        target = len(self.frontend.workers) - len(self.quarantined())
        return {"alive": alive, "target": target, "recovered": alive >= target}

    def pending_restarts(self) -> set[str]:
        return {
            wid
            for wid, h in self.health.items()
            if h.down and not h.quarantined
        }

    # -- the supervision round ------------------------------------------
    def tick(self, dt: float | None = None) -> list[OPFResponse]:
        """One supervision round; returns responses completed during it.

        Sim mode advances the virtual clock by ``dt`` (default: one
        heartbeat interval).  Process mode blocks up to ``dt`` seconds
        for fleet progress, so a supervision loop does not busy-spin.
        """
        fe = self.frontend
        dt = self.config.heartbeat_interval_s if dt is None else dt
        before = len(fe._responses)
        if self._sim:
            self._vnow += dt
            fe.poll()
        else:
            fe._drain_response_q(timeout=dt)
            fe._handle_deaths()
        now = self.now()
        for wid in sorted(fe.workers):
            self._check_worker(wid, now)
        self._restart_due(now)
        fe._gauge_depths()
        return fe._responses[before:]

    def _check_worker(self, wid: str, now: float) -> None:
        fe = self.frontend
        health = self.health.setdefault(wid, WorkerHealth())
        if health.quarantined or health.down:
            return
        alive = fe._alive(wid)
        if self._sim:
            # Deterministic probe: one missed heartbeat per tick the
            # worker fails it; death after miss_threshold consecutive
            # misses (detection latency is modeled, not assumed).
            if fe.workers[wid].heartbeat():
                health.misses = 0
                fe.last_heartbeat[wid] = now
                return
            health.misses += 1
            fe.metrics.counter("fleet.heartbeat.missed").inc()
            if health.misses >= self.config.miss_threshold:
                self._declare_death(wid, now)
            return
        # Process mode: is_alive is authoritative for death; heartbeat
        # staleness on a live process means busy (counted, not killed,
        # unless explicitly configured to escalate).
        stale_s = now - fe.last_heartbeat.get(wid, now)
        if not alive:
            self._declare_death(wid, now)
        elif stale_s > self.config.miss_threshold * self.config.heartbeat_interval_s:
            fe.metrics.counter("fleet.heartbeat.stale").inc()
            kill_after = self.config.kill_unresponsive_after_s
            if kill_after is not None and stale_s > kill_after:
                fe.kill_worker(wid)
                self._declare_death(wid, now)

    def _declare_death(self, wid: str, now: float) -> None:
        fe = self.frontend
        health = self.health[wid]
        health.down = True
        health.misses = 0
        health.detected_at = now
        window = self.config.crash_loop_window_s
        health.deaths = [t for t in health.deaths if now - t <= window]
        health.deaths.append(now)
        if len(health.deaths) > self.config.max_restarts:
            # Crash loop: flapping costs more than running one short.
            # The vnodes stay rebalanced onto the survivors for good.
            health.quarantined = True
            health.restart_due = None
            fe.metrics.counter("fleet.restart.quarantined").inc()
            return
        delay = self._backoff.delay(health.restarts + 1)  # 1-based attempts
        health.restart_due = now + delay
        fe.metrics.counter("fleet.restart.scheduled").inc()

    def _restart_due(self, now: float) -> None:
        fe = self.frontend
        for wid in sorted(self.health):
            health = self.health[wid]
            if (
                health.restart_due is None
                or health.quarantined
                or now < health.restart_due
            ):
                continue
            if fe._alive(wid):  # raced a manual restart
                health.down = False
                health.restart_due = None
                continue
            incarnation = health.restarts + 1
            schedule = (
                fe.fault_plan.worker_crash_schedule(wid)
                if fe.fault_plan is not None
                else []
            )
            crash_next = (
                schedule[incarnation] if incarnation < len(schedule) else None
            )
            with fe.tracer.span(
                "fleet.restart", cat="fleet", worker=wid, incarnation=incarnation
            ):
                fe.restart_worker(wid, crash_after_served=crash_next)
                if self.config.rewarm:
                    fe.rewarm_worker(wid)
            health.restarts += 1
            health.down = False
            health.restart_due = None
            if health.detected_at is not None:
                self._mttr.observe(self.now() - health.detected_at)
                health.detected_at = None

    # -- serving driver -------------------------------------------------
    def serve(self, requests: list[OPFRequest]) -> list[OPFResponse]:
        """Submit everything and tick until every accepted request is
        answered, supervising (and restarting workers) along the way.
        Responses come back in submission order, rejections included."""
        fe = self.frontend
        rejected: list[OPFResponse] = []
        for req in requests:
            resp = fe.submit(req)
            if resp is not None:
                rejected.append(resp)
        collected: list[OPFResponse] = []
        stall_deadline = time.monotonic() + fe.config.response_timeout_s
        while fe._outstanding_total() > 0 or (
            self._sim
            and any(len(w) for w in fe.workers.values() if w.alive)
        ):
            got = self.tick(None if self._sim else 0.25)
            collected.extend(got)
            if got or self._sim:
                stall_deadline = time.monotonic() + fe.config.response_timeout_s
            elif time.monotonic() > stall_deadline:
                raise ReproError(
                    f"supervised fleet stalled: {fe._outstanding_total()} "
                    "requests outstanding with no progress"
                )
        collected.extend(rejected)
        by_id = {r.request_id: r for r in collected}
        return [by_id[r.request_id] for r in requests if r.request_id in by_id]

    def stabilize(self, max_ticks: int = 1000) -> dict:
        """Tick until every non-quarantined worker is back up (capacity
        recovered) or the tick budget runs out; returns :meth:`capacity`."""
        for _ in range(max_ticks):
            cap = self.capacity()
            if cap["recovered"] and not self.pending_restarts():
                return cap
            self.tick(None if self._sim else 0.05)
        return self.capacity()

    # -- graceful drain -------------------------------------------------
    def drain(self, worker_id: str) -> dict:
        """Planned ring change: finish ``worker_id``'s in-flight work,
        hand off its warm state to each key's new owner, then remove it.

        Returns a report with the handoff counts and the lost/duplicated
        tallies (both asserted zero against the outstanding ledger and
        the response log).
        """
        fe = self.frontend
        if worker_id not in fe.workers:
            raise ReproError(f"unknown worker {worker_id}")
        if not fe._alive(worker_id):
            raise ReproError(f"cannot drain dead worker {worker_id}")
        alive = [w for w in fe.workers if fe._alive(w)]
        if len(alive) < 2:
            raise ReproError("cannot drain the last live worker")
        owned = fe.owned_topologies(worker_id)
        in_flight = set(fe._outstanding[worker_id])
        # Request ids may legitimately repeat across serve() waves, so the
        # exactly-once ledger below is a delta from this pre-drain count.
        before: dict[str, int] = {rid: 0 for rid in in_flight}
        for resp in fe._responses:
            if resp.request_id in before:
                before[resp.request_id] += 1
        with fe.tracer.span(
            "fleet.drain", cat="fleet", worker=worker_id, in_flight=len(in_flight)
        ):
            # New submissions route elsewhere from here on; the worker
            # itself keeps running until its ledger is empty.
            fe.ring.remove(worker_id)
            deadline = time.monotonic() + fe.config.response_timeout_s
            while fe._outstanding[worker_id]:
                if self._sim:
                    fe.poll()
                else:
                    fe._drain_response_q(timeout=0.05)
                    fe._handle_deaths()
                    if time.monotonic() > deadline:
                        raise ReproError(
                            f"drain of {worker_id} stalled with "
                            f"{len(fe._outstanding[worker_id])} outstanding"
                        )
                if not fe._alive(worker_id):
                    # Died mid-drain: failover already rerouted its work;
                    # nothing left to hand off from the corpse.
                    break
            handoff = {"topologies": 0, "projections": 0, "warm_entries": 0}
            if fe._alive(worker_id) and owned:
                by_target: dict[str, set[str]] = {}
                for key in sorted(owned):
                    by_target.setdefault(fe.ring.route(key), set()).add(key)
                for target in sorted(by_target):
                    got = fe.handoff_state(worker_id, target, by_target[target])
                    for k in handoff:
                        handoff[k] += got[k]
            fe.remove_worker(worker_id)
        self.health.pop(worker_id, None)
        # Ledger assertions: every request that was in flight on the
        # drained worker is answered (or rerouted and still outstanding),
        # and none was answered twice.
        answered: dict[str, int] = {rid: -n for rid, n in before.items()}
        for resp in fe._responses:
            if resp.request_id in answered:
                answered[resp.request_id] += 1
        still_out = {
            rid for ledger in fe._outstanding.values() for rid in ledger
        }
        lost = sorted(
            rid
            for rid in in_flight
            if answered[rid] == 0 and rid not in still_out
        )
        duplicated = sorted(rid for rid in in_flight if answered[rid] > 1)
        if lost or duplicated:
            raise ReproError(
                f"drain of {worker_id} violated exactly-once: "
                f"lost={lost} duplicated={duplicated}"
            )
        fe.metrics.counter("fleet.drain.count").inc()
        fe.metrics.counter("fleet.drain.handoff_entries").inc(
            handoff["warm_entries"]
        )
        return {
            "worker": worker_id,
            "finished": len(in_flight),
            "handoff": handoff,
            "lost": 0,
            "duplicated": 0,
        }

    def snapshot(self) -> dict:
        """Supervisor state for reports: health per worker + capacity."""
        return {
            "capacity": self.capacity(),
            "quarantined": sorted(self.quarantined()),
            "health": {wid: h.as_dict() for wid, h in sorted(self.health.items())},
        }
