"""Fleet workers: one :class:`~repro.serve.ScenarioEngine` per worker.

Two execution modes behind the same surface:

:class:`SimWorker`
    In-process and fully deterministic: the frontend drives it one batch
    at a time (:meth:`SimWorker.step`), so interleavings, crash points
    and failover are reproducible by construction.  This is what the
    fleet tests and the CI smoke job run.
:class:`ProcessWorker`
    A real ``multiprocessing`` process running :func:`_worker_main`: the
    engine lives in the child, requests/responses cross the boundary as
    plain dicts over ``multiprocessing.Queue``, and death is an actual
    dead process the frontend detects and fails over from.  This is the
    mode the scaling benchmark measures.

A worker crash (from a seeded :class:`~repro.resilience.WorkerCrash`
spec) is always *fail-stop at a batch boundary after ``after_served``
completed requests*: the sim worker re-queues its in-flight batch and
flips dead; the process worker hard-exits without draining its queues.
Either way every accepted-but-unserved request stays recoverable by the
frontend.
"""

from __future__ import annotations

import os
import queue as queue_mod
import time
from dataclasses import dataclass

from repro.resilience.policy import ResilienceConfig
from repro.serve.engine import ScenarioEngine
from repro.serve.requests import STATUS_ERROR, OPFRequest, OPFResponse
from repro.utils.exceptions import ReproError

#: Control-plane message kinds on the shared response queue.
WORKER_READY = "__ready__"
WORKER_BATCH = "__batch__"
WORKER_DONE = "__done__"
WORKER_HEARTBEAT = "__heartbeat__"
WORKER_STATE = "__state__"

#: Parent -> child control verbs (first element of a tuple on the
#: request queue; plain request dicts are the data plane).
CTRL_EXPORT = "__export__"
CTRL_IMPORT = "__warm__"

#: Exit code of a chaos-crashed worker process (distinguishes the
#: deliberate fail-stop from a Python traceback's exit 1 in CI logs).
CRASH_EXIT_CODE = 17


class WorkerQueueFull(ReproError):
    """A worker's bounded queue rejected a routed request.

    The frontend catches this and *spills* the request to the next worker
    in the key's ring preference order; it surfaces to callers only when
    every candidate is full (as a :class:`~repro.fleet.frontend.
    FleetSaturatedError`-flavoured rejection).

    Attributes
    ----------
    worker_id / queue_depth / maxsize / retry_after_s:
        Which queue, how full, and the worker's current backoff hint
        (never negative, 0.0 = no estimate yet).
    """

    def __init__(
        self, worker_id: str, queue_depth: int, maxsize: int, retry_after_s: float = 0.0
    ):
        self.worker_id = worker_id
        self.queue_depth = int(queue_depth)
        self.maxsize = int(maxsize)
        self.retry_after_s = max(0.0, float(retry_after_s))
        super().__init__(
            f"worker {worker_id} queue full "
            f"({self.queue_depth}/{self.maxsize} waiting); "
            f"retry in {self.retry_after_s:.3f}s"
        )


@dataclass(frozen=True)
class WorkerSpec:
    """Pickle-safe recipe for one worker's engine (crosses the process
    boundary as the only argument of :func:`_worker_main`).

    ``crash_after_served`` is the seeded chaos hook: ``None`` means never
    crash; ``k`` means fail-stop at the first batch boundary at which at
    least ``k`` requests have completed (``0`` = before serving anything).
    ``backend`` is a registry *name* (never an instance — instances do
    not pickle and each process must build its own arrays anyway).

    ``heartbeat_interval_s`` is how long a process worker's blocking get
    waits before posting a :data:`WORKER_HEARTBEAT` instead — the idle
    liveness signal the supervisor watches.  ``hang_on_shutdown`` is a
    test hook: the child ignores the shutdown sentinel, forcing
    :meth:`ProcessWorker.shutdown` to escalate to ``terminate()``.
    """

    worker_id: str
    max_batch: int = 16
    queue_size: int = 256
    cache_capacity: int = 64
    warm_start: bool = True
    backend: str | None = None
    precision: str | None = None
    crash_after_served: int | None = None
    heartbeat_interval_s: float = 1.0
    hang_on_shutdown: bool = False

    def __post_init__(self) -> None:
        if not self.worker_id:
            raise ValueError("worker_id must be nonempty")
        if self.crash_after_served is not None and self.crash_after_served < 0:
            raise ValueError("crash_after_served must be nonnegative")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat_interval_s must be positive")

    def build_engine(self, tracer=None) -> ScenarioEngine:
        # Per-topology breakers stay off inside fleet workers: the fleet
        # runs *per-worker* breakers at the frontend, and a worker-local
        # one would double-reject during failover storms.
        return ScenarioEngine(
            max_batch=self.max_batch,
            queue_size=self.queue_size,
            cache_capacity=self.cache_capacity,
            warm_start=self.warm_start,
            backend=self.backend,
            precision=self.precision,
            tracer=tracer,
            resilience=ResilienceConfig(breaker_failure_threshold=0),
        )


class SimWorker:
    """Deterministic in-process worker the frontend steps batch by batch."""

    def __init__(self, spec: WorkerSpec, tracer=None):
        self.spec = spec
        self.worker_id = spec.worker_id
        self.engine = spec.build_engine(tracer=tracer)
        self.alive = True
        self.served = 0
        self.busy_s = 0.0  # cumulative CPU-busy seconds across steps

    def __len__(self) -> int:
        return len(self.engine.queue)

    def submit(self, request: OPFRequest) -> None:
        """Enqueue or raise :class:`WorkerQueueFull` (the frontend spills)."""
        if not self.alive:
            raise WorkerQueueFull(self.worker_id, len(self.engine.queue),
                                  self.spec.queue_size)
        if self.engine.queue.full:
            raise WorkerQueueFull(
                self.worker_id,
                len(self.engine.queue),
                self.spec.queue_size,
                self.engine.queue.retry_after_hint,
            )
        # Not full, so the engine accepts (and records its own metrics).
        self.engine.submit(request)

    def requeue(self, requests: list[OPFRequest]) -> None:
        """Accept already-admitted requests during failover, bypassing the
        capacity bound (they must not be dropped)."""
        self.engine.adopt(requests)

    def step(self) -> list[OPFResponse]:
        """Serve one batch; honours the seeded crash point.

        The crash fires *mid-dispatch*: the batch has been taken off the
        queue but not served, so it is put back intact before the worker
        flips dead — the frontend recovers it with :meth:`drain_pending`.
        """
        if not self.alive:
            return []
        batch = self.engine.scheduler.next_batch()
        if not batch:
            return []
        crash_at = self.spec.crash_after_served
        if crash_at is not None and self.served >= crash_at:
            self.engine.queue.requeue_front(batch)
            self.alive = False
            return []
        self.engine.queue.requeue_front(batch)
        t_cpu = time.process_time()
        responses = self.engine.step()
        self.busy_s += time.process_time() - t_cpu
        self.served += len(responses)
        return responses

    def drain_pending(self) -> list[OPFRequest]:
        """Everything accepted but not yet served (failover recovery)."""
        return self.engine.queue.drain_all()

    def heartbeat(self) -> bool:
        """Liveness probe: a sim worker is responsive iff it is alive."""
        return self.alive

    def export_state(self, topology_keys: set[str] | None = None) -> dict:
        """Warm-state snapshot for handoff (projections + warm entries)."""
        return self.engine.export_topology_state(topology_keys)

    def import_state(self, payload: dict) -> dict:
        """Install a warm-state snapshot exported by another worker."""
        return self.engine.import_topology_state(payload)

    def snapshot(self) -> dict:
        snap = self.engine.snapshot()
        snap["worker.served"] = self.served
        snap["worker.busy_s"] = self.busy_s
        snap["worker.alive"] = self.alive
        return snap


def _worker_main(spec: WorkerSpec, request_q, response_q) -> None:
    """Process-worker entry point (module-level so it pickles).

    Protocol, all plain picklable values:

    * child -> parent: ``(WORKER_READY, worker_id, None)`` once the
      engine is constructed, then ``(WORKER_BATCH, worker_id, payload)``
      per served micro-batch where ``payload`` is ``(response_dicts,
      stats)``, ``(WORKER_HEARTBEAT, worker_id, served)`` whenever the
      blocking get idles past ``heartbeat_interval_s``, ``(WORKER_STATE,
      worker_id, payload)`` in reply to a control verb, and finally
      ``(WORKER_DONE, worker_id, snapshot)`` on clean shutdown.
    * parent -> child: request dicts, ``None`` as the shutdown sentinel,
      or control tuples — ``(CTRL_EXPORT, topology_keys)`` answers with
      the warm-state snapshot, ``(CTRL_IMPORT, payload)`` installs one
      and answers with the import counts.

    The loop blocks for the first request, then greedily drains up to
    ``max_batch - 1`` more without blocking — the micro-batching that
    turns a stream of singletons into stacked solves on an idle fleet
    while still filling batches under load.
    """
    engine = spec.build_engine()
    response_q.put((WORKER_READY, spec.worker_id, None))
    served = 0
    crash_at = spec.crash_after_served

    def handle_control(msg: tuple) -> None:
        verb, arg = msg
        if verb == CTRL_EXPORT:
            payload = engine.export_topology_state(arg)
        elif verb == CTRL_IMPORT:
            payload = engine.import_topology_state(arg)
        else:
            # A verb this worker build doesn't know (version skew during
            # a rolling restart): answer with an error payload instead of
            # leaving the parent's collect loop to time out.
            payload = {"error": f"unknown control verb {verb!r}"}
        response_q.put((WORKER_STATE, spec.worker_id, payload))

    while True:
        if crash_at is not None and served >= crash_at:
            # Seeded fail-stop: no drain, no goodbye — the parent sees a
            # dead process with requests outstanding and fails over.
            os._exit(CRASH_EXIT_CODE)
        try:
            item = request_q.get(timeout=spec.heartbeat_interval_s)
        except queue_mod.Empty:
            response_q.put((WORKER_HEARTBEAT, spec.worker_id, served))
            continue
        if item is None:
            if spec.hang_on_shutdown:
                continue  # test hook: force shutdown() to escalate
            response_q.put((WORKER_DONE, spec.worker_id, engine.snapshot()))
            return
        if isinstance(item, tuple):
            handle_control(item)
            continue
        items = [item]
        while len(items) < spec.max_batch:
            try:
                extra = request_q.get_nowait()
            except queue_mod.Empty:
                break
            if extra is None:
                # Defer shutdown until after this batch is served.
                request_q.put(None)
                break
            if isinstance(extra, tuple):
                handle_control(extra)
                continue
            items.append(extra)
        t_cpu = time.process_time()
        t_wall = time.perf_counter()
        responses: list[dict] = []
        for d in items:
            try:
                req = OPFRequest.from_dict(d)
            except (KeyError, TypeError, ValueError) as exc:
                responses.append(
                    OPFResponse(
                        request_id=str(d.get("request_id", "?")),
                        status=STATUS_ERROR,
                        error=f"malformed request: {exc}",
                    ).to_dict()
                )
                continue
            rejection = engine.submit(req)
            if rejection is not None:
                responses.append(rejection.to_dict())
        try:
            responses.extend(r.to_dict() for r in engine.run())
        except Exception as exc:  # noqa: BLE001 -- a worker must answer,
            # not die with requests in flight: convert whatever the solve
            # raised into error responses for everything still pending.
            responses.extend(
                OPFResponse(
                    request_id=d.get("request_id", "?"),
                    status=STATUS_ERROR,
                    error=f"worker {spec.worker_id} solve failed: {exc}",
                ).to_dict()
                for d in items
                if d.get("request_id") not in {r["request_id"] for r in responses}
            )
        served += len(responses)
        stats = {
            "busy_cpu_s": time.process_time() - t_cpu,
            "busy_wall_s": time.perf_counter() - t_wall,
            "served": len(responses),
        }
        response_q.put((WORKER_BATCH, spec.worker_id, (responses, stats)))


class ProcessWorker:
    """Parent-side handle of one worker process.

    The parent enforces the worker's ``queue_size`` itself (via its
    outstanding-request ledger) because a ``multiprocessing.Queue`` has
    no useful cross-process depth bound; the child never rejects.
    """

    def __init__(self, spec: WorkerSpec, ctx, response_q):
        self.spec = spec
        self.worker_id = spec.worker_id
        self.request_q = ctx.Queue()
        self._shut_down = False
        self.process = ctx.Process(
            target=_worker_main,
            args=(spec, self.request_q, response_q),
            name=f"fleet-{spec.worker_id}",
            daemon=True,
        )
        self.process.start()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def send(self, request: OPFRequest) -> None:
        self.request_q.put(request.to_dict())

    def send_control(self, verb: str, arg) -> None:
        """Queue a control verb; the child answers with ``WORKER_STATE``."""
        self.request_q.put((verb, arg))

    def shutdown(self, timeout_s: float = 5.0) -> None:
        """Sentinel + join; escalate to terminate if the child hangs.

        Idempotent: a second call is a no-op (the queue is already closed
        and the process reaped).
        """
        if self._shut_down:
            return
        self._shut_down = True
        if self.process.is_alive():
            try:
                self.request_q.put(None)
            except ValueError:  # queue already closed
                pass
            self.process.join(timeout=timeout_s)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=timeout_s)
        # Release the feeder thread's resources deterministically.
        self.request_q.close()
        self.request_q.join_thread()
