"""Horizontally sharded multi-worker serving with topology-affinity routing.

The fleet layer scales the single-process
:class:`~repro.serve.ScenarioEngine` out to N workers without giving up
the per-worker cache locality the engine's performance depends on:

* :mod:`repro.fleet.routing` — consistent-hash ring; requests route by
  ``topology_key()`` so each feeder's stream sticks to one worker.
* :mod:`repro.fleet.worker` — one engine per worker, as a deterministic
  in-process :class:`SimWorker` or a real ``multiprocessing``
  :class:`ProcessWorker`.
* :mod:`repro.fleet.frontend` — the :class:`FleetFrontend`: routing,
  spill on full queues, per-worker circuit breakers, dead-worker
  failover (re-route, never drop), structured backpressure.
* :mod:`repro.fleet.loadgen` — seeded Poisson / closed-loop load tests
  reporting latency percentiles straight from the fleet telemetry.
* :mod:`repro.fleet.supervisor` — the self-healing layer: heartbeat
  health checks, auto-restart with seeded backoff, crash-loop
  quarantine, cache re-warming, graceful drain.
* :mod:`repro.fleet.chaos` — the seeded kill/restart soak harness
  proving exactly-once + bit-identical + capacity-recovered invariants.

See docs/SERVING.md (fleet section) for the architecture and
``repro serve-fleet`` / ``repro fleet-chaos`` for the CLI entry points.
"""

from repro.fleet.chaos import ChaosSoakReport, run_chaos_soak
from repro.fleet.frontend import (
    MODE_PROCESS,
    MODE_SIM,
    FleetConfig,
    FleetFrontend,
    FleetSaturatedError,
)
from repro.fleet.loadgen import (
    LoadTestReport,
    generate_mixed_scenarios,
    poisson_arrival_times,
    run_closed_loop,
    run_open_loop,
)
from repro.fleet.routing import DEFAULT_REPLICAS, HashRing, stable_hash
from repro.fleet.supervisor import FleetSupervisor, SupervisorConfig, WorkerHealth
from repro.fleet.worker import (
    CRASH_EXIT_CODE,
    ProcessWorker,
    SimWorker,
    WorkerQueueFull,
    WorkerSpec,
)

__all__ = [
    "FleetConfig",
    "FleetFrontend",
    "FleetSaturatedError",
    "MODE_SIM",
    "MODE_PROCESS",
    "HashRing",
    "stable_hash",
    "DEFAULT_REPLICAS",
    "WorkerSpec",
    "SimWorker",
    "ProcessWorker",
    "WorkerQueueFull",
    "CRASH_EXIT_CODE",
    "LoadTestReport",
    "generate_mixed_scenarios",
    "poisson_arrival_times",
    "run_open_loop",
    "run_closed_loop",
    "FleetSupervisor",
    "SupervisorConfig",
    "WorkerHealth",
    "ChaosSoakReport",
    "run_chaos_soak",
]
