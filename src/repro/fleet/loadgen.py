"""Closed-loop load-test harness for the fleet frontend.

Two traffic shapes, both seeded and fully reproducible:

* **open loop** — arrivals follow a Poisson process of the requested
  rate (exponential inter-arrival gaps drawn once, up front, from the
  seed).  The generator submits on schedule *regardless of completions*,
  which is what exposes queueing collapse: if the fleet cannot keep up,
  queues grow, spills rise, and eventually submissions bounce with
  structured backpressure.
* **closed loop** — a fixed number of in-flight requests ("virtual
  clients"); each completion immediately triggers the next submission.
  Throughput then measures the fleet's service capacity at that
  concurrency, never its queue capacity.

Latency percentiles come from the frontend's ``fleet.latency_s``
reservoir (exact until the sample bound, Algorithm R beyond it), so the
report is the same data an operator would scrape — the harness adds no
second bookkeeping path that could drift from production telemetry.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.fleet.frontend import MODE_SIM, FleetFrontend
from repro.io.resolve import resolve_feeder
from repro.serve.requests import OPFRequest


def generate_mixed_scenarios(
    feeders: list[str],
    count: int,
    seed: int,
    spread: float = 0.15,
    method: str = "linearized",
) -> list[OPFRequest]:
    """Seeded load-perturbation scenarios round-robined over ``feeders``.

    The round-robin interleaving is the worst case for a batching engine
    (adjacent requests rarely share a topology) and the natural case for
    the fleet (each feeder's stream still lands on its affinity worker) —
    exactly the contrast the scaling benchmark measures.
    """
    if not feeders:
        raise ValueError("need at least one feeder")
    rng = np.random.default_rng(seed)
    load_names = {f: sorted(resolve_feeder(f).loads) for f in feeders}
    requests: list[OPFRequest] = []
    for i in range(count):
        feeder = feeders[i % len(feeders)]
        requests.append(
            OPFRequest(
                request_id=f"mix-{i:05d}",
                feeder=feeder,
                load_scale=float(1.0 + rng.uniform(-spread, spread)),
                load_multipliers={
                    name: float(1.0 + rng.uniform(-spread, spread))
                    for name in load_names[feeder]
                },
                method=method,
            )
        )
    return requests


@dataclass
class LoadTestReport:
    """Outcome of one load-test run against a fleet."""

    mode: str  # "open" or "closed"
    offered: int
    completed: int
    rejected: int
    wall_s: float
    throughput_rps: float
    latency: dict = field(default_factory=dict)  # reservoir summary
    status_counts: dict = field(default_factory=dict)
    fleet: dict = field(default_factory=dict)  # frontend metrics snapshot

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "offered": self.offered,
            "completed": self.completed,
            "rejected": self.rejected,
            "wall_s": self.wall_s,
            "throughput_rps": self.throughput_rps,
            "latency": self.latency,
            "status_counts": self.status_counts,
            "fleet": self.fleet,
        }


def poisson_arrival_times(rate_rps: float, count: int, seed: int) -> np.ndarray:
    """Cumulative arrival times (seconds) of a seeded Poisson process."""
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    rng = np.random.default_rng(seed)
    return np.cumsum(rng.exponential(1.0 / rate_rps, size=count))


def _report(frontend: FleetFrontend, mode, offered, responses, wall_s) -> LoadTestReport:
    status_counts: dict[str, int] = {}
    for r in responses:
        status_counts[r.status] = status_counts.get(r.status, 0) + 1
    completed = sum(v for k, v in status_counts.items() if k != "rejected")
    snap = frontend.snapshot()
    return LoadTestReport(
        mode=mode,
        offered=offered,
        completed=completed,
        rejected=status_counts.get("rejected", 0),
        wall_s=wall_s,
        throughput_rps=completed / wall_s if wall_s > 0 else 0.0,
        latency=frontend.metrics.histogram("fleet.latency_s").summary(),
        status_counts=status_counts,
        fleet=snap,
    )


def run_open_loop(
    frontend: FleetFrontend,
    requests: list[OPFRequest],
    rate_rps: float,
    seed: int = 0,
) -> LoadTestReport:
    """Offer ``requests`` at seeded Poisson ``rate_rps`` arrivals.

    In process mode the schedule runs on the wall clock (the harness
    sleeps between arrivals); in sim mode the schedule degenerates to
    submit-then-poll rounds — arrival *order* and seeding are identical,
    only the physical pacing is elided, keeping the run deterministic.
    """
    arrivals = poisson_arrival_times(rate_rps, len(requests), seed)
    paced = frontend.config.mode != MODE_SIM
    responses = []
    t0 = time.perf_counter()
    for req, t_due in zip(requests, arrivals):
        if paced:
            lag = t_due - (time.perf_counter() - t0)
            if lag > 0:
                time.sleep(lag)
        rejection = frontend.submit(req)
        if rejection is not None:
            responses.append(rejection)
        responses.extend(frontend.poll())
    responses.extend(frontend.run())
    wall_s = time.perf_counter() - t0
    return _report(frontend, "open", len(requests), responses, wall_s)


def run_closed_loop(
    frontend: FleetFrontend,
    requests: list[OPFRequest],
    concurrency: int = 8,
) -> LoadTestReport:
    """Keep up to ``concurrency`` requests in flight until all are done."""
    if concurrency < 1:
        raise ValueError("concurrency must be at least 1")
    pending = list(reversed(requests))  # pop() from the front of the stream
    in_flight = 0
    responses = []
    t0 = time.perf_counter()
    while pending or in_flight > 0:
        while pending and in_flight < concurrency:
            rejection = frontend.submit(pending.pop())
            if rejection is not None:
                responses.append(rejection)
            else:
                in_flight += 1
        done = frontend.poll()
        if not done and in_flight > 0 and frontend.config.mode != MODE_SIM:
            time.sleep(0.005)  # yield; workers are separate processes
        responses.extend(done)
        in_flight -= len(done)
    wall_s = time.perf_counter() - t0
    return _report(frontend, "closed", len(requests), responses, wall_s)
