"""The fleet frontend: topology-affinity routing over a worker pool.

:class:`FleetFrontend` is the single submission surface of a horizontally
sharded serving fleet.  Each request is routed by the consistent-hash
ring (:mod:`repro.fleet.routing`) on its ``topology_key()``, so all
requests for one feeder land on one worker and that worker's projection
and warm-start caches stay hot.  Around the ring sit the resilience
pieces reused from :mod:`repro.resilience`:

* a per-worker :class:`~repro.resilience.CircuitBreaker` — a worker that
  keeps failing is skipped in routing until its recovery window passes;
* *spill*: when a key's preferred worker has a full queue, the request
  walks the key's ring preference order to the next candidate (affinity
  lost, request saved);
* structured backpressure: when every candidate is full, submission
  fails with a :class:`FleetSaturatedError`-carrying rejection whose
  ``retry_after_s`` is the minimum backoff hint across the fleet;
* failover: a dead worker is removed from the ring and every request it
  had accepted but not completed is re-routed to the survivors — no
  accepted request is ever dropped.

Two wiring modes, same API (see :mod:`repro.fleet.worker`): ``sim``
steps in-process workers deterministically; ``process`` runs real
``multiprocessing`` workers and detects genuinely dead processes.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
from dataclasses import dataclass, replace

from repro.fleet.routing import DEFAULT_REPLICAS, HashRing
from repro.fleet.worker import (
    CTRL_EXPORT,
    CTRL_IMPORT,
    WORKER_BATCH,
    WORKER_DONE,
    WORKER_HEARTBEAT,
    WORKER_READY,
    WORKER_STATE,
    ProcessWorker,
    SimWorker,
    WorkerQueueFull,
    WorkerSpec,
)
from repro.resilience.faults import FaultPlan
from repro.resilience.policy import CircuitBreaker
from repro.serve.requests import (
    STATUS_ERROR,
    STATUS_REJECTED,
    OPFRequest,
    OPFResponse,
)
from repro.telemetry import MetricsRegistry, NULL_TRACER
from repro.utils.exceptions import ReproError

MODE_SIM = "sim"
MODE_PROCESS = "process"


class FleetSaturatedError(ReproError):
    """Every candidate worker for a request's topology was full (or dead).

    Attributes
    ----------
    topology_key:
        The key that could not be placed.
    retry_after_s:
        Minimum backoff hint across the rejecting workers (0.0 when no
        worker had an estimate).
    queue_depths:
        ``{worker_id: depth}`` of the rejecting workers at rejection time.
    """

    def __init__(self, topology_key: str, retry_after_s: float, queue_depths: dict):
        self.topology_key = topology_key
        self.retry_after_s = max(0.0, float(retry_after_s))
        self.queue_depths = dict(queue_depths)
        super().__init__(
            f"fleet saturated for topology {topology_key}: all "
            f"{len(self.queue_depths)} candidate workers full; "
            f"retry in {self.retry_after_s:.3f}s"
        )


@dataclass(frozen=True)
class FleetConfig:
    """Shape of the fleet: worker count, mode, and per-worker engine knobs.

    ``mode`` is :data:`MODE_SIM` (in-process, deterministic) or
    :data:`MODE_PROCESS` (real ``multiprocessing`` workers).
    ``response_timeout_s`` bounds how long the process-mode frontend
    waits for *any* progress before declaring the fleet stalled.
    """

    n_workers: int = 2
    mode: str = MODE_SIM
    max_batch: int = 16
    queue_size: int = 256
    cache_capacity: int = 64
    warm_start: bool = True
    backend: str | None = None
    precision: str | None = None
    replicas: int = DEFAULT_REPLICAS
    breaker_failure_threshold: int = 5
    breaker_recovery_s: float = 30.0
    response_timeout_s: float = 120.0
    heartbeat_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.n_workers < 1:
            raise ValueError("n_workers must be at least 1")
        if self.mode not in (MODE_SIM, MODE_PROCESS):
            raise ValueError(f"unknown fleet mode {self.mode!r}")
        if self.response_timeout_s <= 0:
            raise ValueError("response_timeout_s must be positive")

    def worker_ids(self) -> list[str]:
        return [f"w{i}" for i in range(self.n_workers)]

    def spec_for(self, worker_id: str, fault_plan: FaultPlan | None) -> WorkerSpec:
        crash_after = (
            fault_plan.worker_crash_after(worker_id) if fault_plan is not None else None
        )
        return WorkerSpec(
            worker_id=worker_id,
            max_batch=self.max_batch,
            queue_size=self.queue_size,
            cache_capacity=self.cache_capacity,
            warm_start=self.warm_start,
            backend=self.backend,
            precision=self.precision,
            crash_after_served=crash_after,
            heartbeat_interval_s=self.heartbeat_interval_s,
        )


class FleetFrontend:
    """Routing, failover and backpressure over a pool of engine workers.

    Parameters
    ----------
    config:
        Fleet shape and per-worker engine settings.
    tracer:
        Optional :class:`repro.telemetry.Tracer`; sim-mode workers share
        it (their engine spans land in the same trace), and the frontend
        adds ``fleet.*`` routing/poll spans either way.
    fault_plan:
        Seeded :class:`~repro.resilience.FaultPlan`; its
        :class:`~repro.resilience.WorkerCrash` specs become per-worker
        crash points (chaos testing the failover path).
    clock:
        Injectable monotonic clock for the per-worker breakers.

    Examples
    --------
    >>> from repro.fleet import FleetConfig, FleetFrontend
    >>> from repro.serve import OPFRequest
    >>> fleet = FleetFrontend(FleetConfig(n_workers=2))
    >>> reqs = [OPFRequest(request_id=f"s{i}", load_scale=1 + 0.01 * i)
    ...         for i in range(4)]
    >>> [r.status for r in fleet.serve(reqs)] == ["converged"] * 4
    True
    """

    def __init__(
        self,
        config: FleetConfig | None = None,
        tracer=None,
        fault_plan: FaultPlan | None = None,
        clock=time.monotonic,
    ):
        self.config = config if config is not None else FleetConfig()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.fault_plan = fault_plan
        self._clock = clock
        self.metrics = MetricsRegistry()
        self.ring = HashRing(self.config.worker_ids(), replicas=self.config.replicas)
        self.breakers = {
            wid: CircuitBreaker(
                failure_threshold=max(1, self.config.breaker_failure_threshold),
                recovery_s=self.config.breaker_recovery_s,
                clock=clock,
            )
            for wid in self.config.worker_ids()
        }
        self._breakers_enabled = self.config.breaker_failure_threshold > 0
        #: worker_id -> {request_id: OPFRequest} accepted but not completed.
        self._outstanding: dict[str, dict[str, OPFRequest]] = {
            wid: {} for wid in self.config.worker_ids()
        }
        self._submit_time: dict[str, float] = {}
        self._dead_handled: set[str] = set()
        self._responses: list[OPFResponse] = []
        self._latency = self.metrics.histogram("fleet.latency_s")
        self._worker_stats: dict[str, dict] = {}
        self._final_snapshots: dict[str, dict] = {}
        #: topology_key -> feeder of every request ever routed; the rewarm
        #: path uses it to know which topologies a worker's ring slice owns
        #: (and which feeder rebuilds each plan).
        self._topologies: dict[str, str] = {}
        #: worker_id -> clock time of the last liveness signal (process
        #: mode: heartbeat/batch messages; sim mode: maintained by the
        #: supervisor's virtual clock instead).
        self.last_heartbeat: dict[str, float] = {}
        self._state_replies: dict[str, dict] = {}
        self._closed = False

        self.workers: dict = {}
        self._mp_ctx = None
        self._response_q = None
        if self.config.mode == MODE_SIM:
            for wid in self.config.worker_ids():
                self.workers[wid] = SimWorker(
                    self.config.spec_for(wid, fault_plan), tracer=self.tracer
                )
        else:
            self._mp_ctx = multiprocessing.get_context()
            self._response_q = self._mp_ctx.Queue()
            for wid in self.config.worker_ids():
                self.workers[wid] = ProcessWorker(
                    self.config.spec_for(wid, fault_plan),
                    self._mp_ctx,
                    self._response_q,
                )
            self._await_ready()

    # -- lifecycle ------------------------------------------------------
    def _await_ready(self, pending: set[str] | None = None) -> None:
        """Block until the given worker processes (default: all) have
        built their engines.  Other worker messages arriving meanwhile —
        batches, heartbeats, deaths of *other* workers — are dispatched
        normally rather than dropped, so a restart-time ready-wait can
        never lose responses."""
        pending = set(self.workers) if pending is None else set(pending)
        deadline = time.monotonic() + self.config.response_timeout_s
        while pending:
            dead = [wid for wid in pending if not self.workers[wid].alive]
            if dead:
                raise ReproError(f"fleet workers died during startup: {sorted(dead)}")
            timeout = min(1.0, deadline - time.monotonic())
            if timeout <= 0:
                raise ReproError(
                    f"fleet workers never became ready: {sorted(pending)}"
                )
            try:
                kind, wid, payload = self._response_q.get(timeout=timeout)
            except queue_mod.Empty:
                continue
            if kind == WORKER_READY:
                pending.discard(wid)
                self.last_heartbeat[wid] = self._clock()
            else:
                self._dispatch(kind, wid, payload)

    def close(self) -> None:
        """Shut the fleet down; answers any still-outstanding request with
        an ``error`` response so callers are never left hanging.  A second
        ``close`` is a no-op."""
        if self._closed:
            return
        self._closed = True
        if self.config.mode == MODE_PROCESS:
            for worker in self.workers.values():
                worker.shutdown()
            # Collect any final snapshots the children managed to send.
            while True:
                try:
                    kind, wid, payload = self._response_q.get_nowait()
                except (queue_mod.Empty, OSError):
                    break
                self._dispatch(kind, wid, payload)
            self._response_q.close()
        for wid in sorted(self._outstanding):
            for req in list(self._outstanding[wid].values()):
                self._finalize(
                    wid,
                    OPFResponse(
                        request_id=req.request_id,
                        status=STATUS_ERROR,
                        error=f"fleet closed with request outstanding on {wid}",
                    ),
                )

    def __enter__(self) -> "FleetFrontend":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission -----------------------------------------------------
    def _alive(self, wid: str) -> bool:
        return self.workers[wid].alive

    def _candidates(self, key: str) -> list[str]:
        """Ring preference for ``key``, filtered to live workers with a
        non-open breaker (an open breaker is *skipped*, not fatal — the
        request spills to the next preference, trading affinity for
        availability)."""
        order = []
        for wid in self.ring.preference(key):
            if not self._alive(wid):
                continue
            if self._breakers_enabled and not self.breakers[wid].allow():
                continue
            order.append(wid)
        return order

    def submit(self, request: OPFRequest) -> OPFResponse | None:
        """Route and enqueue one request.

        Returns ``None`` when a worker accepted it, or a ``rejected``
        :class:`OPFResponse` when the fleet is saturated for this
        topology (every live candidate's queue full).
        """
        self.metrics.counter("fleet.submitted").inc()
        key = request.topology_key()
        self._topologies[key] = request.feeder
        with self.tracer.span("fleet.route", cat="fleet", topology=key):
            candidates = self._candidates(key)
        depths: dict[str, int] = {}
        hints: list[float] = []
        for rank, wid in enumerate(candidates):
            try:
                self._enqueue(wid, request)
            except WorkerQueueFull as exc:
                depths[wid] = exc.queue_depth
                hints.append(exc.retry_after_s)
                self.metrics.counter("fleet.spilled").inc()
                continue
            self.metrics.counter("fleet.accepted").inc()
            if rank > 0 or wid != self.ring.route(key):
                self.metrics.counter("fleet.affinity_miss").inc()
            self._outstanding[wid][request.request_id] = request
            self._submit_time[request.request_id] = time.perf_counter()
            self._gauge_depths()
            return None
        self.metrics.counter("fleet.rejected").inc()
        exc = FleetSaturatedError(
            key, min((h for h in hints if h > 0), default=0.0), depths
        )
        return OPFResponse(
            request_id=request.request_id, status=STATUS_REJECTED, error=str(exc)
        )

    def _enqueue(self, wid: str, request: OPFRequest) -> None:
        worker = self.workers[wid]
        if self.config.mode == MODE_SIM:
            worker.submit(request)
        else:
            # The parent enforces the depth bound: a mp.Queue has no
            # useful cross-process length, but outstanding == queued +
            # in-flight, which is the quantity backpressure should bound.
            depth = len(self._outstanding[wid])
            if depth >= self.config.queue_size:
                raise WorkerQueueFull(wid, depth, self.config.queue_size)
            worker.send(request)

    def _gauge_depths(self) -> None:
        for wid in self.workers:
            self.metrics.gauge(f"fleet.queue_depth.{wid}").set(
                len(self._outstanding[wid])
            )
        self.metrics.gauge("fleet.workers_alive").set(
            sum(1 for wid in self.workers if self._alive(wid))
        )

    # -- completion -----------------------------------------------------
    def _finalize(self, wid: str, response: OPFResponse) -> bool:
        """Record one worker response; returns False for duplicates.

        A response counts only while its request id is still outstanding
        somewhere — the first answer wins and retires the id, so the late
        twin of a re-routed request (its original worker got the batch
        out just before dying) is dropped, while a *reused* request id in
        a later ``serve`` call is a fresh outstanding entry and completes
        normally.
        """
        rid = response.request_id
        outstanding = any(rid in ledger for ledger in self._outstanding.values())
        if not outstanding:
            return False
        for ledger in self._outstanding.values():
            ledger.pop(rid, None)
        t0 = self._submit_time.pop(rid, None)
        if t0 is not None:
            self._latency.observe(time.perf_counter() - t0)
        if self._breakers_enabled and wid in self.breakers:
            if response.status == STATUS_ERROR:
                self.breakers[wid].record_failure()
            else:
                self.breakers[wid].record_success()
        self._responses.append(response)
        return True

    def _reroute(self, dead_wid: str, recovered: list[OPFRequest]) -> None:
        """Re-route a dead worker's accepted-but-unserved requests to the
        survivors, in their original order, by the post-removal ring."""
        for req in recovered:
            target = self.ring.route(req.topology_key())
            worker = self.workers[target]
            if self.config.mode == MODE_SIM:
                worker.requeue([req])
            else:
                worker.send(req)
            self._outstanding[target][req.request_id] = req
            self.metrics.counter("fleet.rerouted").inc()

    def _handle_deaths(self) -> None:
        """Detect newly dead workers; remove them from the ring and fail
        over their outstanding requests (or error them out when no
        survivor is left)."""
        for wid in sorted(self.workers):
            if self._alive(wid) or wid in self._dead_handled:
                continue
            self._dead_handled.add(wid)
            self.metrics.counter("fleet.worker_deaths").inc()
            survivors = [
                w for w in self.workers if w != wid and self._alive(w)
            ]
            recovered: list[OPFRequest] = []
            if self.config.mode == MODE_SIM:
                recovered.extend(self.workers[wid].drain_pending())
            # Anything accepted but unaccounted for (process mode: queued
            # in the dead child, or in flight when it died).
            drained_ids = {r.request_id for r in recovered}
            recovered.extend(
                req
                for rid, req in self._outstanding[wid].items()
                if rid not in drained_ids
            )
            if survivors:
                self._outstanding[wid] = {}
                self.ring.remove(wid)
                with self.tracer.span(
                    "fleet.failover", cat="fleet", worker=wid, rerouted=len(recovered)
                ):
                    self._reroute(wid, recovered)
            else:
                # Total fleet loss: nothing to route to — answer honestly.
                # (_finalize pops each id off the dead worker's ledger.)
                for req in recovered:
                    self._finalize(
                        wid,
                        OPFResponse(
                            request_id=req.request_id,
                            status=STATUS_ERROR,
                            error=f"worker {wid} died with no survivors",
                        ),
                    )
                self._outstanding[wid] = {}
        self._gauge_depths()

    # -- draining -------------------------------------------------------
    def _outstanding_total(self) -> int:
        return sum(len(ledger) for ledger in self._outstanding.values())

    def poll(self) -> list[OPFResponse]:
        """One non-blocking progress round; returns responses completed
        during it.  Sim mode: each live worker serves one batch (sorted
        worker order, so interleavings are deterministic).  Process mode:
        drain whatever the response queue holds right now."""
        before = len(self._responses)
        with self.tracer.span("fleet.poll", cat="fleet"):
            if self.config.mode == MODE_SIM:
                for wid in sorted(self.workers):
                    worker = self.workers[wid]
                    if not worker.alive:
                        continue
                    for resp in worker.step():
                        self._finalize(wid, resp)
            else:
                self._drain_response_q(timeout=0.0)
            self._handle_deaths()
        return self._responses[before:]

    def _drain_response_q(self, timeout: float) -> None:
        """Pull worker messages: block up to ``timeout`` for the first,
        then sweep whatever else is immediately available."""
        block = timeout > 0
        while True:
            try:
                if block:
                    kind, wid, payload = self._response_q.get(timeout=timeout)
                    block = False
                else:
                    kind, wid, payload = self._response_q.get_nowait()
            except queue_mod.Empty:
                return
            self._dispatch(kind, wid, payload)

    def _dispatch(self, kind: str, wid: str, payload) -> None:
        """Route one worker message to its handler (single place every
        drain loop — poll, ready-wait, state-wait, close — goes through,
        so no loop can drop a message kind it did not expect)."""
        if kind == WORKER_BATCH:
            self.last_heartbeat[wid] = self._clock()
            response_dicts, stats = payload
            agg = self._worker_stats.setdefault(
                wid, {"busy_cpu_s": 0.0, "busy_wall_s": 0.0, "served": 0}
            )
            for k in agg:
                agg[k] += stats[k]
            for d in response_dicts:
                self._finalize(wid, OPFResponse(**d))
        elif kind == WORKER_HEARTBEAT:
            self.last_heartbeat[wid] = self._clock()
            self.metrics.counter("fleet.heartbeat.received").inc()
        elif kind == WORKER_STATE:
            self.last_heartbeat[wid] = self._clock()
            self._state_replies[wid] = payload
        elif kind == WORKER_DONE:
            self._final_snapshots[wid] = payload
        elif kind == WORKER_READY:
            # A late READY (e.g. surfaced by a drain racing a restart's
            # ready-wait) is only a liveness signal at this point.
            self.last_heartbeat[wid] = self._clock()

    def run(self) -> list[OPFResponse]:
        """Drive the fleet until every accepted request is answered;
        returns the responses produced by this call."""
        before = len(self._responses)
        if self.config.mode == MODE_SIM:
            while True:
                self.poll()
                if self._outstanding_total() == 0 and not any(
                    len(w) for w in self.workers.values() if w.alive
                ):
                    break
        else:
            deadline = time.monotonic() + self.config.response_timeout_s
            while self._outstanding_total() > 0:
                served_before = len(self._responses)
                self._drain_response_q(timeout=0.25)
                self._handle_deaths()
                if len(self._responses) > served_before:
                    deadline = time.monotonic() + self.config.response_timeout_s
                elif time.monotonic() > deadline:
                    raise ReproError(
                        f"fleet stalled: {self._outstanding_total()} requests "
                        f"outstanding with no progress for "
                        f"{self.config.response_timeout_s:.0f}s"
                    )
        return self._responses[before:]

    def serve(self, requests: list[OPFRequest]) -> list[OPFResponse]:
        """Submit everything, run to completion, return responses in
        submission order (rejections included)."""
        rejected: list[OPFResponse] = []
        for req in requests:
            resp = self.submit(req)
            if resp is not None:
                rejected.append(resp)
        by_id = {r.request_id: r for r in self.run() + rejected}
        return [by_id[r.request_id] for r in requests if r.request_id in by_id]

    # -- introspection --------------------------------------------------
    @property
    def responses(self) -> list[OPFResponse]:
        """Every response completed over this frontend's lifetime."""
        return list(self._responses)

    def assignment(self, requests: list[OPFRequest]) -> dict[str, str]:
        """Current ``{request_id: worker_id}`` routing of ``requests``."""
        return {r.request_id: self.ring.route(r.topology_key()) for r in requests}

    def kill_worker(self, worker_id: str) -> None:
        """Chaos hook: fail-stop one worker now (sim: flag flip; process:
        SIGTERM).  The next poll detects the death and fails over.

        Idempotent: killing an already-dead worker is a no-op, so a
        supervisor race (worker crashed between its health check and the
        kill) cannot double-trigger death handling."""
        worker = self.workers[worker_id]
        if not worker.alive:
            return
        if self.config.mode == MODE_SIM:
            worker.alive = False
        else:
            worker.process.terminate()
            worker.process.join(timeout=5.0)

    # -- restart / rewarm / drain hooks ---------------------------------
    def restart_worker(
        self, worker_id: str, crash_after_served: int | None = None
    ) -> None:
        """Replace a dead worker with a fresh incarnation under the same
        id and return its vnodes to the ring.

        The new worker starts cold (empty caches — :meth:`rewarm_worker`
        refills them) with a clean breaker and a cleared death record, so
        a later death of the same id is detected and handled again.
        ``crash_after_served`` seeds the *next* incarnation's chaos crash
        point (a crash-looping worker in the soak tests).
        """
        worker = self.workers[worker_id]
        if worker.alive:
            raise ReproError(f"worker {worker_id} is alive; kill or drain it first")
        spec = replace(
            self.config.spec_for(worker_id, None),
            crash_after_served=crash_after_served,
        )
        if self.config.mode == MODE_SIM:
            self.workers[worker_id] = SimWorker(spec, tracer=self.tracer)
        else:
            worker.shutdown()  # reap the corpse + close its request queue
            self.workers[worker_id] = ProcessWorker(
                spec, self._mp_ctx, self._response_q
            )
            self._await_ready({worker_id})
        self.ring.add(worker_id)
        self._dead_handled.discard(worker_id)
        self._outstanding.setdefault(worker_id, {})
        self.breakers[worker_id] = CircuitBreaker(
            failure_threshold=max(1, self.config.breaker_failure_threshold),
            recovery_s=self.config.breaker_recovery_s,
            clock=self._clock,
        )
        self.last_heartbeat[worker_id] = self._clock()
        self.metrics.counter("fleet.restart.count").inc()
        self._gauge_depths()

    def owned_topologies(self, worker_id: str) -> set[str]:
        """Topology keys the current ring assigns to ``worker_id``, out
        of every topology this frontend has ever routed."""
        return {
            key for key in self._topologies if self.ring.route(key) == worker_id
        }

    def rewarm_worker(self, worker_id: str) -> dict:
        """Refill a (restarted) worker's caches for the topologies it owns.

        For each owned topology key the donor is the next *alive* worker
        in the key's ring preference — exactly where failover sent that
        key's traffic during the outage, so the donor holds the freshest
        projections and warm-start states.  Returns aggregate counts.
        """
        counts = {"topologies": 0, "projections": 0, "warm_entries": 0}
        donors: dict[str, set[str]] = {}
        for key in sorted(self.owned_topologies(worker_id)):
            for cand in self.ring.preference(key):
                if cand != worker_id and cand in self.workers and self._alive(cand):
                    donors.setdefault(cand, set()).add(key)
                    break
        with self.tracer.span(
            "fleet.rewarm", cat="fleet", worker=worker_id, donors=len(donors)
        ):
            for donor in sorted(donors):
                payload = self._export_state(donor, donors[donor])
                imported = self._import_state(worker_id, payload)
                for k in counts:
                    counts[k] += imported[k]
        self.metrics.counter("fleet.rewarm.topologies").inc(counts["topologies"])
        self.metrics.counter("fleet.rewarm.warm_entries").inc(counts["warm_entries"])
        return counts

    def handoff_state(self, from_wid: str, to_wid: str, keys: set[str]) -> dict:
        """Copy warm state for ``keys`` from one live worker to another
        (the graceful-drain path: the leaving worker is the donor)."""
        if not keys:
            return {"topologies": 0, "projections": 0, "warm_entries": 0}
        payload = self._export_state(from_wid, keys)
        return self._import_state(to_wid, payload)

    def remove_worker(self, worker_id: str) -> None:
        """Forget a worker entirely (the end of a graceful drain).

        The worker must have nothing outstanding; its vnodes must already
        be off the ring (``ring.remove``) or are removed here.
        """
        if self._outstanding.get(worker_id):
            raise ReproError(
                f"worker {worker_id} still has "
                f"{len(self._outstanding[worker_id])} outstanding requests"
            )
        if worker_id in self.ring.workers():
            self.ring.remove(worker_id)
        worker = self.workers.pop(worker_id)
        if self.config.mode == MODE_PROCESS:
            worker.shutdown()
            self._drain_response_q(timeout=0.0)
        self._outstanding.pop(worker_id, None)
        self.breakers.pop(worker_id, None)
        self._dead_handled.discard(worker_id)
        self.last_heartbeat.pop(worker_id, None)
        self.metrics.gauge(f"fleet.queue_depth.{worker_id}").set(0)
        self._gauge_depths()

    def _export_state(self, wid: str, keys: set[str]) -> dict:
        worker = self.workers[wid]
        if self.config.mode == MODE_SIM:
            return worker.export_state(set(keys))
        worker.send_control(CTRL_EXPORT, set(keys))
        return self._await_state(wid)

    def _import_state(self, wid: str, payload: dict) -> dict:
        worker = self.workers[wid]
        if self.config.mode == MODE_SIM:
            return worker.import_state(payload)
        worker.send_control(CTRL_IMPORT, payload)
        return self._await_state(wid)

    def _await_state(self, wid: str) -> dict:
        """Block until ``wid`` answers a control verb, dispatching every
        other worker message normally along the way."""
        deadline = time.monotonic() + self.config.response_timeout_s
        while True:
            reply = self._state_replies.pop(wid, None)
            if reply is not None:
                return reply
            if not self._alive(wid):
                raise ReproError(f"worker {wid} died during state handoff")
            timeout = deadline - time.monotonic()
            if timeout <= 0:
                raise ReproError(f"worker {wid} state handoff timed out")
            try:
                kind, src, payload = self._response_q.get(timeout=min(0.25, timeout))
            except queue_mod.Empty:
                continue
            self._dispatch(kind, src, payload)

    def snapshot(self) -> dict:
        """Fleet-level metrics plus per-worker engine snapshots."""
        snap = self.metrics.snapshot()
        workers: dict[str, dict] = {}
        for wid in sorted(self.workers):
            if self.config.mode == MODE_SIM:
                workers[wid] = self.workers[wid].snapshot()
            else:
                stats = dict(self._worker_stats.get(wid, {}))
                stats["worker.alive"] = self._alive(wid)
                stats.update(self._final_snapshots.get(wid, {}))
                workers[wid] = stats
        snap["workers"] = workers
        return snap
