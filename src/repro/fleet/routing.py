"""Topology-affinity routing: a consistent-hash ring over worker ids.

The fleet's whole performance story rests on *cache affinity*: a
:class:`~repro.serve.engine.TopologyPlan` (partition, row reduction,
projection factorizations) and the warm-start cache are per-worker state,
so every request for a given topology should land on the same worker.  A
plain ``hash(key) % n_workers`` would do that — until a worker dies and
every topology's assignment shuffles at once, cold-starting every cache
in the fleet.  Consistent hashing bounds the blast radius: each worker
owns many pseudo-random points on a ring, a key routes to the first point
clockwise of its own hash, and removing a worker moves *only the dead
worker's keys* (to their next-preferred survivors) while every other
assignment stays put.

Hashes are sha256-based (:func:`stable_hash`), never Python's builtin
``hash``: string hashing is salted per process (``PYTHONHASHSEED``), and
routing must be identical across runs, platforms and the frontend/worker
process boundary — the determinism contract the routing tests pin down.
"""

from __future__ import annotations

import bisect
import hashlib

#: Default virtual-node count per worker.  More replicas smooth the ring
#: (per-worker key share concentrates around 1/n) at the cost of a larger
#: sorted point list; 64 keeps the imbalance low for single-digit fleets.
DEFAULT_REPLICAS = 64


def stable_hash(key: str) -> int:
    """Process- and platform-independent 64-bit hash of ``key``.

    The first 8 bytes of sha256, big-endian — deliberately *not* Python's
    ``hash()``, which is salted per process for strings.
    """
    return int.from_bytes(hashlib.sha256(key.encode()).digest()[:8], "big")


class HashRing:
    """Consistent-hash ring mapping string keys to worker ids.

    Parameters
    ----------
    worker_ids:
        Initial members.  Order does not matter: the ring is a pure
        function of the *set* of ids (and ``replicas``).
    replicas:
        Virtual nodes per worker.

    Examples
    --------
    >>> ring = HashRing(["w0", "w1", "w2"])
    >>> owner = ring.route("feeder:ieee13")
    >>> ring.remove(owner)
    >>> ring.route("feeder:ieee13") in ring.workers()
    True
    """

    def __init__(self, worker_ids, replicas: int = DEFAULT_REPLICAS):
        if replicas < 1:
            raise ValueError("replicas must be at least 1")
        self.replicas = int(replicas)
        self._workers: set[str] = set()
        self._points: list[tuple[int, str]] = []
        for wid in worker_ids:
            self.add(wid)
        if not self._workers:
            raise ValueError("ring needs at least one worker")

    def __len__(self) -> int:
        return len(self._workers)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._workers

    def workers(self) -> list[str]:
        """Current members, sorted (deterministic iteration order)."""
        return sorted(self._workers)

    def add(self, worker_id: str) -> None:
        if worker_id in self._workers:
            return
        self._workers.add(worker_id)
        for r in range(self.replicas):
            point = stable_hash(f"{worker_id}#{r}")
            bisect.insort(self._points, (point, worker_id))

    def remove(self, worker_id: str) -> None:
        """Drop a worker (its keys reroute to their next preference)."""
        if worker_id not in self._workers:
            raise KeyError(worker_id)
        if len(self._workers) == 1:
            raise ValueError("cannot remove the last worker from the ring")
        self._workers.discard(worker_id)
        self._points = [p for p in self._points if p[1] != worker_id]

    def route(self, key: str) -> str:
        """The worker owning ``key``: first ring point clockwise of
        ``stable_hash(key)`` (wrapping)."""
        h = stable_hash(key)
        # "￿" sorts after any sane worker id, so bisect lands strictly
        # past every point with hash == h: the owner is the first point
        # with hash > h (wrapping), a fixed convention either side of a
        # (vanishingly unlikely) 64-bit collision.
        i = bisect.bisect_right(self._points, (h, "￿"))
        if i == len(self._points):
            i = 0
        return self._points[i][1]

    def preference(self, key: str) -> list[str]:
        """All workers in failover order for ``key``: walk the ring
        clockwise from the key's hash, keeping the first occurrence of
        each worker.  ``preference(k)[0] == route(k)``; the tail is the
        spill/failover order when earlier choices are full or dead."""
        h = stable_hash(key)
        start = bisect.bisect_right(self._points, (h, "￿")) % len(self._points)
        order: list[str] = []
        seen: set[str] = set()
        n = len(self._points)
        for step in range(n):
            wid = self._points[(start + step) % n][1]
            if wid not in seen:
                seen.add(wid)
                order.append(wid)
                if len(order) == len(self._workers):
                    break
        return order

    def assignment(self, keys) -> dict[str, str]:
        """Route many keys at once: ``{key: worker_id}``."""
        return {key: self.route(key) for key in keys}
