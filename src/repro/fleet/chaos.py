"""Seeded chaos-soak harness for the self-healing fleet.

:func:`run_chaos_soak` runs the same workload twice — once fault-free,
once under a seeded kill/restart storm with a :class:`FleetSupervisor`
healing the fleet — and checks the invariants the self-healing design
promises:

* **exactly once** — every accepted request is answered exactly once
  (no loss on the failover path, no duplicate from a dying worker's
  late batch);
* **bit-identical results** — with ``warm_start=False`` cold stacked
  solves are placement- and batch-composition-invariant, so the storm
  run's responses must match the fault-free run scenario for scenario
  (status, objective, iterations — exact equality, not tolerance);
* **capacity recovered** — after the storm the alive-worker count is
  back at the configured target minus any quarantined crash-loopers;
* **MTTR measured** — detection-to-restart times from the
  ``fleet.restart.mttr_s`` histogram (virtual seconds in sim mode, so
  the whole report replays bit-identically from the seed).

The storm itself comes from :meth:`FaultPlan.fleet_storm` — per-worker
crash points drawn from one seed, successive draws for one worker
becoming its successive incarnations' crash points via the supervisor's
``worker_crash_schedule`` consumption.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.fleet.frontend import MODE_SIM, FleetConfig, FleetFrontend
from repro.fleet.loadgen import generate_mixed_scenarios
from repro.fleet.supervisor import FleetSupervisor, SupervisorConfig
from repro.resilience.faults import FaultPlan
from repro.utils.exceptions import ReproError

DEFAULT_FEEDERS = ("ieee13", "synthetic:20:0", "synthetic:20:2", "synthetic:20:9")


@dataclass
class ChaosSoakReport:
    """Outcome of one seeded storm run vs its fault-free twin."""

    seed: int
    n_workers: int
    n_requests: int
    kills_planned: int
    deaths: int
    restarts: int
    quarantined: list[str]
    exactly_once: bool
    bit_identical: bool
    capacity_recovered: bool
    mttr_s: list[float] = field(default_factory=list)
    mismatches: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.exactly_once and self.bit_identical and self.capacity_recovered

    def as_dict(self) -> dict:
        return {
            "seed": self.seed,
            "n_workers": self.n_workers,
            "n_requests": self.n_requests,
            "kills_planned": self.kills_planned,
            "deaths": self.deaths,
            "restarts": self.restarts,
            "quarantined": list(self.quarantined),
            "exactly_once": self.exactly_once,
            "bit_identical": self.bit_identical,
            "capacity_recovered": self.capacity_recovered,
            "mttr_s": list(self.mttr_s),
            "mttr_mean_s": (
                sum(self.mttr_s) / len(self.mttr_s) if self.mttr_s else None
            ),
            "ok": self.ok,
        }


def _fingerprint(resp) -> tuple:
    return (resp.status, resp.objective, resp.iterations)


def run_chaos_soak(
    n_workers: int = 4,
    n_requests: int = 24,
    kills: int = 3,
    seed: int = 5,
    mode: str = MODE_SIM,
    feeders: tuple = DEFAULT_FEEDERS,
    max_after_served: int = 4,
    supervisor: SupervisorConfig | None = None,
    tracer=None,
    max_batch: int = 2,
    require_ok: bool = True,
) -> ChaosSoakReport:
    """Kill/restart storm vs fault-free twin; asserts the invariants.

    ``warm_start`` is forced off in both runs — cold solves are what
    makes bit-identity well-defined under re-routing.  ``require_ok``
    raises on any violated invariant (the CI smoke gate); pass ``False``
    to inspect a failing report instead.
    """
    config = FleetConfig(
        n_workers=n_workers,
        mode=mode,
        max_batch=max_batch,
        warm_start=False,
        heartbeat_interval_s=0.2 if mode != MODE_SIM else 1.0,
    )
    requests = generate_mixed_scenarios(list(feeders), n_requests, seed=seed)

    # Fault-free twin: same fleet shape, no faults, no supervisor needed.
    with FleetFrontend(config, tracer=tracer) as baseline_fleet:
        baseline = {
            r.request_id: _fingerprint(r)
            for r in baseline_fleet.serve(requests)
        }

    plan = FaultPlan.fleet_storm(
        seed=seed,
        worker_ids=FleetConfig(n_workers=n_workers).worker_ids(),
        kills=kills,
        max_after_served=max_after_served,
    )
    sup_config = supervisor if supervisor is not None else SupervisorConfig(
        heartbeat_interval_s=config.heartbeat_interval_s,
        miss_threshold=2,
        restart_base_delay_s=0.05,
        seed=seed,
    )
    with FleetFrontend(config, tracer=tracer, fault_plan=plan) as fleet:
        sup = FleetSupervisor(fleet, sup_config)
        responses = sup.serve(requests)
        sup.stabilize()
        snap = fleet.metrics.snapshot()
        mttr = sorted(
            float(v)
            for v in fleet.metrics.histogram("fleet.restart.mttr_s").values()
        )
        deaths = int(snap.get("fleet.worker_deaths", 0))
        restarts = int(snap.get("fleet.restart.count", 0))
        cap = sup.capacity()
        quarantined = sorted(sup.quarantined())

    # Exactly once: every submitted request answered once, none twice.
    answered: dict[str, int] = {}
    for resp in responses:
        answered[resp.request_id] = answered.get(resp.request_id, 0) + 1
    expected = [r.request_id for r in requests]
    exactly_once = sorted(answered) == sorted(expected) and all(
        n == 1 for n in answered.values()
    )

    mismatches = []
    for resp in responses:
        want = baseline.get(resp.request_id)
        if want != _fingerprint(resp):
            mismatches.append(
                f"{resp.request_id}: {want} != {_fingerprint(resp)}"
            )

    report = ChaosSoakReport(
        seed=seed,
        n_workers=n_workers,
        n_requests=len(requests),
        kills_planned=len(plan.faults),
        deaths=deaths,
        restarts=restarts,
        quarantined=quarantined,
        exactly_once=exactly_once,
        bit_identical=not mismatches,
        capacity_recovered=bool(cap["recovered"]),
        mttr_s=mttr,
        mismatches=mismatches[:10],
    )
    if require_ok and not report.ok:
        raise ReproError(f"chaos soak violated invariants: {report.as_dict()}")
    return report
