"""Device specifications for the analytical performance model.

No physical GPU is available in this environment (see DESIGN.md), so the
GPU experiments are reproduced in two coupled halves:

* the **numerics** run through the real batched NumPy kernels of
  :mod:`repro.core.batch` — the same data-parallel computation a CUDA grid
  performs, so iterates and residual traces are exactly those of a GPU run
  (paper Fig. 2 shows CPU/GPU iterate equivalence);
* the **wall time** of a device is predicted by an analytical roofline-style
  model over these specs (kernel-launch latency, sustained FP64 throughput,
  memory bandwidth, SM/occupancy geometry for the thread-count study).

Values are taken from vendor datasheets for the hardware the paper used
(NVIDIA A100 40GB SXM on Swing; Intel Xeon E5-2695v4 on Bebop); sustained
figures are derated from peak by a conventional factor.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DeviceSpec:
    """An execution device for the analytical cost model.

    Attributes
    ----------
    flops_per_s:
        Sustained FP64 rate of the whole device.
    mem_bandwidth_bytes_s:
        Sustained main-memory bandwidth.
    kernel_launch_s:
        Fixed overhead per kernel launch (zero for CPUs).
    sm_count, max_threads_per_sm, max_blocks_per_sm, clock_hz:
        Occupancy geometry, used only by the per-thread local-update model
        (Fig. 3 bottom row); CPU specs leave them at defaults.
    """

    name: str
    flops_per_s: float
    mem_bandwidth_bytes_s: float
    kernel_launch_s: float = 0.0
    sm_count: int = 1
    max_threads_per_sm: int = 2048
    max_blocks_per_sm: int = 32
    clock_hz: float = 1e9

    def __post_init__(self) -> None:
        if self.flops_per_s <= 0 or self.mem_bandwidth_bytes_s <= 0:
            raise ValueError("device rates must be positive")
        if self.sm_count < 1:
            raise ValueError("sm_count must be at least 1")


#: NVIDIA A100 40GB (Swing node GPU): 9.7 TFLOP/s FP64, 1.56 TB/s HBM2.
A100 = DeviceSpec(
    name="NVIDIA A100 40GB",
    flops_per_s=0.6 * 9.7e12,
    mem_bandwidth_bytes_s=0.75 * 1.555e12,
    kernel_launch_s=4e-6,
    sm_count=108,
    max_threads_per_sm=2048,
    max_blocks_per_sm=32,
    clock_hz=1.41e9,
)

#: One Intel Xeon E5-2695v4 core (Bebop): 2.1 GHz Broadwell, AVX2 FMA.
XEON_CORE = DeviceSpec(
    name="Xeon E5-2695v4 core",
    flops_per_s=0.4 * 2.1e9 * 16,
    mem_bandwidth_bytes_s=8e9,
    kernel_launch_s=0.0,
)


def xeon_node(n_cores: int = 36) -> DeviceSpec:
    """A Bebop CPU node as one aggregate device (memory bandwidth shared)."""
    if n_cores < 1:
        raise ValueError("need at least one core")
    return DeviceSpec(
        name=f"Xeon E5-2695v4 x{n_cores}",
        flops_per_s=XEON_CORE.flops_per_s * n_cores,
        mem_bandwidth_bytes_s=min(68e9, XEON_CORE.mem_bandwidth_bytes_s * n_cores),
        kernel_launch_s=0.0,
    )
