"""Simulated GPU substrate: device specs, a roofline/occupancy cost model,
and simulated-device execution of Algorithm 1 (see DESIGN.md for why the
GPU is simulated in this environment)."""

from repro.gpu.costmodel import (
    UpdateTimes,
    dual_update_time,
    global_update_time,
    iteration_times,
    iteration_times_from_sizes,
    local_update_time_batched,
    local_update_time_threads,
    multi_device_iteration_times,
)
from repro.gpu.device import A100, XEON_CORE, DeviceSpec, xeon_node
from repro.gpu.kernel_sim import (
    KernelExecution,
    KernelSpec,
    concurrent_block_slots,
    local_update_kernel,
    simulate_kernel,
    simulate_local_update,
)
from repro.gpu.simulated import SimulatedDeviceRun, run_on_device

__all__ = [
    "DeviceSpec",
    "A100",
    "XEON_CORE",
    "xeon_node",
    "UpdateTimes",
    "iteration_times",
    "iteration_times_from_sizes",
    "multi_device_iteration_times",
    "global_update_time",
    "dual_update_time",
    "local_update_time_batched",
    "local_update_time_threads",
    "run_on_device",
    "KernelSpec",
    "KernelExecution",
    "simulate_kernel",
    "simulate_local_update",
    "local_update_kernel",
    "concurrent_block_slots",
    "SimulatedDeviceRun",
]
