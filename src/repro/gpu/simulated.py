"""Simulated-GPU execution of Algorithm 1.

Couples the real batched numerics (exact iterates) with the analytical
device model (modeled wall time): a run on the simulated device performs the
same computation as :class:`~repro.core.solver_free.SolverFreeADMM` — the
residual histories are identical, which is the content of the paper's Fig. 2
— while its reported timers come from :mod:`repro.gpu.costmodel` scaled by
the iteration count.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.config import ADMMConfig
from repro.core.results import ADMMResult
from repro.core.solver_free import SolverFreeADMM
from repro.decomposition.decomposed import DecomposedOPF
from repro.gpu.costmodel import (
    UpdateTimes,
    iteration_times,
    multi_device_iteration_times,
)
from repro.gpu.device import DeviceSpec
from repro.parallel.comm import GPU_CLUSTER_COMM, CommModel


@dataclass
class SimulatedDeviceRun:
    """An ADMM result annotated with modeled device timing."""

    result: ADMMResult
    device: DeviceSpec
    per_iteration: UpdateTimes
    n_devices: int = 1

    @property
    def modeled_total_s(self) -> float:
        return self.per_iteration.total_s * self.result.iterations

    def modeled_timers(self) -> dict[str, float]:
        it = self.result.iterations
        timers = {
            "global": self.per_iteration.global_s * it,
            "local": self.per_iteration.local_s * it,
            "dual": self.per_iteration.dual_s * it,
        }
        if self.per_iteration.comm_s:
            timers["comm"] = self.per_iteration.comm_s * it
        return timers


def run_on_device(
    dec: DecomposedOPF,
    device: DeviceSpec,
    config: ADMMConfig | None = None,
    threads_per_block: int | None = None,
    n_devices: int = 1,
    comm: CommModel = GPU_CLUSTER_COMM,
    **solve_kwargs,
) -> SimulatedDeviceRun:
    """Run Algorithm 1 and attach modeled per-iteration device times.

    Parameters
    ----------
    threads_per_block:
        If given (single device only), use the per-thread kernel model of
        Section IV-D instead of the batched-matmul model.
    n_devices:
        Number of devices sharing the components (multi-GPU MPI mode).
    """
    if n_devices > 1 and threads_per_block is not None:
        raise ValueError("the thread model applies to single-device runs only")
    solver = SolverFreeADMM(dec, config)
    result = solver.solve(**solve_kwargs)
    if n_devices > 1:
        per_iter = multi_device_iteration_times(device, dec, n_devices, comm)
    else:
        per_iter = iteration_times(device, dec, threads_per_block=threads_per_block)
    return SimulatedDeviceRun(
        result=result, device=device, per_iteration=per_iter, n_devices=n_devices
    )
