"""Analytical per-iteration cost model (roofline + occupancy).

Predicts the device time of each ADMM update stage from the decomposition
structure.  All three stages are streams of simple array kernels, so each
stage's time is

    kernel launches x launch latency
        + max(flops / device flop rate, bytes moved / memory bandwidth).

The global and dual updates (18)-(19) are pure vector kernels over the
global (n) and stacked-local (sum n_s) dimensions and are memory-bound; the
local update (15) is the batched per-component matvec.

For the single-GPU thread study (paper Fig. 3 bottom row and Section IV-D),
:func:`local_update_time_threads` models the paper's hand-written kernel:
one CUDA block per component, ``T`` threads per block, each thread producing
entries of ``x_s`` by an ``n_s``-long dot product.  Blocks execute in waves
limited by SM count and occupancy, which is why the thread count matters
most for the 8500-bus instance — a huge number of tiny blocks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.decomposition.decomposed import DecomposedOPF
from repro.backend.policy import HOST_DTYPE
from repro.gpu.device import DeviceSpec
from repro.parallel.comm import BYTES_PER_VALUE, CommModel


@dataclass(frozen=True)
class UpdateTimes:
    """Modeled seconds per iteration for each stage (Fig. 3 series)."""

    global_s: float
    local_s: float
    dual_s: float
    comm_s: float = 0.0

    @property
    def total_s(self) -> float:
        return self.global_s + self.local_s + self.dual_s + self.comm_s


def _stream_time(device: DeviceSpec, flops: float, nbytes: float, kernels: int) -> float:
    return device.kernel_launch_s * kernels + max(
        flops / device.flops_per_s, nbytes / device.mem_bandwidth_bytes_s
    )


def global_update_time(
    device: DeviceSpec, n: int, n_local: int, itemsize: int = BYTES_PER_VALUE
) -> float:
    """Eq. (18): scatter-add of z - lam/rho, diagonal scale, clip.

    Roughly three fused kernels touching the stacked vector once and the
    global vector a handful of times.  ``itemsize`` is the bytes per array
    value (8 for fp64, 4 for fp32) — these stages are memory-bound, so a
    reduced-precision backend halves the modeled traffic.
    """
    nbytes = itemsize * (3.0 * n_local + 5.0 * n)
    flops = 2.0 * n_local + 3.0 * n
    return _stream_time(device, flops, nbytes, kernels=3)


def dual_update_time(
    device: DeviceSpec, n_local: int, itemsize: int = BYTES_PER_VALUE
) -> float:
    """Eq. (19): one saxpy-style kernel over the stacked dimension."""
    nbytes = itemsize * 4.0 * n_local
    flops = 3.0 * n_local
    return _stream_time(device, flops, nbytes, kernels=1)


def local_update_time_batched(
    device: DeviceSpec, sizes: np.ndarray, itemsize: int = BYTES_PER_VALUE
) -> float:
    """Eq. (15) as a batched matvec: sum over components of 2 n_s^2 flops,
    streaming each projection operator from memory once."""
    sizes = np.asarray(sizes, dtype=HOST_DTYPE)
    flops = float(np.sum(2.0 * sizes**2 + 2.0 * sizes))
    nbytes = itemsize * float(np.sum(sizes**2 + 3.0 * sizes))
    return _stream_time(device, flops, nbytes, kernels=2)


def local_update_time_threads(
    device: DeviceSpec,
    sizes: np.ndarray,
    threads_per_block: int,
    itemsize: int = BYTES_PER_VALUE,
) -> float:
    """The paper's custom kernel: one block per component, T threads/block.

    Each block needs ``ceil(n_s / T)`` rounds of ``n_s``-long dot products;
    blocks run in waves of ``sm_count * blocks_per_sm`` where occupancy is
    limited by both the per-SM block cap and the per-SM thread budget.
    """
    if threads_per_block < 1:
        raise ValueError("threads_per_block must be at least 1")
    sizes = np.asarray(sizes, dtype=HOST_DTYPE)
    t = float(threads_per_block)
    blocks_per_sm = max(1, min(device.max_blocks_per_sm, device.max_threads_per_sm // max(int(t), 1)))
    concurrent = device.sm_count * blocks_per_sm
    # Cycles per block: rounds x dot-product length x cycles-per-MAC (memory
    # stalls folded into a constant for these cache-resident operands, so
    # the stall term scales with the operand width).
    cycles_per_mac = 8.0 * itemsize / BYTES_PER_VALUE
    block_cycles = np.ceil(sizes / t) * sizes * cycles_per_mac
    # Greedy wave packing of identical-priority blocks.
    total_cycles = float(np.sum(block_cycles)) / concurrent
    # A wave cannot be shorter than its slowest block.
    total_cycles = max(total_cycles, float(block_cycles.max(initial=0.0)))
    return device.kernel_launch_s + total_cycles / device.clock_hz


def iteration_times_from_sizes(
    device: DeviceSpec,
    sizes: np.ndarray,
    n_vars: int,
    threads_per_block: int | None = None,
    itemsize: int = BYTES_PER_VALUE,
) -> UpdateTimes:
    """Modeled single-device iteration times from raw problem dimensions.

    ``sizes`` are the component widths ``n_s`` of whatever is being batched
    — one decomposition, or the stacked union of several same-topology
    scenarios (the serving engine's padded batch, where the component list
    is the K-fold concatenation and ``n_vars`` is ``K`` times the global
    dimension).  ``itemsize`` is the bytes per value of the execution
    backend's compute dtype (``backend.policy.itemsize``); the default
    keeps the paper's fp64 numbers.
    """
    sizes = np.asarray(sizes, dtype=HOST_DTYPE)
    n_local = int(np.sum(sizes))
    if threads_per_block is None:
        local = local_update_time_batched(device, sizes, itemsize=itemsize)
    else:
        local = local_update_time_threads(
            device, sizes, threads_per_block, itemsize=itemsize
        )
    return UpdateTimes(
        global_s=global_update_time(device, n_vars, n_local, itemsize=itemsize),
        local_s=local,
        dual_s=dual_update_time(device, n_local, itemsize=itemsize),
    )


def iteration_times(
    device: DeviceSpec,
    dec: DecomposedOPF,
    threads_per_block: int | None = None,
    itemsize: int = BYTES_PER_VALUE,
) -> UpdateTimes:
    """Modeled single-device times of one full ADMM iteration."""
    sizes = np.array([c.n_vars for c in dec.components], dtype=HOST_DTYPE)
    return iteration_times_from_sizes(
        device, sizes, dec.lp.n_vars, threads_per_block=threads_per_block,
        itemsize=itemsize,
    )


def multi_device_iteration_times(
    device: DeviceSpec,
    dec: DecomposedOPF,
    n_devices: int,
    comm: CommModel,
) -> UpdateTimes:
    """Fig. 3 middle row: N devices each own ~S/N components; the aggregator
    exchange (with device-host staging for GPUs over MPI) is added to the
    local stage, and grows with N while per-device compute shrinks."""
    if n_devices < 1:
        raise ValueError("need at least one device")
    sizes = np.array([c.n_vars for c in dec.components], dtype=HOST_DTYPE)
    order = np.arange(len(sizes))
    shares = np.array_split(order, n_devices)
    per_dev = [local_update_time_batched(device, sizes[s]) for s in shares if len(s)]
    local = max(per_dev)
    comm_s = 0.0
    if n_devices > 1:
        per_rank_bytes = np.array(
            [2.0 * BYTES_PER_VALUE * float(np.sum(sizes[s])) for s in shares if len(s)]
        )
        comm_s = comm.gather_scatter_time(per_rank_bytes)
    return UpdateTimes(
        global_s=global_update_time(device, dec.lp.n_vars, dec.n_local),
        local_s=local,
        dual_s=dual_update_time(device, dec.n_local),
        comm_s=comm_s,
    )
