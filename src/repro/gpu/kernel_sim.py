"""Discrete CUDA-like kernel execution simulator.

The closed-form occupancy model in :mod:`repro.gpu.costmodel` approximates a
kernel's runtime with a wave count; this module *simulates* the schedule: a
grid of blocks is list-scheduled onto SM block slots (bounded by the per-SM
block cap and thread budget), each block occupying its slot for its own
cycle cost.  This captures load imbalance between heterogeneous component
sizes — the situation of Section IV-D, where every CUDA block owns one
component subproblem and components differ in size.

The simulator is used by tests to validate the analytic model (they must
agree within the wave-quantization error) and is available for finer
experiments (e.g. scheduling skewed block-cost distributions).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from repro.decomposition.decomposed import DecomposedOPF
from repro.backend.policy import HOST_DTYPE
from repro.gpu.device import DeviceSpec

#: Effective cycles per multiply-accumulate for cache-resident operands;
#: shared with the analytic model so the two are comparable.
CYCLES_PER_MAC = 8.0


@dataclass(frozen=True)
class KernelSpec:
    """A grid launch: one entry of ``block_cycles`` per block."""

    name: str
    threads_per_block: int
    block_cycles: np.ndarray

    def __post_init__(self) -> None:
        if self.threads_per_block < 1:
            raise ValueError("threads_per_block must be at least 1")
        cycles = np.asarray(self.block_cycles, dtype=HOST_DTYPE)
        if cycles.ndim != 1 or cycles.size == 0:
            raise ValueError("block_cycles must be a non-empty vector")
        if np.any(cycles < 0):
            raise ValueError("block cycles must be nonnegative")
        object.__setattr__(self, "block_cycles", cycles)

    @property
    def n_blocks(self) -> int:
        return int(self.block_cycles.size)


@dataclass(frozen=True)
class KernelExecution:
    """Outcome of a simulated launch."""

    spec_name: str
    time_s: float
    makespan_cycles: float
    concurrent_blocks: int
    utilization: float  # busy cycles / (slots x makespan)


def concurrent_block_slots(device: DeviceSpec, threads_per_block: int) -> int:
    """Simultaneously resident blocks across the whole device."""
    per_sm = max(
        1,
        min(device.max_blocks_per_sm, device.max_threads_per_sm // max(threads_per_block, 1)),
    )
    return device.sm_count * per_sm


def simulate_kernel(
    device: DeviceSpec,
    spec: KernelSpec,
    tracer=None,
    t_start_s: float = 0.0,
) -> KernelExecution:
    """List-schedule the grid onto block slots and report the makespan.

    Blocks issue in grid order (as hardware does, approximately); each slot
    takes the next block as soon as it drains.  The makespan is the time the
    last block finishes, plus the kernel launch overhead.

    When an enabled :class:`repro.telemetry.Tracer` is given, the launch is
    recorded as a modeled-time span ``gpu.kernel.<name>`` on the GPU track,
    starting at ``t_start_s`` on the modeled clock.
    """
    slots = concurrent_block_slots(device, spec.threads_per_block)
    cycles = spec.block_cycles
    if spec.n_blocks <= slots:
        makespan = float(cycles.max())
    else:
        heap = list(cycles[:slots])
        heapq.heapify(heap)
        for c in cycles[slots:]:
            start = heapq.heappop(heap)
            heapq.heappush(heap, start + float(c))
        makespan = max(heap)
    busy = float(cycles.sum())
    utilization = busy / (slots * makespan) if makespan > 0 else 1.0
    execution = KernelExecution(
        spec_name=spec.name,
        time_s=device.kernel_launch_s + makespan / device.clock_hz,
        makespan_cycles=makespan,
        concurrent_blocks=slots,
        utilization=float(utilization),
    )
    if tracer:
        tracer.add_modeled(
            f"gpu.kernel.{spec.name}",
            t_start_s,
            execution.time_s,
            cat="gpu",
            args={
                "blocks": spec.n_blocks,
                "threads_per_block": spec.threads_per_block,
                "concurrent_blocks": execution.concurrent_blocks,
                "utilization": round(execution.utilization, 4),
            },
        )
    return execution


def local_update_kernel(
    dec_or_sizes,
    threads_per_block: int,
    name: str = "local_update",
    itemsize: float = 8.0,
) -> KernelSpec:
    """Build the Section IV-D kernel: one block per component, ``T`` threads
    computing the entries of ``x_s`` by ``n_s``-long dot products.

    ``itemsize`` (bytes per value, 8 for fp64, 4 for fp32) scales the
    per-MAC cycle cost: the stall component of :data:`CYCLES_PER_MAC` is
    memory traffic, so reduced precision moves proportionally fewer bytes
    per dot-product step.  The default keeps the fp64 numbers the analytic
    model (:mod:`repro.gpu.costmodel`) was validated against.
    """
    if isinstance(dec_or_sizes, DecomposedOPF):
        sizes = np.array([c.n_vars for c in dec_or_sizes.components], dtype=HOST_DTYPE)
    else:
        sizes = np.asarray(dec_or_sizes, dtype=HOST_DTYPE)
    cycles_per_mac = CYCLES_PER_MAC * itemsize / 8.0
    cycles = np.ceil(sizes / threads_per_block) * sizes * cycles_per_mac
    return KernelSpec(name=name, threads_per_block=threads_per_block, block_cycles=cycles)


def simulate_local_update(
    device: DeviceSpec,
    dec_or_sizes,
    threads_per_block: int,
    tracer=None,
    t_start_s: float = 0.0,
    itemsize: float = 8.0,
) -> KernelExecution:
    """Convenience wrapper: simulate one local-update launch."""
    return simulate_kernel(
        device,
        local_update_kernel(dec_or_sizes, threads_per_block, itemsize=itemsize),
        tracer=tracer,
        t_start_s=t_start_s,
    )
