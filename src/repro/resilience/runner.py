"""Fault-tolerant distributed execution of Algorithm 1.

Extends the rank-explicit protocol of
:class:`~repro.parallel.runner.DistributedADMMRunner` with the recovery
machinery a production deployment needs:

* **periodic consensus checkpoints** of ``(z, lambda, iteration)`` — one
  ADMM iteration is a pure function of that state, so replay from a
  checkpoint is bit-identical;
* **fail-stop detection and failover**: a crashed rank (injected via
  :class:`~repro.resilience.faults.FaultPlan` or emerging from dropped
  messages) misses the gather; the aggregator charges a virtual-clock
  detection deadline, removes the rank, re-spreads *all* components
  near-evenly over the survivors (``reassign_surviving`` →
  ``assign_even``), restores the latest checkpoint, re-syncs the
  survivors, and resumes — the post-recovery iterate trajectory matches
  the serial :class:`~repro.core.solver_free.SolverFreeADMM` exactly
  (tested bit-identical);
* **bounded-staleness straggler tolerance** (``staleness_bound > 0``): a
  rank whose virtual clock has fallen behind the aggregator skips rounds
  (its ``(z, lambda)`` slice is simply reused) instead of stalling the
  barrier, for at most ``staleness_bound`` consecutive rounds before the
  aggregator stalls to let it catch up.  Synchronous mode
  (``staleness_bound = 0``, the default) preserves exact serial parity —
  stragglers then cost time, never accuracy;
* **divergence guard**: non-finite iterates raise
  :class:`~repro.utils.exceptions.DivergenceError` immediately.

Counters (``fault.injected``, ``rank.failover``, ``resilience.checkpoints``,
``resilience.restores``, ``resilience.stale_rounds``) land on the runner's
:class:`~repro.telemetry.MetricsRegistry`, whose snapshot is the telemetry
summary the chaos example prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.backend import get_backend
from repro.core.batch import BatchedLocalSolver
from repro.core.config import ADMMConfig
from repro.core.loop import ADMMLoop, IterationStrategy, RewindSignal, truncate_history
from repro.core.residuals import compute_residuals
from repro.core.results import ADMMResult, IterationHistory
from repro.decomposition.decomposed import DecomposedOPF
from repro.parallel.assignment import assign_even, rank_partition, reassign_surviving
from repro.parallel.comm import CommModel
from repro.parallel.mpi_sim import SimComm
from repro.parallel.runner import IterationTimeline
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.telemetry import TRACK_CLUSTER, NULL_TRACER
from repro.telemetry.metrics import MetricsRegistry


@dataclass(frozen=True)
class FailoverEvent:
    """One detected rank failure and the recovery that followed."""

    iteration: int  # iteration whose gather missed the rank
    rank: int
    resumed_from: int  # checkpoint iteration the run rewound to
    survivors: tuple[int, ...]


@dataclass
class FaultTolerantRunResult:
    """Outcome of a fault-tolerant distributed solve."""

    result: ADMMResult
    timeline: IterationTimeline
    n_ranks: int
    simulated_total_s: float
    failovers: list[FailoverEvent] = field(default_factory=list)
    stale_rounds: int = 0
    checkpoints_saved: int = 0
    restores: int = 0
    metrics: MetricsRegistry | None = None

    @property
    def survivors(self) -> tuple[int, ...]:
        return self.failovers[-1].survivors if self.failovers else tuple(
            range(self.n_ranks)
        )


#: Backwards-compatible alias; the canonical helper lives with the engine.
_truncate_history = truncate_history


class FaultTolerantADMMRunner(IterationStrategy):
    """Algorithm 1 over simulated MPI with checkpoint/restart failover.

    Parameters
    ----------
    dec:
        The decomposed model.
    n_ranks:
        Worker rank count; rank 0 doubles as the aggregator.  Aggregator
        failover is out of scope — a plan that crashes rank 0 is rejected.
    comm_model:
        Interconnect model for all messages.
    config:
        ADMM settings (plain Algorithm 1 only, like the plain runner).
    fault_plan:
        Optional seeded :class:`FaultPlan` to inject during the run.
    checkpoint_every:
        Consensus-checkpoint period in iterations.
    failure_deadline_s:
        Virtual-clock seconds the aggregator waits on a silent rank before
        declaring it dead (charged to the aggregator's clock per event).
    staleness_bound:
        0 (default) = synchronous barriers, exact serial parity; k > 0 =
        tolerate up to k consecutive skipped rounds per lagging rank.
    stale_slack_s:
        How far (virtual seconds) a rank's clock may trail the
        aggregator's before it is considered lagging in stale mode.
    metrics, tracer:
        Optional telemetry sinks (fresh ones are created if omitted).

    The iteration skeleton is :class:`repro.core.loop.ADMMLoop`; failover
    rewinds the engine via :class:`repro.core.loop.RewindSignal` (restore
    the checkpointed consensus state, truncate the history, reset the
    iteration counter).  The backend is pinned to ``numpy64`` for exact
    serial replay parity, like the plain distributed runner.
    """

    algorithm_name = "solver-free ADMM (fault-tolerant simulated MPI)"
    use_relaxation = False
    supports_balancing = False

    def __init__(
        self,
        dec: DecomposedOPF,
        n_ranks: int,
        comm_model: CommModel,
        config: ADMMConfig | None = None,
        fault_plan: FaultPlan | None = None,
        checkpoint_every: int = 25,
        failure_deadline_s: float = 1e-3,
        staleness_bound: int = 0,
        stale_slack_s: float = 0.0,
        metrics: MetricsRegistry | None = None,
        tracer=None,
    ):
        self.dec = dec
        self.config = config or ADMMConfig()
        if self.config.relaxation != 1.0 or self.config.residual_balancing:
            raise ValueError("the fault-tolerant runner executes plain Algorithm 1 only")
        if staleness_bound < 0:
            raise ValueError("staleness_bound must be nonnegative")
        if failure_deadline_s < 0:
            raise ValueError("failure_deadline_s must be nonnegative")
        self.plan = fault_plan if fault_plan is not None else FaultPlan()
        if 0 in self.plan.crashed_ranks():
            raise ValueError(
                "rank 0 is the aggregator; aggregator failover is not supported"
            )
        self.backend = get_backend("numpy64")
        self.c = dec.lp.cost
        self.gcols = dec.global_cols
        self.local_solver = BatchedLocalSolver.from_decomposition(dec)
        owner = assign_even(dec.n_components, n_ranks)
        self.n_ranks = int(owner.max()) + 1
        if self.plan.crashed_ranks() - set(range(self.n_ranks)):
            raise ValueError("fault plan targets ranks beyond the communicator")
        self.comm_model = comm_model
        self.checkpoint_every = int(checkpoint_every)
        self.failure_deadline_s = float(failure_deadline_s)
        self.staleness_bound = int(staleness_bound)
        self.stale_slack_s = float(stale_slack_s)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._initial_owner = owner

    # ------------------------------------------------------------------
    def _compute_rank(
        self, comm, r, comps_r, bx_r, lam_r, rho, injector
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """One rank's local + dual updates, charged to its virtual clock
        (scaled by any active straggler slowdown)."""
        t0 = time.perf_counter()
        z_r = np.empty(bx_r.size)
        pos = 0
        for s in comps_r:
            n_s = int(self.dec.offsets[s + 1] - self.dec.offsets[s])
            v_s = bx_r[pos : pos + n_s] + lam_r[pos : pos + n_s] / rho
            z_r[pos : pos + n_s] = self.local_solver.solve_one(s, v_s)
            pos += n_s
        lam_out = lam_r + rho * (bx_r - z_r)
        dt = (time.perf_counter() - t0) * injector.slowdown(r)
        comm.advance(r, dt)
        injector.corrupt(z_r, f"rank:{r}")
        return z_r, lam_out, dt

    # ------------------------------------------------------------------
    # Engine hooks (repro.core.loop)
    # ------------------------------------------------------------------
    def on_iteration_start(self, iteration, z, lam, rho):
        """Begin the fault-injection round and harvest deferred (stale)
        contributions whose rank has caught up to the aggregator."""
        st = self._st
        comm = st["comm"]
        injector = st["injector"]
        injector.begin_iteration(iteration)
        st["current_iteration"] = iteration
        st["t_start"] = comm.elapsed()
        st["crashed_now"] = []
        pending = st["pending"]
        staleness = st["staleness"]
        slices = st["slices"]
        if pending:
            harvest_z: dict[int, np.ndarray] = {}
            harvest_lam: dict[int, np.ndarray] = {}
            for r in sorted(pending):
                if injector.crashed(r):
                    pending.pop(r)
                    st["crashed_now"].append(r)
                    continue
                ready = comm.clocks[r] - comm.clocks[0] <= self.stale_slack_s
                if not ready and staleness[r] >= self.staleness_bound:
                    comm.barrier([0, r])  # forced sync: aggregator stalls
                    ready = True
                if ready:
                    z_r, lam_r = pending.pop(r)
                    harvest_z[r] = z_r
                    harvest_lam[r] = lam_r
                else:
                    staleness[r] += 1
                    st["stale_rounds"] += 1
                    st["stale_counter"].inc()
            if harvest_z:
                z_h = comm.gatherv(0, harvest_z, partial=True)
                lam_h = comm.gatherv(0, harvest_lam, partial=True)
                z = z.copy()
                lam = lam.copy()
                for r in harvest_z:
                    if z_h[r] is not None and lam_h[r] is not None:
                        z[slices[r]] = z_h[r]
                        lam[slices[r]] = lam_h[r]
                    staleness[r] = 0
        return z, lam

    def global_step(self, z, lam, rho):
        """Aggregator: global update (13)/(18) on rank 0's clock."""
        st = self._st
        comm = st["comm"]
        dec = self.dec
        t0 = time.perf_counter()
        scatter = self.backend.scatter_add(
            dec.global_cols, z - lam / rho, dec.lp.n_vars
        )
        xhat = (scatter - dec.lp.cost / rho) / dec.counts
        x = self.backend.clip(xhat, dec.lp.lb, dec.lp.ub)
        self._bx = x[dec.global_cols]
        comm.advance(0, time.perf_counter() - t0)
        return x

    def gather(self, x):
        return self._bx

    def local_dual_step(self, bx_eff, z_prev, lam, rho):
        """Scatter / per-rank compute / gather with crash detection.

        A detected crash runs the full failover (remove the rank,
        restore the latest checkpoint, re-spread components over the
        survivors, re-sync their state) and then rewinds the engine to
        the checkpoint iteration via :class:`RewindSignal`.
        """
        st = self._st
        comm = st["comm"]
        injector = st["injector"]
        crashed_now = st["crashed_now"]
        pending = st["pending"]
        staleness = st["staleness"]
        comps, slices = st["comps"], st["slices"]
        alive = st["alive"]
        z = z_prev

        # Participation: every live rank that is not still busy with a
        # deferred (stale) contribution.
        participants = [r for r in alive if r not in pending]

        # Scatter each participant's B_s x slice (server -> agents).
        parts: list[np.ndarray | None] = [None] * self.n_ranks
        for r in participants:
            parts[r] = bx_eff[slices[r]]
        received = comm.scatterv(0, parts)

        # Agents: local + dual updates on their own clocks.  A crashed
        # rank computes nothing; a rank whose scatter message was
        # dropped has nothing to compute from (transient stale round).
        compute_times = []
        z_parts: dict[int, np.ndarray] = {}
        lam_parts: dict[int, np.ndarray] = {}
        for r in participants:
            if r != 0 and injector.crashed(r):
                crashed_now.append(r)
                continue
            if received[r] is None:
                st["stale_rounds"] += 1
                st["stale_counter"].inc()
                continue
            z_r, lam_r, dt = self._compute_rank(
                comm, r, comps[r], received[r], lam[slices[r]], rho, injector
            )
            compute_times.append(dt)
            z_parts[r] = z_r
            lam_parts[r] = lam_r

        # Stale mode: defer contributions whose rank ran past the
        # aggregator's clock — the aggregator proceeds without waiting
        # and applies them in a later round (bounded staleness).
        if self.staleness_bound > 0:
            for r in list(z_parts):
                if r != 0 and comm.clocks[r] - comm.clocks[0] > self.stale_slack_s:
                    pending[r] = (z_parts.pop(r), lam_parts.pop(r))
                    staleness[r] = 1
                    st["stale_rounds"] += 1
                    st["stale_counter"].inc()

        # Gather (z, lambda) back; survivors only.
        z_back = comm.gatherv(0, z_parts, partial=True)
        lam_back = comm.gatherv(0, lam_parts, partial=True)

        if crashed_now:
            raise self._failover(crashed_now, z, lam, rho)

        # Apply received updates; skipped/stale slices stay put.
        z = z.copy()
        lam = lam.copy()
        for r in z_parts:
            if z_back[r] is None or lam_back[r] is None:
                st["stale_rounds"] += 1  # gather lost on the wire
                st["stale_counter"].inc()
                continue
            z[slices[r]] = z_back[r]
            lam[slices[r]] = lam_back[r]
        st["compute_times"] = compute_times
        return z, lam

    def _failover(self, crashed_now, z, lam, rho) -> RewindSignal:
        """Detect, recover, re-sync — then hand the engine a rewind."""
        st = self._st
        comm = st["comm"]
        alive = st["alive"]
        tracer = self.tracer

        # Failure detection: the aggregator's gather deadline expires
        # once per event, then recovery runs.
        clock0 = float(comm.clocks[0])
        comm.advance(0, self.failure_deadline_s)
        if tracer:
            tracer.add_modeled(
                "resilience.detect_failure",
                clock0,
                self.failure_deadline_s,
                track=TRACK_CLUSTER,
                tid=0,
                cat="resilience",
            )
        for r in crashed_now:
            alive.remove(r)
        st["failover_counter"].inc(len(crashed_now))
        ckpt = st["ckpts"].restore()
        st["restore_counter"].inc()
        z = ckpt.z.copy()
        lam = ckpt.lam.copy()
        owner = reassign_surviving(self.dec.n_components, alive)
        st["comps"], st["slices"] = rank_partition(
            self.dec.offsets, owner, self.n_ranks
        )
        slices = st["slices"]
        for r in crashed_now:
            st["failovers"].append(
                FailoverEvent(
                    iteration=st["current_iteration"],
                    rank=r,
                    resumed_from=ckpt.iteration,
                    survivors=tuple(alive),
                )
            )
        # Re-sync survivors from the checkpoint (state re-scatter).
        resync: list[np.ndarray | None] = [None] * self.n_ranks
        for r in alive:
            if r != 0:
                resync[r] = np.concatenate([z[slices[r]], lam[slices[r]]])
        comm.scatterv(0, resync)
        comm.barrier(alive)
        st["staleness"][:] = 0
        st["pending"].clear()  # deferred pre-crash contributions are void
        return RewindSignal(ckpt.iteration, z, lam)

    def residuals(self, iteration, x, bx, z, z_prev, lam, rho):
        """Aggregator: residuals and termination; synchronous barrier."""
        st = self._st
        comm = st["comm"]
        t0 = time.perf_counter()
        res = compute_residuals(bx, z, z_prev, lam, rho, self.config.eps_rel)
        comm.advance(0, time.perf_counter() - t0)
        if self.staleness_bound == 0:
            comm.barrier(st["alive"])
        return res

    def after_residuals(self, iteration, res):
        st = self._st
        compute_times = st.get("compute_times") or []
        st["timeline"].append(
            st["comm"].elapsed() - st["t_start"],
            float(max(compute_times)) if compute_times else 0.0,
        )

    def on_iteration_continue(self, iteration, z, lam, rho):
        st = self._st
        if st["ckpts"].maybe_save(iteration, z, lam, rho):
            st["ckpt_counter"].inc()

    def final_timers(self, timers: dict) -> dict:
        return {"simulated_total": self._st["comm"].elapsed()}

    def final_algorithm_name(self) -> str:
        return (
            f"solver-free ADMM (fault-tolerant simulated MPI, "
            f"{self.n_ranks} ranks, {len(self._st['failovers'])} failovers)"
        )

    # ------------------------------------------------------------------
    def solve(self, max_iter: int | None = None) -> FaultTolerantRunResult:
        """Run to the (16) criterion with failover; returns result + events.

        Raises
        ------
        DivergenceError
            If ``config.divergence_guard`` and an iterate goes non-finite
            (e.g. under injected NaN corruption with no surviving replica).
        """
        cfg = self.config
        budget = cfg.max_iter if max_iter is None else max_iter
        dec = self.dec
        injector = FaultInjector(self.plan, self.metrics)
        comm = SimComm(self.n_ranks, self.comm_model, injector=injector)
        comps, slices = rank_partition(
            dec.offsets, self._initial_owner, self.n_ranks
        )
        ckpts = CheckpointStore(every=self.checkpoint_every)

        x = dec.lp.initial_point()
        z = x[dec.global_cols].copy()
        lam = np.zeros(dec.n_local)
        ckpts.save(0, z, lam, cfg.rho)

        # Per-solve mutable state shared across the engine hooks.
        self._st = st = {
            "comm": comm,
            "injector": injector,
            "alive": list(range(self.n_ranks)),
            "comps": comps,
            "slices": slices,
            "pending": {},
            "staleness": np.zeros(self.n_ranks, dtype=np.int64),
            "timeline": IterationTimeline(),
            "ckpts": ckpts,
            "failovers": [],
            "stale_rounds": 0,
            "compute_times": [],
            "t_start": 0.0,
            "crashed_now": [],
            "current_iteration": 0,
            "failover_counter": self.metrics.counter("rank.failover"),
            "stale_counter": self.metrics.counter("resilience.stale_rounds"),
            "ckpt_counter": self.metrics.counter("resilience.checkpoints"),
            "restore_counter": self.metrics.counter("resilience.restores"),
        }
        st["ckpt_counter"].inc()

        loop = ADMMLoop(
            self,
            cfg,
            backend=self.backend,
            record_timers=False,
            phase_spans=False,
            watch_stall=False,
        )
        outcome = loop.run(x, z, lam, budget=budget)
        result = loop.result(outcome)
        return FaultTolerantRunResult(
            result=result,
            timeline=st["timeline"],
            n_ranks=self.n_ranks,
            simulated_total_s=comm.elapsed(),
            failovers=st["failovers"],
            stale_rounds=st["stale_rounds"],
            checkpoints_saved=ckpts.saves,
            restores=ckpts.restores,
            metrics=self.metrics,
        )
