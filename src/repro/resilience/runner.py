"""Fault-tolerant distributed execution of Algorithm 1.

Extends the rank-explicit protocol of
:class:`~repro.parallel.runner.DistributedADMMRunner` with the recovery
machinery a production deployment needs:

* **periodic consensus checkpoints** of ``(z, lambda, iteration)`` — one
  ADMM iteration is a pure function of that state, so replay from a
  checkpoint is bit-identical;
* **fail-stop detection and failover**: a crashed rank (injected via
  :class:`~repro.resilience.faults.FaultPlan` or emerging from dropped
  messages) misses the gather; the aggregator charges a virtual-clock
  detection deadline, removes the rank, re-spreads *all* components
  near-evenly over the survivors (``reassign_surviving`` →
  ``assign_even``), restores the latest checkpoint, re-syncs the
  survivors, and resumes — the post-recovery iterate trajectory matches
  the serial :class:`~repro.core.solver_free.SolverFreeADMM` exactly
  (tested bit-identical);
* **bounded-staleness straggler tolerance** (``staleness_bound > 0``): a
  rank whose virtual clock has fallen behind the aggregator skips rounds
  (its ``(z, lambda)`` slice is simply reused) instead of stalling the
  barrier, for at most ``staleness_bound`` consecutive rounds before the
  aggregator stalls to let it catch up.  Synchronous mode
  (``staleness_bound = 0``, the default) preserves exact serial parity —
  stragglers then cost time, never accuracy;
* **divergence guard**: non-finite iterates raise
  :class:`~repro.utils.exceptions.DivergenceError` immediately.

Counters (``fault.injected``, ``rank.failover``, ``resilience.checkpoints``,
``resilience.restores``, ``resilience.stale_rounds``) land on the runner's
:class:`~repro.telemetry.MetricsRegistry`, whose snapshot is the telemetry
summary the chaos example prints.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.batch import BatchedLocalSolver
from repro.core.config import ADMMConfig
from repro.core.residuals import compute_residuals
from repro.core.results import ADMMResult, IterationHistory
from repro.decomposition.decomposed import DecomposedOPF
from repro.parallel.assignment import assign_even, rank_partition, reassign_surviving
from repro.parallel.comm import CommModel
from repro.parallel.mpi_sim import SimComm
from repro.parallel.runner import IterationTimeline
from repro.resilience.checkpoint import CheckpointStore
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.telemetry import TRACK_CLUSTER, NULL_TRACER
from repro.telemetry.metrics import MetricsRegistry
from repro.utils.exceptions import DivergenceError


@dataclass(frozen=True)
class FailoverEvent:
    """One detected rank failure and the recovery that followed."""

    iteration: int  # iteration whose gather missed the rank
    rank: int
    resumed_from: int  # checkpoint iteration the run rewound to
    survivors: tuple[int, ...]


@dataclass
class FaultTolerantRunResult:
    """Outcome of a fault-tolerant distributed solve."""

    result: ADMMResult
    timeline: IterationTimeline
    n_ranks: int
    simulated_total_s: float
    failovers: list[FailoverEvent] = field(default_factory=list)
    stale_rounds: int = 0
    checkpoints_saved: int = 0
    restores: int = 0
    metrics: MetricsRegistry | None = None

    @property
    def survivors(self) -> tuple[int, ...]:
        return self.failovers[-1].survivors if self.failovers else tuple(
            range(self.n_ranks)
        )


def _truncate_history(history: IterationHistory | None, n: int) -> None:
    """Drop replayed-over entries so the log matches the final trajectory."""
    if history is None:
        return
    for name in ("pres", "dres", "eps_prim", "eps_dual", "rho"):
        del getattr(history, name)[n:]


class FaultTolerantADMMRunner:
    """Algorithm 1 over simulated MPI with checkpoint/restart failover.

    Parameters
    ----------
    dec:
        The decomposed model.
    n_ranks:
        Worker rank count; rank 0 doubles as the aggregator.  Aggregator
        failover is out of scope — a plan that crashes rank 0 is rejected.
    comm_model:
        Interconnect model for all messages.
    config:
        ADMM settings (plain Algorithm 1 only, like the plain runner).
    fault_plan:
        Optional seeded :class:`FaultPlan` to inject during the run.
    checkpoint_every:
        Consensus-checkpoint period in iterations.
    failure_deadline_s:
        Virtual-clock seconds the aggregator waits on a silent rank before
        declaring it dead (charged to the aggregator's clock per event).
    staleness_bound:
        0 (default) = synchronous barriers, exact serial parity; k > 0 =
        tolerate up to k consecutive skipped rounds per lagging rank.
    stale_slack_s:
        How far (virtual seconds) a rank's clock may trail the
        aggregator's before it is considered lagging in stale mode.
    metrics, tracer:
        Optional telemetry sinks (fresh ones are created if omitted).
    """

    def __init__(
        self,
        dec: DecomposedOPF,
        n_ranks: int,
        comm_model: CommModel,
        config: ADMMConfig | None = None,
        fault_plan: FaultPlan | None = None,
        checkpoint_every: int = 25,
        failure_deadline_s: float = 1e-3,
        staleness_bound: int = 0,
        stale_slack_s: float = 0.0,
        metrics: MetricsRegistry | None = None,
        tracer=None,
    ):
        self.dec = dec
        self.config = config or ADMMConfig()
        if self.config.relaxation != 1.0 or self.config.residual_balancing:
            raise ValueError("the fault-tolerant runner executes plain Algorithm 1 only")
        if staleness_bound < 0:
            raise ValueError("staleness_bound must be nonnegative")
        if failure_deadline_s < 0:
            raise ValueError("failure_deadline_s must be nonnegative")
        self.plan = fault_plan if fault_plan is not None else FaultPlan()
        if 0 in self.plan.crashed_ranks():
            raise ValueError(
                "rank 0 is the aggregator; aggregator failover is not supported"
            )
        self.local_solver = BatchedLocalSolver.from_decomposition(dec)
        owner = assign_even(dec.n_components, n_ranks)
        self.n_ranks = int(owner.max()) + 1
        if self.plan.crashed_ranks() - set(range(self.n_ranks)):
            raise ValueError("fault plan targets ranks beyond the communicator")
        self.comm_model = comm_model
        self.checkpoint_every = int(checkpoint_every)
        self.failure_deadline_s = float(failure_deadline_s)
        self.staleness_bound = int(staleness_bound)
        self.stale_slack_s = float(stale_slack_s)
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._initial_owner = owner

    # ------------------------------------------------------------------
    def _compute_rank(
        self, comm, r, comps_r, bx_r, lam_r, rho, injector
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """One rank's local + dual updates, charged to its virtual clock
        (scaled by any active straggler slowdown)."""
        t0 = time.perf_counter()
        z_r = np.empty(bx_r.size)
        pos = 0
        for s in comps_r:
            n_s = int(self.dec.offsets[s + 1] - self.dec.offsets[s])
            v_s = bx_r[pos : pos + n_s] + lam_r[pos : pos + n_s] / rho
            z_r[pos : pos + n_s] = self.local_solver.solve_one(s, v_s)
            pos += n_s
        lam_out = lam_r + rho * (bx_r - z_r)
        dt = (time.perf_counter() - t0) * injector.slowdown(r)
        comm.advance(r, dt)
        injector.corrupt(z_r, f"rank:{r}")
        return z_r, lam_out, dt

    def solve(self, max_iter: int | None = None) -> FaultTolerantRunResult:
        """Run to the (16) criterion with failover; returns result + events.

        Raises
        ------
        DivergenceError
            If ``config.divergence_guard`` and an iterate goes non-finite
            (e.g. under injected NaN corruption with no surviving replica).
        """
        cfg = self.config
        budget = cfg.max_iter if max_iter is None else max_iter
        dec = self.dec
        rho = cfg.rho
        injector = FaultInjector(self.plan, self.metrics)
        comm = SimComm(self.n_ranks, self.comm_model, injector=injector)
        failover_counter = self.metrics.counter("rank.failover")
        stale_counter = self.metrics.counter("resilience.stale_rounds")
        ckpt_counter = self.metrics.counter("resilience.checkpoints")
        restore_counter = self.metrics.counter("resilience.restores")

        alive = list(range(self.n_ranks))
        owner = self._initial_owner
        comps, slices = rank_partition(dec.offsets, owner, self.n_ranks)

        x = dec.lp.initial_point()
        z = x[dec.global_cols].copy()
        lam = np.zeros(dec.n_local)
        history = IterationHistory() if cfg.record_history else None
        timeline = IterationTimeline()
        ckpts = CheckpointStore(every=self.checkpoint_every)
        ckpts.save(0, z, lam, rho)
        ckpt_counter.inc()
        staleness = np.zeros(self.n_ranks, dtype=np.int64)
        # Stale-iterate mode: contributions computed but not yet delivered
        # (their rank's clock ran ahead of the aggregator's).
        pending: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        failovers: list[FailoverEvent] = []
        stale_rounds = 0
        tracer = self.tracer

        res = None
        iteration = 0
        while iteration < budget:
            iteration += 1
            injector.begin_iteration(iteration)
            t_start = comm.elapsed()
            crashed_now: list[int] = []

            # Stale mode: harvest deferred contributions whose rank has
            # caught up to the aggregator's clock; a rank at the staleness
            # bound forces the aggregator to stall for it instead.
            if pending:
                harvest_z: dict[int, np.ndarray] = {}
                harvest_lam: dict[int, np.ndarray] = {}
                for r in sorted(pending):
                    if injector.crashed(r):
                        pending.pop(r)
                        crashed_now.append(r)
                        continue
                    ready = comm.clocks[r] - comm.clocks[0] <= self.stale_slack_s
                    if not ready and staleness[r] >= self.staleness_bound:
                        comm.barrier([0, r])  # forced sync: aggregator stalls
                        ready = True
                    if ready:
                        z_r, lam_r = pending.pop(r)
                        harvest_z[r] = z_r
                        harvest_lam[r] = lam_r
                    else:
                        staleness[r] += 1
                        stale_rounds += 1
                        stale_counter.inc()
                if harvest_z:
                    z_h = comm.gatherv(0, harvest_z, partial=True)
                    lam_h = comm.gatherv(0, harvest_lam, partial=True)
                    z = z.copy()
                    lam = lam.copy()
                    for r in harvest_z:
                        if z_h[r] is not None and lam_h[r] is not None:
                            z[slices[r]] = z_h[r]
                            lam[slices[r]] = lam_h[r]
                        staleness[r] = 0

            # Aggregator: global update (13)/(18).
            t0 = time.perf_counter()
            scatter = np.bincount(
                dec.global_cols, weights=z - lam / rho, minlength=dec.lp.n_vars
            )
            xhat = (scatter - dec.lp.cost / rho) / dec.counts
            x = np.clip(xhat, dec.lp.lb, dec.lp.ub)
            bx = x[dec.global_cols]
            comm.advance(0, time.perf_counter() - t0)

            # Participation: every live rank that is not still busy with a
            # deferred (stale) contribution.
            participants = [r for r in alive if r not in pending]

            # Scatter each participant's B_s x slice (server -> agents).
            parts: list[np.ndarray | None] = [None] * self.n_ranks
            for r in participants:
                parts[r] = bx[slices[r]]
            received = comm.scatterv(0, parts)

            # Agents: local + dual updates on their own clocks.  A crashed
            # rank computes nothing; a rank whose scatter message was
            # dropped has nothing to compute from (transient stale round).
            compute_times = []
            z_parts: dict[int, np.ndarray] = {}
            lam_parts: dict[int, np.ndarray] = {}
            for r in participants:
                if r != 0 and injector.crashed(r):
                    crashed_now.append(r)
                    continue
                if received[r] is None:
                    stale_rounds += 1
                    stale_counter.inc()
                    continue
                z_r, lam_r, dt = self._compute_rank(
                    comm, r, comps[r], received[r], lam[slices[r]], rho, injector
                )
                compute_times.append(dt)
                z_parts[r] = z_r
                lam_parts[r] = lam_r

            # Stale mode: defer contributions whose rank ran past the
            # aggregator's clock — the aggregator proceeds without waiting
            # and applies them in a later round (bounded staleness).
            if self.staleness_bound > 0:
                for r in list(z_parts):
                    if r != 0 and comm.clocks[r] - comm.clocks[0] > self.stale_slack_s:
                        pending[r] = (z_parts.pop(r), lam_parts.pop(r))
                        staleness[r] = 1
                        stale_rounds += 1
                        stale_counter.inc()

            # Gather (z, lambda) back; survivors only.
            z_back = comm.gatherv(0, z_parts, partial=True)
            lam_back = comm.gatherv(0, lam_parts, partial=True)

            if crashed_now:
                # Failure detection: the aggregator's gather deadline
                # expires once per event, then recovery runs.
                clock0 = float(comm.clocks[0])
                comm.advance(0, self.failure_deadline_s)
                if tracer:
                    tracer.add_modeled(
                        "resilience.detect_failure",
                        clock0,
                        self.failure_deadline_s,
                        track=TRACK_CLUSTER,
                        tid=0,
                        cat="resilience",
                    )
                for r in crashed_now:
                    alive.remove(r)
                failover_counter.inc(len(crashed_now))
                ckpt = ckpts.restore()
                restore_counter.inc()
                z = ckpt.z.copy()
                lam = ckpt.lam.copy()
                _truncate_history(history, ckpt.iteration)
                owner = reassign_surviving(dec.n_components, alive)
                comps, slices = rank_partition(dec.offsets, owner, self.n_ranks)
                for r in crashed_now:
                    failovers.append(
                        FailoverEvent(
                            iteration=iteration,
                            rank=r,
                            resumed_from=ckpt.iteration,
                            survivors=tuple(alive),
                        )
                    )
                # Re-sync survivors from the checkpoint (state re-scatter).
                resync: list[np.ndarray | None] = [None] * self.n_ranks
                for r in alive:
                    if r != 0:
                        resync[r] = np.concatenate([z[slices[r]], lam[slices[r]]])
                comm.scatterv(0, resync)
                comm.barrier(alive)
                staleness[:] = 0
                pending.clear()  # deferred pre-crash contributions are void
                iteration = ckpt.iteration
                continue

            # Apply received updates; skipped/stale slices stay put.
            z_prev = z
            z = z.copy()
            lam = lam.copy()
            for r, z_r in z_parts.items():
                if z_back[r] is None or lam_back[r] is None:
                    stale_rounds += 1  # gather lost on the wire
                    stale_counter.inc()
                    continue
                z[slices[r]] = z_back[r]
                lam[slices[r]] = lam_back[r]

            # Aggregator: residuals and termination.
            t0 = time.perf_counter()
            res = compute_residuals(bx, z, z_prev, lam, rho, cfg.eps_rel)
            comm.advance(0, time.perf_counter() - t0)
            if self.staleness_bound == 0:
                comm.barrier(alive)

            if cfg.divergence_guard and not res.finite:
                raise DivergenceError(
                    f"fault-tolerant runner: non-finite iterate at iteration "
                    f"{iteration} (pres {res.pres}, dres {res.dres})",
                    iteration=iteration,
                    pres=res.pres,
                    dres=res.dres,
                )

            timeline.append(
                comm.elapsed() - t_start,
                float(max(compute_times)) if compute_times else 0.0,
            )
            if history is not None:
                history.append(res.pres, res.dres, res.eps_prim, res.eps_dual, rho)
            if res.converged:
                break
            if ckpts.maybe_save(iteration, z, lam, rho):
                ckpt_counter.inc()

        converged = bool(res is not None and res.converged)
        result = ADMMResult(
            x=x,
            z=z,
            lam=lam,
            objective=float(dec.lp.cost @ x),
            iterations=iteration,
            converged=converged,
            pres=res.pres if res else float("inf"),
            dres=res.dres if res else float("inf"),
            history=history,
            timers={"simulated_total": comm.elapsed()},
            algorithm=(
                f"solver-free ADMM (fault-tolerant simulated MPI, "
                f"{self.n_ranks} ranks, {len(failovers)} failovers)"
            ),
        )
        return FaultTolerantRunResult(
            result=result,
            timeline=timeline,
            n_ranks=self.n_ranks,
            simulated_total_s=comm.elapsed(),
            failovers=failovers,
            stale_rounds=stale_rounds,
            checkpoints_saved=ckpts.saves,
            restores=ckpts.restores,
            metrics=self.metrics,
        )
