"""Periodic consensus-state checkpoints for recoverable distributed ADMM.

One ADMM iteration is a pure function of the previous ``(z, lambda, rho)``
— ``x`` is recomputed from them by the global update — so a checkpoint of
``(iteration, z, lambda, rho)`` taken *after* iteration i is everything
needed to replay from iteration i+1 bit-identically.  The store keeps a
small ring of the most recent checkpoints (deep copies: the solver
reassigns but the aggregator may reuse buffers) and counts saves/restores
for the telemetry summary.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Checkpoint:
    """Consensus state after ``iteration`` (replay resumes at +1)."""

    iteration: int
    z: np.ndarray
    lam: np.ndarray
    rho: float


class CheckpointStore:
    """Bounded ring of periodic consensus checkpoints.

    Parameters
    ----------
    every:
        Checkpoint period in iterations (``maybe_save`` fires on multiples).
    keep:
        Checkpoints retained; older ones roll off.
    """

    def __init__(self, every: int = 25, keep: int = 2):
        if every < 1:
            raise ValueError("checkpoint period must be at least 1")
        if keep < 1:
            raise ValueError("must keep at least one checkpoint")
        self.every = int(every)
        self._ring: deque[Checkpoint] = deque(maxlen=int(keep))
        self.saves = 0
        self.restores = 0

    def __len__(self) -> int:
        return len(self._ring)

    def save(self, iteration: int, z: np.ndarray, lam: np.ndarray, rho: float) -> None:
        """Unconditionally snapshot (used for the iteration-0 baseline)."""
        self._ring.append(
            Checkpoint(iteration=int(iteration), z=z.copy(), lam=lam.copy(), rho=float(rho))
        )
        self.saves += 1

    def maybe_save(
        self, iteration: int, z: np.ndarray, lam: np.ndarray, rho: float
    ) -> bool:
        """Snapshot if ``iteration`` is on the period; returns whether it did."""
        if iteration % self.every != 0:
            return False
        self.save(iteration, z, lam, rho)
        return True

    def latest(self) -> Checkpoint | None:
        return self._ring[-1] if self._ring else None

    def restore(self) -> Checkpoint:
        """The newest checkpoint, counted as a restore.

        Raises
        ------
        RuntimeError
            If no checkpoint was ever saved (the runner always saves the
            initial state, so this indicates a usage bug).
        """
        ckpt = self.latest()
        if ckpt is None:
            raise RuntimeError("no checkpoint available to restore")
        self.restores += 1
        return ckpt
