"""Deterministic fault injection: seeded, declarative chaos testing.

A :class:`FaultPlan` is an immutable list of fault specs plus a seed; a
:class:`FaultInjector` is the stateful applier a run threads through its
iterations.  Everything downstream of a plan is reproducible: the same
plan against the same problem produces bit-identical fault timing, NaN
masks and recovery behavior, which is what lets the chaos tests in
``tests/test_resilience.py`` assert exact trajectories.

Fault types
-----------
:class:`RankCrash`
    Rank r stops responding from iteration k onward (fail-stop).  The
    fault-tolerant runner detects it through the missed gather deadline
    and fails over (checkpoint restore + component reassignment).
:class:`StragglerSlowdown`
    Rank r's compute is multiplied by ``factor`` over an iteration window
    — the runner either absorbs it in the barrier (synchronous mode) or
    tolerates bounded staleness (stale-iterate mode).
:class:`MessageDrop` / :class:`MessageDelay`
    Point-to-point wire faults consulted by
    :class:`~repro.parallel.mpi_sim.SimComm` on every message.
:class:`NaNCorruption`
    Payload corruption: a seeded fraction of a target scenario's (or
    rank's) local iterate is overwritten with NaN at iteration k.  This is
    what drives the serving engine's divergence-guard / retry / degrade
    path end to end.
:class:`WorkerCrash`
    Fleet-plane fail-stop: serving worker ``worker`` dies after completing
    ``after_served`` requests.  In the fleet's sim mode the worker stops
    mid-dispatch (its in-flight batch and queued requests stay
    recoverable); in process mode the worker process hard-exits without
    draining its queues.  Drives the
    :class:`~repro.fleet.FleetFrontend` failover path.

Every fault that actually fires increments the ``fault.injected`` counter
on the injector's metrics registry (once per fault spec, not once per
iteration it stays active).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.telemetry.metrics import MetricsRegistry

#: Wildcard target key for :class:`NaNCorruption` (matches any scenario).
ANY_TARGET = "*"


@dataclass(frozen=True)
class RankCrash:
    """Fail-stop: ``rank`` sends nothing from ``at_iteration`` onward."""

    rank: int
    at_iteration: int


@dataclass(frozen=True)
class StragglerSlowdown:
    """Multiply ``rank``'s compute time by ``factor`` over an iteration
    window (``until_iteration=None`` means forever)."""

    rank: int
    factor: float
    from_iteration: int = 1
    until_iteration: int | None = None

    def active(self, iteration: int) -> bool:
        if iteration < self.from_iteration:
            return False
        return self.until_iteration is None or iteration <= self.until_iteration


@dataclass(frozen=True)
class MessageDrop:
    """Lose every ``src -> dst`` message at ``at_iteration``."""

    src: int
    dst: int
    at_iteration: int


@dataclass(frozen=True)
class MessageDelay:
    """Add ``delay_s`` of wire time to ``src -> dst`` messages in a window."""

    src: int
    dst: int
    delay_s: float
    from_iteration: int = 1
    until_iteration: int | None = None

    def active(self, iteration: int) -> bool:
        if iteration < self.from_iteration:
            return False
        return self.until_iteration is None or iteration <= self.until_iteration


@dataclass(frozen=True)
class NaNCorruption:
    """Overwrite a seeded ``fraction`` of the target's local iterate with
    NaN at ``at_iteration``.

    ``target`` is a request id for serving-engine injection (or
    :data:`ANY_TARGET`), or ``"rank:<r>"`` for the distributed runner.
    ``attempt`` scopes the fault to one solve attempt, so a retry of the
    poisoned scenario runs clean — the reproducible version of a transient
    memory/transfer corruption.
    """

    target: str
    at_iteration: int
    fraction: float = 0.25
    attempt: int = 0


@dataclass(frozen=True)
class WorkerCrash:
    """Fail-stop of a fleet serving worker after ``after_served`` requests.

    ``after_served=0`` kills the worker before it serves anything (its
    whole queue fails over); any larger value lets it complete that many
    requests first — the "mid-run" chaos case the fleet smoke tests run.
    """

    worker: str
    after_served: int = 0


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable chaos schedule.

    Examples
    --------
    >>> plan = FaultPlan(seed=7, faults=(
    ...     RankCrash(rank=2, at_iteration=40),
    ...     StragglerSlowdown(rank=1, factor=10.0, from_iteration=10),
    ... ))
    >>> plan.crash_iteration(2)
    40
    """

    seed: int = 0
    faults: tuple = ()

    def __post_init__(self) -> None:
        for f in self.faults:
            if isinstance(f, StragglerSlowdown) and f.factor < 1.0:
                raise ValueError("straggler factor must be >= 1")
            if isinstance(f, NaNCorruption) and not 0.0 < f.fraction <= 1.0:
                raise ValueError("corruption fraction must lie in (0, 1]")
            if isinstance(f, WorkerCrash) and f.after_served < 0:
                raise ValueError("after_served must be nonnegative")

    # -- spec queries (stateless; the injector adds iteration context) ---
    def crash_iteration(self, rank: int) -> int | None:
        """Earliest crash iteration scheduled for ``rank`` (None = never)."""
        its = [f.at_iteration for f in self.faults
               if isinstance(f, RankCrash) and f.rank == rank]
        return min(its) if its else None

    def crashed_ranks(self) -> set[int]:
        return {f.rank for f in self.faults if isinstance(f, RankCrash)}

    def worker_crash_after(self, worker_id: str) -> int | None:
        """Requests ``worker_id`` completes before fail-stopping (None =
        the fleet plan never kills this worker)."""
        counts = [f.after_served for f in self.faults
                  if isinstance(f, WorkerCrash) and f.worker == worker_id]
        return min(counts) if counts else None

    def worker_crash_schedule(self, worker_id: str) -> list[int]:
        """Every ``after_served`` crash point for ``worker_id``, ascending.

        Entry ``i`` is incarnation ``i``'s crash point — the supervisor
        seeds each restart's chaos hook from the next entry, so a plan
        with K entries for one worker id is a worker that crashes K times
        (a crash loop when the entries are close together).
        """
        return sorted(
            f.after_served
            for f in self.faults
            if isinstance(f, WorkerCrash) and f.worker == worker_id
        )

    def of_type(self, kind) -> list:
        return [f for f in self.faults if isinstance(f, kind)]

    @classmethod
    def chaos(
        cls,
        seed: int,
        n_ranks: int,
        horizon: int,
        crash_probability: float = 0.5,
        straggler_probability: float = 0.5,
        max_straggler_factor: float = 10.0,
    ) -> "FaultPlan":
        """Generate a random-but-reproducible plan for an ``n_ranks`` run.

        Rank 0 (the aggregator) is never targeted.  Probabilities are per
        plan, not per rank: at most one crash and one straggler are drawn,
        which keeps generated plans survivable by construction.
        """
        rng = np.random.default_rng(seed)
        faults: list = []
        workers = list(range(1, n_ranks))
        if workers and rng.random() < crash_probability:
            faults.append(RankCrash(
                rank=int(rng.choice(workers)),
                at_iteration=int(rng.integers(2, max(3, horizon // 2))),
            ))
        crashed = {f.rank for f in faults}
        candidates = [r for r in workers if r not in crashed]
        if candidates and rng.random() < straggler_probability:
            faults.append(StragglerSlowdown(
                rank=int(rng.choice(candidates)),
                factor=float(rng.uniform(2.0, max_straggler_factor)),
                from_iteration=int(rng.integers(1, max(2, horizon // 4))),
            ))
        return cls(seed=seed, faults=tuple(faults))

    @classmethod
    def fleet_storm(
        cls,
        seed: int,
        worker_ids: list[str],
        kills: int,
        max_after_served: int = 6,
        spare: int = 1,
    ) -> "FaultPlan":
        """Generate a seeded kill storm over a serving fleet.

        Draws ``kills`` :class:`WorkerCrash` specs across ``worker_ids``,
        leaving at least ``spare`` worker ids untargeted so the storm is
        survivable by construction.  Crash points are drawn in
        ``[0, max_after_served]``; repeat draws for one worker become its
        successive incarnations' crash points (the supervisor consumes
        them via :meth:`worker_crash_schedule`).
        """
        if spare < 0 or spare >= len(worker_ids):
            raise ValueError("spare must leave at least one targetable worker")
        rng = np.random.default_rng(seed)
        targets = sorted(worker_ids)
        spared = {targets[int(i)] for i in rng.choice(
            len(targets), size=spare, replace=False
        )}
        candidates = [w for w in targets if w not in spared]
        faults = tuple(
            WorkerCrash(
                worker=candidates[int(rng.integers(0, len(candidates)))],
                after_served=int(rng.integers(0, max_after_served + 1)),
            )
            for _ in range(kills)
        )
        return cls(seed=seed, faults=faults)


class FaultInjector:
    """Stateful applier of a :class:`FaultPlan` during one run.

    The driving loop calls :meth:`begin_iteration` once per iteration (and
    :meth:`begin_attempt` once per solve attempt in the serving engine);
    the communicator and runner then query the injector for the faults
    active *now*.  Fired fault specs are counted exactly once on the
    ``fault.injected`` counter of ``metrics``.
    """

    def __init__(self, plan: FaultPlan | None, metrics: MetricsRegistry | None = None):
        self.plan = plan if plan is not None else FaultPlan()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.iteration = 0
        self.attempt = 0
        self._fired: set[int] = set()
        self._injected = self.metrics.counter("fault.injected")

    def __bool__(self) -> bool:
        return bool(self.plan.faults)

    def begin_iteration(self, iteration: int) -> None:
        self.iteration = int(iteration)

    def begin_attempt(self, attempt: int) -> None:
        self.attempt = int(attempt)
        self.iteration = 0

    def _fire(self, fault) -> None:
        key = id(fault)
        if key not in self._fired:
            self._fired.add(key)
            self._injected.inc()

    @property
    def injected(self) -> int:
        """Count of distinct fault specs that have fired so far."""
        return self._injected.value

    # ------------------------------------------------------------------
    def crashed(self, rank: int) -> bool:
        """Has ``rank`` fail-stopped at the current iteration?"""
        for f in self.plan.of_type(RankCrash):
            if f.rank == rank and self.iteration >= f.at_iteration:
                self._fire(f)
                return True
        return False

    def slowdown(self, rank: int) -> float:
        """Compute-time multiplier for ``rank`` at the current iteration."""
        factor = 1.0
        for f in self.plan.of_type(StragglerSlowdown):
            if f.rank == rank and f.active(self.iteration):
                self._fire(f)
                factor *= f.factor
        return factor

    def message_fault(self, src: int, dst: int) -> tuple[bool, float]:
        """(dropped, extra_delay_s) for one p2p message right now.

        This is the :class:`~repro.parallel.mpi_sim.SimComm` hook.
        """
        dropped = False
        delay = 0.0
        for f in self.plan.of_type(MessageDrop):
            if f.src == src and f.dst == dst and f.at_iteration == self.iteration:
                self._fire(f)
                dropped = True
        for f in self.plan.of_type(MessageDelay):
            if f.src == src and f.dst == dst and f.active(self.iteration):
                self._fire(f)
                delay += f.delay_s
        return dropped, delay

    def corrupt(self, values: np.ndarray, target: str) -> bool:
        """Apply any matching :class:`NaNCorruption` to ``values`` in place.

        The NaN mask is drawn from a generator seeded by
        ``(plan.seed, target, iteration)``, so corruption is identical
        across reruns of the same plan.  Returns whether anything fired.
        """
        fired = False
        for f in self.plan.of_type(NaNCorruption):
            if f.at_iteration != self.iteration or f.attempt != self.attempt:
                continue
            if f.target != ANY_TARGET and f.target != target:
                continue
            # crc32, not hash(): str hashing is salted per process and
            # would break cross-run reproducibility.
            rng = np.random.default_rng(
                [self.plan.seed, zlib.crc32(target.encode()), self.iteration]
            )
            n = max(1, int(round(f.fraction * values.size)))
            idx = rng.choice(values.size, size=n, replace=False)
            values[idx] = np.nan
            self._fire(f)
            fired = True
        return fired


#: Shared disabled injector (no plan, throwaway registry) — the default the
#: instrumented components fall back to, mirroring ``NULL_TRACER``.
NULL_INJECTOR = FaultInjector(None)
