"""Fault injection, fault-tolerant distributed execution, and serving
resilience policies.

Three layers, one theme — keep Algorithm 1 deterministic under failure:

* :mod:`repro.resilience.faults` — seeded, declarative chaos plans
  (:class:`FaultPlan`) applied by a :class:`FaultInjector`;
* :mod:`repro.resilience.checkpoint` / :mod:`repro.resilience.runner` —
  consensus-state checkpoints and the
  :class:`FaultTolerantADMMRunner`, which survives rank crashes
  (reassign + restore + replay, bit-identical to the serial trajectory)
  and tolerates stragglers synchronously or with bounded staleness;
* :mod:`repro.resilience.policy` — the serving-side knobs (retry with
  deterministic backoff jitter, per-topology circuit breaker, graceful
  degradation) consumed by :class:`repro.serve.ScenarioEngine`.

See ``docs/RESILIENCE.md`` for the end-to-end story.
"""

from repro.resilience.checkpoint import Checkpoint, CheckpointStore
from repro.resilience.faults import (
    ANY_TARGET,
    NULL_INJECTOR,
    FaultInjector,
    FaultPlan,
    MessageDelay,
    MessageDrop,
    NaNCorruption,
    RankCrash,
    StragglerSlowdown,
    WorkerCrash,
)
from repro.resilience.policy import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    CircuitBreaker,
    CircuitOpenError,
    ResilienceConfig,
    RetryPolicy,
)
from repro.resilience.runner import (
    FailoverEvent,
    FaultTolerantADMMRunner,
    FaultTolerantRunResult,
)

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "NULL_INJECTOR",
    "ANY_TARGET",
    "RankCrash",
    "StragglerSlowdown",
    "MessageDrop",
    "MessageDelay",
    "NaNCorruption",
    "WorkerCrash",
    "Checkpoint",
    "CheckpointStore",
    "RetryPolicy",
    "CircuitBreaker",
    "CircuitOpenError",
    "ResilienceConfig",
    "CLOSED",
    "OPEN",
    "HALF_OPEN",
    "FaultTolerantADMMRunner",
    "FaultTolerantRunResult",
    "FailoverEvent",
]
