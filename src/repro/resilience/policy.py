"""Serving-side resilience policies: retry, circuit breaking, degradation.

These are the knobs of the hardened serving path (docs/RESILIENCE.md):

* :class:`RetryPolicy` — exponential backoff with *deterministic* seeded
  jitter: ``delay(attempt)`` is a pure function of ``(seed, attempt)``, so
  chaos tests replay identical schedules while a fleet of real clients
  still decorrelates.
* :class:`CircuitBreaker` — per-topology failure isolation: after
  ``failure_threshold`` consecutive solver failures the breaker opens and
  requests on that topology are rejected instantly (no queue time, no
  solve time) until ``recovery_s`` has passed; the first probe after that
  half-opens the breaker.
* :class:`ResilienceConfig` — the bundle the
  :class:`~repro.serve.engine.ScenarioEngine` consumes.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field

from repro.utils.exceptions import ReproError

#: Circuit breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitOpenError(ReproError):
    """A request was rejected because its topology's breaker is open.

    Attributes
    ----------
    retry_after_s:
        Seconds until the breaker will half-open and admit a probe.
    """

    def __init__(self, topology_key: str, retry_after_s: float):
        self.topology_key = topology_key
        self.retry_after_s = float(retry_after_s)
        super().__init__(
            f"circuit open for topology {topology_key}; "
            f"retry in {retry_after_s:.3f}s"
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with deterministic seeded jitter.

    ``delay(attempt)`` for attempt 1, 2, ... is
    ``min(max_delay_s, base_delay_s * multiplier**(attempt-1))`` scaled by
    a jitter factor in ``[1 - jitter, 1 + jitter]`` drawn from
    ``Random(seed * 1000003 + attempt)`` — reproducible per (seed, attempt).
    The default ``base_delay_s=0`` makes retries immediate, which is right
    for an in-process engine; a networked deployment would raise it.
    """

    max_retries: int = 1
    base_delay_s: float = 0.0
    max_delay_s: float = 5.0
    multiplier: float = 2.0
    jitter: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError("max_retries must be nonnegative")
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be nonnegative")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must lie in [0, 1)")

    def delay(self, attempt: int) -> float:
        """Backoff before retry ``attempt`` (1-based)."""
        if attempt < 1:
            raise ValueError("attempt is 1-based")
        raw = min(self.max_delay_s, self.base_delay_s * self.multiplier ** (attempt - 1))
        if raw == 0.0 or self.jitter == 0.0:
            return raw
        u = random.Random(self.seed * 1000003 + attempt).uniform(-1.0, 1.0)
        return raw * (1.0 + self.jitter * u)


class CircuitBreaker:
    """Consecutive-failure circuit breaker with timed half-open recovery.

    Parameters
    ----------
    failure_threshold:
        Consecutive failures that trip the breaker open.
    recovery_s:
        Open duration before a half-open probe is admitted.
    clock:
        Injectable monotonic clock (tests freeze it).
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_s: float = 30.0,
        clock=time.monotonic,
    ):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be at least 1")
        if recovery_s < 0:
            raise ValueError("recovery_s must be nonnegative")
        self.failure_threshold = int(failure_threshold)
        self.recovery_s = float(recovery_s)
        self._clock = clock
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_count = 0
        self._opened_at = 0.0

    def retry_after_s(self) -> float:
        """Seconds until an open breaker admits a probe (0 when admitting)."""
        if self.state != OPEN:
            return 0.0
        return max(0.0, self._opened_at + self.recovery_s - self._clock())

    def allow(self) -> bool:
        """May a request proceed right now?  Transitions open -> half-open
        when the recovery window has elapsed."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN and self.retry_after_s() <= 0.0:
            self.state = HALF_OPEN
        return self.state == HALF_OPEN

    def record_success(self) -> None:
        self.state = CLOSED
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """Record one failure; returns True when this trips the breaker
        open (including re-opening from half-open)."""
        self.consecutive_failures += 1
        tripping = (
            self.state == HALF_OPEN
            or self.consecutive_failures >= self.failure_threshold
        )
        if tripping and self.state != OPEN:
            self.state = OPEN
            self.opened_count += 1
            self._opened_at = self._clock()
            return True
        if tripping:
            self._opened_at = self._clock()
        return False


@dataclass(frozen=True)
class ResilienceConfig:
    """Hardened-serving knobs consumed by the scenario engine.

    Attributes
    ----------
    retry:
        Backoff policy for retryable solve failures (divergence).
    breaker_failure_threshold / breaker_recovery_s:
        Per-topology circuit breaker settings; a threshold of 0 disables
        breaking entirely.
    degrade_to_reference:
        After retries are exhausted, fall back to the centralized
        reference LP solve (HiGHS) for the failing scenario instead of
        erroring — slower, unbatched, but exact.
    deadline_check_every:
        Iteration period of the in-solve deadline sweep.
    """

    retry: RetryPolicy = field(default_factory=RetryPolicy)
    breaker_failure_threshold: int = 5
    breaker_recovery_s: float = 30.0
    degrade_to_reference: bool = True
    deadline_check_every: int = 50

    def __post_init__(self) -> None:
        if self.breaker_failure_threshold < 0:
            raise ValueError("breaker_failure_threshold must be nonnegative")
        if self.breaker_recovery_s < 0:
            raise ValueError("breaker_recovery_s must be nonnegative")
        if self.deadline_check_every < 1:
            raise ValueError("deadline_check_every must be at least 1")

    @property
    def breaker_enabled(self) -> bool:
        return self.breaker_failure_threshold > 0
