"""Closed-form projections onto second-order cones.

The paper's stated future work is a GPU-accelerated distributed algorithm
for the *convex relaxation* of the OPF model.  The relaxation's only
non-linear ingredient is a rotated second-order cone; this module provides
the exact Euclidean projection so the conic local update stays solver-free,
in the spirit of Algorithm 1.

The rotated cone is taken in its **isometric normal form**

    K_rot = { (u, v, w_vec) : 2 u v >= ||w_vec||^2,  u >= 0,  v >= 0 }.

The orthogonal rotation ``(u, v) -> (s, d) = ((u+v)/sqrt(2), (u-v)/sqrt(2))``
maps it *isometrically* onto the standard cone ``||(d, w_vec)|| <= s``
(because ``s^2 - d^2 = 2 u v``), so the textbook standard-cone projection
formula transfers exactly.  The factor 2 matters: the variant
``u v >= ||w||^2`` is only a *linear* (non-isometric) image of the standard
cone and admits no such closed form — model variables should be scaled so
their constraint takes the factor-2 form (see :mod:`repro.socp.bfm`).

Dtype discipline: every projection computes in host fp64 (the square roots
and cancellations want the headroom) but returns in the *caller's* dtype,
mirroring :func:`repro.qp.projection.project_box_affine` — an fp32 backend's
iterates pass through without silent promotion, and fp64 inputs round-trip
bit-identically (the final cast is a no-op view).
"""

from __future__ import annotations

import numpy as np

from repro.backend.policy import HOST_DTYPE

SQRT2 = np.sqrt(2.0)


def project_soc(t: float, z: np.ndarray) -> tuple[float, np.ndarray]:
    """Project ``(t, z)`` onto the standard cone ``||z|| <= t``."""
    z_in = np.asarray(z)
    z = z_in.astype(HOST_DTYPE, copy=False)
    nz = float(np.linalg.norm(z))
    if nz <= t:
        return float(t), z_in.copy()
    if nz <= -t:
        return 0.0, np.zeros_like(z_in)
    alpha = 0.5 * (1.0 + t / nz)
    return float(alpha * nz), (alpha * z).astype(z_in.dtype, copy=False)


def project_soc_batch(t: np.ndarray, z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized standard-cone projection; preserves the input dtype.

    Parameters
    ----------
    t:
        Shape ``(m,)``.
    z:
        Shape ``(m, d)``.
    """
    t_in = np.asarray(t)
    z_in = np.asarray(z)
    out_dtype = np.result_type(t_in, z_in)
    t = t_in.astype(HOST_DTYPE, copy=False)
    z = z_in.astype(HOST_DTYPE, copy=False)
    nz = np.linalg.norm(z, axis=1)
    inside = nz <= t
    polar = nz <= -t
    boundary = ~inside & ~polar
    t_out = np.where(inside, t, 0.0)
    z_out = np.where(inside[:, None], z, 0.0)
    if boundary.any():
        alpha = 0.5 * (1.0 + t[boundary] / nz[boundary])
        t_out[boundary] = alpha * nz[boundary]
        z_out[boundary] = alpha[:, None] * z[boundary]
    return (
        t_out.astype(out_dtype, copy=False),
        z_out.astype(out_dtype, copy=False),
    )


def project_rotated_soc(u: float, v: float, w: np.ndarray) -> tuple[float, float, np.ndarray]:
    """Project ``(u, v, w)`` onto ``{2 u v >= ||w||^2, u, v >= 0}``."""
    uu, vv, ww = project_rotated_soc_batch(
        np.array([u]), np.array([v]), np.asarray(w, dtype=HOST_DTYPE)[None, :]
    )
    return float(uu[0]), float(vv[0]), ww[0]


def project_rotated_soc_batch(
    u: np.ndarray, v: np.ndarray, w: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorized rotated-cone projection; ``u, v`` shape (m,), ``w`` (m, d).

    Exact because the (u, v) rotation is orthogonal and the tail passes
    through unchanged — the whole map to the standard cone is an isometry.
    The result comes back in the inputs' dtype (fp32 in, fp32 out).
    """
    u_in = np.asarray(u)
    v_in = np.asarray(v)
    w_in = np.asarray(w)
    out_dtype = np.result_type(u_in, v_in, w_in)
    u = u_in.astype(HOST_DTYPE, copy=False)
    v = v_in.astype(HOST_DTYPE, copy=False)
    w = w_in.astype(HOST_DTYPE, copy=False)
    s = (u + v) / SQRT2
    d = (u - v) / SQRT2
    tail = np.concatenate([d[:, None], w], axis=1)
    s_p, tail_p = project_soc_batch(s, tail)
    d_p = tail_p[:, 0]
    w_p = tail_p[:, 1:]
    u_p = (s_p + d_p) / SQRT2
    v_p = (s_p - d_p) / SQRT2
    # Clamp the tiny negative fuzz the rotation can leave behind.
    u_p = np.maximum(u_p, 0.0)
    v_p = np.maximum(v_p, 0.0)
    return (
        u_p.astype(out_dtype, copy=False),
        v_p.astype(out_dtype, copy=False),
        w_p.astype(out_dtype, copy=False),
    )


def in_rotated_soc(u: float, v: float, w: np.ndarray, tol: float = 1e-9) -> bool:
    """Membership test for ``{2 u v >= ||w||^2, u, v >= 0}`` (with tolerance)."""
    w = np.asarray(w, dtype=HOST_DTYPE)
    return u >= -tol and v >= -tol and 2.0 * u * v + tol >= float(w @ w)
