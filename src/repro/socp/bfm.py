"""Single-phase branch-flow SOCP relaxation (the paper's future work).

The paper's conclusion names "a GPU-accelerated distributed optimization
algorithm specifically tailored for the convex relaxation of the multi-phase
OPF model" as future work.  This module builds that relaxation for the
positive-sequence (single-phase) equivalent of a radial feeder — the
classical Baran-Wu branch-flow model with the SOC relaxation of the current
equation:

    variables per directed line e = (i -> j):  P_e, Q_e (sending end),
        le_e = ell_e / 2 (HALF the squared current — this scaling puts the
        current constraint in the isometric rotated-cone normal form
        ``2 le w >= P^2 + Q^2`` whose Euclidean projection is closed form,
        see :mod:`repro.socp.cone`);  per bus: w_i;  per generator: pg, qg.

    balance at j:   P_e - 2 r le_e + sum_gen pg = sum_children P_c
                        + p_load(w_j) + g_sh w_j                (real)
                    (reactive analogously, with -b_sh w_j)
    voltage drop:   w_j = w_i - 2 (r P + x Q) + 2 (r^2 + x^2) le
    cone:           P^2 + Q^2 <= 2 le * w_i      (rotated SOC, relaxed)

The linear rows carry component owners exactly like the LP formulation, so
the conic decomposition is again a pure regrouping; the cones become their
own single-constraint components with closed-form projections
(:mod:`repro.socp.cone`) — preserving the paper's solver-free property.

ZIP loads are folded into the balance rows (they are affine in ``w``);
multi-phase feeders are reduced by positive-sequence aggregation
(:func:`positive_sequence_impedance`, per-bus load totals).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formulation.rows import Row, rows_to_matrix
from repro.formulation.variables import VariableIndex
from repro.network.components import Line
from repro.network.network import DistributionNetwork
from repro.utils.exceptions import FormulationError

PHASE = 1  # single-phase variables reuse the phase slot with a constant


@dataclass(frozen=True)
class ConeSpec:
    """One rotated-SOC membership ``2 le w >= P^2 + Q^2`` over the keys
    ``(le, w_at_from_bus, P, Q)``."""

    line: str
    u_key: tuple  # ("le", line, PHASE)
    v_key: tuple  # ("w", from_bus, PHASE)
    w_keys: tuple  # (("pf", line, PHASE), ("qf", line, PHASE))


@dataclass
class ConicProblem:
    """The assembled SOCP: linear rows + bounds + cone memberships."""

    network: DistributionNetwork
    var_index: VariableIndex
    rows: list[Row]
    cones: list[ConeSpec]
    cost: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    orientation: dict[str, tuple[str, str]]  # line -> (parent bus, child bus)

    @property
    def n_vars(self) -> int:
        return self.var_index.n

    def linear_system(self):
        """Dense-check helper: (A, b) of the linear equality rows."""
        return rows_to_matrix(self.rows, self.var_index)

    def cone_violation(self, x: np.ndarray) -> float:
        """Worst cone violation ``max(0, P^2 + Q^2 - 2 le w)`` over lines."""
        worst = 0.0
        vi = self.var_index
        for cone in self.cones:
            le = x[vi.index(cone.u_key)]
            w = x[vi.index(cone.v_key)]
            p = x[vi.index(cone.w_keys[0])]
            q = x[vi.index(cone.w_keys[1])]
            worst = max(worst, p * p + q * q - 2.0 * le * w)
        return float(worst)

    def squared_current(self, x: np.ndarray, line: str) -> float:
        """Physical squared current magnitude ``ell = 2 le`` of a line."""
        return 2.0 * float(x[self.var_index.index(("le", line, PHASE))])

    def cone_slack(self, x: np.ndarray) -> np.ndarray:
        """Per-line relaxation slack ``2 le w - (P^2 + Q^2)`` (tightness
        diagnostics: ~0 means the relaxation is exact on that line)."""
        vi = self.var_index
        out = np.empty(len(self.cones))
        for k, cone in enumerate(self.cones):
            le = x[vi.index(cone.u_key)]
            w = x[vi.index(cone.v_key)]
            p = x[vi.index(cone.w_keys[0])]
            q = x[vi.index(cone.w_keys[1])]
            out[k] = 2.0 * le * w - (p * p + q * q)
        return out

    def objective(self, x: np.ndarray) -> float:
        return float(self.cost @ x)

    def initial_point(self) -> np.ndarray:
        return self.var_index.initial_point()


def positive_sequence_impedance(line: Line) -> tuple[float, float]:
    """Positive-sequence (r1, x1) of a multi-phase series element.

    For a full matrix: mean(self) - mean(mutual); degenerates to the single
    self term for one-phase elements.
    """
    n = line.n_phases
    r_self = float(np.mean(np.diag(line.r)))
    x_self = float(np.mean(np.diag(line.x)))
    if n == 1:
        return r_self, x_self
    off = ~np.eye(n, dtype=bool)
    return r_self - float(np.mean(line.r[off])), x_self - float(np.mean(line.x[off]))


def _oriented_tree(net: DistributionNetwork) -> dict[str, tuple[str, str]]:
    """Orient every line parent->child away from the substation."""
    if net.substation is None:
        raise FormulationError("SOCP build requires a designated substation")
    net.validate(require_radial=True)
    orientation: dict[str, tuple[str, str]] = {}
    visited = {net.substation}
    frontier = [net.substation]
    while frontier:
        bus = frontier.pop()
        for line in net.lines_at(bus):
            other = line.to_bus if line.from_bus == bus else line.from_bus
            if other in visited:
                continue
            orientation[line.name] = (bus, other)
            visited.add(other)
            frontier.append(other)
    return orientation


def build_bfm_socp(
    net: DistributionNetwork,
    le_max: float = 100.0,
    flow_limit: float | None = None,
    le_cost: float = 1e-6,
) -> ConicProblem:
    """Assemble the single-phase branch-flow SOCP for a radial feeder.

    Parameters
    ----------
    le_max:
        Upper bound on the half-squared-current variables (needed so the
        global clip step has a box to project onto).
    flow_limit:
        Optional override of the per-line |P|,|Q| bound; defaults to each
        line's own phase-1 limit.
    le_cost:
        Tiny objective weight on the squared-current variables.  On lines
        with (near-)zero resistance ``le`` is otherwise a cost-free flat
        direction inside its box, which stalls ADMM's dual residual; the
        epsilon regularization pins ``le`` to the cone surface (standard
        practice for branch-flow relaxations) while perturbing the optimum
        by O(le_cost).
    """
    orientation = _oriented_tree(net)
    vi = VariableIndex()

    for gen in net.generators.values():
        # Aggregate the per-phase box into a single-phase equivalent.
        vi.add(("pg", gen.name, PHASE), float(gen.p_min.sum()), float(gen.p_max.sum()),
               cost=gen.cost)
        vi.add(("qg", gen.name, PHASE), float(gen.q_min.sum()), float(gen.q_max.sum()))
    for bus in net.buses.values():
        vi.add(
            ("w", bus.name, PHASE),
            float(bus.w_min.max()),
            float(bus.w_max.min()),
            is_voltage=True,
        )
    impedance: dict[str, tuple[float, float]] = {}
    for line in net.lines.values():
        limit = flow_limit if flow_limit is not None else float(line.p_max[0])
        vi.add(("pf", line.name, PHASE), -limit, limit)
        vi.add(("qf", line.name, PHASE), -limit, limit)
        vi.add(("le", line.name, PHASE), 0.0, le_max, cost=le_cost, init=0.0)
        impedance[line.name] = positive_sequence_impedance(line)

    # Aggregate ZIP loads per bus: p_load(w) = const + slope * w.
    p_const: dict[str, float] = {}
    p_slope: dict[str, float] = {}
    q_const: dict[str, float] = {}
    q_slope: dict[str, float] = {}
    for load in net.loads.values():
        a = float(load.p_ref.sum())
        b = float(load.q_ref.sum())
        alpha = float(load.alpha.mean())
        beta = float(load.beta.mean())
        p_const[load.bus] = p_const.get(load.bus, 0.0) + a * (1.0 - alpha / 2.0)
        p_slope[load.bus] = p_slope.get(load.bus, 0.0) + a * alpha / 2.0
        q_const[load.bus] = q_const.get(load.bus, 0.0) + b * (1.0 - beta / 2.0)
        q_slope[load.bus] = q_slope.get(load.bus, 0.0) + b * beta / 2.0

    children: dict[str, list[str]] = {b: [] for b in net.buses}
    parent_line: dict[str, str] = {}
    for name, (i, j) in orientation.items():
        children[i].append(name)
        parent_line[j] = name

    rows: list[Row] = []
    for bus in net.buses.values():
        name = bus.name
        owner = ("bus", name)
        p_coeffs: dict = {}
        q_coeffs: dict = {}
        shunt_g = float(bus.g_sh.sum())
        shunt_b = float(bus.b_sh.sum())
        # Downstream sends.
        for c in children[name]:
            p_coeffs[("pf", c, PHASE)] = 1.0
            q_coeffs[("qf", c, PHASE)] = 1.0
        # Load voltage terms + shunts.
        p_coeffs[("w", name, PHASE)] = p_slope.get(name, 0.0) + shunt_g
        q_coeffs[("w", name, PHASE)] = q_slope.get(name, 0.0) - shunt_b
        # Arrival from the parent line.
        if name in parent_line:
            e = parent_line[name]
            r, x = impedance[e]
            p_coeffs[("pf", e, PHASE)] = p_coeffs.get(("pf", e, PHASE), 0.0) - 1.0
            p_coeffs[("le", e, PHASE)] = 2.0 * r
            q_coeffs[("qf", e, PHASE)] = q_coeffs.get(("qf", e, PHASE), 0.0) - 1.0
            q_coeffs[("le", e, PHASE)] = 2.0 * x
        # Generation.
        for gen in net.generators_at(name):
            p_coeffs[("pg", gen.name, PHASE)] = -1.0
            q_coeffs[("qg", gen.name, PHASE)] = -1.0
        rows.append(
            Row(p_coeffs, -p_const.get(name, 0.0), owner, tag=f"bfm-p:{name}")
        )
        rows.append(
            Row(q_coeffs, -q_const.get(name, 0.0), owner, tag=f"bfm-q:{name}")
        )

    cones: list[ConeSpec] = []
    for name, (i, j) in orientation.items():
        r, x = impedance[name]
        rows.append(
            Row(
                {
                    ("w", j, PHASE): 1.0,
                    ("w", i, PHASE): -1.0,
                    ("pf", name, PHASE): 2.0 * r,
                    ("qf", name, PHASE): 2.0 * x,
                    ("le", name, PHASE): -2.0 * (r * r + x * x),
                },
                0.0,
                ("line", name),
                tag=f"bfm-vdrop:{name}",
            )
        )
        cones.append(
            ConeSpec(
                line=name,
                u_key=("le", name, PHASE),
                v_key=("w", i, PHASE),
                w_keys=(("pf", name, PHASE), ("qf", name, PHASE)),
            )
        )

    return ConicProblem(
        network=net,
        var_index=vi,
        rows=rows,
        cones=cones,
        cost=vi.costs(),
        lb=vi.lower_bounds(),
        ub=vi.upper_bounds(),
        orientation=orientation,
    )
