"""Branch-flow SOCP relaxation with solver-free conic consensus ADMM — the
paper's stated future work, built on the same decomposition machinery."""

from repro.socp.bfm import (
    ConeSpec,
    ConicProblem,
    build_bfm_socp,
    positive_sequence_impedance,
)
from repro.socp.cone import (
    in_rotated_soc,
    project_rotated_soc,
    project_rotated_soc_batch,
    project_soc,
    project_soc_batch,
)
from repro.socp.solver import (
    ConicDecomposition,
    ConicSolverFreeADMM,
    LinearComponent,
    decompose_conic,
)

__all__ = [
    "build_bfm_socp",
    "ConicProblem",
    "ConeSpec",
    "positive_sequence_impedance",
    "decompose_conic",
    "ConicDecomposition",
    "ConicSolverFreeADMM",
    "LinearComponent",
    "project_soc",
    "project_soc_batch",
    "project_rotated_soc",
    "project_rotated_soc_batch",
    "in_rotated_soc",
]
