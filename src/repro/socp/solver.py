"""Solver-free conic consensus ADMM for the branch-flow SOCP.

The decomposition generalizes model (9): components are either

* **linear** — equality systems ``A_s x_s = b_s`` (bus balance, line
  voltage-drop rows), solved by the same batched affine projections as
  Algorithm 1, or
* **conic** — a single rotated-SOC membership per line, solved by the
  closed-form cone projection of :mod:`repro.socp.cone`,

while all bound constraints remain in the global clip step, exactly as in
the paper.  Every local update is still a closed-form, batchable map —
the paper's "solver-free on GPUs" property carries over to the relaxation
it names as future work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.batch import BatchedLocalSolver
from repro.core.config import ADMMConfig
from repro.core.residuals import compute_residuals
from repro.core.results import ADMMResult, IterationHistory
from repro.decomposition.rowreduce import reduced_row_echelon
from repro.formulation.rows import Row, rows_to_dense_local
from repro.socp.bfm import ConicProblem
from repro.socp.cone import project_rotated_soc_batch
from repro.utils.exceptions import ConvergenceError, DecompositionError


@dataclass
class LinearComponent:
    """An equality-only component of the conic decomposition."""

    name: str
    local_keys: list
    global_cols: np.ndarray
    a: np.ndarray
    b: np.ndarray

    @property
    def n_vars(self) -> int:
        return len(self.local_keys)


@dataclass
class ConicDecomposition:
    """Linear components + cone components + stacked consensus structure.

    The stacked local vector is laid out as all linear components followed
    by all cone components (4 entries each: ``le, w, P, Q``).
    """

    problem: ConicProblem
    linear: list[LinearComponent]
    offsets_linear: np.ndarray
    n_linear: int
    cone_cols: np.ndarray  # (n_cones, 4) global columns per cone
    global_cols: np.ndarray  # full stacked map (linear then cones)
    counts: np.ndarray

    @property
    def n_components(self) -> int:
        return len(self.linear) + self.cone_cols.shape[0]

    @property
    def n_local(self) -> int:
        return int(self.global_cols.size)


def _component_keys_for_rows(rows: list[Row]) -> list:
    keys: list = []
    seen: set = set()
    for row in rows:
        for key in row.coeffs:
            if key not in seen:
                seen.add(key)
                keys.append(key)
    return keys


def decompose_conic(problem: ConicProblem, rref_tol: float = 1e-9) -> ConicDecomposition:
    """Group the SOCP's rows by owner and append the cone components."""
    by_owner: dict[tuple, list[Row]] = {}
    for row in problem.rows:
        by_owner.setdefault(row.owner, []).append(row)

    vi = problem.var_index
    linear: list[LinearComponent] = []
    for owner, rows in by_owner.items():
        keys = _component_keys_for_rows(rows)
        if not keys:
            continue
        a_raw, b_raw = rows_to_dense_local(rows, keys)
        a, b, _ = reduced_row_echelon(a_raw, b_raw, tol=rref_tol)
        linear.append(
            LinearComponent(
                name=f"{owner[0]}:{owner[1]}",
                local_keys=keys,
                global_cols=np.array([vi.index(k) for k in keys], dtype=np.int64),
                a=a,
                b=b,
            )
        )

    sizes = np.array([c.n_vars for c in linear], dtype=np.int64)
    offsets_linear = np.concatenate([[0], np.cumsum(sizes)])
    n_linear = int(offsets_linear[-1])

    cone_cols = np.array(
        [
            [
                vi.index(c.u_key),
                vi.index(c.v_key),
                vi.index(c.w_keys[0]),
                vi.index(c.w_keys[1]),
            ]
            for c in problem.cones
        ],
        dtype=np.int64,
    ).reshape(len(problem.cones), 4)

    global_cols = np.concatenate(
        [c.global_cols for c in linear] + [cone_cols.reshape(-1)]
    )
    counts = np.bincount(global_cols, minlength=vi.n).astype(float)
    if np.any(counts == 0):
        missing = int(np.argmax(counts == 0))
        raise DecompositionError(
            f"variable {vi.key_of(missing)} has no local copy in the conic model"
        )
    return ConicDecomposition(
        problem=problem,
        linear=linear,
        offsets_linear=offsets_linear,
        n_linear=n_linear,
        cone_cols=cone_cols,
        global_cols=global_cols,
        counts=counts,
    )


class ConicSolverFreeADMM:
    """Consensus ADMM over linear + conic components, all closed form."""

    algorithm_name = "solver-free conic ADMM (branch-flow SOCP)"

    def __init__(self, dec: ConicDecomposition, config: ADMMConfig | None = None):
        self.dec = dec
        self.config = config or ADMMConfig()
        if self.config.residual_balancing or self.config.relaxation != 1.0:
            raise ValueError("the conic solver runs plain ADMM only")
        problem = dec.problem
        self.n = problem.n_vars
        self.n_local = dec.n_local
        self.c = problem.cost
        self.lb = problem.lb
        self.ub = problem.ub
        self.gcols = dec.global_cols
        self.counts = dec.counts
        self.linear_solver = BatchedLocalSolver.from_parts(dec.linear, dec.offsets_linear)

    def local_update(self, v: np.ndarray) -> np.ndarray:
        """Batched closed-form projections: affine blocks, then cones."""
        dec = self.dec
        z = np.empty(self.n_local)
        z[: dec.n_linear] = self.linear_solver.solve(v[: dec.n_linear])
        cone_part = v[dec.n_linear :].reshape(-1, 4)
        u, w, pq = project_rotated_soc_batch(
            cone_part[:, 0], cone_part[:, 1], cone_part[:, 2:]
        )
        out = np.concatenate([u[:, None], w[:, None], pq], axis=1)
        z[dec.n_linear :] = out.reshape(-1)
        return z

    def solve(self, x0: np.ndarray | None = None, max_iter: int | None = None) -> ADMMResult:
        """Run to the (16) criterion.

        Raises
        ------
        ConvergenceError
            Only if ``config.raise_on_max_iter`` is set and the budget runs
            out.
        """
        cfg = self.config
        budget = cfg.max_iter if max_iter is None else max_iter
        rho = cfg.rho
        x = self.dec.problem.initial_point() if x0 is None else np.asarray(x0, float).copy()
        if x.shape != (self.n,):
            raise ValueError("warm start has wrong length")
        z = x[self.gcols].copy()
        lam = np.zeros(self.n_local)
        history = IterationHistory() if cfg.record_history else None
        res = None
        iteration = 0
        for iteration in range(1, budget + 1):
            scatter = np.bincount(self.gcols, weights=z - lam / rho, minlength=self.n)
            x = np.clip((scatter - self.c / rho) / self.counts, self.lb, self.ub)
            bx = x[self.gcols]
            z_prev = z
            z = self.local_update(bx + lam / rho)
            lam = lam + rho * (bx - z)
            res = compute_residuals(bx, z, z_prev, lam, rho, cfg.eps_rel)
            if history is not None:
                history.append(res.pres, res.dres, res.eps_prim, res.eps_dual, rho)
            if res.converged:
                break
        converged = bool(res is not None and res.converged)
        if not converged and cfg.raise_on_max_iter:
            raise ConvergenceError(f"conic ADMM: no convergence in {budget} iterations")
        return ADMMResult(
            x=x,
            z=z,
            lam=lam,
            objective=float(self.c @ x),
            iterations=iteration,
            converged=converged,
            pres=res.pres if res else float("inf"),
            dres=res.dres if res else float("inf"),
            history=history,
            timers={},
            algorithm=self.algorithm_name,
        )
