"""Solver-free conic consensus ADMM for the branch-flow SOCP.

The decomposition generalizes model (9): components are either

* **linear** — equality systems ``A_s x_s = b_s`` (bus balance, line
  voltage-drop rows), solved by the same batched affine projections as
  Algorithm 1, or
* **conic** — a single rotated-SOC membership per line, solved by the
  closed-form cone projection of :mod:`repro.socp.cone`,

while all bound constraints remain in the global clip step, exactly as in
the paper.  Every local update is still a closed-form, batchable map —
the paper's "solver-free on GPUs" property carries over to the relaxation
it names as future work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import resolve_backend
from repro.backend.policy import HOST_DTYPE
from repro.core.batch import BatchedLocalSolver
from repro.core.config import ADMMConfig
from repro.core.loop import ADMMLoop, IterationStrategy
from repro.core.results import ADMMResult
from repro.decomposition.rowreduce import reduced_row_echelon
from repro.formulation.rows import Row, rows_to_dense_local
from repro.socp.bfm import ConicProblem
from repro.socp.cone import project_rotated_soc_batch
from repro.utils.exceptions import DecompositionError


@dataclass
class LinearComponent:
    """An equality-only component of the conic decomposition."""

    name: str
    local_keys: list
    global_cols: np.ndarray
    a: np.ndarray
    b: np.ndarray

    @property
    def n_vars(self) -> int:
        return len(self.local_keys)


@dataclass
class ConicDecomposition:
    """Linear components + cone components + stacked consensus structure.

    The stacked local vector is laid out as all linear components followed
    by all cone components (4 entries each: ``le, w, P, Q``).
    """

    problem: ConicProblem
    linear: list[LinearComponent]
    offsets_linear: np.ndarray
    n_linear: int
    cone_cols: np.ndarray  # (n_cones, 4) global columns per cone
    global_cols: np.ndarray  # full stacked map (linear then cones)
    counts: np.ndarray

    @property
    def n_components(self) -> int:
        return len(self.linear) + self.cone_cols.shape[0]

    @property
    def n_local(self) -> int:
        return int(self.global_cols.size)


def _component_keys_for_rows(rows: list[Row]) -> list:
    keys: list = []
    seen: set = set()
    for row in rows:
        for key in row.coeffs:
            if key not in seen:
                seen.add(key)
                keys.append(key)
    return keys


def decompose_conic(problem: ConicProblem, rref_tol: float = 1e-9) -> ConicDecomposition:
    """Group the SOCP's rows by owner and append the cone components."""
    by_owner: dict[tuple, list[Row]] = {}
    for row in problem.rows:
        by_owner.setdefault(row.owner, []).append(row)

    vi = problem.var_index
    linear: list[LinearComponent] = []
    for owner, rows in by_owner.items():
        keys = _component_keys_for_rows(rows)
        if not keys:
            continue
        a_raw, b_raw = rows_to_dense_local(rows, keys)
        a, b, _ = reduced_row_echelon(a_raw, b_raw, tol=rref_tol)
        linear.append(
            LinearComponent(
                name=f"{owner[0]}:{owner[1]}",
                local_keys=keys,
                global_cols=np.array([vi.index(k) for k in keys], dtype=np.int64),
                a=a,
                b=b,
            )
        )

    sizes = np.array([c.n_vars for c in linear], dtype=np.int64)
    offsets_linear = np.concatenate([[0], np.cumsum(sizes)])
    n_linear = int(offsets_linear[-1])

    cone_cols = np.array(
        [
            [
                vi.index(c.u_key),
                vi.index(c.v_key),
                vi.index(c.w_keys[0]),
                vi.index(c.w_keys[1]),
            ]
            for c in problem.cones
        ],
        dtype=np.int64,
    ).reshape(len(problem.cones), 4)

    global_cols = np.concatenate(
        [c.global_cols for c in linear] + [cone_cols.reshape(-1)]
    )
    counts = np.bincount(global_cols, minlength=vi.n).astype(HOST_DTYPE)
    if np.any(counts == 0):
        missing = int(np.argmax(counts == 0))
        raise DecompositionError(
            f"variable {vi.key_of(missing)} has no local copy in the conic model"
        )
    return ConicDecomposition(
        problem=problem,
        linear=linear,
        offsets_linear=offsets_linear,
        n_linear=n_linear,
        cone_cols=cone_cols,
        global_cols=global_cols,
        counts=counts,
    )


class ConicSolverFreeADMM(IterationStrategy):
    """Consensus ADMM over linear + conic components, all closed form.

    Runs on :class:`repro.core.loop.ADMMLoop` like every other variant;
    the cone projections are dtype-preserving, so fp32 backends carry
    through unchanged.
    """

    algorithm_name = "solver-free conic ADMM (branch-flow SOCP)"
    # Plain ADMM only: the conic convergence theory does not cover
    # over-relaxation or rho rescaling.
    use_relaxation = False
    supports_balancing = False

    def __init__(
        self,
        dec: ConicDecomposition,
        config: ADMMConfig | None = None,
        backend=None,
        precision: str | None = None,
    ):
        self.dec = dec
        self.config = config or ADMMConfig()
        if self.config.residual_balancing or self.config.relaxation != 1.0:
            raise ValueError("the conic solver runs plain ADMM only")
        self.backend = resolve_backend(backend, precision)
        b = self.backend
        problem = dec.problem
        self.n = problem.n_vars
        self.n_local = dec.n_local
        self.c = b.asarray(problem.cost)
        self.lb = b.asarray(problem.lb)
        self.ub = b.asarray(problem.ub)
        self.gcols = b.index_array(dec.global_cols)
        self.counts = b.asarray(dec.counts)
        self.linear_solver = BatchedLocalSolver.from_parts(
            dec.linear, dec.offsets_linear, backend=b
        )

    def local_update(self, v) -> np.ndarray:
        """Batched closed-form projections: affine blocks, then cones."""
        dec = self.dec
        b = self.backend
        z = b.empty(self.n_local)
        z[: dec.n_linear] = self.linear_solver.solve(v[: dec.n_linear])
        cone_part = v[dec.n_linear :].reshape(-1, 4)
        u, w, pq = project_rotated_soc_batch(
            cone_part[:, 0], cone_part[:, 1], cone_part[:, 2:]
        )
        out = b.xp.concatenate([u[:, None], w[:, None], pq], axis=1)
        z[dec.n_linear :] = out.reshape(-1)
        return z

    # ------------------------------------------------------------------
    # Engine hooks (repro.core.loop)
    # ------------------------------------------------------------------
    def global_step(self, z, lam, rho):
        b = self.backend
        scatter = b.scatter_add(self.gcols, z - lam / rho, self.n)
        return b.clip((scatter - self.c / rho) / self.counts, self.lb, self.ub)

    def local_step(self, bx_eff, z_prev, lam, rho):
        return self.local_update(bx_eff + lam / rho)

    def span_args(self) -> dict:
        return {"n_vars": self.n, "n_components": self.dec.n_components}

    def solve(self, x0: np.ndarray | None = None, max_iter: int | None = None) -> ADMMResult:
        """Run to the (16) criterion.

        Raises
        ------
        ConvergenceError
            Only if ``config.raise_on_max_iter`` is set and the budget runs
            out.
        """
        cfg = self.config
        b = self.backend
        budget = cfg.max_iter if max_iter is None else max_iter
        x = (
            b.from_numpy(self.dec.problem.initial_point())
            if x0 is None
            else b.asarray(x0, copy=True)
        )
        if x.shape != (self.n,):
            raise ValueError("warm start has wrong length")
        z = x[self.gcols].copy()
        lam = b.zeros(self.n_local)
        # The historical conic loop kept no phase timers or spans.
        loop = ADMMLoop(
            self,
            cfg,
            backend=b,
            record_timers=False,
            phase_spans=False,
            watch_stall=False,
        )
        outcome = loop.run(x, z, lam, budget=budget)
        return loop.result(outcome)
