"""The canonical registry of metric and span names the system emits.

Every *literal* name passed to ``counter``/``gauge``/``histogram`` must
be in :data:`METRIC_NAMES`, and every literal ``span``/``add_complete``/
``add_modeled`` name must be in :data:`SPAN_NAMES`.  The whole-program
lint rule **R102** enforces both directions: an unregistered call site
fails lint (so a typo cannot silently fork a metric series), and a
registered-but-never-emitted name fails lint (so this file describes
exactly what the running system produces — it is the dashboard/alerting
source of truth, not an aspiration).

Names built dynamically (f-strings) are invisible to R102; their
prefixes are listed in :data:`DYNAMIC_METRIC_PREFIXES` for documentation
and their namespace tokens are still vetted per file by rule R004.

Grouped by namespace; keep each group sorted.
"""

from __future__ import annotations

METRIC_NAMES: frozenset[str] = frozenset(
    {
        # breaker / fault / rank / resilience — failure-path accounting
        "breaker.open",
        "fault.injected",
        "rank.failover",
        "resilience.checkpoints",
        "resilience.restores",
        "resilience.stale_rounds",
        # fleet — multi-worker serving plane
        "fleet.accepted",
        "fleet.affinity_miss",
        "fleet.drain.count",
        "fleet.drain.handoff_entries",
        "fleet.heartbeat.missed",
        "fleet.heartbeat.received",
        "fleet.heartbeat.stale",
        "fleet.latency_s",
        "fleet.rejected",
        "fleet.rerouted",
        "fleet.restart.count",
        "fleet.restart.mttr_s",
        "fleet.restart.quarantined",
        "fleet.restart.scheduled",
        "fleet.rewarm.topologies",
        "fleet.rewarm.warm_entries",
        "fleet.spilled",
        "fleet.submitted",
        "fleet.worker_deaths",
        "fleet.workers_alive",
        # lint — the linter's own run accounting
        "lint.baselined",
        "lint.cache_hits",
        "lint.files",
        "lint.findings",
        "lint.suppressed",
        # methods — fidelity-ladder facade
        "methods.tier_violations",
        "methods.validated",
        # serve — single-process serving engine
        "serve.backpressure_retry_after_s",
        "serve.breaker_rejections",
        "serve.converged",
        "serve.degraded",
        "serve.divergent",
        "serve.errors",
        "serve.factorizations_computed",
        "serve.factorizations_reused",
        "serve.iteration_limit",
        "serve.n_batches",
        "serve.queue_depth",
        "serve.rejected",
        "serve.served",
        "serve.submitted",
        "serve.timeouts",
        # solve — ADMM driver
        "solve.retry",
        # stochastic — CVaR / multi-period front door
        "stochastic.multiperiod_requests",
        "stochastic.requests",
        "stochastic.scenarios",
    }
)

SPAN_NAMES: frozenset[str] = frozenset(
    {
        # admm — the distributed solve loop
        "admm.dual",
        "admm.global",
        "admm.local",
        "admm.residual",
        "admm.solve",
        # fleet
        "fleet.drain",
        "fleet.failover",
        "fleet.poll",
        "fleet.restart",
        "fleet.rewarm",
        "fleet.route",
        # gpu — batched kernel phases
        "gpu.dual_update",
        "gpu.global_update",
        "gpu.local_update",
        # lint
        "lint.run",
        # resilience
        "resilience.detect_failure",
        # serve
        "serve.batch",
        "serve.multiperiod",
        "serve.retry",
        "serve.solve",
        "serve.warm_lookup",
        # stochastic
        "stochastic.solve",
    }
)

#: Dynamically built metric families (invisible to R102 by design).
#: Format: prefix -> where/why.
DYNAMIC_METRIC_PREFIXES: dict[str, str] = {
    "fleet.queue_depth.": "per-worker queue-depth gauges (fleet.frontend)",
    "methods.batches_": "per-method batch counters (serve.engine)",
    "phase.": "PhaseTimer per-phase histograms, '<prefix><phase>_s' "
    "(utils.timing; prefix is caller-chosen)",
}
