"""Post-hoc aggregation of captured traces: the ``repro trace-summary``
back end.

Reads either export format (Chrome ``traceEvents`` JSON or JSONL) back
into a uniform event list and aggregates per ``(track, name)`` — count,
total, mean and share of the track's span time — which reproduces the
paper's Fig. 3 per-phase breakdown from a live capture instead of a
bespoke benchmark script.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from repro.telemetry.tracer import _TRACK_PIDS
from repro.utils.tables import format_table

_PID_TRACKS = {pid: track for track, pid in _TRACK_PIDS.items()}


@dataclass(frozen=True)
class TraceEvent:
    """One complete span read back from a trace file (seconds)."""

    name: str
    start_s: float
    dur_s: float
    track: str
    tid: int
    args: dict | None = None


def _from_chrome(doc: dict) -> list[TraceEvent]:
    events = []
    for record in doc.get("traceEvents", []):
        if record.get("ph") != "X":
            continue
        pid = int(record.get("pid", 1))
        events.append(
            TraceEvent(
                name=str(record["name"]),
                start_s=float(record.get("ts", 0.0)) * 1e-6,
                dur_s=float(record.get("dur", 0.0)) * 1e-6,
                track=_PID_TRACKS.get(pid, f"pid{pid}"),
                tid=int(record.get("tid", 0)),
                args=record.get("args") or None,
            )
        )
    return events


def _from_jsonl(lines: list[str]) -> list[TraceEvent]:
    events = []
    for line in lines:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        events.append(
            TraceEvent(
                name=str(record["name"]),
                start_s=float(record["start_s"]),
                dur_s=float(record["dur_s"]),
                track=str(record.get("track", "wall")),
                tid=int(record.get("tid", 0)),
                args=record.get("args") or None,
            )
        )
    return events


def load_trace_events(path) -> list[TraceEvent]:
    """Load a trace captured by :class:`~repro.telemetry.Tracer` from
    either export format (auto-detected from the content).

    Raises
    ------
    ValueError
        If the file is neither a Chrome-trace document nor JSONL.
    """
    with open(path) as fh:
        text = fh.read()
    stripped = text.lstrip()
    if not stripped:
        raise ValueError(f"{path}: empty trace file")
    if stripped.startswith("{"):
        try:
            doc = json.loads(text)
        except json.JSONDecodeError:
            doc = None
        if isinstance(doc, dict) and "traceEvents" in doc:
            return _from_chrome(doc)
        # A one-line JSONL file parses as a plain dict; recognize it by the
        # event fields.  Multi-line JSONL fails the whole-text parse (doc is
        # None) and is parsed line by line.
        if doc is None or (isinstance(doc, dict) and {"name", "start_s", "dur_s"} <= doc.keys()):
            return _from_jsonl(text.splitlines())
        raise ValueError(f"{path}: JSON has no traceEvents — not a Chrome trace")
    raise ValueError(f"{path}: unrecognized trace format")


@dataclass(frozen=True)
class PhaseSummary:
    """Aggregate of all spans sharing one name on one track."""

    track: str
    name: str
    count: int
    total_s: float
    mean_s: float
    share: float  # fraction of the track's total span time


def summarize_phases(events: list[TraceEvent]) -> list[PhaseSummary]:
    """Per-(track, name) aggregates, tracks alphabetical, phases by
    descending total time within each track."""
    totals: dict[tuple[str, str], list] = {}
    track_total: dict[str, float] = {}
    for ev in events:
        acc = totals.setdefault((ev.track, ev.name), [0, 0.0])
        acc[0] += 1
        acc[1] += ev.dur_s
        track_total[ev.track] = track_total.get(ev.track, 0.0) + ev.dur_s
    summaries = [
        PhaseSummary(
            track=track,
            name=name,
            count=count,
            total_s=total,
            mean_s=total / count if count else 0.0,
            share=total / track_total[track] if track_total[track] > 0 else 0.0,
        )
        for (track, name), (count, total) in totals.items()
    ]
    summaries.sort(key=lambda s: (s.track, -s.total_s, s.name))
    return summaries


def run_tags(events: list[TraceEvent]) -> dict[str, str]:
    """Run-level attributes stamped on the captured spans.

    The ADMM loop tags its ``admm.solve`` span with the array-execution
    ``backend`` and ``precision``; a mixed-precision run that fell back to
    fp64 refinement carries both values, comma-joined.  ``repro lint
    --trace`` stamps its ``lint.run`` span with ``lint_findings``, so a
    trace that includes a lint pass reports the lint status in its title.
    """
    tags: dict[str, set[str]] = {}
    for ev in events:
        if not ev.args:
            continue
        for key in ("backend", "precision", "lint_findings"):
            if key in ev.args:
                tags.setdefault(key, set()).add(str(ev.args[key]))
    return {key: ",".join(sorted(vals)) for key, vals in sorted(tags.items())}


def format_trace_summary(events: list[TraceEvent]) -> str:
    """The ``repro trace-summary`` table: one row per (track, phase),
    titled with the run's backend/precision tags when the trace has them."""
    tags = run_tags(events)
    suffix = "".join(f", {k}={v}" for k, v in tags.items())
    rows = [
        [
            s.track,
            s.name,
            s.count,
            f"{s.total_s * 1e3:.3f}",
            f"{s.mean_s * 1e6:.1f}",
            f"{100.0 * s.share:.1f}",
        ]
        for s in summarize_phases(events)
    ]
    return format_table(
        ["track", "phase", "count", "total ms", "mean us", "share %"],
        rows,
        title=f"per-phase trace summary ({len(events)} spans{suffix})",
    )
