"""Counters, gauges and bounded-reservoir histograms.

:class:`MetricsRegistry` is the single metrics surface the rest of the
repo builds on: :class:`~repro.utils.timing.PhaseTimer` adapts it for the
per-phase ADMM timings of Figs. 1 and 3, and
:class:`~repro.serve.metrics.ServingMetrics` sits on it for the serving
engine.  Histograms keep a *bounded* uniform sample (Vitter's Algorithm R
with a fixed seed, so runs are reproducible) while tracking exact count,
sum, min and max — a long-running server records millions of latencies in
constant memory and still exports accurate means and useful percentiles.

Naming convention: lowercase dotted paths, ``<layer>.<quantity>[_<unit>]``
— e.g. ``serve.latency_s``, ``admm.phase.global_s``, ``serve.batch_size``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import numpy as np

from repro.backend.policy import HOST_DTYPE


@dataclass
class Counter:
    """Monotone event counter."""

    name: str
    value: int = 0

    def inc(self, n: int = 1) -> None:
        self.value += n


@dataclass
class Gauge:
    """Last-write-wins instantaneous value."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class ReservoirHistogram:
    """Bounded-memory distribution sketch.

    Keeps exact ``count``/``total``/``min``/``max`` plus a uniform random
    sample of at most ``max_samples`` observations (Algorithm R), from
    which :meth:`percentile` estimates quantiles.  While fewer than
    ``max_samples`` values have been observed the sample is the full data
    and percentiles are exact.
    """

    __slots__ = ("name", "max_samples", "count", "total", "vmin", "vmax", "_sample", "_rng")

    def __init__(self, name: str, max_samples: int = 2048, seed: int = 0):
        if max_samples < 1:
            raise ValueError("max_samples must be at least 1")
        self.name = name
        self.max_samples = int(max_samples)
        self.count = 0
        self.total = 0.0
        self.vmin = float("inf")
        self.vmax = float("-inf")
        self._sample: list[float] = []
        self._rng = random.Random(seed)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        if len(self._sample) < self.max_samples:
            self._sample.append(value)
        else:
            # Algorithm R: the i-th observation replaces a random slot
            # with probability max_samples / i.
            j = self._rng.randrange(self.count)
            if j < self.max_samples:
                self._sample[j] = value

    def add_aggregate(self, total: float, count: int = 1) -> None:
        """Fold in pre-aggregated time (``count`` events summing to
        ``total``), representing them in the sample by their mean.

        Lets :class:`~repro.utils.timing.PhaseTimer` keep its historical
        ``add(phase, seconds, count)`` semantics exactly.
        """
        if count < 1:
            raise ValueError("count must be at least 1")
        mean = float(total) / count
        self.count += count
        self.total += float(total)
        if mean < self.vmin:
            self.vmin = mean
        if mean > self.vmax:
            self.vmax = mean
        if len(self._sample) < self.max_samples:
            self._sample.append(mean)
        else:
            j = self._rng.randrange(self.count)
            if j < self.max_samples:
                self._sample[j] = mean

    # ------------------------------------------------------------------
    @property
    def mean(self) -> float:
        """Exact mean of *all* observations (not just the sample)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated q-th percentile from the retained sample."""
        if not self._sample:
            return 0.0
        return float(np.percentile(np.asarray(self._sample, dtype=HOST_DTYPE), q))

    def values(self) -> np.ndarray:
        """Copy of the retained sample (for tests and plots)."""
        return np.asarray(self._sample, dtype=HOST_DTYPE)

    def __len__(self) -> int:
        return len(self._sample)

    def summary(self) -> dict:
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.vmin if self.count else 0.0,
            "max": self.vmax if self.count else 0.0,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


@dataclass
class MetricsRegistry:
    """Get-or-create home for named metrics.

    One registry per subsystem instance (engine, solver, benchmark run);
    :meth:`snapshot` flattens everything into one dict for tables and JSON
    export.
    """

    counters: dict[str, Counter] = field(default_factory=dict)
    gauges: dict[str, Gauge] = field(default_factory=dict)
    histograms: dict[str, ReservoirHistogram] = field(default_factory=dict)

    def counter(self, name: str) -> Counter:
        c = self.counters.get(name)
        if c is None:
            c = self.counters[name] = Counter(name)
        return c

    def gauge(self, name: str) -> Gauge:
        g = self.gauges.get(name)
        if g is None:
            g = self.gauges[name] = Gauge(name)
        return g

    def histogram(
        self, name: str, max_samples: int = 2048, seed: int = 0
    ) -> ReservoirHistogram:
        h = self.histograms.get(name)
        if h is None:
            h = self.histograms[name] = ReservoirHistogram(
                name, max_samples=max_samples, seed=seed
            )
        return h

    def snapshot(self) -> dict:
        """Flat ``{metric_name: value}`` dict; histograms expand into
        ``name_count`` / ``name_mean`` / ``name_p50`` / ... entries."""
        snap: dict = {}
        for name, c in sorted(self.counters.items()):
            snap[name] = c.value
        for name, g in sorted(self.gauges.items()):
            snap[name] = g.value
        for name, h in sorted(self.histograms.items()):
            for key, value in h.summary().items():
                snap[f"{name}_{key}"] = value
        return snap

    def reset(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
