"""Hierarchical span tracer with Chrome-trace/Perfetto and JSONL export.

One :class:`Tracer` collects *span events* — named intervals with a start
and a duration — from every layer of a run: wall-clock spans from the
serving engine and the ADMM loops, and *modeled-time* spans from the GPU
kernel simulator and the simulated MPI cluster, each on its own track so
Perfetto renders them as separate processes.

Design constraints (this sits inside the per-iteration hot loop):

* **near-zero cost when disabled** — a disabled tracer is falsy, so hot
  loops guard with ``if tracer:`` and pay one truthiness check;
* **cheap when enabled** — the hot-loop entry point
  :meth:`Tracer.add_complete` takes timestamps the caller already has
  (the solver stamps ``perf_counter`` for its phase timers anyway) and
  appends one tuple under a lock;
* **bounded** — at most ``max_events`` events are kept; later events are
  counted in :attr:`Tracer.dropped` instead of growing memory.

Export formats:

* :meth:`Tracer.to_chrome_trace` / :meth:`Tracer.save_chrome_trace` — the
  Chrome ``traceEvents`` JSON that chrome://tracing and
  https://ui.perfetto.dev open directly;
* :meth:`Tracer.save_jsonl` — one event object per line, for streaming
  ingestion and ``repro trace-summary``.
"""

from __future__ import annotations

import json
import threading
import time
from dataclasses import dataclass, field

#: Track (rendered as a Perfetto "process") for wall-clock spans.
TRACK_WALL = "wall"
#: Track for modeled GPU kernel time (the cost model / kernel simulator).
TRACK_GPU = "gpu-modeled"
#: Track for the simulated MPI cluster's virtual clocks (one tid per rank).
TRACK_CLUSTER = "cluster-sim"

_TRACK_PIDS = {TRACK_WALL: 1, TRACK_GPU: 2, TRACK_CLUSTER: 3}


@dataclass(frozen=True)
class SpanEvent:
    """One completed span on some track.

    Timestamps are seconds relative to the tracer's origin (wall spans) or
    to the virtual clock's zero (modeled spans).
    """

    name: str
    start_s: float
    dur_s: float
    track: str = TRACK_WALL
    tid: int = 0
    cat: str = "wall"
    args: dict | None = None

    @property
    def end_s(self) -> float:
        return self.start_s + self.dur_s


class _SpanContext:
    """Context manager recording one wall-clock span (re-entrant per use)."""

    __slots__ = ("_tracer", "name", "cat", "args", "_start", "_parent")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict | None):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self._start = 0.0
        self._parent = None

    def __enter__(self) -> "_SpanContext":
        tracer = self._tracer
        self._parent = tracer._stack_top()
        tracer._stack_push(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        end = time.perf_counter()
        tracer = self._tracer
        tracer._stack_pop()
        args = self.args
        if self._parent is not None:
            args = dict(args) if args else {}
            args["parent"] = self._parent
        tracer._record(
            (
                self.name,
                self._start - tracer._t0,
                end - self._start,
                TRACK_WALL,
                threading.get_ident() % 100_000,
                self.cat,
                args,
            )
        )


class _NullSpan:
    """Shared no-op context manager returned by a disabled tracer."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass


_NULL_SPAN = _NullSpan()


@dataclass
class Tracer:
    """Span collector; one per traced run.

    Parameters
    ----------
    enabled:
        When ``False`` every recording call is a no-op and the tracer is
        falsy, so ``if tracer:`` guards cost one branch.
    max_events:
        Hard cap on retained events; the excess is counted in
        :attr:`dropped`.
    """

    enabled: bool = True
    max_events: int = 200_000
    dropped: int = 0
    # Events are stored as plain tuples (name, start_s, dur_s, track, tid,
    # cat, args) — the hot loops record thousands per solve, and tuple
    # packing is several times cheaper than dataclass construction.
    _events: list[tuple] = field(default_factory=list, repr=False)
    _lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    _local: threading.local = field(default_factory=threading.local, repr=False)
    _t0: float = field(default_factory=time.perf_counter, repr=False)

    def __bool__(self) -> bool:
        return self.enabled

    # ------------------------------------------------------------------
    # Per-thread span stack (for parent attribution of nested spans)
    # ------------------------------------------------------------------
    def _stack(self) -> list[str]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _stack_top(self) -> str | None:
        stack = self._stack()
        return stack[-1] if stack else None

    def _stack_push(self, name: str) -> None:
        self._stack().append(name)

    def _stack_pop(self) -> None:
        stack = self._stack()
        if stack:
            stack.pop()

    def current_span(self) -> str | None:
        """Name of the innermost open span on this thread, if any."""
        return self._stack_top() if self.enabled else None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def _record(self, event: tuple) -> None:
        # list.append is atomic under the GIL, so the hot path is lock-free;
        # concurrent recorders can overshoot max_events by at most one event
        # per thread, which is fine for a drop bound.
        events = self._events
        if len(events) < self.max_events:
            events.append(event)
        else:
            with self._lock:
                self.dropped += 1

    def span(self, name: str, cat: str = "wall", **args):
        """Context manager measuring a wall-clock span named ``name``.

        Nested uses record their parent span's name in ``args["parent"]``.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _SpanContext(self, name, cat, args or None)

    def add_complete(
        self,
        name: str,
        start: float,
        end: float,
        cat: str = "wall",
        args: dict | None = None,
    ) -> None:
        """Record a wall span from ``perf_counter`` stamps the caller took.

        This is the hot-loop entry point: the ADMM loops already stamp
        ``time.perf_counter()`` around each phase for their phase timers,
        so tracing a phase costs one call and one tuple append.
        """
        if not self.enabled:
            return
        self._record(
            (
                name,
                start - self._t0,
                end - start,
                TRACK_WALL,
                threading.get_ident() % 100_000,
                cat,
                args,
            )
        )

    def add_modeled(
        self,
        name: str,
        start_s: float,
        dur_s: float,
        track: str = TRACK_GPU,
        tid: int = 0,
        cat: str = "modeled",
        args: dict | None = None,
    ) -> None:
        """Record a span on a virtual-clock track (modeled GPU time, the
        simulated cluster's per-rank clocks, ...).

        ``start_s`` is relative to that clock's zero, not to wall time.
        """
        if not self.enabled:
            return
        self._record((name, start_s, dur_s, track, tid, cat, args))

    # ------------------------------------------------------------------
    # Introspection & export
    # ------------------------------------------------------------------
    def events(self) -> list[SpanEvent]:
        with self._lock:
            raw = list(self._events)
        return [
            SpanEvent(
                name=name,
                start_s=start_s,
                dur_s=dur_s,
                track=track,
                tid=tid,
                cat=cat,
                args=args,
            )
            for name, start_s, dur_s, track, tid, cat, args in raw
        ]

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()
            self.dropped = 0

    @staticmethod
    def _track_pid(track: str) -> int:
        return _TRACK_PIDS.get(track, 1 + len(_TRACK_PIDS))

    def to_chrome_trace(self) -> dict:
        """The Chrome ``traceEvents`` document (Perfetto-compatible).

        Every span becomes a complete ("X") event with microsecond
        timestamps; each track is labelled as a process via metadata
        events so Perfetto shows "wall", "gpu-modeled" and "cluster-sim"
        lanes.
        """
        events = self.events()
        trace_events: list[dict] = []
        seen_tracks: dict[str, set[int]] = {}
        for ev in events:
            pid = self._track_pid(ev.track)
            record = {
                "name": ev.name,
                "ph": "X",
                "ts": round(ev.start_s * 1e6, 3),
                "dur": round(ev.dur_s * 1e6, 3),
                "pid": pid,
                "tid": ev.tid,
                "cat": ev.cat,
            }
            if ev.args:
                record["args"] = ev.args
            trace_events.append(record)
            seen_tracks.setdefault(ev.track, set()).add(ev.tid)
        meta: list[dict] = []
        for track, tids in sorted(seen_tracks.items()):
            pid = self._track_pid(track)
            meta.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": 0,
                    "args": {"name": track},
                }
            )
            if track == TRACK_CLUSTER:
                for tid in sorted(tids):
                    meta.append(
                        {
                            "name": "thread_name",
                            "ph": "M",
                            "pid": pid,
                            "tid": tid,
                            "args": {"name": f"rank {tid}"},
                        }
                    )
        return {
            "traceEvents": meta + trace_events,
            "displayTimeUnit": "ms",
            "otherData": {"dropped_events": self.dropped},
        }

    def save_chrome_trace(self, path) -> None:
        with open(path, "w") as fh:
            json.dump(self.to_chrome_trace(), fh)

    def save_jsonl(self, path) -> None:
        """One JSON object per line: the streaming-friendly sink."""
        with open(path, "w") as fh:
            for ev in self.events():
                record = {
                    "name": ev.name,
                    "start_s": ev.start_s,
                    "dur_s": ev.dur_s,
                    "track": ev.track,
                    "tid": ev.tid,
                    "cat": ev.cat,
                }
                if ev.args:
                    record["args"] = ev.args
                fh.write(json.dumps(record) + "\n")

    def save(self, path) -> None:
        """Save as JSONL when ``path`` ends in ``.jsonl``, else Chrome JSON."""
        if str(path).endswith(".jsonl"):
            self.save_jsonl(path)
        else:
            self.save_chrome_trace(path)


#: Shared disabled tracer: the default for every instrumented component, so
#: un-traced runs pay only ``if tracer:`` checks.
NULL_TRACER = Tracer(enabled=False)
