"""Unified tracing, metrics and profiling for every layer of the repo.

Three pieces (see docs/OBSERVABILITY.md):

* :class:`Tracer` — hierarchical wall-clock spans plus modeled-time tracks
  (GPU cost model, simulated cluster), exported as Chrome-trace/Perfetto
  JSON or JSONL; :data:`NULL_TRACER` is the shared disabled instance every
  instrumented component defaults to.
* :class:`MetricsRegistry` — counters, gauges and bounded
  :class:`ReservoirHistogram` sketches; the base of
  :class:`~repro.utils.timing.PhaseTimer` and
  :class:`~repro.serve.metrics.ServingMetrics`.
* :func:`load_trace_events` / :func:`format_trace_summary` — read a
  captured trace back and print the per-phase breakdown
  (``repro trace-summary``).
"""

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    ReservoirHistogram,
)
from repro.telemetry.summary import (
    PhaseSummary,
    TraceEvent,
    format_trace_summary,
    run_tags,
    load_trace_events,
    summarize_phases,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    TRACK_CLUSTER,
    TRACK_GPU,
    TRACK_WALL,
    SpanEvent,
    Tracer,
)

__all__ = [
    "Tracer",
    "SpanEvent",
    "NULL_TRACER",
    "TRACK_WALL",
    "TRACK_GPU",
    "TRACK_CLUSTER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "ReservoirHistogram",
    "TraceEvent",
    "PhaseSummary",
    "load_trace_events",
    "summarize_phases",
    "run_tags",
    "format_trace_summary",
]
