"""Timing instrumentation.

The paper's evaluation (Figs. 1 and 3) reports the per-iteration wall time
split into *global*, *local* and *dual* update segments.  :class:`PhaseTimer`
accumulates named segments across many iterations and exposes per-segment
totals, means and call counts.

Since the telemetry subsystem landed, :class:`PhaseTimer` is a thin adapter
over :class:`repro.telemetry.MetricsRegistry` — every phase is a bounded
reservoir histogram named ``<prefix><phase>_s`` — and can optionally mirror
each measured phase as a tracer span.  The public API (``totals``,
``counts``, ``measure``, ``add``, ...) is unchanged, so the solvers,
benchmark harness and Fig. 1/3 scripts work as before.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.telemetry.metrics import MetricsRegistry


@dataclass
class Timer:
    """Simple wall-clock timer usable as a context manager.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None


class PhaseTimer:
    """Accumulates wall time under named phases (e.g. ``"global"``,
    ``"local"``, ``"dual"``), backed by the telemetry metrics registry.

    Use :meth:`measure` as a context manager around each phase of an
    iteration; totals accumulate across iterations.

    Parameters
    ----------
    registry:
        Shared :class:`~repro.telemetry.MetricsRegistry` to record into;
        a private one is created when omitted.
    prefix:
        Metric-name prefix, e.g. ``"serve.phase."`` — phase ``"build"``
        becomes histogram ``serve.phase.build_s``.
    tracer:
        When given (and enabled), :meth:`measure` additionally emits a
        tracer span named ``<prefix><phase>``.
    """

    def __init__(self, registry: MetricsRegistry | None = None, prefix: str = "", tracer=None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.prefix = prefix
        self.tracer = tracer
        self._phases: list[str] = []

    def _histogram(self, phase: str):
        hist = self.registry.histograms.get(f"{self.prefix}{phase}_s")
        if hist is None:
            hist = self.registry.histogram(f"{self.prefix}{phase}_s")
            self._phases.append(phase)
        return hist

    @contextmanager
    def measure(self, phase: str):
        tracer = self.tracer
        start = time.perf_counter()
        try:
            yield
        finally:
            end = time.perf_counter()
            self._histogram(phase).observe(end - start)
            if tracer:
                tracer.add_complete(f"{self.prefix}{phase}", start, end)

    def add(self, phase: str, seconds: float, count: int = 1) -> None:
        """Record ``seconds`` of (possibly simulated) time under ``phase``."""
        self._histogram(phase).add_aggregate(seconds, count)

    # ------------------------------------------------------------------
    # Historical read API (dict views over the registry histograms)
    # ------------------------------------------------------------------
    @property
    def totals(self) -> dict[str, float]:
        return {p: self._histogram(p).total for p in list(self._phases)}

    @property
    def counts(self) -> dict[str, int]:
        return {p: self._histogram(p).count for p in list(self._phases)}

    def total(self, phase: str) -> float:
        hist = self.registry.histograms.get(f"{self.prefix}{phase}_s")
        return hist.total if hist is not None else 0.0

    def mean(self, phase: str) -> float:
        hist = self.registry.histograms.get(f"{self.prefix}{phase}_s")
        return hist.mean if hist is not None else 0.0

    def grand_total(self) -> float:
        return sum(self.totals.values())

    def reset(self) -> None:
        for phase in self._phases:
            del self.registry.histograms[f"{self.prefix}{phase}_s"]
        self._phases.clear()

    def as_dict(self) -> dict[str, float]:
        return self.totals
