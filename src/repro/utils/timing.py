"""Timing instrumentation.

The paper's evaluation (Figs. 1 and 3) reports the per-iteration wall time
split into *global*, *local* and *dual* update segments.  :class:`PhaseTimer`
accumulates named segments across many iterations and exposes per-segment
totals, means and call counts.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Simple wall-clock timer usable as a context manager.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float | None = None

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        assert self._start is not None
        self.elapsed += time.perf_counter() - self._start
        self._start = None

    def reset(self) -> None:
        self.elapsed = 0.0
        self._start = None


@dataclass
class PhaseTimer:
    """Accumulates wall time under named phases (e.g. ``"global"``,
    ``"local"``, ``"dual"``).

    Use :meth:`measure` as a context manager around each phase of an
    iteration; totals accumulate across iterations.
    """

    totals: dict[str, float] = field(default_factory=dict)
    counts: dict[str, int] = field(default_factory=dict)

    @contextmanager
    def measure(self, phase: str):
        start = time.perf_counter()
        try:
            yield
        finally:
            dt = time.perf_counter() - start
            self.totals[phase] = self.totals.get(phase, 0.0) + dt
            self.counts[phase] = self.counts.get(phase, 0) + 1

    def add(self, phase: str, seconds: float, count: int = 1) -> None:
        """Record ``seconds`` of (possibly simulated) time under ``phase``."""
        self.totals[phase] = self.totals.get(phase, 0.0) + seconds
        self.counts[phase] = self.counts.get(phase, 0) + count

    def total(self, phase: str) -> float:
        return self.totals.get(phase, 0.0)

    def mean(self, phase: str) -> float:
        n = self.counts.get(phase, 0)
        return self.totals.get(phase, 0.0) / n if n else 0.0

    def grand_total(self) -> float:
        return sum(self.totals.values())

    def reset(self) -> None:
        self.totals.clear()
        self.counts.clear()

    def as_dict(self) -> dict[str, float]:
        return dict(self.totals)
