"""Shared utilities: exceptions, timing instrumentation, table formatting."""

from repro.utils.exceptions import (
    ConvergenceError,
    DecompositionError,
    DivergenceError,
    FormulationError,
    InfeasibleError,
    NetworkValidationError,
    QPSolverError,
    ReproError,
)
from repro.utils.tables import format_table
from repro.utils.timing import PhaseTimer, Timer

__all__ = [
    "ReproError",
    "NetworkValidationError",
    "FormulationError",
    "DecompositionError",
    "ConvergenceError",
    "DivergenceError",
    "InfeasibleError",
    "QPSolverError",
    "Timer",
    "PhaseTimer",
    "format_table",
]
