"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NetworkValidationError(ReproError):
    """A network model is structurally invalid (dangling references,
    inconsistent phases, non-radial topology where radiality is required)."""


class FormulationError(ReproError):
    """The OPF formulation could not be assembled from the network."""


class DecompositionError(ReproError):
    """Component-wise decomposition failed (e.g. inconsistent local system)."""


class InfeasibleError(ReproError):
    """A (sub)problem was detected to be infeasible."""


class ConvergenceError(ReproError):
    """An iterative method failed to converge within its iteration budget."""


class QPSolverError(ReproError):
    """The dense active-set QP solver failed."""
