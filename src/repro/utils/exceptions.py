"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class NetworkValidationError(ReproError):
    """A network model is structurally invalid (dangling references,
    inconsistent phases, non-radial topology where radiality is required)."""


class FormulationError(ReproError):
    """The OPF formulation could not be assembled from the network."""


class DecompositionError(ReproError):
    """Component-wise decomposition failed (e.g. inconsistent local system)."""


class InfeasibleError(ReproError):
    """A (sub)problem was detected to be infeasible."""


class ConvergenceError(ReproError):
    """An iterative method failed to converge within its iteration budget."""


class DivergenceError(ReproError):
    """An iterate sequence produced non-finite values (NaN/inf).

    Raised by the divergence guards instead of silently iterating to the
    budget.  Carries the offending iteration, the last residuals, and the
    best (last all-finite) iterates so callers can recover or degrade.

    Attributes
    ----------
    iteration:
        First iteration at which a non-finite value was detected.
    pres, dres:
        Residuals at the offending iteration (may themselves be NaN).
    result:
        Optional best-so-far :class:`~repro.core.results.ADMMResult` built
        from the last iteration whose state was entirely finite
        (``converged=False``); ``None`` when divergence hit on the very
        first iteration.
    """

    def __init__(self, message: str, iteration: int = 0,
                 pres: float = float("nan"), dres: float = float("nan"),
                 result=None):
        super().__init__(message)
        self.iteration = int(iteration)
        self.pres = float(pres)
        self.dres = float(dres)
        self.result = result


class QPSolverError(ReproError):
    """The dense active-set QP solver failed."""
