"""Plain-text table rendering used by the benchmark harness to print the
paper's tables (Tables II-V) in a readable aligned format."""

from __future__ import annotations

from collections.abc import Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row cell values; converted with a compact numeric formatter.
    title:
        Optional table title printed above the header rule.
    """
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for j, cell in enumerate(row):
            widths[j] = max(widths[j], len(cell))
    sep = "-+-".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(sep)
    for row in cells:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)
