"""Multi-period distributed OPF with energy storage.

The component-wise baseline the paper compares against ([15]) solves a
*multi-period* three-phase OPF; this module builds that setting on top of
the same row machinery: the network model is time-expanded over ``T``
periods (every variable key and row owner gains an ``@t<k>`` suffix), loads
follow a per-period profile, generator energy prices vary per period, and
energy-storage systems couple the periods through state-of-charge dynamics

    soc_t = soc_{t-1} + dt * eta_ch * sum_phi charge_t
                      - dt / eta_dis * sum_phi discharge_t,

with an optional cyclic terminal condition ``soc_T = soc_0``.  Each storage
is one *component* owning its SOC chain — a textbook case for the paper's
component-wise decomposition, since the chain spans periods while every
other component is period-local.

The time-expanded problem is still an LP in the abstract form (7), so the
solver-free consensus machinery applies unchanged: support-grouped equality
components with batched affine projections (see
:func:`repro.multiperiod.solve.decompose_multiperiod`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.policy import HOST_DTYPE
from repro.formulation.centralized import CentralizedLP, build_rows
from repro.formulation.rows import Row, rows_to_matrix
from repro.formulation.variables import VariableIndex
from repro.network.network import DistributionNetwork
from repro.utils.exceptions import FormulationError


@dataclass(frozen=True)
class Storage:
    """An energy-storage system attached to a bus.

    Attributes
    ----------
    p_ch_max, p_dis_max:
        Total (across phases) charge/discharge power limits (pu).
    energy_max:
        Usable energy capacity (pu-hours).
    eta_ch, eta_dis:
        Charge/discharge efficiencies in (0, 1].
    soc0:
        Initial state of charge (pu-hours).
    cyclic:
        Require ``soc_T = soc_0`` (no free end-of-horizon depletion).
    """

    name: str
    bus: str
    p_ch_max: float = 0.1
    p_dis_max: float = 0.1
    energy_max: float = 0.4
    eta_ch: float = 0.95
    eta_dis: float = 0.95
    soc0: float = 0.2
    cyclic: bool = True

    def __post_init__(self) -> None:
        if self.p_ch_max < 0 or self.p_dis_max < 0 or self.energy_max <= 0:
            raise ValueError(f"storage {self.name}: nonpositive ratings")
        if not (0 < self.eta_ch <= 1 and 0 < self.eta_dis <= 1):
            raise ValueError(f"storage {self.name}: efficiencies must be in (0, 1]")
        if not 0 <= self.soc0 <= self.energy_max:
            raise ValueError(f"storage {self.name}: soc0 outside capacity")


def _suffix(name: str, t: int) -> str:
    return f"{name}@t{t}"


@dataclass
class MultiPeriodProblem:
    """The assembled time-expanded LP plus its structure.

    Duck-types the attributes the generic consensus machinery needs
    (``rows``, ``var_index``, ``cost``, ``lb``, ``ub``) and can lower itself
    to a :class:`CentralizedLP` for the HiGHS reference.
    """

    network: DistributionNetwork
    n_periods: int
    dt_hours: float
    storages: list[Storage]
    var_index: VariableIndex
    rows: list[Row]
    cost: np.ndarray
    lb: np.ndarray
    ub: np.ndarray

    @property
    def n_vars(self) -> int:
        return self.var_index.n

    def initial_point(self) -> np.ndarray:
        return self.var_index.initial_point()

    def to_centralized(self) -> CentralizedLP:
        """Lower to the plain LP container (for the HiGHS reference)."""
        a, b = rows_to_matrix(self.rows, self.var_index)
        return CentralizedLP(
            network=self.network,
            var_index=self.var_index,
            rows=self.rows,
            a_matrix=a,
            b_vector=b,
            cost=self.cost,
            lb=self.lb,
            ub=self.ub,
        )

    # Convenience extraction -------------------------------------------------
    def soc_trajectory(self, x: np.ndarray, storage: str) -> np.ndarray:
        """State of charge per period (including the initial value)."""
        st = next(s for s in self.storages if s.name == storage)
        vi = self.var_index
        soc = [st.soc0]
        for t in range(self.n_periods):
            soc.append(float(x[vi.index(("se", _suffix(storage, t), 1))]))
        return np.asarray(soc)

    def storage_power(self, x: np.ndarray, storage: str) -> np.ndarray:
        """Net injection (discharge - charge, summed over phases) per period."""
        vi = self.var_index
        st = next(s for s in self.storages if s.name == storage)
        phases = self.network.buses[st.bus].phases
        out = np.zeros(self.n_periods)
        for t in range(self.n_periods):
            nm = _suffix(storage, t)
            for phi in phases:
                out[t] += float(x[vi.index(("sd", nm, phi))])
                out[t] -= float(x[vi.index(("sc", nm, phi))])
        return out

    def substation_power(self, x: np.ndarray) -> np.ndarray:
        """Total substation generation per period."""
        net = self.network
        vi = self.var_index
        out = np.zeros(self.n_periods)
        for t in range(self.n_periods):
            for gen in net.generators_at(net.substation):
                nm = _suffix(gen.name, t)
                for phi in gen.phases:
                    out[t] += float(x[vi.index(("pg", nm, phi))])
        return out


def build_multiperiod_lp(
    net: DistributionNetwork,
    load_profile,
    price_profile=None,
    storages: list[Storage] | None = None,
    dt_hours: float = 1.0,
) -> MultiPeriodProblem:
    """Time-expand ``net`` over the profile and add storage coupling.

    Parameters
    ----------
    load_profile:
        Sequence of per-period load multipliers (length = number of
        periods); every load's reference power is scaled by it.
    price_profile:
        Optional per-period multiplier on every generator's cost (energy
        price shape); defaults to flat 1.0.
    storages:
        Storage systems to attach.
    dt_hours:
        Period length (enters the SOC dynamics).

    Raises
    ------
    FormulationError
        On empty profiles, mismatched lengths, or storages at unknown buses.
    """
    load_profile = np.asarray(load_profile, dtype=HOST_DTYPE)
    if load_profile.ndim != 1 or load_profile.size == 0:
        raise FormulationError("load_profile must be a non-empty 1-D sequence")
    n_periods = int(load_profile.size)
    if price_profile is None:
        price_profile = np.ones(n_periods)
    price_profile = np.asarray(price_profile, dtype=HOST_DTYPE)
    if price_profile.shape != (n_periods,):
        raise FormulationError("price_profile must match load_profile length")
    storages = list(storages or [])
    for st in storages:
        if st.bus not in net.buses:
            raise FormulationError(f"storage {st.name}: unknown bus {st.bus!r}")
    net.validate()

    vi = VariableIndex()
    rows: list[Row] = []

    for t in range(n_periods):
        # Scaled clone of the physical network for period t.
        period_net = net.copy()
        for load in period_net.loads.values():
            load.p_ref = load.p_ref * load_profile[t]
            load.q_ref = load.q_ref * load_profile[t]

        # Period-local variables in the paper's ordering.
        for gen in period_net.generators.values():
            nm = _suffix(gen.name, t)
            for a, phi in enumerate(gen.phases):
                vi.add(("pg", nm, phi), gen.p_min[a], gen.p_max[a],
                       cost=gen.cost * price_profile[t] * dt_hours)
                vi.add(("qg", nm, phi), gen.q_min[a], gen.q_max[a])
        for bus in period_net.buses.values():
            nm = _suffix(bus.name, t)
            for a, phi in enumerate(bus.phases):
                vi.add(("w", nm, phi), bus.w_min[a], bus.w_max[a], is_voltage=True)
        for load in period_net.loads.values():
            nm = _suffix(load.name, t)
            for phi in load.bus_phases:
                vi.add(("pb", nm, phi))
                vi.add(("qb", nm, phi))
            for phi in load.phases:
                vi.add(("pd", nm, phi))
                vi.add(("qd", nm, phi))
        for line in period_net.lines.values():
            nm = _suffix(line.name, t)
            for a, phi in enumerate(line.phases):
                vi.add(("pf", nm, phi), line.p_min[a], line.p_max[a])
                vi.add(("qf", nm, phi), line.q_min[a], line.q_max[a])
                vi.add(("pt", nm, phi), line.p_min[a], line.p_max[a])
                vi.add(("qt", nm, phi), line.q_min[a], line.q_max[a])
        # Storage period variables.
        for st in storages:
            nm = _suffix(st.name, t)
            phases = net.buses[st.bus].phases
            nph = len(phases)
            for phi in phases:
                vi.add(("sc", nm, phi), 0.0, st.p_ch_max / nph)
                vi.add(("sd", nm, phi), 0.0, st.p_dis_max / nph)
            vi.add(("se", nm, 1), 0.0, st.energy_max, init=st.soc0)

        # Period rows: rename keys/owners with the @t suffix.
        for row in build_rows(period_net):
            coeffs = {(k[0], _suffix(k[1], t), k[2]): c for k, c in row.coeffs.items()}
            kind, owner_name = row.owner
            rows.append(
                Row(coeffs, row.rhs, (kind, _suffix(owner_name, t)),
                    tag=f"{row.tag}@t{t}")
            )
        # Inject storage power into this period's balance rows.
        for st in storages:
            nm = _suffix(st.name, t)
            bus_nm = _suffix(st.bus, t)
            for row in rows:
                if row.owner != ("bus", bus_nm):
                    continue
                for phi in net.buses[st.bus].phases:
                    if row.tag == f"balance-p:{st.bus}:{phi}@t{t}":
                        # Charging draws like a load, discharging injects.
                        row.coeffs[("sc", nm, phi)] = 1.0
                        row.coeffs[("sd", nm, phi)] = -1.0

    # Storage SOC chains: one component per storage, spanning all periods.
    for st in storages:
        phases = net.buses[st.bus].phases
        owner = ("storage", st.name)
        for t in range(n_periods):
            nm = _suffix(st.name, t)
            coeffs: dict = {("se", nm, 1): 1.0}
            for phi in phases:
                coeffs[("sc", nm, phi)] = -st.eta_ch * dt_hours
                coeffs[("sd", nm, phi)] = dt_hours / st.eta_dis
            rhs = 0.0
            if t == 0:
                rhs = st.soc0
            else:
                coeffs[("se", _suffix(st.name, t - 1), 1)] = -1.0
            rows.append(Row(coeffs, rhs, owner, tag=f"soc:{st.name}:t{t}"))
        if st.cyclic:
            rows.append(
                Row(
                    {("se", _suffix(st.name, n_periods - 1), 1): 1.0},
                    st.soc0,
                    owner,
                    tag=f"soc-cyclic:{st.name}",
                )
            )

    return MultiPeriodProblem(
        network=net,
        n_periods=n_periods,
        dt_hours=dt_hours,
        storages=storages,
        var_index=vi,
        rows=rows,
        cost=vi.costs(),
        lb=vi.lower_bounds(),
        ub=vi.upper_bounds(),
    )
