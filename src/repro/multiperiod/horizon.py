"""Rolling-horizon DER scheduling over the multi-period problem.

Model-predictive scheduling in the standard receding-horizon pattern: at
step ``t`` solve the time-expanded problem over the lookahead window
``[t, t+W)``, commit only the first period's dispatch, advance each
storage's state of charge by the committed charge/discharge, and repeat
with the window shifted by one.  Windows use non-cyclic storage chains
(the terminal condition would otherwise forbid using energy near the end
of every window) anchored at the carried-over ``soc0``.

Each window solve goes through either the consensus ADMM
(:class:`~repro.multiperiod.solve.MultiPeriodSolverFreeADMM`) or the
exact HiGHS reference; the committed trajectory satisfies the SoC
dynamics by construction of the committed charge/discharge powers, and —
under the reference solver — matches the solved ``se`` variables to
solver feasibility tolerance (see tests/test_multiperiod.py).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.backend.policy import HOST_DTYPE
from repro.core.config import ADMMConfig
from repro.multiperiod.model import Storage, _suffix, build_multiperiod_lp
from repro.multiperiod.solve import MultiPeriodSolverFreeADMM, decompose_multiperiod
from repro.reference import solve_reference
from repro.utils.exceptions import FormulationError


@dataclass
class HorizonStep:
    """One committed period of the rolling schedule."""

    period: int
    objective_window: float
    iterations: int
    converged: bool
    substation_p: float
    storage_p: dict[str, float]  # net injection (discharge - charge)
    storage_charge: dict[str, float]
    storage_discharge: dict[str, float]
    soc_after: dict[str, float]


@dataclass
class HorizonResult:
    """The committed rolling-horizon schedule."""

    steps: list[HorizonStep]
    storages: list[Storage]
    dt_hours: float
    committed_cost: float

    def soc_trajectory(self, storage: str) -> np.ndarray:
        """Committed SoC per period, initial value included."""
        st = next(s for s in self.storages if s.name == storage)
        return np.array(
            [st.soc0] + [step.soc_after[storage] for step in self.steps],
            dtype=HOST_DTYPE,
        )


def rolling_horizon(
    net,
    load_profile,
    price_profile=None,
    storages: list[Storage] | None = None,
    window: int = 4,
    dt_hours: float = 1.0,
    solver: str = "admm",
    config: ADMMConfig | None = None,
    backend=None,
    precision: str | None = None,
) -> HorizonResult:
    """Run the receding-horizon schedule over the whole profile.

    Parameters
    ----------
    window:
        Lookahead length W; each solve sees ``min(W, periods left)``
        periods and commits one.
    solver:
        ``"admm"`` for the consensus solver, ``"reference"`` for exact
        HiGHS window solves.

    Raises
    ------
    FormulationError
        On an empty profile or a non-positive window.
    """
    load_profile = np.asarray(load_profile, dtype=HOST_DTYPE)
    n_periods = int(load_profile.size)
    if n_periods == 0:
        raise FormulationError("load_profile must be non-empty")
    if window < 1:
        raise FormulationError("window must be at least 1")
    if solver not in ("admm", "reference"):
        raise FormulationError(f"unknown solver {solver!r}")
    if price_profile is None:
        price_profile = np.ones(n_periods, dtype=HOST_DTYPE)
    price_profile = np.asarray(price_profile, dtype=HOST_DTYPE)
    storages = list(storages or [])

    # Window storages lose the cyclic terminal condition and carry the
    # committed SoC forward step by step.
    soc = {st.name: float(st.soc0) for st in storages}
    steps: list[HorizonStep] = []
    committed_cost = 0.0
    for t in range(n_periods):
        w = min(window, n_periods - t)
        # The committed SoC can sit a solver-feasibility-tolerance outside
        # the capacity box; clamp so the next window's soc0 validates.
        window_storages = [
            replace(
                st,
                soc0=min(max(soc[st.name], 0.0), st.energy_max),
                cyclic=False,
            )
            for st in storages
        ]
        prob = build_multiperiod_lp(
            net,
            load_profile[t : t + w],
            price_profile[t : t + w],
            window_storages,
            dt_hours=dt_hours,
        )
        if solver == "reference":
            ref = solve_reference(prob.to_centralized())
            x, objective, iterations, converged = ref.x, float(ref.objective), 0, True
        else:
            admm = MultiPeriodSolverFreeADMM(
                decompose_multiperiod(prob),
                config if config is not None else ADMMConfig(),
                backend=backend,
                precision=precision,
            )
            result = admm.solve()
            x, objective = result.x, float(result.objective)
            iterations, converged = result.iterations, result.converged

        # Commit period 0 of the window and advance the SoC dynamics.
        vi = prob.var_index
        storage_p, charge, discharge, soc_after = {}, {}, {}, {}
        for st in window_storages:
            phases = net.buses[st.bus].phases
            nm = _suffix(st.name, 0)
            ch = sum(float(x[vi.index(("sc", nm, phi))]) for phi in phases)
            dis = sum(float(x[vi.index(("sd", nm, phi))]) for phi in phases)
            charge[st.name] = ch
            discharge[st.name] = dis
            storage_p[st.name] = dis - ch
            soc[st.name] = (
                soc[st.name]
                + dt_hours * st.eta_ch * ch
                - dt_hours * dis / st.eta_dis
            )
            soc_after[st.name] = soc[st.name]
        sub_p = float(prob.substation_power(x)[0])
        step_cost = 0.0
        for gen in net.generators_at(net.substation):
            nm = _suffix(gen.name, 0)
            for phi in gen.phases:
                step_cost += (
                    gen.cost
                    * float(price_profile[t])
                    * dt_hours
                    * float(x[vi.index(("pg", nm, phi))])
                )
        committed_cost += step_cost
        steps.append(
            HorizonStep(
                period=t,
                objective_window=objective,
                iterations=iterations,
                converged=converged,
                substation_p=sub_p,
                storage_p=storage_p,
                storage_charge=charge,
                storage_discharge=discharge,
                soc_after=soc_after,
            )
        )
    return HorizonResult(
        steps=steps,
        storages=storages,
        dt_hours=dt_hours,
        committed_cost=committed_cost,
    )
