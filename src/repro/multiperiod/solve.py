"""Solving the multi-period problem with the consensus machinery.

The time-expanded problem is a plain equality-constrained LP with bounds,
so it is the degenerate (zero-cone) case of the conic consensus solver:
components are the support-groups of the rows — every period's buses and
lines, plus one *storage component per storage spanning all periods* —
each solved by the batched closed-form affine projection.
"""

from __future__ import annotations

from repro.core.config import ADMMConfig
from repro.multiperiod.model import MultiPeriodProblem
from repro.socp.solver import ConicDecomposition, ConicSolverFreeADMM, decompose_conic


class _ConicView:
    """Duck-type adapter: a multi-period problem as a cone-free conic one."""

    def __init__(self, problem: MultiPeriodProblem):
        self._p = problem
        self.rows = problem.rows
        self.var_index = problem.var_index
        self.cones: list = []
        self.cost = problem.cost
        self.lb = problem.lb
        self.ub = problem.ub
        self.n_vars = problem.n_vars

    def initial_point(self):
        return self._p.initial_point()


def decompose_multiperiod(problem: MultiPeriodProblem) -> ConicDecomposition:
    """Support-grouped decomposition of the time-expanded LP."""
    return decompose_conic(_ConicView(problem))


class MultiPeriodSolverFreeADMM(ConicSolverFreeADMM):
    """Solver-free consensus ADMM over the multi-period components."""

    algorithm_name = "solver-free ADMM (multi-period with storage)"

    def __init__(
        self,
        dec: ConicDecomposition,
        config: ADMMConfig | None = None,
        backend=None,
        precision: str | None = None,
    ):
        super().__init__(dec, config, backend=backend, precision=precision)
