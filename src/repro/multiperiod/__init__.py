"""Multi-period distributed OPF with energy storage (the setting of the
paper's comparison baseline [15]), built on the same consensus machinery,
plus a receding-horizon DER scheduler on top of it."""

from repro.multiperiod.horizon import (
    HorizonResult,
    HorizonStep,
    rolling_horizon,
)
from repro.multiperiod.model import (
    MultiPeriodProblem,
    Storage,
    build_multiperiod_lp,
)
from repro.multiperiod.solve import (
    MultiPeriodSolverFreeADMM,
    decompose_multiperiod,
)

__all__ = [
    "Storage",
    "MultiPeriodProblem",
    "build_multiperiod_lp",
    "decompose_multiperiod",
    "MultiPeriodSolverFreeADMM",
    "HorizonStep",
    "HorizonResult",
    "rolling_horizon",
]
