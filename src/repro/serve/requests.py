"""Request/response records of the scenario-serving engine.

An :class:`OPFRequest` names a feeder and a set of *per-scenario
perturbations* — load multipliers, DER setpoints, generator limit
overrides — plus solve options.  Perturbations deliberately exclude
topology changes (line switching), so every request on the same feeder
shares one :meth:`~OPFRequest.topology_key`: the engine builds the
partition, row reduction and projection factorizations once per key and
serves all matching requests from that plan.

:class:`OPFResponse` is the per-request outcome with one of the statuses

* ``converged`` — ADMM met the relative criterion (16) within budget,
* ``iteration_limit`` — the per-request budget ran out first,
* ``rejected`` — the engine's bounded queue was full (backpressure) or the
  topology's circuit breaker is open,
* ``timeout`` — the request's ``deadline_s`` expired (in queue or mid-solve),
* ``error`` — the scenario could not be built or solved.

A response may additionally be ``degraded``: its batch solve diverged and
the engine fell back to the centralized reference LP (exact, unbatched)
after retries ran out — see docs/RESILIENCE.md.

Both records round-trip through plain dicts (``to_dict``/``from_dict``)
so scenario files are ordinary JSON.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

STATUS_CONVERGED = "converged"
STATUS_ITERATION_LIMIT = "iteration_limit"
STATUS_REJECTED = "rejected"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class SolveOptions:
    """Per-request ADMM settings (paper defaults, Section V-A).

    ``deadline_s`` is a submit-to-response latency budget: the engine
    times out the request (status ``timeout``) if it is still waiting or
    solving when the budget expires.  ``None`` (the default) disables it.
    """

    rho: float = 100.0
    eps_rel: float = 1e-3
    max_iter: int = 20_000
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.rho <= 0 or self.eps_rel <= 0:
            raise ValueError("rho and eps_rel must be positive")
        if self.max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")


@dataclass
class OPFRequest:
    """One OPF scenario query.

    Parameters
    ----------
    request_id:
        Caller-chosen identifier, echoed on the response.
    feeder:
        Feeder reference (builtin name, ``.json`` file, or CSV directory) —
        resolved once per topology key by the engine.
    load_scale:
        Uniform multiplier on every load's reference consumption.
    load_multipliers:
        Per-load multipliers (load name -> factor), applied on top of
        ``load_scale``.
    der_setpoints:
        Generator name -> fixed active-power setpoint (pu, per phase): the
        generator's ``p`` bounds collapse to the setpoint (a dispatched DER).
    gen_limits:
        Generator name -> ``(p_min, p_max)`` overrides (pu, per phase);
        either entry may be ``None`` to keep the base value.
    options:
        ADMM solve options.
    """

    request_id: str
    feeder: str = "ieee13"
    load_scale: float = 1.0
    load_multipliers: dict[str, float] = field(default_factory=dict)
    der_setpoints: dict[str, float] = field(default_factory=dict)
    gen_limits: dict[str, tuple[float | None, float | None]] = field(default_factory=dict)
    options: SolveOptions = field(default_factory=SolveOptions)

    def __post_init__(self) -> None:
        if self.load_scale < 0:
            raise ValueError("load_scale must be nonnegative")
        if any(m < 0 for m in self.load_multipliers.values()):
            raise ValueError("load multipliers must be nonnegative")

    def topology_key(self) -> str:
        """Deterministic key of the network/partition this request runs on.

        Requests with equal keys share the plan's precomputed partition,
        row reduction and projection factorizations.  Only the feeder
        reference enters the key: the scenario perturbations never change
        the constraint-graph topology.
        """
        digest = hashlib.sha256(f"feeder:{self.feeder}".encode()).hexdigest()
        return digest[:16]

    def scenario_key(self) -> str:
        """Deterministic key of the *full* perturbation (cache identity)."""
        payload = json.dumps(
            {
                "feeder": self.feeder,
                "load_scale": self.load_scale,
                "load_multipliers": sorted(self.load_multipliers.items()),
                "der_setpoints": sorted(self.der_setpoints.items()),
                "gen_limits": sorted(
                    (k, tuple(v)) for k, v in self.gen_limits.items()
                ),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        d = asdict(self)
        d["gen_limits"] = {k: list(v) for k, v in self.gen_limits.items()}
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "OPFRequest":
        d = dict(d)
        opts = d.pop("options", None) or {}
        if isinstance(opts, SolveOptions):
            options = opts
        else:
            options = SolveOptions(**opts)
        gen_limits = {
            k: (v[0], v[1]) for k, v in (d.pop("gen_limits", None) or {}).items()
        }
        return cls(options=options, gen_limits=gen_limits, **d)


@dataclass
class OPFResponse:
    """Per-request outcome of one served scenario."""

    request_id: str
    status: str
    objective: float | None = None
    iterations: int = 0
    pres: float = float("inf")
    dres: float = float("inf")
    warm_started: bool = False
    warm_distance: float | None = None
    solve_seconds: float = 0.0
    latency_seconds: float = 0.0
    error: str | None = None
    degraded: bool = False
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == STATUS_CONVERGED

    def to_dict(self) -> dict:
        return asdict(self)


def load_requests_json(path) -> list[OPFRequest]:
    """Read a scenario file: a JSON list of request dicts (or an object
    with a ``"scenarios"`` list)."""
    with open(path) as fh:
        data = json.load(fh)
    if isinstance(data, dict):
        if "scenarios" not in data:
            raise ValueError(
                f"scenario file {path!r} has no 'scenarios' list "
                f"(top-level keys: {sorted(data)})"
            )
        data = data["scenarios"]
    try:
        return [OPFRequest.from_dict(d) for d in data]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed scenario in {path!r}: {exc}") from exc


def save_requests_json(requests: list[OPFRequest], path) -> None:
    with open(path, "w") as fh:
        json.dump({"scenarios": [r.to_dict() for r in requests]}, fh, indent=1)
