"""Request/response records of the scenario-serving engine.

An :class:`OPFRequest` names a feeder and a set of *per-scenario
perturbations* — load multipliers, DER setpoints, generator limit
overrides — plus solve options.  Perturbations deliberately exclude
topology changes (line switching), so every request on the same feeder
shares one :meth:`~OPFRequest.topology_key`: the engine builds the
partition, row reduction and projection factorizations once per key and
serves all matching requests from that plan.

:class:`OPFResponse` is the per-request outcome with one of the statuses

* ``converged`` — ADMM met the relative criterion (16) within budget,
* ``iteration_limit`` — the per-request budget ran out first,
* ``rejected`` — the engine's bounded queue was full (backpressure) or the
  topology's circuit breaker is open,
* ``timeout`` — the request's ``deadline_s`` expired (in queue or mid-solve),
* ``error`` — the scenario could not be built or solved.

A response may additionally be ``degraded``: its batch solve diverged and
the engine fell back to the centralized reference LP (exact, unbatched)
after retries ran out — see docs/RESILIENCE.md.

Both records round-trip through plain dicts (``to_dict``/``from_dict``)
so scenario files are ordinary JSON.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field

#: Methods of the fidelity ladder (docs/METHODS.md).  Kept as a plain
#: tuple here so requests stay importable without :mod:`repro.methods`.
METHODS = ("linearized", "qp", "socp")

STATUS_CONVERGED = "converged"
STATUS_ITERATION_LIMIT = "iteration_limit"
STATUS_REJECTED = "rejected"
STATUS_TIMEOUT = "timeout"
STATUS_ERROR = "error"


@dataclass(frozen=True)
class SolveOptions:
    """Per-request ADMM settings (paper defaults, Section V-A).

    ``deadline_s`` is a submit-to-response latency budget: the engine
    times out the request (status ``timeout``) if it is still waiting or
    solving when the budget expires.  ``None`` (the default) disables it.
    """

    rho: float = 100.0
    eps_rel: float = 1e-3
    max_iter: int = 20_000
    deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.rho <= 0 or self.eps_rel <= 0:
            raise ValueError("rho and eps_rel must be positive")
        if self.max_iter < 1:
            raise ValueError("max_iter must be at least 1")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline_s must be positive when set")

    def solve_signature(self) -> tuple:
        """The solve-relevant settings, for scenario cache identity.

        ``deadline_s`` is deliberately excluded: it is a latency budget
        on *this submission*, not a property of the mathematical
        scenario — two requests differing only in deadline must hit the
        same cache entry.
        """
        return (self.rho, self.eps_rel, self.max_iter)


@dataclass
class OPFRequest:
    """One OPF scenario query.

    Parameters
    ----------
    request_id:
        Caller-chosen identifier, echoed on the response.
    feeder:
        Feeder reference (builtin name, ``.json`` file, or CSV directory) —
        resolved once per topology key by the engine.
    load_scale:
        Uniform multiplier on every load's reference consumption.
    load_multipliers:
        Per-load multipliers (load name -> factor), applied on top of
        ``load_scale``.
    der_setpoints:
        Generator name -> fixed active-power setpoint (pu, per phase): the
        generator's ``p`` bounds collapse to the setpoint (a dispatched DER).
    gen_limits:
        Generator name -> ``(p_min, p_max)`` overrides (pu, per phase);
        either entry may be ``None`` to keep the base value.
    options:
        ADMM solve options.
    method:
        Fidelity-ladder rung this request runs on (``linearized``, ``qp``
        or ``socp`` — see docs/METHODS.md).  The method is part of the
        plan and warm-start cache identity: a linearized warm start must
        never seed a conic solve.
    """

    request_id: str  # repro-lint: non-keying=caller-chosen echo token, never affects the solve
    feeder: str = "ieee13"
    load_scale: float = 1.0
    load_multipliers: dict[str, float] = field(default_factory=dict)
    der_setpoints: dict[str, float] = field(default_factory=dict)
    gen_limits: dict[str, tuple[float | None, float | None]] = field(default_factory=dict)
    options: SolveOptions = field(default_factory=SolveOptions)
    method: str = "linearized"

    def __post_init__(self) -> None:
        if self.load_scale < 0:
            raise ValueError("load_scale must be nonnegative")
        if any(m < 0 for m in self.load_multipliers.values()):
            raise ValueError("load multipliers must be nonnegative")
        if self.method not in METHODS:
            raise ValueError(
                f"unknown method {self.method!r} (choose from {METHODS})"
            )

    def topology_key(self) -> str:
        """Deterministic key of the (network, method) plan this runs on.

        Requests with equal keys share the plan's precomputed partition,
        row reduction and projection factorizations.  The feeder reference
        and the method enter the key — the scenario perturbations never
        change the constraint-graph topology, but each method builds a
        different decomposition of it.  The default ``linearized`` method
        is keyed exactly as before the ladder existed, so historical
        routing/cache digests (and the pinned golden fleet assignments)
        are unchanged.
        """
        tag = f"feeder:{self.feeder}"
        if self.method != "linearized":
            tag += f"|method:{self.method}"
        return hashlib.sha256(tag.encode()).hexdigest()[:16]

    def scenario_key(self) -> str:
        """Deterministic key of the *full* perturbation (cache identity)."""
        payload_dict = {
            "feeder": self.feeder,
            "load_scale": self.load_scale,
            "load_multipliers": sorted(self.load_multipliers.items()),
            "der_setpoints": sorted(self.der_setpoints.items()),
            "gen_limits": sorted(
                (k, tuple(v)) for k, v in self.gen_limits.items()
            ),
        }
        # Same back-compat rule as topology_key(): the default method
        # hashes identically to the pre-ladder payload.
        if self.method != "linearized":
            payload_dict["method"] = self.method
        # Non-default solve settings change what "the answer" is
        # (tolerance, penalty, budget), so they are cache identity too —
        # keyed only when they differ from the default, which keeps every
        # historical digest stable.
        if self.options.solve_signature() != SolveOptions().solve_signature():
            payload_dict["options"] = list(self.options.solve_signature())
        payload = json.dumps(payload_dict, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def to_dict(self) -> dict:
        d = asdict(self)
        d["gen_limits"] = {k: list(v) for k, v in self.gen_limits.items()}
        return d

    @classmethod
    def from_dict(cls, d: dict) -> "OPFRequest":
        d = dict(d)
        opts = d.pop("options", None) or {}
        if isinstance(opts, SolveOptions):
            options = opts
        else:
            options = SolveOptions(**opts)
        gen_limits = {
            k: (v[0], v[1]) for k, v in (d.pop("gen_limits", None) or {}).items()
        }
        return cls(options=options, gen_limits=gen_limits, **d)


@dataclass
class OPFResponse:
    """Per-request outcome of one served scenario."""

    request_id: str
    status: str
    objective: float | None = None
    iterations: int = 0
    pres: float = float("inf")
    dres: float = float("inf")
    warm_started: bool = False
    warm_distance: float | None = None
    solve_seconds: float = 0.0
    latency_seconds: float = 0.0
    error: str | None = None
    degraded: bool = False
    attempts: int = 1

    @property
    def ok(self) -> bool:
        return self.status == STATUS_CONVERGED

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass
class StochasticRequest:
    """One two-stage stochastic evaluation query.

    The request names a feeder, a seeded uncertainty model and a
    first-stage DER commitment (``der_setpoints``); the engine *expands*
    it into ``n_scenarios`` ordinary :class:`OPFRequest` children — one
    per scenario draw, all sharing the commitment — stacks them into one
    ADMM batch (the scenario batch *is* the ADMM batch) and aggregates
    the per-scenario recourse objectives into expected cost and
    CVaR-``alpha``.  Expansion is deterministic in ``seed``: the same
    request always produces bit-identical scenario perturbations (see
    :mod:`repro.stochastic.sampler`).

    First-stage *optimization* (choosing the setpoints) is the library /
    CLI path (:func:`repro.stochastic.solve_two_stage`); serving
    evaluates a given commitment under uncertainty at scale.
    """

    request_id: str  # repro-lint: non-keying=caller-chosen echo token, never affects the solve
    feeder: str = "ieee13-der"
    n_scenarios: int = 16
    seed: int = 0
    load_sigma: float = 0.10
    pv_sigma: float = 0.15
    alpha: float = 0.95
    antithetic: bool = True
    load_scale: float = 1.0
    der_setpoints: dict[str, float] = field(default_factory=dict)
    options: SolveOptions = field(default_factory=lambda: SolveOptions(rho=10.0))

    def __post_init__(self) -> None:
        if self.n_scenarios < 1:
            raise ValueError("n_scenarios must be at least 1")
        if not 0.0 < self.alpha < 1.0:
            raise ValueError("alpha must lie in (0, 1)")
        if self.load_sigma < 0 or self.pv_sigma < 0:
            raise ValueError("sigmas must be nonnegative")
        if self.load_scale < 0:
            raise ValueError("load_scale must be nonnegative")

    def topology_key(self) -> str:
        """Same keying rule as :meth:`OPFRequest.topology_key`: scenario
        draws perturb parameters only, so the request (and every child it
        expands to) shares the feeder's cached plan."""
        digest = hashlib.sha256(f"feeder:{self.feeder}".encode()).hexdigest()
        return digest[:16]

    def scenario_key(self) -> str:
        payload_dict = {
            "feeder": self.feeder,
            "n_scenarios": self.n_scenarios,
            "seed": self.seed,
            "load_sigma": self.load_sigma,
            "pv_sigma": self.pv_sigma,
            "alpha": self.alpha,
            "antithetic": self.antithetic,
            "load_scale": self.load_scale,
            "der_setpoints": sorted(self.der_setpoints.items()),
        }
        # Keyed only when non-default (digest back-compat; see
        # OPFRequest.scenario_key).  This class's default rho is 10.0.
        default_sig = SolveOptions(rho=10.0).solve_signature()
        if self.options.solve_signature() != default_sig:
            payload_dict["options"] = list(self.options.solve_signature())
        payload = json.dumps(payload_dict, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def expand(self, net) -> list[OPFRequest]:
        """Draw the scenario set and materialize one child per scenario.

        ``net`` is the engine's resolved base network for this feeder
        (needed for the load/PV unit names and the PV base ratings the
        availability factors scale).  Children carry the scenario's load
        multipliers and PV ``p_max`` overrides; the first-stage
        ``der_setpoints`` are copied onto every child unchanged — the
        shared commitment is the non-anticipativity constraint.
        """
        # Lazy import: repro.stochastic must stay importable without the
        # serving stack (and vice versa).
        from repro.stochastic.sampler import ScenarioSampler, UncertaintyModel

        sampler = ScenarioSampler.from_network(
            net,
            model=UncertaintyModel(
                load_sigma=self.load_sigma, pv_sigma=self.pv_sigma
            ),
            seed=self.seed,
            antithetic=self.antithetic,
        )
        scn = sampler.sample(self.n_scenarios)
        children = []
        for k in range(scn.n_scenarios):
            gen_limits = {}
            for name, avail in scn.pv_availability_dict(k).items():
                base = float(net.generators[name].p_max[0])
                gen_limits[name] = (None, base * float(avail))
            children.append(
                OPFRequest(
                    request_id=f"{self.request_id}/s{k}",
                    feeder=self.feeder,
                    load_scale=self.load_scale,
                    load_multipliers=scn.load_multiplier_dict(k),
                    der_setpoints=dict(self.der_setpoints),
                    gen_limits=gen_limits,
                    options=self.options,
                )
            )
        return children

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "StochasticRequest":
        d = dict(d)
        opts = d.pop("options", None) or {}
        options = opts if isinstance(opts, SolveOptions) else SolveOptions(**opts)
        return cls(options=options, **d)


@dataclass
class StochasticResponse(OPFResponse):
    """Aggregated outcome of one served stochastic request.

    ``objective`` carries the risk objective the caller asked for via
    ``alpha`` — both ``expected_cost`` and ``cvar_cost`` are always
    reported.  Statuses aggregate conservatively: ``converged`` only if
    every scenario child converged, otherwise the worst child status.
    """

    n_scenarios: int = 0
    alpha: float = 0.95
    scenario_objectives: list = field(default_factory=list)
    expected_cost: float | None = None
    cvar_cost: float | None = None

    _STATUS_RANK = (
        STATUS_CONVERGED,
        STATUS_ITERATION_LIMIT,
        STATUS_TIMEOUT,
        STATUS_REJECTED,
        STATUS_ERROR,
    )

    @classmethod
    def aggregate(
        cls,
        request: StochasticRequest,
        children: list[OPFResponse],
    ) -> "StochasticResponse":
        """Fold the per-scenario responses into one risk-aware response."""
        from repro.stochastic.model import sample_cvar  # lazy, see expand()

        rank = {s: i for i, s in enumerate(cls._STATUS_RANK)}
        status = max(
            (c.status for c in children), key=lambda s: rank.get(s, len(rank))
        )
        objectives = [c.objective for c in children]
        expected = cvar = None
        if all(o is not None for o in objectives) and objectives:
            weights = [1.0 / len(objectives)] * len(objectives)
            expected = float(
                sum(w * o for w, o in zip(weights, objectives))
            )
            cvar = float(sample_cvar(objectives, weights, request.alpha))
        errors = sorted({c.error for c in children if c.error})
        return cls(
            request_id=request.request_id,
            status=status,
            objective=cvar,
            iterations=max((c.iterations for c in children), default=0),
            pres=max((c.pres for c in children), default=float("inf")),
            dres=max((c.dres for c in children), default=float("inf")),
            warm_started=any(c.warm_started for c in children),
            solve_seconds=max((c.solve_seconds for c in children), default=0.0),
            latency_seconds=max(
                (c.latency_seconds for c in children), default=0.0
            ),
            error="; ".join(errors) or None,
            degraded=any(c.degraded for c in children),
            attempts=max((c.attempts for c in children), default=1),
            n_scenarios=len(children),
            alpha=request.alpha,
            scenario_objectives=objectives,
            expected_cost=expected,
            cvar_cost=cvar,
        )


@dataclass
class MultiPeriodRequest:
    """One rolling-horizon DER-scheduling query.

    Carries the load/price profiles and the storage fleet; the engine
    runs :func:`repro.multiperiod.rolling_horizon` over them with the
    request's ADMM options.  Storages are plain dicts of
    :class:`repro.multiperiod.Storage` fields so requests stay
    JSON-serializable.
    """

    request_id: str  # repro-lint: non-keying=caller-chosen echo token, never affects the solve
    feeder: str = "ieee13"
    load_profile: list = field(default_factory=list)
    price_profile: list | None = None
    storages: list = field(default_factory=list)
    window: int = 4
    dt_hours: float = 1.0
    options: SolveOptions = field(default_factory=lambda: SolveOptions(rho=10.0))

    def __post_init__(self) -> None:
        if not self.load_profile:
            raise ValueError("load_profile must be non-empty")
        if self.window < 1:
            raise ValueError("window must be at least 1")
        if self.dt_hours <= 0:
            raise ValueError("dt_hours must be positive")

    def topology_key(self) -> str:
        """Unlike plain OPF, the time-expanded constraint graph depends on
        the window width and the storage fleet, so they enter the key."""
        payload = json.dumps(
            {
                "feeder": self.feeder,
                "window": self.window,
                "storages": sorted(
                    (d.get("name", ""), d.get("bus", "")) for d in self.storages
                ),
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def scenario_key(self) -> str:
        payload_dict = {
            "feeder": self.feeder,
            "load_profile": list(self.load_profile),
            "price_profile": (
                list(self.price_profile)
                if self.price_profile is not None
                else None
            ),
            "storages": sorted(
                json.dumps(d, sort_keys=True) for d in self.storages
            ),
            "window": self.window,
            "dt_hours": self.dt_hours,
        }
        # Keyed only when non-default (digest back-compat; see
        # OPFRequest.scenario_key).  This class's default rho is 10.0.
        default_sig = SolveOptions(rho=10.0).solve_signature()
        if self.options.solve_signature() != default_sig:
            payload_dict["options"] = list(self.options.solve_signature())
        payload = json.dumps(payload_dict, sort_keys=True)
        return hashlib.sha256(payload.encode()).hexdigest()[:16]

    def build_storages(self) -> list:
        from repro.multiperiod.model import Storage  # lazy, see expand()

        return [Storage(**d) for d in self.storages]

    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "MultiPeriodRequest":
        d = dict(d)
        opts = d.pop("options", None) or {}
        options = opts if isinstance(opts, SolveOptions) else SolveOptions(**opts)
        return cls(options=options, **d)


@dataclass
class MultiPeriodResponse(OPFResponse):
    """Outcome of one rolling-horizon schedule: the committed cost plus
    the per-storage SoC trajectories (initial value included)."""

    n_periods: int = 0
    committed_cost: float | None = None
    soc_trajectories: dict = field(default_factory=dict)


def load_requests_json(path) -> list[OPFRequest]:
    """Read a scenario file: a JSON list of request dicts (or an object
    with a ``"scenarios"`` list)."""
    with open(path) as fh:
        data = json.load(fh)
    if isinstance(data, dict):
        if "scenarios" not in data:
            raise ValueError(
                f"scenario file {path!r} has no 'scenarios' list "
                f"(top-level keys: {sorted(data)})"
            )
        data = data["scenarios"]
    try:
        return [OPFRequest.from_dict(d) for d in data]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"malformed scenario in {path!r}: {exc}") from exc


def save_requests_json(requests: list[OPFRequest], path) -> None:
    with open(path, "w") as fh:
        json.dump({"scenarios": [r.to_dict() for r in requests]}, fh, indent=1)
