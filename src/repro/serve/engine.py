"""The scenario-serving engine: per-topology plans and stacked batch solves.

Two layers:

:class:`TopologyPlan`
    Everything computable *once per topology*: the base network, the
    assembled LP, the partition/row-ownership map of Section V-A, and a
    content-addressed **projection cache**.  A scenario perturbs load
    references (which changes some components' local systems ``A_s x = b_s``)
    and generator bounds (which changes nothing but the box (9d)); the plan
    rebuilds only the per-component dense systems and re-factorizes *only*
    components whose bytes actually changed — line components, unloaded
    buses and repeated multipliers all reuse cached ``(M_s, bbar_s)``
    projections (15b)-(15c).

:class:`ScenarioEngine`
    The serving loop: bounded-queue submission (backpressure), same-topology
    batch grouping, warm-start seeding from the LRU cache, and one **stacked
    ADMM solve per batch**.  The K scenarios of a batch are independent, so
    their union is itself a valid consensus problem — the stacked system is
    dispatched through :class:`~repro.core.batch.BatchedLocalSolver`, whose
    width buckets now hold the components of *all* scenarios: one padded
    batched matmul per width serves the whole group, which is exactly the
    amortization the paper's batched kernels exploit (and what the modeled
    GPU timing in the metrics accounts).
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass

import numpy as np

from repro.backend import resolve_backend
from repro.core.batch import BatchedLocalSolver, projection_data
from repro.core.config import ADMMConfig
from repro.core.loop import ADMMLoop, IterationStrategy
from repro.decomposition import decompose
from repro.decomposition.rowreduce import reduced_row_echelon
from repro.formulation import build_centralized_lp
from repro.formulation.rows import rows_to_dense_local
from repro.gpu.costmodel import iteration_times_from_sizes
from repro.gpu.device import A100, DeviceSpec
from repro.gpu.kernel_sim import simulate_local_update
from repro.io.resolve import resolve_feeder
from repro.methods.facade import METHOD_SPECS, Method
from repro.methods.reference import solve_reference_socp
from repro.qp.projection import project_box_affine
from repro.reference import solve_reference
from repro.socp.bfm import build_bfm_socp
from repro.socp.cone import project_rotated_soc_batch
from repro.socp.solver import decompose_conic
from repro.resilience.faults import FaultInjector, FaultPlan
from repro.resilience.policy import CircuitBreaker, CircuitOpenError, ResilienceConfig
from repro.serve.metrics import ServingMetrics
from repro.serve.requests import (
    STATUS_CONVERGED,
    STATUS_ERROR,
    STATUS_ITERATION_LIMIT,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    MultiPeriodRequest,
    MultiPeriodResponse,
    OPFRequest,
    OPFResponse,
    StochasticRequest,
    StochasticResponse,
)
from repro.serve.scheduler import BatchScheduler, BoundedRequestQueue, QueueFullError
from repro.serve.warmstart import WarmStartCache
from repro.telemetry import NULL_TRACER
from repro.utils.exceptions import FormulationError
from repro.utils.timing import PhaseTimer, Timer

#: Thread count per block used for the modeled local-update kernel spans.
KERNEL_SIM_THREADS = 64

#: Engine config of the stacked batch solves.  Per-request options replace
#: the usual hyper-parameters (rho / eps_rel / budget are per-scenario
#: vectors inside the strategy), so only the control-flow flags matter —
#: in particular ``raise_on_max_iter`` stays off: budget exhaustion is an
#: ``iteration_limit`` response status, never an exception.
_STACKED_CONFIG = ADMMConfig(record_history=False)


@dataclass
class _ScenarioComponent:
    """One component's local system under a specific scenario."""

    n_vars: int
    a: np.ndarray
    b: np.ndarray


@dataclass
class ScenarioProblem:
    """A fully assembled scenario: perturbed LP + per-component systems.

    ``lp`` (linearized/qp scenarios) or ``conic`` (socp scenarios) is
    retained for the graceful-degradation path: when the batched ADMM
    solve of this scenario diverges and retries run out, the engine falls
    back to a centralized reference solve of exactly this model — HiGHS
    on the LP, or the HiGHS cutting-plane loop on the conic problem.
    """

    request: OPFRequest
    cost: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    x0_default: np.ndarray
    components: list[_ScenarioComponent]
    projections: list[tuple[np.ndarray, np.ndarray]]
    signature: np.ndarray
    lp: object = None
    conic: object = None


class TopologyPlan:
    """Precomputed, shareable solve structure for one (topology, method) key.

    The plan's identity is the request's :meth:`~repro.serve.requests.
    OPFRequest.topology_key`, which hashes the feeder *and* the method —
    each fidelity rung builds a different decomposition of the same
    network, and their caches must never mix (a linearized projection
    plan is meaningless to the conic layout).

    * ``linearized`` / ``qp`` share the LP (7) decomposition; the
      content-addressed cache stores ``(M, bbar)`` batched projections
      for the former and the reduced ``(A, b)`` systems for the latter
      (the box-QP projection needs the explicit rows).
    * ``socp`` builds the branch-flow conic model: linear components plus
      width-4 cone blocks, with the same content-addressed caching over
      the linear components (cone projections have no factorization).
    """

    def __init__(self, feeder: str, method: str = "linearized"):
        self.feeder = feeder
        self.method = Method.parse(method).value
        self.net = resolve_feeder(feeder)
        if self.method == "socp":
            spec = METHOD_SPECS[Method.SOCP]
            self.lp = None
            self.dec = None
            self.conic = build_bfm_socp(self.net, **spec.build_kwargs)
            cdec = self.cdec = decompose_conic(self.conic)
            self.n_vars = self.conic.n_vars
            self.n_local = cdec.n_local
            self.global_cols = cdec.global_cols
            self.counts = cdec.counts
            self.n_linear = cdec.n_linear
            self.linear_offsets = cdec.offsets_linear
            n_cones = cdec.cone_cols.shape[0]
            linear_sizes = np.array(
                [c.n_vars for c in cdec.linear], dtype=np.int64
            )
            # Cost-model widths: linear components plus 4-wide cone blocks.
            self.sizes = np.concatenate(
                [linear_sizes, np.full(n_cones, 4, dtype=np.int64)]
            )
            self.offsets = np.concatenate([[0], np.cumsum(self.sizes)])
            # Row ownership in decompose_conic's first-seen order.
            self._owner_to_spec = {}
            for row in self.conic.rows:
                self._owner_to_spec.setdefault(
                    row.owner, len(self._owner_to_spec)
                )
            self._local_keys = [c.local_keys for c in cdec.linear]
        else:
            self.conic = None
            self.cdec = None
            self.lp = build_centralized_lp(self.net)
            self.dec = decompose(self.lp)
            self.n_vars = self.lp.n_vars
            self.n_local = self.dec.n_local
            self.global_cols = self.dec.global_cols
            self.counts = self.dec.counts
            self.offsets = self.dec.offsets
            self.sizes = np.array(
                [c.n_vars for c in self.dec.components], dtype=np.int64
            )
            # Row ownership of the base partition; scenario rebuilds reuse
            # it (perturbations never add/remove components or rows).
            self._owner_to_spec: dict[tuple, int] = {}
            for idx, spec in enumerate(self.dec.specs):
                for owner in spec.owners():
                    self._owner_to_spec[owner] = idx
            self._local_keys = [c.local_keys for c in self.dec.components]
        # Content-addressed projection cache: (component, digest of the raw
        # local system) -> the method's cached pair.  Shared across every
        # scenario served on this (topology, method) plan.
        self._projections: dict[tuple[int, bytes], tuple[np.ndarray, np.ndarray]] = {}
        self._rref_tol = 1e-9
        self.factorizations_computed = 0
        self.factorizations_reused = 0

    # ------------------------------------------------------------------
    def _perturbed_network(self, request: OPFRequest):
        net = self.net.copy()
        unknown = set(request.load_multipliers) - set(net.loads)
        if unknown:
            raise ValueError(f"unknown loads in multipliers: {sorted(unknown)}")
        for name, load in net.loads.items():
            scale = request.load_scale * request.load_multipliers.get(name, 1.0)
            if scale != 1.0:
                load.p_ref *= scale
                load.q_ref *= scale
        for name, setpoint in request.der_setpoints.items():
            try:
                gen = net.generators[name]
            except KeyError:
                raise ValueError(f"unknown generator {name!r} in der_setpoints") from None
            gen.p_min[:] = setpoint
            gen.p_max[:] = setpoint
        for name, (p_min, p_max) in request.gen_limits.items():
            try:
                gen = net.generators[name]
            except KeyError:
                raise ValueError(f"unknown generator {name!r} in gen_limits") from None
            if p_min is not None:
                gen.p_min[:] = p_min
            if p_max is not None:
                gen.p_max[:] = p_max
            if np.any(gen.p_min > gen.p_max):
                raise ValueError(f"generator {name!r}: p_min exceeds p_max")
        return net

    def _signature(self, net) -> np.ndarray:
        """The scenario parameter vector warm-start distance runs on."""
        parts = []
        for name in sorted(net.loads):
            load = net.loads[name]
            parts.append(load.p_ref)
            parts.append(load.q_ref)
        for name in sorted(net.generators):
            gen = net.generators[name]
            parts.append(gen.p_min)
            parts.append(gen.p_max)
        return np.concatenate(parts) if parts else np.zeros(0)

    def build_scenario(self, request: OPFRequest) -> ScenarioProblem:
        """Assemble one scenario, reusing cached factorizations.

        Raises
        ------
        ValueError
            If the request references unknown loads/generators or sets
            inconsistent limits.
        """
        net = self._perturbed_network(request)
        if self.method == "socp":
            return self._build_scenario_socp(request, net)
        lp = build_centralized_lp(net)
        if lp.n_vars != self.n_vars:
            raise ValueError("scenario changed the variable space (topology?)")
        rows_by_spec: list[list] = [[] for _ in self.dec.specs]
        for row in lp.rows:
            rows_by_spec[self._owner_to_spec[row.owner]].append(row)
        components, projections = self._cached_components(rows_by_spec)
        return ScenarioProblem(
            request=request,
            cost=lp.cost,
            lb=lp.lb,
            ub=lp.ub,
            x0_default=lp.initial_point(),
            components=components,
            projections=projections,
            signature=self._signature(net),
            lp=lp,
        )

    def _cached_components(
        self, rows_by_spec: list[list]
    ) -> tuple[list[_ScenarioComponent], list[tuple[np.ndarray, np.ndarray]]]:
        """Assemble each component's local system through the cache.

        The cached pair is method-specific — ``(M, bbar)`` batched
        projections for ``linearized``/``socp`` linear components, the
        reduced ``(A, b)`` rows for ``qp`` — but the content-addressing
        (raw system bytes) and the hit accounting are identical.
        """
        components: list[_ScenarioComponent] = []
        projections: list[tuple[np.ndarray, np.ndarray]] = []
        for s, rows in enumerate(rows_by_spec):
            keys = self._local_keys[s]
            a_raw, b_raw = rows_to_dense_local(rows, keys)
            digest = hashlib.sha256(a_raw.tobytes() + b_raw.tobytes()).digest()
            cached = self._projections.get((s, digest))
            if cached is None:
                a_red, b_red, _ = reduced_row_echelon(a_raw, b_raw, tol=self._rref_tol)
                if self.method == "qp":
                    cached = (a_red, b_red)
                else:
                    cached = projection_data(a_red, b_red)
                self._projections[(s, digest)] = cached
                self.factorizations_computed += 1
            else:
                self.factorizations_reused += 1
            components.append(
                _ScenarioComponent(n_vars=len(keys), a=np.zeros((0, len(keys))), b=np.zeros(0))
            )
            projections.append(cached)
        return components, projections

    def _build_scenario_socp(self, request: OPFRequest, net) -> ScenarioProblem:
        """Assemble one conic scenario: the perturbation re-enters through
        the rebuilt branch-flow model's linear rows (loads live in the bus
        balance) and bounds; the cone blocks are structural and need no
        per-scenario work.  ``lp=None`` but the conic problem itself is
        retained — an unrecoverable divergence degrades to the HiGHS
        cutting-plane reference solve of exactly this model."""
        spec = METHOD_SPECS[Method.SOCP]
        conic = build_bfm_socp(net, **spec.build_kwargs)
        if conic.n_vars != self.n_vars:
            raise ValueError("scenario changed the variable space (topology?)")
        rows_by_spec: list[list] = [[] for _ in self.cdec.linear]
        for row in conic.rows:
            rows_by_spec[self._owner_to_spec[row.owner]].append(row)
        components, projections = self._cached_components(rows_by_spec)
        return ScenarioProblem(
            request=request,
            cost=conic.cost,
            lb=conic.lb,
            ub=conic.ub,
            x0_default=conic.initial_point(),
            components=components,
            projections=projections,
            signature=self._signature(net),
            lp=None,
            conic=conic,
        )

    def export_projections(self) -> list[tuple[int, bytes, np.ndarray, np.ndarray]]:
        """Content-addressed cache entries as ``(component, digest, M, bbar)``.

        Deterministic order (component index, then digest) so a handoff
        payload built from the same cache state is bit-identical.
        """
        return [
            (s, digest, m, bbar)
            for (s, digest), (m, bbar) in sorted(
                self._projections.items(), key=lambda kv: (kv[0][0], kv[0][1])
            )
        ]

    def import_projections(
        self, items: list[tuple[int, bytes, np.ndarray, np.ndarray]]
    ) -> int:
        """Seed the projection cache from an export; returns entries added.

        Existing entries win (they are content-addressed, so a collision is
        the same factorization anyway) and do not count as reuse — the
        reuse counters keep measuring *serving* behaviour, not handoff.
        """
        added = 0
        for s, digest, m, bbar in items:
            if (s, digest) not in self._projections:
                self._projections[(s, digest)] = (m, bbar)
                added += 1
        return added


@dataclass
class _BatchOutcome:
    responses: list[OPFResponse]
    iterations_run: int
    solve_seconds: float
    diverged: list[int] = None  # indices into the problems list

    def __post_init__(self) -> None:
        if self.diverged is None:
            self.diverged = []


class _StackedStatus:
    """The residual view the iteration engine sees for a stacked batch:
    scalar aggregates for tracing plus ``converged`` = every scenario
    retired (converged, budget-exhausted, timed out or diverged)."""

    __slots__ = ("pres", "dres", "eps_prim", "eps_dual", "converged", "finite")

    def __init__(self, pres, dres, eps_prim, eps_dual, converged):
        self.pres = pres
        self.dres = dres
        self.eps_prim = eps_prim
        self.eps_dual = eps_dual
        self.converged = converged
        self.finite = True


class _StackedBatchStrategy(IterationStrategy):
    """K independent same-topology scenarios as one consensus problem.

    The union of the scenarios is itself a valid instance of Algorithm 1
    (block-diagonal stacking, scenario-major layout), so the batch runs on
    the shared :class:`~repro.core.loop.ADMMLoop` like every other solver
    variant.  What is *not* shared is termination: each scenario owns its
    rho / eps_rel / budget / deadline, converges independently (its
    solution snapshot is frozen the iteration it finishes), and a
    non-finite iterate retires only its own slices.  The engine-level
    divergence guard is therefore disabled (``guard_enabled = False``) in
    favor of this per-scenario isolation, which feeds the caller's
    retry/degradation policy instead of raising.
    """

    algorithm_name = "stacked solver-free ADMM"
    use_relaxation = False
    supports_balancing = False
    guard_enabled = False

    def __init__(self, engine: "ScenarioEngine", plan: TopologyPlan, problems, solver):
        b = engine.backend
        self.backend = b
        self.plan = plan
        self.problems = problems
        self.solver = solver
        self.injector = engine.injector if engine.injector else None
        k_n = len(problems)
        self.k_n = k_n
        self.n = plan.n_vars
        self.n_local = plan.n_local
        self.gcols = b.index_array(
            np.concatenate([plan.global_cols + k * self.n for k in range(k_n)])
        )
        self.counts = b.asarray(np.tile(plan.counts, k_n))
        self.c = b.asarray(np.concatenate([p.cost for p in problems]))
        self.lb = b.asarray(np.concatenate([p.lb for p in problems]))
        self.ub = b.asarray(np.concatenate([p.ub for p in problems]))
        # Per-scenario solve options, expanded to the stacked dimensions.
        # rho enters the iterates in the compute dtype (no silent fp64
        # promotion under fp32); the host fp64 copy feeds the residuals.
        self.rho_k = np.array([p.request.options.rho for p in problems])
        self.eps_k = np.array([p.request.options.eps_rel for p in problems])
        self.budget_k = np.array([p.request.options.max_iter for p in problems])
        self.rho_g = b.asarray(np.repeat(self.rho_k, self.n))
        self.rho_l = b.asarray(np.repeat(self.rho_k, self.n_local))
        # Per-scenario termination bookkeeping (host-side).
        self.done = np.zeros(k_n, dtype=bool)
        self.iters = np.zeros(k_n, dtype=np.int64)
        self.conv = np.zeros(k_n, dtype=bool)
        self.pres_at = np.full(k_n, np.inf)
        self.dres_at = np.full(k_n, np.inf)
        self.diverged = np.zeros(k_n, dtype=bool)
        self.timed_out = np.zeros(k_n, dtype=bool)
        self.snap_x = self.snap_z = self.snap_lam = None
        # Per-scenario absolute deadlines (submit-relative when known).
        deadline_at = np.full(k_n, np.inf)
        for k, p in enumerate(problems):
            d = p.request.options.deadline_s
            if d is not None:
                t0 = engine._submit_times.get(id(p.request))
                deadline_at[k] = (t0 if t0 is not None else time.perf_counter()) + d
        self.deadline_at = deadline_at
        self.has_deadline = bool(np.isfinite(deadline_at).any())
        self.check_every = engine.resilience.deadline_check_every
        self._iteration = 0

    def bind_state(self, x, z, lam) -> None:
        """Seed the solution snapshots from the initial state — the values
        reported for scenarios that never converge within budget."""
        self.snap_x = x.copy()
        self.snap_z = z.copy()
        self.snap_lam = lam.copy()

    # -- engine hooks ---------------------------------------------------
    def span_args(self) -> dict:
        return {"scenarios": self.k_n, "n_vars": self.k_n * self.n}

    def on_iteration_start(self, iteration: int, z, lam, rho):
        self._iteration = iteration
        return z, lam

    def global_step(self, z, lam, rho):
        b = self.backend
        scatter = b.scatter_add(self.gcols, z - lam / self.rho_l, self.k_n * self.n)
        return b.clip((scatter - self.c / self.rho_g) / self.counts, self.lb, self.ub)

    def _local_solve(self, v):
        """The method-specific stacked local update (subclass hook)."""
        return self.solver.solve(v)

    def local_step(self, bx_eff, z_prev, lam, rho):
        z = self._local_solve(bx_eff + lam / self.rho_l)
        injector = self.injector
        if injector is not None:
            # Chaos hook: seeded NaN corruption of a target scenario's
            # local iterate (the batched-kernel payload), applied to the
            # scenario's own slice only.
            injector.begin_iteration(self._iteration)
            n_local = self.n_local
            for k, p in enumerate(self.problems):
                if not self.done[k]:
                    injector.corrupt(
                        z[k * n_local : (k + 1) * n_local], p.request.request_id
                    )
        return z

    def dual_step(self, lam, bx_eff, z, rho):
        return lam + self.rho_l * (bx_eff - z)

    def residuals(self, iteration, x, bx, z, z_prev, lam, rho) -> _StackedStatus:
        """Per-scenario residuals of (16) plus the retirement bookkeeping:
        scenario-major slices reshape cleanly to (K, n_local)."""
        b = self.backend
        xp = b.xp
        acc = b.accumulate_dtype
        k_n, n, n_local = self.k_n, self.n, self.n_local
        diff = (bx - z).reshape(k_n, n_local).astype(acc, copy=False)
        move = (z - z_prev).reshape(k_n, n_local).astype(acc, copy=False)
        pres = b.to_numpy(xp.linalg.norm(diff, axis=1))
        dres = self.rho_k * b.to_numpy(xp.linalg.norm(move, axis=1))
        norm_bx = xp.linalg.norm(
            bx.reshape(k_n, n_local).astype(acc, copy=False), axis=1
        )
        norm_z = xp.linalg.norm(
            z.reshape(k_n, n_local).astype(acc, copy=False), axis=1
        )
        eps_prim = self.eps_k * b.to_numpy(xp.maximum(norm_bx, norm_z))
        eps_dual = self.eps_k * b.to_numpy(
            xp.linalg.norm(lam.reshape(k_n, n_local).astype(acc, copy=False), axis=1)
        )
        done = self.done
        # Divergence isolation: a non-finite iterate retires its scenario
        # immediately (for retry/degradation by the caller) and its slices
        # are reset so no NaN survives into later iterations.
        bad = ~done & ~(np.isfinite(pres) & np.isfinite(dres))
        if bad.any():
            self.diverged |= bad
            done |= bad
            self.iters[bad] = iteration
            for k in np.flatnonzero(bad):
                gs = slice(k * n, (k + 1) * n)
                ls = slice(k * n_local, (k + 1) * n_local)
                p = self.problems[k]
                x[gs] = p.x0_default
                z[ls] = p.x0_default[self.plan.global_cols]
                lam[ls] = 0.0
        # Deadline sweep: cheap, so only every `check_every` iterations.
        if self.has_deadline and iteration % self.check_every == 0:
            late = ~done & (self.deadline_at < time.perf_counter())
            if late.any():
                self.timed_out |= late
                done |= late
                self.iters[late] = iteration
        converged_now = (pres <= eps_prim) & (dres <= eps_dual)
        newly = ~done & (converged_now | (iteration >= self.budget_k))
        if newly.any():
            self.conv |= newly & converged_now
            self.iters[newly] = iteration
            self.pres_at[newly] = pres[newly]
            self.dres_at[newly] = dres[newly]
            for k in np.flatnonzero(newly):
                gs = slice(k * n, (k + 1) * n)
                ls = slice(k * n_local, (k + 1) * n_local)
                self.snap_x[gs], self.snap_z[ls], self.snap_lam[ls] = (
                    x[gs], z[ls], lam[ls],
                )
            done |= newly
        return _StackedStatus(
            pres=float(pres.max()),
            dres=float(dres.max()),
            eps_prim=float(eps_prim.min()),
            eps_dual=float(eps_dual.min()),
            converged=bool(done.all()),
        )


class _StackedQPStrategy(_StackedBatchStrategy):
    """The ``qp`` rung stacked: benchmark ADMM over same-topology scenarios.

    Mirrors :class:`~repro.core.baseline.BenchmarkADMM` in its closed-form
    ``projection`` local mode — the global step is *unclipped* (bounds
    move into the local box-QPs), and each component's local update is the
    exact projection onto ``{A_s x = b_s} ∩ [lb_s, ub_s]``.  Shares all
    residual/snapshot/deadline/divergence bookkeeping with the base.
    """

    algorithm_name = "stacked benchmark ADMM (box-QP projections)"

    def __init__(self, engine: "ScenarioEngine", plan: TopologyPlan, problems):
        super().__init__(engine, plan, problems, solver=None)
        # Stacked local bounds: scenario k's component s sees the scenario
        # LP's bounds gathered through the shared column map.
        self.lbl = np.concatenate([p.lb[plan.global_cols] for p in problems])
        self.ubl = np.concatenate([p.ub[plan.global_cols] for p in problems])

    def global_step(self, z, lam, rho):
        b = self.backend
        scatter = b.scatter_add(self.gcols, z - lam / self.rho_l, self.k_n * self.n)
        return (scatter - self.c / self.rho_g) / self.counts

    def _local_solve(self, v):
        b = self.backend
        v = b.to_numpy(v)
        z = np.empty_like(v)
        offsets = self.plan.offsets
        n_local = self.n_local
        for k, p in enumerate(self.problems):
            base = k * n_local
            for s, (a_red, b_red) in enumerate(p.projections):
                sl = slice(base + int(offsets[s]), base + int(offsets[s + 1]))
                z[sl] = project_box_affine(
                    v[sl], a_red, b_red, self.lbl[sl], self.ubl[sl]
                )
        return b.asarray(z)


class _StackedConicStrategy(_StackedBatchStrategy):
    """The ``socp`` rung stacked: conic consensus ADMM over K scenarios.

    Per-scenario layout is ``[linear components | 4-wide cone blocks]``
    (the conic decomposition's stacked order), scenario-major — so the
    shared residual reshape, snapshot freezing and divergence isolation
    of the base apply unchanged.  The linear parts of *all* scenarios run
    through one :class:`~repro.core.batch.BatchedLocalSolver` (padded
    batched matmuls, exactly the linearized engine's amortization) and
    every cone of every scenario goes through one vectorized rotated-SOC
    projection call.
    """

    algorithm_name = "stacked solver-free conic ADMM"

    def __init__(self, engine: "ScenarioEngine", plan: TopologyPlan, problems):
        comps_all = [c for p in problems for c in p.components]
        projections_all = [pr for p in problems for pr in p.projections]
        linear_sizes = plan.sizes[: len(plan.cdec.linear)]
        sizes_lin = np.tile(linear_sizes, len(problems))
        offsets_lin = np.concatenate([[0], np.cumsum(sizes_lin)])
        solver = BatchedLocalSolver.from_parts(
            comps_all, offsets_lin, projections=projections_all,
            backend=engine.backend,
        )
        super().__init__(engine, plan, problems, solver)
        self.n_linear = plan.n_linear

    def _local_solve(self, v):
        b = self.backend
        xp = b.xp
        k_n, n_local, n_linear = self.k_n, self.n_local, self.n_linear
        vmat = v.reshape(k_n, n_local)
        z = b.empty(k_n * n_local)
        zmat = z.reshape(k_n, n_local)
        zmat[:, :n_linear] = self.solver.solve(
            xp.ascontiguousarray(vmat[:, :n_linear]).reshape(-1)
        ).reshape(k_n, n_linear)
        cone = vmat[:, n_linear:].reshape(-1, 4)
        u, w, pq = project_rotated_soc_batch(cone[:, 0], cone[:, 1], cone[:, 2:])
        out = xp.concatenate([u[:, None], w[:, None], pq], axis=1)
        zmat[:, n_linear:] = out.reshape(k_n, n_local - n_linear)
        return z


def _make_stacked_strategy(
    engine: "ScenarioEngine", plan: TopologyPlan, problems
) -> _StackedBatchStrategy:
    """Dispatch the plan's method to its stacked strategy (the serving
    side of the :mod:`repro.methods` facade)."""
    if plan.method == "socp":
        return _StackedConicStrategy(engine, plan, problems)
    if plan.method == "qp":
        return _StackedQPStrategy(engine, plan, problems)
    comps_all = [c for p in problems for c in p.components]
    projections_all = [pr for p in problems for pr in p.projections]
    sizes_all = np.tile(plan.sizes, len(problems))
    offsets_all = np.concatenate([[0], np.cumsum(sizes_all)])
    solver = BatchedLocalSolver.from_parts(
        comps_all, offsets_all, projections=projections_all,
        backend=engine.backend,
    )
    return _StackedBatchStrategy(engine, plan, problems, solver)


class ScenarioEngine:
    """Batched scenario-serving front end over the solver-free ADMM.

    Parameters
    ----------
    max_batch:
        Largest same-topology group dispatched as one stacked solve.
    queue_size:
        Bound of the request queue; submits beyond it are rejected.
    cache_capacity:
        Warm-start cache entries kept (LRU across topologies).
    device:
        Device spec used for the modeled batched-kernel iteration time
        reported in the metrics.
    tracer:
        Optional :class:`repro.telemetry.Tracer`.  When enabled, every
        serving stage becomes a span (queue wait, scenario build, batch
        stacking, warm-start lookup, the stacked ADMM solve with its
        per-iteration phases) and each batch additionally emits modeled
        GPU kernel spans on the ``gpu-modeled`` track via the kernel
        simulator.
    resilience:
        Hardening knobs (:class:`repro.resilience.ResilienceConfig`):
        retry-with-backoff for diverged scenarios, per-topology circuit
        breaker, graceful degradation to the reference LP, and the
        in-solve deadline sweep period.  Defaults to enabled with the
        standard settings; pass a config with
        ``breaker_failure_threshold=0`` / ``degrade_to_reference=False``
        to disable pieces.
    fault_plan:
        Optional seeded :class:`repro.resilience.FaultPlan` for chaos
        testing: ``NaNCorruption`` specs targeting a request id (or
        ``ANY_TARGET``) poison that scenario's local iterate mid-solve,
        exercising the divergence-guard/retry/degrade path
        deterministically.
    backend, precision:
        Array-execution backend (instance or registry name) and optional
        ``fp64`` / ``fp32`` / ``mixed`` precision overlay for the stacked
        solves — see :mod:`repro.backend`.  Defaults to the process
        default (``$REPRO_BACKEND`` or ``numpy64``).  Warm-start cache
        entries are stored as host fp64 regardless of the backend, so
        cached iterates re-seed any later precision.
    warm_start:
        When ``False`` the warm-start cache is bypassed entirely (no
        lookups, no stores): every scenario solves from the default cold
        start, making response trajectories independent of serving
        history.  The fleet's failover-equivalence tests rely on this to
        compare faulted and fault-free runs scenario-for-scenario.

    Examples
    --------
    >>> from repro.serve import OPFRequest, ScenarioEngine
    >>> engine = ScenarioEngine(max_batch=4)
    >>> for i in range(4):
    ...     _ = engine.submit(OPFRequest(request_id=f"s{i}", load_scale=1 + 0.01 * i))
    >>> responses = engine.run()
    >>> sorted(r.status for r in responses) == ["converged"] * 4
    True
    """

    def __init__(
        self,
        max_batch: int = 16,
        queue_size: int = 256,
        cache_capacity: int = 64,
        device: DeviceSpec = A100,
        tracer=None,
        resilience: ResilienceConfig | None = None,
        fault_plan: FaultPlan | None = None,
        backend=None,
        precision: str | None = None,
        warm_start: bool = True,
    ):
        self.backend = resolve_backend(backend, precision)
        self.warm_start = bool(warm_start)
        self.queue = BoundedRequestQueue(maxsize=queue_size)
        self.scheduler = BatchScheduler(self.queue, max_batch=max_batch)
        self.cache = WarmStartCache(capacity=cache_capacity, backend=self.backend)
        self.metrics = ServingMetrics(max_batch=max_batch)
        self.device = device
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self.injector = FaultInjector(fault_plan, self.metrics.registry)
        self.breakers: dict[str, CircuitBreaker] = {}
        self.plans: dict[str, TopologyPlan] = {}
        self.timers = PhaseTimer(
            registry=self.metrics.registry, prefix="serve.phase.", tracer=self.tracer
        )
        self._submit_times: dict[int, float] = {}
        self._batch_latency_ewma_s = 0.0
        self._modeled_clock_s = 0.0  # virtual-clock cursor of the GPU track

    # ------------------------------------------------------------------
    def plan_for(self, request: OPFRequest) -> TopologyPlan:
        key = request.topology_key()
        plan = self.plans.get(key)
        if plan is None:
            with self.timers.measure("plan"):
                plan = TopologyPlan(
                    request.feeder,
                    method=getattr(request, "method", "linearized"),
                )
            self.plans[key] = plan
        return plan

    # ------------------------------------------------------------------
    # Warm-state handoff (fleet restart re-warming / graceful drain).
    def export_topology_state(self, topology_keys: set[str] | None = None) -> dict:
        """Snapshot cached warm state for the given topologies.

        Returns a pickle-safe payload: per-topology feeder names plus the
        content-addressed projection entries, and the warm-start cache
        entries.  ``None`` exports every topology this engine has planned.
        """
        plans = {}
        for key, plan in self.plans.items():
            if topology_keys is not None and key not in topology_keys:
                continue
            plans[key] = {
                "feeder": plan.feeder,
                "method": plan.method,
                "projections": plan.export_projections(),
            }
        return {
            "plans": plans,
            "warm_entries": self.cache.export_topology(topology_keys),
        }

    def import_topology_state(self, payload: dict) -> dict:
        """Install an exported warm-state payload into this engine.

        Rebuilds each topology's :class:`TopologyPlan` if absent (the plan
        structure is a pure function of the feeder), seeds its projection
        cache, and stores the warm-start entries through the normal LRU
        path.  Returns counts for telemetry.
        """
        projections = 0
        for key, item in payload.get("plans", {}).items():
            plan = self.plans.get(key)
            if plan is None:
                with self.timers.measure("plan"):
                    plan = TopologyPlan(
                        item["feeder"], method=item.get("method", "linearized")
                    )
                self.plans[key] = plan
            projections += plan.import_projections(item["projections"])
        warm_entries = payload.get("warm_entries", [])
        if self.warm_start:
            self.cache.import_entries(warm_entries)
        return {
            "topologies": len(payload.get("plans", {})),
            "projections": projections,
            "warm_entries": len(warm_entries) if self.warm_start else 0,
        }

    def submit(self, request: OPFRequest) -> OPFResponse | None:
        """Enqueue a request; returns a ``rejected`` response when the
        queue is full (backpressure), ``None`` when accepted.

        The rejection's ``error`` string comes from a structured
        :class:`QueueFullError` whose ``queue_depth`` / ``maxsize`` /
        ``retry_after_s`` also land on the serving gauges."""
        try:
            self.queue.submit(request)
        except QueueFullError as exc:
            self.metrics.record_submit(accepted=False)
            self.metrics.record_backpressure(exc.queue_depth, exc.retry_after_s)
            return OPFResponse(
                request_id=request.request_id, status=STATUS_REJECTED, error=str(exc)
            )
        self.metrics.record_submit(accepted=True)
        self.metrics.record_backpressure(len(self.queue), self.queue.retry_after_hint)
        self._submit_times[id(request)] = time.perf_counter()
        return None

    def adopt(self, requests: list[OPFRequest]) -> None:
        """Admit already-accepted requests at the *front* of the queue,
        bypassing the capacity bound — the fleet failover path: requests
        re-routed off a dead worker were admitted once and must not be
        dropped or re-rejected."""
        self.queue.requeue_front(requests)
        now = time.perf_counter()
        for req in requests:
            self._submit_times[id(req)] = now

    def step(self) -> list[OPFResponse]:
        """Serve exactly one batch off the queue (empty list when idle).

        The single-dispatch primitive :meth:`run` loops over; the fleet's
        sim-mode workers call it directly so a frontend can interleave
        batches across workers deterministically (and kill a worker at a
        batch boundary).
        """
        batch = self.scheduler.next_batch()
        if not batch:
            return []
        self.metrics.record_batch(len(batch))
        method = getattr(batch[0], "method", "linearized")
        self.metrics.registry.counter(f"methods.batches_{method}").inc()
        with self.tracer.span(
            "serve.batch", cat="serve", size=len(batch), method=method
        ):
            with Timer() as batch_wall:
                responses = self._serve_batch(batch)
        # Keep the backpressure hint fresh: an EWMA of batch wall
        # time is roughly "when will the queue drain one batch".
        ewma = self._batch_latency_ewma_s
        self._batch_latency_ewma_s = (
            batch_wall.elapsed if ewma == 0.0 else 0.8 * ewma + 0.2 * batch_wall.elapsed
        )
        self.queue.retry_after_hint = self._batch_latency_ewma_s
        self.metrics.record_backpressure(
            len(self.queue), self._batch_latency_ewma_s
        )
        return responses

    def run(self) -> list[OPFResponse]:
        """Drain the queue batch by batch; returns all produced responses."""
        responses: list[OPFResponse] = []
        with Timer() as wall:
            while len(self.queue):
                responses.extend(self.step())
        self.metrics.wall_seconds += wall.elapsed
        return responses

    def serve(self, requests: list) -> list[OPFResponse]:
        """Submit everything, run to completion, return responses in
        submission order (rejections included).

        Accepts a mix of request kinds: plain :class:`OPFRequest`,
        :class:`StochasticRequest` (expanded into one child request per
        scenario — the scenario batch *is* the ADMM batch — and folded
        back into one :class:`StochasticResponse` once every child,
        including its retry/degrade path, has finished) and
        :class:`MultiPeriodRequest` (served directly through the
        rolling-horizon scheduler).
        """
        produced: dict[str, OPFResponse] = {}
        expansions: list[tuple[StochasticRequest, list[str]]] = []
        for req in requests:
            if isinstance(req, MultiPeriodRequest):
                produced[req.request_id] = self._serve_multiperiod(req)
                continue
            if isinstance(req, StochasticRequest):
                try:
                    with self.timers.measure("expand"):
                        children = req.expand(self.plan_for(req).net)
                except (ValueError, KeyError) as exc:
                    produced[req.request_id] = StochasticResponse(
                        request_id=req.request_id,
                        status=STATUS_ERROR,
                        error=str(exc),
                        n_scenarios=req.n_scenarios,
                        alpha=req.alpha,
                    )
                    continue
                self.metrics.record_stochastic(len(children))
                ids = []
                for child in children:
                    ids.append(child.request_id)
                    resp = self.submit(child)
                    if resp is not None:
                        produced[resp.request_id] = resp
                expansions.append((req, ids))
                continue
            resp = self.submit(req)
            if resp is not None:
                produced[req.request_id] = resp
        for r in self.run():
            produced[r.request_id] = r
        # Aggregate after run(): every child has passed through the full
        # solve/retry/degrade pipeline by now.
        for req, ids in expansions:
            kids = [produced.pop(i) for i in ids if i in produced]
            produced[req.request_id] = StochasticResponse.aggregate(req, kids)
        return [produced[r.request_id] for r in requests if r.request_id in produced]

    def snapshot(self) -> dict:
        """Serving metrics + cache statistics, one flat dict."""
        for plan in self.plans.values():
            self.metrics.record_factorizations(
                plan.factorizations_computed, plan.factorizations_reused
            )
            plan.factorizations_computed = 0
            plan.factorizations_reused = 0
        return self.metrics.snapshot(cache_stats=self.cache.stats.as_dict())

    # ------------------------------------------------------------------
    def _serve_batch(self, batch: list[OPFRequest]) -> list[OPFResponse]:
        now = time.perf_counter()
        for req in batch:
            t_submit = self._submit_times.get(id(req))
            if t_submit is not None:
                self.metrics.record_queue_wait(now - t_submit)

        # Circuit breaker gate: an open breaker fails the whole batch fast
        # (no build, no solve) with a machine-readable retry hint.
        key = batch[0].topology_key()
        breaker = self._breaker_for(key)
        if breaker is not None and not breaker.allow():
            exc = CircuitOpenError(key, breaker.retry_after_s())
            responses = []
            for req in batch:
                self.metrics.record_breaker_rejection()
                resp = OPFResponse(
                    request_id=req.request_id, status=STATUS_REJECTED, error=str(exc)
                )
                resp.latency_seconds = self._latency(req)
                self.metrics.record_response(resp.status, 0, False, resp.latency_seconds)
                responses.append(resp)
            return responses

        plan = self.plan_for(batch[0])
        problems: list[ScenarioProblem] = []
        responses: list[OPFResponse] = []
        for req in batch:
            if self._deadline_expired(req):
                resp = OPFResponse(
                    request_id=req.request_id,
                    status=STATUS_TIMEOUT,
                    error=f"deadline_s={req.options.deadline_s} expired in queue",
                )
                resp.latency_seconds = self._latency(req)
                self.metrics.record_response(resp.status, 0, False, resp.latency_seconds)
                responses.append(resp)
                continue
            try:
                with self.timers.measure("build"):
                    problems.append(plan.build_scenario(req))
            except (ValueError, KeyError) as exc:
                resp = OPFResponse(
                    request_id=req.request_id, status=STATUS_ERROR, error=str(exc)
                )
                resp.latency_seconds = self._latency(req)
                self.metrics.record_response(resp.status, 0, False, resp.latency_seconds)
                responses.append(resp)
        if not problems:
            return responses
        self.injector.begin_attempt(0)
        outcome = self._solve_stacked(plan, problems)
        self.metrics.solve_seconds += outcome.solve_seconds
        responses.extend(outcome.responses)

        # Diverged scenarios get retried individually (backoff per policy),
        # then degraded to the exact reference LP or errored out — the rest
        # of the batch is untouched.
        failed: list[int] = []
        if outcome.diverged:
            retried, failed = self._retry_or_degrade(plan, problems, outcome.diverged)
            responses.extend(retried)

        if breaker is not None:
            if failed:
                for _ in failed:
                    if breaker.record_failure():
                        self.metrics.record_breaker_open()
            else:
                breaker.record_success()
        return responses

    def _serve_multiperiod(self, request: MultiPeriodRequest) -> MultiPeriodResponse:
        """Run one rolling-horizon schedule (not batch-stacked: the
        time-expanded problem already couples its periods internally)."""
        from repro.multiperiod.horizon import rolling_horizon

        self.metrics.record_multiperiod()
        t0 = time.perf_counter()
        opts = request.options
        config = ADMMConfig(
            rho=opts.rho, eps_rel=opts.eps_rel, max_iter=opts.max_iter
        )
        try:
            with self.tracer.span(
                "serve.multiperiod",
                cat="serve",
                periods=len(request.load_profile),
            ):
                net = resolve_feeder(request.feeder)
                storages = request.build_storages()
                horizon = rolling_horizon(
                    net,
                    request.load_profile,
                    request.price_profile,
                    storages,
                    window=request.window,
                    dt_hours=request.dt_hours,
                    solver="admm",
                    config=config,
                    backend=self.backend,
                )
        except (ValueError, KeyError, FormulationError) as exc:
            resp = MultiPeriodResponse(
                request_id=request.request_id, status=STATUS_ERROR, error=str(exc)
            )
            resp.solve_seconds = resp.latency_seconds = time.perf_counter() - t0
            self.metrics.record_response(resp.status, 0, False, resp.latency_seconds)
            return resp
        converged = all(s.converged for s in horizon.steps)
        resp = MultiPeriodResponse(
            request_id=request.request_id,
            status=STATUS_CONVERGED if converged else STATUS_ITERATION_LIMIT,
            objective=horizon.committed_cost,
            iterations=sum(s.iterations for s in horizon.steps),
            pres=0.0,
            dres=0.0,
            n_periods=len(horizon.steps),
            committed_cost=horizon.committed_cost,
            soc_trajectories={
                st.name: [float(v) for v in horizon.soc_trajectory(st.name)]
                for st in storages
            },
        )
        resp.solve_seconds = resp.latency_seconds = time.perf_counter() - t0
        self.metrics.solve_seconds += resp.solve_seconds
        self.metrics.record_response(
            resp.status, resp.iterations, False, resp.latency_seconds
        )
        return resp

    def _breaker_for(self, key: str) -> CircuitBreaker | None:
        if not self.resilience.breaker_enabled:
            return None
        breaker = self.breakers.get(key)
        if breaker is None:
            breaker = self.breakers[key] = CircuitBreaker(
                failure_threshold=self.resilience.breaker_failure_threshold,
                recovery_s=self.resilience.breaker_recovery_s,
            )
        return breaker

    def _deadline_expired(self, request: OPFRequest) -> bool:
        deadline = request.options.deadline_s
        if deadline is None:
            return False
        t0 = self._submit_times.get(id(request))
        return t0 is not None and time.perf_counter() - t0 > deadline

    def _retry_or_degrade(
        self, plan: TopologyPlan, problems: list[ScenarioProblem], diverged: list[int]
    ) -> tuple[list[OPFResponse], list[int]]:
        """Re-solve each diverged scenario alone (clean attempt, backoff per
        the retry policy); degrade survivors of exhausted retries to the
        reference LP.  Returns (responses, indices that never recovered)."""
        policy = self.resilience.retry
        responses: list[OPFResponse] = []
        still_failed: list[int] = []
        for k in diverged:
            p = problems[k]
            self.metrics.record_divergent()
            resp = None
            attempts = 1
            for attempt in range(1, policy.max_retries + 1):
                attempts += 1
                self.metrics.record_retry()
                delay = policy.delay(attempt)
                if delay > 0:
                    time.sleep(delay)
                self.injector.begin_attempt(attempt)
                with self.tracer.span("serve.retry", cat="serve", attempt=attempt):
                    retry_out = self._solve_stacked(plan, [p])
                self.metrics.solve_seconds += retry_out.solve_seconds
                if not retry_out.diverged:
                    resp = retry_out.responses[0]
                    resp.attempts = attempts
                    break
            if resp is None:
                still_failed.append(k)
                resp = self._degrade_or_error(p, attempts)
            responses.append(resp)
        self.injector.begin_attempt(0)
        return responses, still_failed

    def _degrade_or_error(self, p: ScenarioProblem, attempts: int) -> OPFResponse:
        req = p.request
        degradable = p.lp is not None or p.conic is not None
        if self.resilience.degrade_to_reference and degradable:
            with self.timers.measure("degrade"):
                if p.lp is not None:
                    ref = solve_reference(p.lp)
                else:
                    # Conic scenarios have no LP; the exact fallback is
                    # the HiGHS cutting-plane solve of the same model.
                    ref = solve_reference_socp(p.conic)
            self.metrics.record_degraded()
            resp = OPFResponse(
                request_id=req.request_id,
                status=STATUS_CONVERGED,
                objective=float(ref.objective),
                iterations=0,
                degraded=True,
                attempts=attempts,
            )
        else:
            resp = OPFResponse(
                request_id=req.request_id,
                status=STATUS_ERROR,
                error=f"batched solve diverged after {attempts} attempts",
                attempts=attempts,
            )
        resp.latency_seconds = self._latency(req)
        self.metrics.record_response(resp.status, 0, False, resp.latency_seconds)
        return resp

    def _latency(self, request: OPFRequest) -> float:
        t0 = self._submit_times.pop(id(request), None)
        return time.perf_counter() - t0 if t0 is not None else 0.0

    def _trace_modeled_batch(self, modeled, sizes_all, iterations: int, k_n: int) -> None:
        """Emit this batch's modeled GPU execution on the ``gpu-modeled``
        track: the simulated local-update kernel launch (block-level
        schedule, with occupancy in the span args) followed by aggregate
        global/dual spans scaled to the iterations actually run."""
        trc = self.tracer
        t = self._modeled_clock_s
        per_iter_args = {
            "iterations": iterations,
            "scenarios": k_n,
            "per_iteration_us": round(1e6 * modeled.total_s, 2),
        }
        trc.add_modeled(
            "gpu.global_update", t, modeled.global_s * iterations, args=per_iter_args
        )
        t += modeled.global_s * iterations
        # The local stage nests one simulated kernel launch (with its block
        # schedule and occupancy in the args) inside the iteration-scaled
        # aggregate span, so the three stages stay comparable in Perfetto.
        execution = simulate_local_update(
            self.device, sizes_all, KERNEL_SIM_THREADS, tracer=trc, t_start_s=t,
            itemsize=self.backend.policy.itemsize,
        )
        local_total = max(execution.time_s, modeled.local_s * iterations)
        trc.add_modeled("gpu.local_update", t, local_total, args=per_iter_args)
        t += local_total
        trc.add_modeled(
            "gpu.dual_update", t, modeled.dual_s * iterations, args=per_iter_args
        )
        t += modeled.dual_s * iterations
        self._modeled_clock_s = t

    def _solve_stacked(
        self, plan: TopologyPlan, problems: list[ScenarioProblem]
    ) -> _BatchOutcome:
        """One ADMM run over the union of K independent same-topology
        scenarios (scenario-major stacking), dispatched through the shared
        :class:`~repro.core.loop.ADMMLoop` under the engine's backend."""
        b = self.backend
        k_n = len(problems)
        n = plan.n_vars
        n_local = plan.n_local

        sizes_all = np.tile(plan.sizes, k_n)
        with self.timers.measure("stack"):
            strat = _make_stacked_strategy(self, plan, problems)

        # Warm starts: seed each scenario from its nearest cached neighbour.
        x = b.empty(k_n * n)
        z = b.empty(k_n * n_local)
        lam = b.empty(k_n * n_local)
        warm = np.zeros(k_n, dtype=bool)
        warm_dist = np.full(k_n, np.nan)
        with self.tracer.span("serve.warm_lookup", cat="serve", scenarios=k_n):
            for k, p in enumerate(problems):
                hit = (
                    self.cache.lookup(p.request.topology_key(), p.signature)
                    if self.warm_start
                    else None
                )
                gs, ls = slice(k * n, (k + 1) * n), slice(k * n_local, (k + 1) * n_local)
                if hit is not None:
                    entry, dist = hit
                    x[gs], z[ls], lam[ls] = entry.x, entry.z, entry.lam
                    warm[k], warm_dist[k] = True, dist
                else:
                    x[gs] = p.x0_default
                    z[ls] = p.x0_default[plan.global_cols]
                    lam[ls] = 0.0
        strat.bind_state(x, z, lam)

        # Stacked Algorithm 1 on the shared engine.  Per-scenario
        # termination, deadlines and divergence isolation live in the
        # strategy's residuals hook; the engine's history/balancing/stall
        # machinery is off (per-request options replace the ADMMConfig).
        loop = ADMMLoop(
            strat,
            _STACKED_CONFIG,
            backend=b,
            tracer=self.tracer,
            record_timers=False,
            record_history=False,
            watch_stall=False,
        )
        trc = self.tracer
        t_solve = time.perf_counter()
        outcome = loop.run(
            x, z, lam, budget=int(strat.budget_k.max()), rho=float(strat.rho_k[0])
        )
        t_end = time.perf_counter()
        iteration = outcome.iterations
        solve_seconds = t_end - t_solve
        self.timers.add("solve", solve_seconds)
        if trc:
            trc.add_complete(
                "serve.solve",
                t_solve,
                t_end,
                cat="serve",
                args={"scenarios": k_n, "iterations": iteration},
            )
        modeled = iteration_times_from_sizes(
            self.device, sizes_all, k_n * n, itemsize=b.policy.itemsize
        )
        self.metrics.record_modeled_gpu_iteration(modeled.total_s)
        if trc:
            self._trace_modeled_batch(modeled, sizes_all, iteration, k_n)

        # Results come off the backend as host fp64 (a view under NumPy
        # fp64, so the default path stays bit-identical).
        snap_x = b.to_numpy(strat.snap_x)
        snap_z = b.to_numpy(strat.snap_z)
        snap_lam = b.to_numpy(strat.snap_lam)
        iters, conv, timed_out = strat.iters, strat.conv, strat.timed_out
        responses = []
        for k, p in enumerate(problems):
            if strat.diverged[k]:
                # The caller owns diverged scenarios (retry, then degrade
                # or error) — no response, and latency is settled there.
                continue
            gs = slice(k * n, (k + 1) * n)
            ls = slice(k * n_local, (k + 1) * n_local)
            if conv[k]:
                status = STATUS_CONVERGED
            elif timed_out[k]:
                status = STATUS_TIMEOUT
            else:
                status = STATUS_ITERATION_LIMIT
            resp = OPFResponse(
                request_id=p.request.request_id,
                status=status,
                objective=None if timed_out[k] else float(p.cost @ snap_x[gs]),
                iterations=int(iters[k]) if iters[k] else iteration,
                pres=float(strat.pres_at[k]),
                dres=float(strat.dres_at[k]),
                warm_started=bool(warm[k]),
                warm_distance=float(warm_dist[k]) if warm[k] else None,
                solve_seconds=solve_seconds,
                latency_seconds=self._latency(p.request),
            )
            if timed_out[k]:
                resp.error = (
                    f"deadline_s={p.request.options.deadline_s} expired at "
                    f"iteration {int(iters[k])}"
                )
            if conv[k] and self.warm_start:
                self.cache.store(
                    p.request.topology_key(),
                    p.request.scenario_key(),
                    p.signature,
                    snap_x[gs],
                    snap_z[ls],
                    snap_lam[ls],
                    int(iters[k]),
                )
            self.metrics.record_response(
                resp.status, resp.iterations, resp.warm_started, resp.latency_seconds
            )
            responses.append(resp)
        return _BatchOutcome(
            responses=responses,
            iterations_run=iteration,
            solve_seconds=solve_seconds,
            diverged=[int(k) for k in np.flatnonzero(strat.diverged)],
        )
