"""Serving metrics: counters, batch occupancy, warm-start savings, latency.

One :class:`ServingMetrics` instance accompanies a
:class:`~repro.serve.engine.ScenarioEngine` for its lifetime;
:meth:`ServingMetrics.snapshot` exports everything as a flat dict for the
CLI table and the throughput benchmark.  Latencies are measured by the
engine with :mod:`repro.utils.timing` timers and recorded here per request
(submit-to-response, so queue wait is included).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


def _percentile(values: list[float], q: float) -> float:
    return float(np.percentile(np.asarray(values, dtype=float), q)) if values else 0.0


def _mean(values: list[float]) -> float:
    return float(np.mean(np.asarray(values, dtype=float))) if values else 0.0


@dataclass
class ServingMetrics:
    """Aggregated serving statistics (reset-free, monotone counters)."""

    submitted: int = 0
    served: int = 0
    rejected: int = 0
    errors: int = 0
    converged: int = 0
    iteration_limit: int = 0

    n_batches: int = 0
    batch_sizes: list[int] = field(default_factory=list)
    max_batch: int = 0  # set by the engine; occupancy denominator

    warm_iterations: list[int] = field(default_factory=list)
    cold_iterations: list[int] = field(default_factory=list)

    factorizations_computed: int = 0
    factorizations_reused: int = 0

    latencies_s: list[float] = field(default_factory=list)
    solve_seconds: float = 0.0
    wall_seconds: float = 0.0
    modeled_gpu_iteration_s: list[float] = field(default_factory=list)

    # ------------------------------------------------------------------
    # Recording hooks (called by the engine)
    # ------------------------------------------------------------------
    def record_submit(self, accepted: bool) -> None:
        self.submitted += 1
        if not accepted:
            self.rejected += 1

    def record_batch(self, size: int) -> None:
        self.n_batches += 1
        self.batch_sizes.append(int(size))

    def record_response(
        self, status: str, iterations: int, warm: bool, latency_s: float
    ) -> None:
        self.served += 1
        self.latencies_s.append(float(latency_s))
        if status == "converged":
            self.converged += 1
            (self.warm_iterations if warm else self.cold_iterations).append(
                int(iterations)
            )
        elif status == "iteration_limit":
            self.iteration_limit += 1
        else:
            self.errors += 1

    def record_factorizations(self, computed: int, reused: int) -> None:
        self.factorizations_computed += int(computed)
        self.factorizations_reused += int(reused)

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def batch_occupancy(self) -> float:
        """Mean fill fraction of dispatched batches (1.0 = always full)."""
        if not self.batch_sizes or self.max_batch < 1:
            return 0.0
        return float(np.mean(self.batch_sizes)) / self.max_batch

    @property
    def mean_warm_iterations(self) -> float:
        return _mean(self.warm_iterations)

    @property
    def mean_cold_iterations(self) -> float:
        return _mean(self.cold_iterations)

    @property
    def warm_start_iteration_savings(self) -> float:
        """Relative iteration reduction of warm over cold starts (0..1)."""
        cold = self.mean_warm_iterations, self.mean_cold_iterations
        if not self.warm_iterations or not self.cold_iterations or cold[1] == 0:
            return 0.0
        return 1.0 - cold[0] / cold[1]

    @property
    def scenarios_per_second(self) -> float:
        return self.served / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def snapshot(self, cache_stats: dict | None = None) -> dict:
        """Flat dict export for the CLI summary and benchmarks."""
        snap = {
            "submitted": self.submitted,
            "served": self.served,
            "rejected": self.rejected,
            "converged": self.converged,
            "iteration_limit": self.iteration_limit,
            "errors": self.errors,
            "n_batches": self.n_batches,
            "batch_occupancy": round(self.batch_occupancy, 4),
            "mean_warm_iterations": round(self.mean_warm_iterations, 1),
            "mean_cold_iterations": round(self.mean_cold_iterations, 1),
            "warm_start_iteration_savings": round(self.warm_start_iteration_savings, 4),
            "factorizations_computed": self.factorizations_computed,
            "factorizations_reused": self.factorizations_reused,
            "latency_p50_ms": round(1e3 * _percentile(self.latencies_s, 50), 3),
            "latency_p90_ms": round(1e3 * _percentile(self.latencies_s, 90), 3),
            "latency_p99_ms": round(1e3 * _percentile(self.latencies_s, 99), 3),
            "solve_seconds": round(self.solve_seconds, 4),
            "wall_seconds": round(self.wall_seconds, 4),
            "scenarios_per_second": round(self.scenarios_per_second, 2),
            "modeled_gpu_iteration_us": round(
                1e6 * _mean(self.modeled_gpu_iteration_s), 2
            ),
        }
        if cache_stats is not None:
            snap.update({f"cache_{k}": v for k, v in cache_stats.items()})
        return snap
