"""Serving metrics: counters, batch occupancy, warm-start savings, latency.

One :class:`ServingMetrics` instance accompanies a
:class:`~repro.serve.engine.ScenarioEngine` for its lifetime;
:meth:`ServingMetrics.snapshot` exports everything as a flat dict for the
CLI table and the throughput benchmark.  Latencies are measured by the
engine (submit-to-response, so queue wait is included).

All distribution-valued quantities (latency, queue wait, batch size,
warm/cold iteration counts, modeled GPU iteration time) are
:class:`~repro.telemetry.ReservoirHistogram` sketches on a shared
:class:`~repro.telemetry.MetricsRegistry` — bounded memory no matter how
long the server runs, with exact counts/means and reservoir percentiles.
"""

from __future__ import annotations

from repro.telemetry.metrics import MetricsRegistry, ReservoirHistogram

#: Reservoir bound for every serving histogram: large enough that
#: percentiles are exact for benchmark-scale runs, constant-memory beyond.
RESERVOIR_SAMPLES = 4096


class ServingMetrics:
    """Aggregated serving statistics (reset-free, monotone counters)."""

    def __init__(self, max_batch: int = 0, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self.max_batch = max_batch  # occupancy denominator, set by the engine
        reg = self.registry
        self._submitted = reg.counter("serve.submitted")
        self._served = reg.counter("serve.served")
        self._rejected = reg.counter("serve.rejected")
        self._errors = reg.counter("serve.errors")
        self._converged = reg.counter("serve.converged")
        self._iteration_limit = reg.counter("serve.iteration_limit")
        self._n_batches = reg.counter("serve.n_batches")
        self._factorizations_computed = reg.counter("serve.factorizations_computed")
        self._factorizations_reused = reg.counter("serve.factorizations_reused")
        # Resilience counters (docs/RESILIENCE.md): retries of diverged
        # solves, degradations to the reference LP, divergent scenarios,
        # deadline timeouts, breaker trips and breaker-rejected requests.
        self._retries = reg.counter("solve.retry")
        self._breaker_opened = reg.counter("breaker.open")
        self._degraded = reg.counter("serve.degraded")
        self._divergent = reg.counter("serve.divergent")
        self._timeouts = reg.counter("serve.timeouts")
        self._breaker_rejections = reg.counter("serve.breaker_rejections")
        self._queue_depth = reg.gauge("serve.queue_depth")
        self._retry_after = reg.gauge("serve.backpressure_retry_after_s")
        # Stochastic workloads (docs/STOCHASTIC.md): scenario-set requests
        # expanded into ADMM batches, and rolling-horizon schedules.
        self._stochastic_requests = reg.counter("stochastic.requests")
        self._stochastic_scenarios = reg.counter("stochastic.scenarios")
        self._multiperiod_requests = reg.counter("stochastic.multiperiod_requests")

        def hist(name: str) -> ReservoirHistogram:
            return reg.histogram(name, max_samples=RESERVOIR_SAMPLES)

        self.batch_sizes = hist("serve.batch_size")
        self.stochastic_scenarios_per_request = hist("stochastic.scenarios_per_request")
        self.warm_iterations = hist("serve.warm_iterations")
        self.cold_iterations = hist("serve.cold_iterations")
        self.latencies_s = hist("serve.latency_s")
        self.queue_wait_s = hist("serve.queue_wait_s")
        self.modeled_gpu_iteration_s = hist("serve.modeled_gpu_iteration_s")
        self.solve_seconds = 0.0
        self.wall_seconds = 0.0

    # ------------------------------------------------------------------
    # Counter views (kept as attributes-like properties for callers)
    # ------------------------------------------------------------------
    @property
    def submitted(self) -> int:
        return self._submitted.value

    @property
    def served(self) -> int:
        return self._served.value

    @property
    def rejected(self) -> int:
        return self._rejected.value

    @property
    def errors(self) -> int:
        return self._errors.value

    @property
    def converged(self) -> int:
        return self._converged.value

    @property
    def iteration_limit(self) -> int:
        return self._iteration_limit.value

    @property
    def n_batches(self) -> int:
        return self._n_batches.value

    @property
    def factorizations_computed(self) -> int:
        return self._factorizations_computed.value

    @property
    def factorizations_reused(self) -> int:
        return self._factorizations_reused.value

    @property
    def retries(self) -> int:
        return self._retries.value

    @property
    def breaker_opened(self) -> int:
        return self._breaker_opened.value

    @property
    def degraded(self) -> int:
        return self._degraded.value

    @property
    def divergent(self) -> int:
        return self._divergent.value

    @property
    def timeouts(self) -> int:
        return self._timeouts.value

    @property
    def breaker_rejections(self) -> int:
        return self._breaker_rejections.value

    # ------------------------------------------------------------------
    # Recording hooks (called by the engine)
    # ------------------------------------------------------------------
    def record_submit(self, accepted: bool) -> None:
        self._submitted.inc()
        if not accepted:
            self._rejected.inc()

    def record_batch(self, size: int) -> None:
        self._n_batches.inc()
        self.batch_sizes.observe(int(size))

    def record_queue_wait(self, seconds: float) -> None:
        self.queue_wait_s.observe(float(seconds))

    def record_response(
        self, status: str, iterations: int, warm: bool, latency_s: float
    ) -> None:
        self._served.inc()
        self.latencies_s.observe(float(latency_s))
        if status == "converged":
            self._converged.inc()
            if iterations > 0:  # degraded responses carry no ADMM iterations
                target = self.warm_iterations if warm else self.cold_iterations
                target.observe(int(iterations))
        elif status == "iteration_limit":
            self._iteration_limit.inc()
        elif status == "timeout":
            self._timeouts.inc()
        elif status == "rejected":
            self._rejected.inc()
        else:
            self._errors.inc()

    def record_retry(self) -> None:
        self._retries.inc()

    def record_divergent(self) -> None:
        self._divergent.inc()

    def record_degraded(self) -> None:
        self._degraded.inc()

    def record_breaker_open(self) -> None:
        self._breaker_opened.inc()

    def record_breaker_rejection(self) -> None:
        self._breaker_rejections.inc()

    def record_backpressure(self, queue_depth: int, retry_after_s: float) -> None:
        self._queue_depth.set(queue_depth)
        self._retry_after.set(retry_after_s)

    def record_factorizations(self, computed: int, reused: int) -> None:
        self._factorizations_computed.inc(int(computed))
        self._factorizations_reused.inc(int(reused))

    def record_modeled_gpu_iteration(self, seconds: float) -> None:
        self.modeled_gpu_iteration_s.observe(float(seconds))

    def record_stochastic(self, n_scenarios: int) -> None:
        self._stochastic_requests.inc()
        self._stochastic_scenarios.inc(int(n_scenarios))
        self.stochastic_scenarios_per_request.observe(int(n_scenarios))

    def record_multiperiod(self) -> None:
        self._multiperiod_requests.inc()

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def batch_occupancy(self) -> float:
        """Mean fill fraction of dispatched batches (1.0 = always full)."""
        if not self.batch_sizes.count or self.max_batch < 1:
            return 0.0
        return self.batch_sizes.mean / self.max_batch

    @property
    def mean_warm_iterations(self) -> float:
        return self.warm_iterations.mean

    @property
    def mean_cold_iterations(self) -> float:
        return self.cold_iterations.mean

    @property
    def warm_start_iteration_savings(self) -> float:
        """Relative iteration reduction of warm over cold starts (0..1)."""
        mean_warm = self.mean_warm_iterations
        mean_cold = self.mean_cold_iterations
        no_data = not self.warm_iterations.count or not self.cold_iterations.count
        if no_data or mean_cold == 0.0:
            return 0.0
        return 1.0 - mean_warm / mean_cold

    @property
    def scenarios_per_second(self) -> float:
        return self.served / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def snapshot(self, cache_stats: dict | None = None) -> dict:
        """Flat dict export for the CLI summary and benchmarks."""
        snap = {
            "submitted": self.submitted,
            "served": self.served,
            "rejected": self.rejected,
            "converged": self.converged,
            "iteration_limit": self.iteration_limit,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "retries": self.retries,
            "divergent": self.divergent,
            "degraded": self.degraded,
            "breaker_opened": self.breaker_opened,
            "breaker_rejections": self.breaker_rejections,
            "queue_depth": int(self._queue_depth.value),
            "backpressure_retry_after_s": round(self._retry_after.value, 4),
            "n_batches": self.n_batches,
            "batch_occupancy": round(self.batch_occupancy, 4),
            "mean_warm_iterations": round(self.mean_warm_iterations, 1),
            "mean_cold_iterations": round(self.mean_cold_iterations, 1),
            "warm_start_iteration_savings": round(self.warm_start_iteration_savings, 4),
            "factorizations_computed": self.factorizations_computed,
            "factorizations_reused": self.factorizations_reused,
            "queue_wait_p50_ms": round(1e3 * self.queue_wait_s.percentile(50), 3),
            "latency_p50_ms": round(1e3 * self.latencies_s.percentile(50), 3),
            "latency_p90_ms": round(1e3 * self.latencies_s.percentile(90), 3),
            "latency_p99_ms": round(1e3 * self.latencies_s.percentile(99), 3),
            "solve_seconds": round(self.solve_seconds, 4),
            "wall_seconds": round(self.wall_seconds, 4),
            "scenarios_per_second": round(self.scenarios_per_second, 2),
            "modeled_gpu_iteration_us": round(
                1e6 * self.modeled_gpu_iteration_s.mean, 2
            ),
            "stochastic_requests": self._stochastic_requests.value,
            "stochastic_scenarios": self._stochastic_scenarios.value,
            "multiperiod_requests": self._multiperiod_requests.value,
        }
        if cache_stats is not None:
            snap.update({f"cache_{k}": v for k, v in cache_stats.items()})
        return snap
