"""LRU warm-start cache over converged ADMM states.

ADMM restarted from the converged ``(x, z, lam)`` of a *nearby* scenario
converges in a fraction of the cold iteration count (the repo's
dynamic-reconfiguration examples exploit the same property across topology
changes; here it is exploited across scenarios).  The cache stores one
entry per distinct scenario, keyed by topology so entries are only offered
to requests whose stacked dimensions match, and nearest-neighbour lookup
runs on the scenario's *load signature* — the perturbed per-load reference
consumption vector, the quantity the optimum actually moves with.

Signature distances are computed through the :class:`~repro.backend.Backend`
norm (fp64-accumulated), so the cache obeys the same backend discipline as
the solve path it feeds.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.backend import resolve_backend
from repro.backend.policy import HOST_DTYPE


@dataclass
class WarmStartEntry:
    """A converged state and the load signature it was solved at."""

    signature: np.ndarray
    x: np.ndarray
    z: np.ndarray
    lam: np.ndarray
    iterations: int  # iterations the producing solve took


@dataclass
class CacheStats:
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    stores: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "stores": self.stores,
            "hit_rate": self.hit_rate,
        }


@dataclass
class WarmStartCache:
    """Bounded LRU cache of converged states, grouped by topology key.

    ``capacity`` bounds the *total* entry count across topologies; the
    least-recently-used entry anywhere is evicted first.  Lookups scan the
    requested topology's entries for the nearest signature in Euclidean
    distance — topologies are small (tens of cached scenarios), so the
    linear scan is not a bottleneck next to an ADMM solve.
    """

    capacity: int = 64
    backend: object = None
    stats: CacheStats = field(default_factory=CacheStats)
    _entries: OrderedDict = field(default_factory=OrderedDict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be at least 1")
        if self.backend is None:
            self.backend = resolve_backend(None, None)

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(
        self, topology_key: str, signature: np.ndarray
    ) -> tuple[WarmStartEntry, float] | None:
        """Nearest cached entry for this topology, or ``None``.

        Returns ``(entry, distance)``; the hit is refreshed in LRU order.
        """
        signature = np.asarray(signature, dtype=HOST_DTYPE)
        best_key = None
        best_dist = np.inf
        for key, entry in self._entries.items():
            if key[0] != topology_key or entry.signature.shape != signature.shape:
                continue
            dist = self.backend.norm(entry.signature - signature)
            if dist < best_dist:
                best_key, best_dist = key, dist
        if best_key is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._entries.move_to_end(best_key)
        return self._entries[best_key], best_dist

    def store(
        self,
        topology_key: str,
        scenario_key: str,
        signature: np.ndarray,
        x: np.ndarray,
        z: np.ndarray,
        lam: np.ndarray,
        iterations: int,
    ) -> None:
        """Insert (or refresh) one converged state, evicting LRU overflow."""
        key = (topology_key, scenario_key)
        self._entries[key] = WarmStartEntry(
            signature=np.asarray(signature, dtype=HOST_DTYPE).copy(),
            x=np.asarray(x, dtype=HOST_DTYPE).copy(),
            z=np.asarray(z, dtype=HOST_DTYPE).copy(),
            lam=np.asarray(lam, dtype=HOST_DTYPE).copy(),
            iterations=int(iterations),
        )
        self._entries.move_to_end(key)
        self.stats.stores += 1
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def export_topology(self, topology_keys: set[str] | None = None) -> list[dict]:
        """Serialize entries for handoff to another cache.

        ``topology_keys`` restricts the export to the given topologies;
        ``None`` exports everything.  The payload is a list of plain dicts
        (arrays stay numpy — handoff crosses process boundaries via pickle,
        which round-trips ndarrays bit-exactly).  Entries are emitted in LRU
        order (oldest first) so importing preserves recency.
        """
        out = []
        for (tkey, skey), entry in self._entries.items():
            if topology_keys is not None and tkey not in topology_keys:
                continue
            out.append(
                {
                    "topology_key": tkey,
                    "scenario_key": skey,
                    "signature": entry.signature,
                    "x": entry.x,
                    "z": entry.z,
                    "lam": entry.lam,
                    "iterations": entry.iterations,
                }
            )
        return out

    def import_entries(self, entries: list[dict]) -> int:
        """Install exported entries; returns how many were stored.

        Goes through :meth:`store`, so capacity/LRU/stats accounting applies
        exactly as if the states had been produced locally.
        """
        for item in entries:
            self.store(
                item["topology_key"],
                item["scenario_key"],
                item["signature"],
                item["x"],
                item["z"],
                item["lam"],
                item["iterations"],
            )
        return len(entries)
