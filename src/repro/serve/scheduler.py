"""Bounded request queue and same-topology batch scheduler.

The queue applies *backpressure*: a submit against a full queue raises
:class:`QueueFullError` (the engine converts it into a ``rejected``
response) instead of growing without bound — under sustained overload the
caller learns immediately rather than watching latency diverge.

The scheduler drains the queue in FIFO order with a batch window: the
oldest waiting request fixes the topology key, and up to ``max_batch``
requests with the same key are pulled out of the queue (skipping, but not
reordering, requests on other topologies).  Same-key requests share a
plan's precomputed factorizations and are dispatched as one padded batch
through the batched projection kernels, so the window is what converts a
stream of single scenarios into the paper's batched-kernel shape.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.serve.requests import OPFRequest
from repro.utils.exceptions import ReproError


class QueueFullError(ReproError):
    """Raised on submit when the bounded request queue is at capacity.

    Carries machine-readable backpressure information so callers can back
    off intelligently instead of parsing the message:

    Attributes
    ----------
    queue_depth:
        Requests waiting at rejection time (== ``maxsize`` by definition).
    maxsize:
        The queue's capacity bound.
    retry_after_s:
        Suggested wait before retrying, derived from the engine's recent
        batch latency.  Never negative; 0.0 means "no estimate yet" (the
        engine has served no batch, so throughput is still unknown).
    """

    def __init__(self, queue_depth: int, maxsize: int, retry_after_s: float = 0.0):
        self.queue_depth = int(queue_depth)
        self.maxsize = int(maxsize)
        # Clamp: a stale or miscomputed hint must never tell callers to
        # retry "in the past" — zero (retry whenever) is the safe floor.
        self.retry_after_s = max(0.0, float(retry_after_s))
        super().__init__(
            f"request queue full ({self.queue_depth}/{self.maxsize} waiting); "
            f"retry in {self.retry_after_s:.3f}s"
        )


@dataclass
class BoundedRequestQueue:
    """FIFO queue with a hard capacity bound.

    ``retry_after_hint`` is the backoff suggestion attached to rejections;
    the engine keeps it fresh with an EWMA of recent batch latency.
    """

    maxsize: int = 256
    retry_after_hint: float = 0.0
    _items: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.maxsize < 1:
            raise ValueError("maxsize must be at least 1")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.maxsize

    def submit(self, request: OPFRequest) -> None:
        """Enqueue or raise :class:`QueueFullError` (backpressure)."""
        if self.full:
            raise QueueFullError(
                queue_depth=len(self._items),
                maxsize=self.maxsize,
                retry_after_s=self.retry_after_hint,
            )
        self._items.append(request)

    def peek(self) -> OPFRequest | None:
        return self._items[0] if self._items else None

    def drain_all(self) -> list[OPFRequest]:
        """Remove and return everything waiting (fleet failover recovery)."""
        items = list(self._items)
        self._items.clear()
        return items

    def requeue_front(self, requests: list[OPFRequest]) -> None:
        """Put ``requests`` back at the head of the queue, preserving their
        relative order — used to restore an in-flight batch that was taken
        out but never served (a fleet worker crashing mid-dispatch).  The
        capacity bound is deliberately not enforced here: these requests
        were already admitted once and must not be dropped."""
        self._items.extendleft(reversed(requests))

    def drain_matching(self, topology_key: str, limit: int) -> list[OPFRequest]:
        """Remove and return up to ``limit`` requests with ``topology_key``,
        preserving the relative order of everything left behind."""
        taken: list[OPFRequest] = []
        kept: deque = deque()
        while self._items:
            req = self._items.popleft()
            if len(taken) < limit and req.topology_key() == topology_key:
                taken.append(req)
            else:
                kept.append(req)
        self._items = kept
        return taken


@dataclass
class BatchScheduler:
    """Groups queued requests into same-topology batches of bounded size."""

    queue: BoundedRequestQueue
    max_batch: int = 16

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")

    def next_batch(self) -> list[OPFRequest]:
        """The next dispatch group: oldest request's topology, up to
        ``max_batch`` members.  Empty list when the queue is empty."""
        head = self.queue.peek()
        if head is None:
            return []
        return self.queue.drain_matching(head.topology_key(), self.max_batch)
