"""Bounded request queue and same-topology batch scheduler.

The queue applies *backpressure*: a submit against a full queue raises
:class:`QueueFullError` (the engine converts it into a ``rejected``
response) instead of growing without bound — under sustained overload the
caller learns immediately rather than watching latency diverge.

The scheduler drains the queue in FIFO order with a batch window: the
oldest waiting request fixes the topology key, and up to ``max_batch``
requests with the same key are pulled out of the queue (skipping, but not
reordering, requests on other topologies).  Same-key requests share a
plan's precomputed factorizations and are dispatched as one padded batch
through the batched projection kernels, so the window is what converts a
stream of single scenarios into the paper's batched-kernel shape.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.serve.requests import OPFRequest
from repro.utils.exceptions import ReproError


class QueueFullError(ReproError):
    """Raised on submit when the bounded request queue is at capacity."""


@dataclass
class BoundedRequestQueue:
    """FIFO queue with a hard capacity bound."""

    maxsize: int = 256
    _items: deque = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.maxsize < 1:
            raise ValueError("maxsize must be at least 1")

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return len(self._items) >= self.maxsize

    def submit(self, request: OPFRequest) -> None:
        """Enqueue or raise :class:`QueueFullError` (backpressure)."""
        if self.full:
            raise QueueFullError(
                f"request queue full ({self.maxsize} waiting); retry later"
            )
        self._items.append(request)

    def peek(self) -> OPFRequest | None:
        return self._items[0] if self._items else None

    def drain_matching(self, topology_key: str, limit: int) -> list[OPFRequest]:
        """Remove and return up to ``limit`` requests with ``topology_key``,
        preserving the relative order of everything left behind."""
        taken: list[OPFRequest] = []
        kept: deque = deque()
        while self._items:
            req = self._items.popleft()
            if len(taken) < limit and req.topology_key() == topology_key:
                taken.append(req)
            else:
                kept.append(req)
        self._items = kept
        return taken


@dataclass
class BatchScheduler:
    """Groups queued requests into same-topology batches of bounded size."""

    queue: BoundedRequestQueue
    max_batch: int = 16

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError("max_batch must be at least 1")

    def next_batch(self) -> list[OPFRequest]:
        """The next dispatch group: oldest request's topology, up to
        ``max_batch`` members.  Empty list when the queue is empty."""
        head = self.queue.peek()
        if head is None:
            return []
        return self.queue.drain_matching(head.topology_key(), self.max_batch)
