"""Batched scenario-serving engine over the solver-free ADMM.

Turns the single-problem solver into a multi-scenario service: requests
(load/DER/limit perturbations on a feeder) are queued, grouped by topology,
warm-started from an LRU cache of converged states, and dispatched as one
stacked batch through the batched projection kernels.  See docs/SERVING.md.
"""

from repro.serve.engine import ScenarioEngine, ScenarioProblem, TopologyPlan
from repro.serve.metrics import ServingMetrics
from repro.serve.requests import (
    STATUS_CONVERGED,
    STATUS_ERROR,
    STATUS_ITERATION_LIMIT,
    STATUS_REJECTED,
    STATUS_TIMEOUT,
    MultiPeriodRequest,
    MultiPeriodResponse,
    OPFRequest,
    OPFResponse,
    SolveOptions,
    StochasticRequest,
    StochasticResponse,
    load_requests_json,
    save_requests_json,
)
from repro.serve.scheduler import BatchScheduler, BoundedRequestQueue, QueueFullError
from repro.serve.warmstart import CacheStats, WarmStartCache, WarmStartEntry

__all__ = [
    "ScenarioEngine",
    "TopologyPlan",
    "ScenarioProblem",
    "OPFRequest",
    "OPFResponse",
    "StochasticRequest",
    "StochasticResponse",
    "MultiPeriodRequest",
    "MultiPeriodResponse",
    "SolveOptions",
    "STATUS_CONVERGED",
    "STATUS_ITERATION_LIMIT",
    "STATUS_REJECTED",
    "STATUS_TIMEOUT",
    "STATUS_ERROR",
    "load_requests_json",
    "save_requests_json",
    "WarmStartCache",
    "WarmStartEntry",
    "CacheStats",
    "BoundedRequestQueue",
    "BatchScheduler",
    "QueueFullError",
    "ServingMetrics",
]
