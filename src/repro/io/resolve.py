"""Feeder reference resolution shared by the CLI and the serving engine.

A *feeder reference* is a string naming either a builtin feeder
(``"ieee13"``, ``"ieee123"``, ``"ieee8500"``), a feeder ``.json`` file, or
a CSV feeder directory.  Builtin references are deterministic — the same
string always builds the same network — which is what lets serving
requests key shared precomputation on the reference alone.
"""

from __future__ import annotations

from pathlib import Path

from repro.feeders import ieee13, ieee123, ieee8500
from repro.io.csv_feeder import load_network_csv
from repro.io.feeder_json import load_network
from repro.network.network import DistributionNetwork

BUILTIN_FEEDERS = {"ieee13": ieee13, "ieee123": ieee123, "ieee8500": ieee8500}


def resolve_feeder(spec: str) -> DistributionNetwork:
    """Build the network a feeder reference names.

    Raises
    ------
    ValueError
        If the reference is neither a builtin name, a ``.json`` file, nor a
        CSV directory.
    """
    if spec in BUILTIN_FEEDERS:
        return BUILTIN_FEEDERS[spec]()
    path = Path(spec)
    if path.is_dir():
        return load_network_csv(path)
    if path.suffix == ".json" and path.exists():
        return load_network(path)
    raise ValueError(
        f"unknown feeder {spec!r}: expected one of {sorted(BUILTIN_FEEDERS)}, "
        f"a .json file, or a CSV directory"
    )
