"""Feeder reference resolution shared by the CLI and the serving engine.

A *feeder reference* is a string naming either a builtin feeder
(``"ieee13"``, ``"ieee13-der"``, ``"ieee34"``, ``"ieee123"``, ``"ieee8500"``), a parameterized synthetic
feeder (``"synthetic:<n_buses>[:<seed>]"``), a feeder ``.json`` file, or
a CSV feeder directory.  Builtin and synthetic references are
deterministic — the same string always builds the same network — which is
what lets serving requests key shared precomputation on the reference
alone, and what lets the fleet's consistent-hash router assign every
reference a stable worker.
"""

from __future__ import annotations

from pathlib import Path

from repro.feeders import ieee13, ieee13_der, ieee34, ieee123, ieee8500
from repro.feeders.synthetic import SyntheticFeederSpec, build_synthetic_feeder
from repro.io.csv_feeder import load_network_csv
from repro.io.feeder_json import load_network
from repro.network.network import DistributionNetwork

BUILTIN_FEEDERS = {
    "ieee13": ieee13,
    "ieee13-der": ieee13_der,
    "ieee34": ieee34,
    "ieee123": ieee123,
    "ieee8500": ieee8500,
}

#: Prefix of parameterized synthetic feeder references.
SYNTHETIC_PREFIX = "synthetic:"


def _resolve_synthetic(spec: str) -> DistributionNetwork:
    """``synthetic:<n_buses>[:<seed>]`` -> a deterministic generated feeder."""
    parts = spec.split(":")
    try:
        n_buses = int(parts[1])
        seed = int(parts[2]) if len(parts) > 2 else 0
        if len(parts) > 3:
            raise ValueError
    except (IndexError, ValueError):
        raise ValueError(
            f"malformed synthetic feeder reference {spec!r}: "
            "expected synthetic:<n_buses>[:<seed>]"
        ) from None
    return build_synthetic_feeder(
        SyntheticFeederSpec(name=spec, n_buses=n_buses, seed=seed)
    )


def resolve_feeder(spec: str) -> DistributionNetwork:
    """Build the network a feeder reference names.

    Raises
    ------
    ValueError
        If the reference is neither a builtin name, a synthetic reference,
        a ``.json`` file, nor a CSV directory.
    """
    if spec in BUILTIN_FEEDERS:
        return BUILTIN_FEEDERS[spec]()
    if spec.startswith(SYNTHETIC_PREFIX):
        return _resolve_synthetic(spec)
    path = Path(spec)
    if path.is_dir():
        return load_network_csv(path)
    if path.suffix == ".json" and path.exists():
        return load_network(path)
    raise ValueError(
        f"unknown feeder {spec!r}: expected one of {sorted(BUILTIN_FEEDERS)}, "
        f"synthetic:<n_buses>[:<seed>], a .json file, or a CSV directory"
    )
