"""Export of assembled problems and solve results.

* :func:`save_lp_npz` / :func:`load_lp_npz` round-trip the centralized LP's
  numerical data (A, b, c, bounds) for external tooling.
* :func:`result_to_dict` flattens an :class:`ADMMResult` (with residual
  history) for JSON logging by the benchmark harness.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import scipy.sparse as sp

from repro.core.results import ADMMResult
from repro.formulation.centralized import CentralizedLP


def save_lp_npz(lp: CentralizedLP, path: str | Path) -> None:
    """Save the LP's numerical payload to a compressed ``.npz``."""
    a = lp.a_matrix.tocoo()
    np.savez_compressed(
        path,
        a_row=a.row,
        a_col=a.col,
        a_data=a.data,
        a_shape=np.array(a.shape),
        b=lp.b_vector,
        c=lp.cost,
        lb=lp.lb,
        ub=lp.ub,
    )


def load_lp_npz(path: str | Path) -> dict:
    """Load the numerical payload saved by :func:`save_lp_npz`.

    Returns a dict with ``a`` (CSR), ``b``, ``c``, ``lb``, ``ub`` — the
    symbolic structure (variable keys, rows) is not round-tripped.
    """
    with np.load(path) as data:
        a = sp.csr_matrix(
            (data["a_data"], (data["a_row"], data["a_col"])),
            shape=tuple(data["a_shape"]),
        )
        return {
            "a": a,
            "b": data["b"].copy(),
            "c": data["c"].copy(),
            "lb": data["lb"].copy(),
            "ub": data["ub"].copy(),
        }


def result_to_dict(result: ADMMResult, include_vectors: bool = False) -> dict:
    """JSON-compatible summary of a solve result."""
    out = {
        "algorithm": result.algorithm,
        "objective": result.objective,
        "iterations": result.iterations,
        "converged": result.converged,
        "pres": result.pres,
        "dres": result.dres,
        "timers": dict(result.timers),
    }
    if result.history is not None:
        out["history"] = {k: v.tolist() for k, v in result.history.arrays().items()}
    if include_vectors:
        out["x"] = result.x.tolist()
    return out


def save_result(result: ADMMResult, path: str | Path, include_vectors: bool = False) -> None:
    """Write a result summary as JSON."""
    Path(path).write_text(json.dumps(result_to_dict(result, include_vectors)))
