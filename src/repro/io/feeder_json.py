"""JSON serialization of :class:`DistributionNetwork`.

A stable, versioned on-disk format so downstream users can exchange feeder
models without re-running the generators.  Arrays are stored as nested
lists; phases as lists of ints; enums by value.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.network.components import Bus, Connection, Generator, Line, Load
from repro.network.network import DistributionNetwork
from repro.utils.exceptions import NetworkValidationError

FORMAT_VERSION = 1


def _arr(a: np.ndarray) -> list:
    return np.asarray(a).tolist()


def network_to_dict(net: DistributionNetwork) -> dict:
    """Serialize a network to a JSON-compatible dict."""
    return {
        "format_version": FORMAT_VERSION,
        "name": net.name,
        "mva_base": net.mva_base,
        "kv_base": net.kv_base,
        "substation": net.substation,
        "buses": [
            {
                "name": b.name,
                "phases": list(b.phases),
                "w_min": _arr(b.w_min),
                "w_max": _arr(b.w_max),
                "g_sh": _arr(b.g_sh),
                "b_sh": _arr(b.b_sh),
            }
            for b in net.buses.values()
        ],
        "lines": [
            {
                "name": l.name,
                "from_bus": l.from_bus,
                "to_bus": l.to_bus,
                "phases": list(l.phases),
                "r": _arr(l.r),
                "x": _arr(l.x),
                "g_sh_fr": _arr(l.g_sh_fr),
                "b_sh_fr": _arr(l.b_sh_fr),
                "g_sh_to": _arr(l.g_sh_to),
                "b_sh_to": _arr(l.b_sh_to),
                "tap": _arr(l.tap),
                "p_min": _arr(l.p_min),
                "p_max": _arr(l.p_max),
                "q_min": _arr(l.q_min),
                "q_max": _arr(l.q_max),
                "is_transformer": l.is_transformer,
            }
            for l in net.lines.values()
        ],
        "generators": [
            {
                "name": g.name,
                "bus": g.bus,
                "phases": list(g.phases),
                "p_min": _arr(g.p_min),
                "p_max": _arr(g.p_max),
                "q_min": _arr(g.q_min),
                "q_max": _arr(g.q_max),
                "cost": g.cost,
            }
            for g in net.generators.values()
        ],
        "loads": [
            {
                "name": l.name,
                "bus": l.bus,
                "phases": list(l.phases),
                "connection": l.connection.value,
                "p_ref": _arr(l.p_ref),
                "q_ref": _arr(l.q_ref),
                "alpha": _arr(l.alpha),
                "beta": _arr(l.beta),
            }
            for l in net.loads.values()
        ],
    }


def network_from_dict(data: dict) -> DistributionNetwork:
    """Reconstruct a network from :func:`network_to_dict` output.

    Raises
    ------
    NetworkValidationError
        On unknown format versions or invalid component data.
    """
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise NetworkValidationError(f"unsupported feeder format version {version!r}")
    net = DistributionNetwork(
        name=data["name"], mva_base=data["mva_base"], kv_base=data["kv_base"]
    )
    for b in data["buses"]:
        net.add_bus(
            Bus(
                b["name"],
                tuple(b["phases"]),
                w_min=np.array(b["w_min"]),
                w_max=np.array(b["w_max"]),
                g_sh=np.array(b["g_sh"]),
                b_sh=np.array(b["b_sh"]),
            )
        )
    for l in data["lines"]:
        net.add_line(
            Line(
                l["name"],
                from_bus=l["from_bus"],
                to_bus=l["to_bus"],
                phases=tuple(l["phases"]),
                r=np.array(l["r"]),
                x=np.array(l["x"]),
                g_sh_fr=np.array(l["g_sh_fr"]),
                b_sh_fr=np.array(l["b_sh_fr"]),
                g_sh_to=np.array(l["g_sh_to"]),
                b_sh_to=np.array(l["b_sh_to"]),
                tap=np.array(l["tap"]),
                p_min=np.array(l["p_min"]),
                p_max=np.array(l["p_max"]),
                q_min=np.array(l["q_min"]),
                q_max=np.array(l["q_max"]),
                is_transformer=l["is_transformer"],
            )
        )
    for g in data["generators"]:
        net.add_generator(
            Generator(
                g["name"],
                bus=g["bus"],
                phases=tuple(g["phases"]),
                p_min=np.array(g["p_min"]),
                p_max=np.array(g["p_max"]),
                q_min=np.array(g["q_min"]),
                q_max=np.array(g["q_max"]),
                cost=g["cost"],
            )
        )
    for l in data["loads"]:
        net.add_load(
            Load(
                l["name"],
                bus=l["bus"],
                phases=tuple(l["phases"]),
                connection=Connection(l["connection"]),
                p_ref=np.array(l["p_ref"]),
                q_ref=np.array(l["q_ref"]),
                alpha=np.array(l["alpha"]),
                beta=np.array(l["beta"]),
            )
        )
    net.substation = data.get("substation")
    return net


def save_network(net: DistributionNetwork, path: str | Path) -> None:
    """Write a network to a JSON file."""
    Path(path).write_text(json.dumps(network_to_dict(net), indent=1))


def load_network(path: str | Path) -> DistributionNetwork:
    """Read a network from a JSON file produced by :func:`save_network`."""
    return network_from_dict(json.loads(Path(path).read_text()))
