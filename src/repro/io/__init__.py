"""Serialization: feeder JSON format, LP matrix export, result logging,
and feeder-reference resolution."""

from repro.io.export import load_lp_npz, result_to_dict, save_lp_npz, save_result
from repro.io.csv_feeder import load_network_csv, save_network_csv
from repro.io.feeder_json import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)
from repro.io.resolve import BUILTIN_FEEDERS, resolve_feeder

__all__ = [
    "resolve_feeder",
    "BUILTIN_FEEDERS",
    "save_network",
    "load_network_csv",
    "save_network_csv",
    "load_network",
    "network_to_dict",
    "network_from_dict",
    "save_lp_npz",
    "load_lp_npz",
    "result_to_dict",
    "save_result",
]
