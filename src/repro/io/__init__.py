"""Serialization: feeder JSON format, LP matrix export, result logging."""

from repro.io.export import load_lp_npz, result_to_dict, save_lp_npz, save_result
from repro.io.csv_feeder import load_network_csv, save_network_csv
from repro.io.feeder_json import (
    load_network,
    network_from_dict,
    network_to_dict,
    save_network,
)

__all__ = [
    "save_network",
    "load_network_csv",
    "save_network_csv",
    "load_network",
    "network_to_dict",
    "network_from_dict",
    "save_lp_npz",
    "load_lp_npz",
    "result_to_dict",
    "save_result",
]
