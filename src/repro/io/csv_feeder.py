"""CSV feeder exchange format.

A minimal, spreadsheet-friendly alternative to the JSON format: a feeder is
a directory of four CSV files (``buses.csv``, ``lines.csv``,
``generators.csv``, ``loads.csv``).  Per-phase columns are flattened as
``<field>_<phase>``; impedance matrices as ``r_<i><j>`` / ``x_<i><j>`` over
the line's own phase ordering.  Empty cells fall back to component
defaults.

This is the import path a utility engineer with planning spreadsheets would
actually use; the JSON format remains the lossless round-trip format.
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from repro.network.components import Bus, Connection, Generator, Line, Load
from repro.network.network import DistributionNetwork
from repro.utils.exceptions import NetworkValidationError

BUSES_FILE = "buses.csv"
LINES_FILE = "lines.csv"
GENERATORS_FILE = "generators.csv"
LOADS_FILE = "loads.csv"


def _phases_of(row: dict) -> tuple[int, ...]:
    raw = (row.get("phases") or "").strip()
    if not raw:
        raise NetworkValidationError(f"row {row}: missing phases")
    return tuple(int(c) for c in raw)


def _per_phase(row: dict, field: str, phases: tuple[int, ...], default: float) -> np.ndarray:
    out = np.full(len(phases), default)
    for a, phi in enumerate(phases):
        raw = (row.get(f"{field}_{phi}") or "").strip()
        if raw:
            out[a] = float(raw)
    return out


def _matrix(row: dict, field: str, phases: tuple[int, ...]) -> np.ndarray:
    n = len(phases)
    out = np.zeros((n, n))
    for a, pi in enumerate(phases):
        for b, pj in enumerate(phases):
            raw = (row.get(f"{field}_{pi}{pj}") or "").strip()
            if raw:
                out[a, b] = float(raw)
    return out


def _read_rows(path: Path) -> list[dict]:
    if not path.exists():
        return []
    with path.open(newline="") as fh:
        return list(csv.DictReader(fh))


def load_network_csv(directory: str | Path, name: str | None = None) -> DistributionNetwork:
    """Load a feeder from a CSV directory.

    Raises
    ------
    NetworkValidationError
        On missing files/columns or inconsistent component data.
    """
    directory = Path(directory)
    bus_rows = _read_rows(directory / BUSES_FILE)
    if not bus_rows:
        raise NetworkValidationError(f"no {BUSES_FILE} in {directory}")
    meta = bus_rows[0]
    net = DistributionNetwork(
        name=name or directory.name,
        mva_base=float(meta.get("mva_base") or 1.0),
        kv_base=float(meta.get("kv_base") or 4.16),
    )
    for row in bus_rows:
        phases = _phases_of(row)
        net.add_bus(
            Bus(
                row["name"],
                phases,
                w_min=_per_phase(row, "w_min", phases, 0.81),
                w_max=_per_phase(row, "w_max", phases, 1.21),
                g_sh=_per_phase(row, "g_sh", phases, 0.0),
                b_sh=_per_phase(row, "b_sh", phases, 0.0),
            )
        )
        if (row.get("substation") or "").strip().lower() in ("1", "true", "yes"):
            net.substation = row["name"]

    for row in _read_rows(directory / LINES_FILE):
        phases = _phases_of(row)
        net.add_line(
            Line(
                row["name"],
                from_bus=row["from_bus"],
                to_bus=row["to_bus"],
                phases=phases,
                r=_matrix(row, "r", phases),
                x=_matrix(row, "x", phases),
                tap=_per_phase(row, "tap", phases, 1.0),
                p_min=_per_phase(row, "p_min", phases, -10.0),
                p_max=_per_phase(row, "p_max", phases, 10.0),
                q_min=_per_phase(row, "q_min", phases, -10.0),
                q_max=_per_phase(row, "q_max", phases, 10.0),
                is_transformer=(row.get("is_transformer") or "").strip().lower()
                in ("1", "true", "yes"),
            )
        )

    for row in _read_rows(directory / GENERATORS_FILE):
        phases = _phases_of(row)
        net.add_generator(
            Generator(
                row["name"],
                bus=row["bus"],
                phases=phases,
                p_min=_per_phase(row, "p_min", phases, 0.0),
                p_max=_per_phase(row, "p_max", phases, 10.0),
                q_min=_per_phase(row, "q_min", phases, -10.0),
                q_max=_per_phase(row, "q_max", phases, 10.0),
                cost=float((row.get("cost") or "1").strip() or 1.0),
            )
        )

    for row in _read_rows(directory / LOADS_FILE):
        phases = _phases_of(row)
        conn = Connection((row.get("connection") or "wye").strip().lower())
        net.add_load(
            Load(
                row["name"],
                bus=row["bus"],
                phases=phases,
                connection=conn,
                p_ref=_per_phase(row, "p_ref", phases, 0.0),
                q_ref=_per_phase(row, "q_ref", phases, 0.0),
                alpha=_per_phase(row, "alpha", phases, 0.0),
                beta=_per_phase(row, "beta", phases, 0.0),
            )
        )
    net.validate()
    return net


def save_network_csv(net: DistributionNetwork, directory: str | Path) -> None:
    """Write a feeder to a CSV directory (inverse of :func:`load_network_csv`)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    def phase_cols(field: str) -> list[str]:
        return [f"{field}_{p}" for p in (1, 2, 3)]

    def put_phases(row: dict, field: str, phases, values) -> None:
        for phi, v in zip(phases, values):
            row[f"{field}_{phi}"] = repr(float(v))

    # Buses.
    headers = (
        ["name", "phases", "substation", "mva_base", "kv_base"]
        + phase_cols("w_min")
        + phase_cols("w_max")
        + phase_cols("g_sh")
        + phase_cols("b_sh")
    )
    with (directory / BUSES_FILE).open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=headers)
        writer.writeheader()
        for i, bus in enumerate(net.buses.values()):
            row = {
                "name": bus.name,
                "phases": "".join(str(p) for p in bus.phases),
                "substation": "1" if bus.name == net.substation else "",
            }
            if i == 0:
                row["mva_base"] = repr(net.mva_base)
                row["kv_base"] = repr(net.kv_base)
            put_phases(row, "w_min", bus.phases, bus.w_min)
            put_phases(row, "w_max", bus.phases, bus.w_max)
            put_phases(row, "g_sh", bus.phases, bus.g_sh)
            put_phases(row, "b_sh", bus.phases, bus.b_sh)
            writer.writerow(row)

    # Lines.
    mat_cols = [f"{f}_{i}{j}" for f in ("r", "x") for i in (1, 2, 3) for j in (1, 2, 3)]
    headers = (
        ["name", "from_bus", "to_bus", "phases", "is_transformer"]
        + mat_cols
        + phase_cols("tap")
        + phase_cols("p_min")
        + phase_cols("p_max")
        + phase_cols("q_min")
        + phase_cols("q_max")
    )
    with (directory / LINES_FILE).open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=headers)
        writer.writeheader()
        for line in net.lines.values():
            row = {
                "name": line.name,
                "from_bus": line.from_bus,
                "to_bus": line.to_bus,
                "phases": "".join(str(p) for p in line.phases),
                "is_transformer": "1" if line.is_transformer else "",
            }
            for a, pi in enumerate(line.phases):
                for b, pj in enumerate(line.phases):
                    row[f"r_{pi}{pj}"] = repr(float(line.r[a, b]))
                    row[f"x_{pi}{pj}"] = repr(float(line.x[a, b]))
            put_phases(row, "tap", line.phases, line.tap)
            put_phases(row, "p_min", line.phases, line.p_min)
            put_phases(row, "p_max", line.phases, line.p_max)
            put_phases(row, "q_min", line.phases, line.q_min)
            put_phases(row, "q_max", line.phases, line.q_max)
            writer.writerow(row)

    # Generators.
    headers = (
        ["name", "bus", "phases", "cost"]
        + phase_cols("p_min")
        + phase_cols("p_max")
        + phase_cols("q_min")
        + phase_cols("q_max")
    )
    with (directory / GENERATORS_FILE).open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=headers)
        writer.writeheader()
        for gen in net.generators.values():
            row = {
                "name": gen.name,
                "bus": gen.bus,
                "phases": "".join(str(p) for p in gen.phases),
                "cost": repr(gen.cost),
            }
            put_phases(row, "p_min", gen.phases, gen.p_min)
            put_phases(row, "p_max", gen.phases, gen.p_max)
            put_phases(row, "q_min", gen.phases, gen.q_min)
            put_phases(row, "q_max", gen.phases, gen.q_max)
            writer.writerow(row)

    # Loads.
    headers = (
        ["name", "bus", "phases", "connection"]
        + phase_cols("p_ref")
        + phase_cols("q_ref")
        + phase_cols("alpha")
        + phase_cols("beta")
    )
    with (directory / LOADS_FILE).open("w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=headers)
        writer.writeheader()
        for load in net.loads.values():
            row = {
                "name": load.name,
                "bus": load.bus,
                "phases": "".join(str(p) for p in load.phases),
                "connection": load.connection.value,
            }
            put_phases(row, "p_ref", load.phases, load.p_ref)
            put_phases(row, "q_ref", load.phases, load.q_ref)
            put_phases(row, "alpha", load.phases, load.alpha)
            put_phases(row, "beta", load.phases, load.beta)
            writer.writerow(row)
