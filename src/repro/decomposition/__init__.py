"""Component-wise decomposition of the centralized OPF (paper Sections II-B,
IV-B and V-A): partitioning with leaf merging, local subproblem assembly,
row reduction to full row rank, and the stacked consensus structure."""

from repro.decomposition.decomposed import DecomposedOPF, SizeStats, decompose
from repro.decomposition.partition import (
    ComponentSpec,
    PartitionCounts,
    partition_components,
)
from repro.decomposition.rowreduce import reduced_row_echelon, row_rank
from repro.decomposition.subproblems import (
    ComponentSubproblem,
    build_subproblem,
    component_variable_keys,
)

__all__ = [
    "decompose",
    "DecomposedOPF",
    "SizeStats",
    "ComponentSpec",
    "PartitionCounts",
    "partition_components",
    "ComponentSubproblem",
    "build_subproblem",
    "component_variable_keys",
    "reduced_row_echelon",
    "row_rank",
]
