"""Component subproblem construction (paper eqs. (8)-(9)).

For a partition cell (a :class:`~repro.decomposition.partition.ComponentSpec`)
this module builds the local system

    A_s x_s = b_s,        x_s = B_s x,

where the local variable vector ``x_s`` collects, in a deterministic order:

* for a **bus** cell: the bus voltages ``w``, the generator variables at the
  bus, the load variables at the bus, and the *bus-side* directed flow of
  every incident line;
* for a **line** cell: the voltages at both terminals (line phases only) and
  the four directed flow variables per phase;
* for a **leaf** cell: the union of the two (shared keys appearing once).

``B_s`` is stored compactly as the integer vector ``global_cols`` (the global
column index of each local variable), which is exactly the 0-1 matrix of the
paper with rows summing to one.  ``A_s`` is the dense stack of the rows owned
by the cell, row-reduced to full row rank (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.decomposition.partition import ComponentSpec
from repro.decomposition.rowreduce import reduced_row_echelon
from repro.formulation.rows import Row, rows_to_dense_local
from repro.formulation.variables import VariableIndex, VarKey
from repro.network.network import DistributionNetwork
from repro.utils.exceptions import DecompositionError


@dataclass
class ComponentSubproblem:
    """One agent's local problem data.

    Attributes
    ----------
    a_raw, b_raw:
        The stacked owned rows before row reduction (used for the
        stack-equivalence invariant with the centralized model).
    a, b:
        The full-row-rank system after RREF; this is what Algorithm 1's
        precomputation consumes.
    global_cols:
        ``B_s`` in index form: ``x_s = x[global_cols]``.
    lb, ub:
        Local copies of the global bounds — used only by the *benchmark*
        ADMM, whose subproblems keep the bound constraints locally (model
        (8)); Algorithm 1 never reads them.
    """

    name: str
    kind: str
    local_keys: list[VarKey]
    global_cols: np.ndarray
    a_raw: np.ndarray
    b_raw: np.ndarray
    a: np.ndarray
    b: np.ndarray
    lb: np.ndarray
    ub: np.ndarray

    @property
    def n_vars(self) -> int:
        """n_s — the number of local variables (Table IV)."""
        return len(self.local_keys)

    @property
    def n_rows(self) -> int:
        """m_s — rows of the reduced A_s (Table IV)."""
        return self.a.shape[0]

    @property
    def n_rows_raw(self) -> int:
        return self.a_raw.shape[0]


def component_variable_keys(
    net: DistributionNetwork, spec: ComponentSpec
) -> list[VarKey]:
    """Deterministic local variable ordering for one partition cell."""
    keys: list[VarKey] = []
    seen: set[VarKey] = set()

    def push(key: VarKey) -> None:
        if key not in seen:
            seen.add(key)
            keys.append(key)

    for bus_name in spec.buses:
        bus = net.buses[bus_name]
        for phi in bus.phases:
            push(("w", bus_name, phi))
        for gen in net.generators_at(bus_name):
            for phi in gen.phases:
                push(("pg", gen.name, phi))
                push(("qg", gen.name, phi))
        for load in net.loads_at(bus_name):
            for phi in load.bus_phases:
                push(("pb", load.name, phi))
                push(("qb", load.name, phi))
            for phi in load.phases:
                push(("pd", load.name, phi))
                push(("qd", load.name, phi))
        for line in net.lines_at(bus_name):
            side = "f" if line.from_bus == bus_name else "t"
            for phi in line.phases:
                push((f"p{side}", line.name, phi))
                push((f"q{side}", line.name, phi))
    for line_name in spec.lines:
        line = net.lines[line_name]
        for phi in line.phases:
            push(("w", line.from_bus, phi))
            push(("w", line.to_bus, phi))
        for phi in line.phases:
            push(("pf", line_name, phi))
            push(("qf", line_name, phi))
            push(("pt", line_name, phi))
            push(("qt", line_name, phi))
    return keys


def build_subproblem(
    net: DistributionNetwork,
    spec: ComponentSpec,
    owned_rows: list[Row],
    var_index: VariableIndex,
    rref_tol: float = 1e-9,
    global_lb: np.ndarray | None = None,
    global_ub: np.ndarray | None = None,
) -> ComponentSubproblem:
    """Assemble one component subproblem from its owned rows.

    Raises
    ------
    DecompositionError
        If an owned row references a variable outside the component's local
        set (would violate the consensus structure) or if the local system
        is inconsistent.
    """
    local_keys = component_variable_keys(net, spec)
    key_set = set(local_keys)
    for row in owned_rows:
        extra = row.support() - key_set
        if extra:
            raise DecompositionError(
                f"component {spec.name}: row {row.tag!r} references foreign "
                f"variables {sorted(extra)[:3]}"
            )
    a_raw, b_raw = rows_to_dense_local(owned_rows, local_keys)
    a_red, b_red, _ = reduced_row_echelon(a_raw, b_raw, tol=rref_tol)
    global_cols = np.array([var_index.index(k) for k in local_keys], dtype=np.int64)
    glb = var_index.lower_bounds() if global_lb is None else global_lb
    gub = var_index.upper_bounds() if global_ub is None else global_ub
    return ComponentSubproblem(
        name=spec.name,
        kind=spec.kind,
        local_keys=local_keys,
        global_cols=global_cols,
        a_raw=a_raw,
        b_raw=b_raw,
        a=a_red,
        b=b_red,
        lb=glb[global_cols],
        ub=gub[global_cols],
    )
