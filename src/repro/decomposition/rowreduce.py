"""Row reduction of local equality systems (paper Section IV-B).

Algorithm 1 requires every component matrix ``A_s`` to have full row rank so
that ``A_s A_s^T`` is invertible and the local update (15) is well defined.
Component systems assembled from the physical model are frequently rank
deficient (e.g. redundant conservation rows), so — exactly as the paper
prescribes — we bring the augmented matrix ``[A_s | b_s]`` to reduced row
echelon form with partial pivoting, drop the zero rows, and fail loudly on
an inconsistent system (a zero row with nonzero right-hand side).

The matrices involved are tiny (Table IV: at most a few tens of rows), so a
dense O(m^2 n) elimination is more than fast enough and, as the paper notes,
trivially parallel across components.
"""

from __future__ import annotations

import numpy as np

from repro.backend.policy import HOST_DTYPE
from repro.utils.exceptions import InfeasibleError


def reduced_row_echelon(
    a: np.ndarray,
    b: np.ndarray,
    tol: float = 1e-9,
) -> tuple[np.ndarray, np.ndarray, list[int]]:
    """Reduce ``[a | b]`` to RREF and return the full-row-rank system.

    Parameters
    ----------
    a:
        Dense coefficient matrix, shape ``(m, n)``.
    b:
        Right-hand side, shape ``(m,)``.
    tol:
        Pivot threshold, applied relative to the largest absolute entry of
        the augmented matrix.

    Returns
    -------
    (a_red, b_red, pivot_cols):
        ``a_red`` has full row rank equal to ``rank([a | b])`` restricted to
        consistent systems; ``pivot_cols`` lists the pivot column of each
        returned row.

    Raises
    ------
    InfeasibleError
        If elimination produces a row ``0 = rhs`` with ``|rhs|`` above the
        tolerance — the local system is inconsistent.
    """
    a = np.array(a, dtype=HOST_DTYPE, copy=True)
    b = np.array(b, dtype=HOST_DTYPE, copy=True).reshape(-1)
    m, n = a.shape
    if b.shape != (m,):
        raise ValueError(f"rhs shape {b.shape} incompatible with matrix {a.shape}")
    if m == 0:
        return a, b, []
    aug = np.hstack([a, b[:, None]])
    scale = np.max(np.abs(aug))
    if scale == 0.0:
        return np.zeros((0, n)), np.zeros(0), []
    # Pivots are judged relative to the system's own magnitude; the
    # inconsistency check below keeps the absolute floor so sub-tolerance
    # noise rows (`0 = 1e-30`) are still dropped rather than rejected.
    threshold = tol * scale
    infeasible_threshold = tol * max(scale, 1.0)

    rank = 0
    pivot_cols: list[int] = []
    for col in range(n):
        if rank >= m:
            break
        pivot = rank + int(np.argmax(np.abs(aug[rank:, col])))
        if abs(aug[pivot, col]) <= threshold:
            continue
        if pivot != rank:
            aug[[rank, pivot]] = aug[[pivot, rank]]
        aug[rank] /= aug[rank, col]
        others = np.abs(aug[:, col]) > 0
        others[rank] = False
        aug[others] -= np.outer(aug[others, col], aug[rank])
        pivot_cols.append(col)
        rank += 1

    # Rows below the rank must be (numerically) zero in the coefficient part;
    # a surviving RHS there means 0 = rhs: inconsistent.
    if rank < m:
        tail_rhs = np.abs(aug[rank:, n])
        bad = tail_rhs > infeasible_threshold
        if np.any(bad):
            raise InfeasibleError(
                f"inconsistent local system: 0 = {float(tail_rhs[bad][0]):.3e} "
                f"after row reduction"
            )
    return aug[:rank, :n], aug[:rank, n], pivot_cols


def row_rank(a: np.ndarray, tol: float = 1e-9) -> int:
    """Numerical row rank via the same elimination used for reduction."""
    red, _, _ = reduced_row_echelon(a, np.zeros(a.shape[0]), tol=tol)
    return red.shape[0]
