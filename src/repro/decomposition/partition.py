"""Component-wise network partitioning (paper Section V-A).

The decomposition graph has one node per bus and one edge per line (branch,
transformer or regulator).  Components are:

* one **bus component** per bus,
* one **line component** per line,
* except that each *leaf* bus (degree one, not the substation) is **merged**
  with its single connecting line into one **leaf component** — the paper's
  observation that leaf subproblems are much smaller than the rest, giving

      S = (#nodes) + (#lines) - (#leaf nodes).

A line can absorb at most one leaf; if both endpoints of a line are leaves
(an isolated two-bus spur), only the lexicographically first endpoint is
merged so the partition stays well defined.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.network.network import DistributionNetwork
from repro.utils.exceptions import DecompositionError


@dataclass(frozen=True)
class ComponentSpec:
    """A partition cell: which buses and lines one agent controls."""

    name: str
    kind: str  # "bus" | "line" | "leaf"
    buses: tuple[str, ...] = field(default=())
    lines: tuple[str, ...] = field(default=())

    def owners(self) -> list[tuple]:
        """Row-owner handles covered by this component."""
        return [("bus", b) for b in self.buses] + [("line", l) for l in self.lines]


@dataclass(frozen=True)
class PartitionCounts:
    """The quantities of the paper's Table III."""

    n_nodes: int
    n_lines: int
    n_leaves: int

    @property
    def n_components(self) -> int:
        return self.n_nodes + self.n_lines - self.n_leaves


def partition_components(
    net: DistributionNetwork, merge_leaves: bool = True
) -> tuple[list[ComponentSpec], PartitionCounts]:
    """Partition ``net`` into component specs.

    Parameters
    ----------
    merge_leaves:
        Apply the leaf-merging rule (True reproduces the paper; False is the
        ablation where every bus and line is its own component).

    Raises
    ------
    DecompositionError
        If the network has no lines but more than one bus (disconnected).
    """
    if net.n_buses > 1 and net.n_lines == 0:
        raise DecompositionError("multi-bus network without lines cannot be partitioned")

    leaf_of_line: dict[str, str] = {}
    merged_buses: set[str] = set()
    if merge_leaves:
        for bus in sorted(net.leaf_buses()):
            incident = net.lines_at(bus)
            if len(incident) != 1:
                continue
            line = incident[0]
            if line.name in leaf_of_line:
                continue  # other endpoint already absorbed this line
            leaf_of_line[line.name] = bus
            merged_buses.add(bus)

    components: list[ComponentSpec] = []
    for bus_name in net.buses:
        if bus_name in merged_buses:
            continue
        components.append(
            ComponentSpec(name=f"bus:{bus_name}", kind="bus", buses=(bus_name,))
        )
    for line_name in net.lines:
        if line_name in leaf_of_line:
            leaf = leaf_of_line[line_name]
            components.append(
                ComponentSpec(
                    name=f"leaf:{leaf}+{line_name}",
                    kind="leaf",
                    buses=(leaf,),
                    lines=(line_name,),
                )
            )
        else:
            components.append(
                ComponentSpec(name=f"line:{line_name}", kind="line", lines=(line_name,))
            )

    counts = PartitionCounts(
        n_nodes=net.n_buses,
        n_lines=net.n_lines,
        n_leaves=len(merged_buses),
    )
    if len(components) != counts.n_components:
        raise DecompositionError(
            f"partition produced {len(components)} components, "
            f"expected {counts.n_components}"
        )
    return components, counts
