"""The decomposed distributed OPF model (paper eq. (9)).

:func:`decompose` regroups a :class:`CentralizedLP` into component
subproblems following the partition of Section V-A, and precomputes the
concatenated consensus structure of Section IV-C:

* ``global_cols`` — concatenation of every component's ``B_s`` index vector,
  i.e. the row->column map of the stacked 0-1 matrix ``B`` in (17);
* ``counts`` — the diagonal of ``B^T B`` (how many local copies each global
  variable has), which makes the global update (18) a trivial scaled
  scatter-add;
* ``offsets`` — slice boundaries of each component inside the stacked local
  vector ``z = [x_1; ...; x_S]``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend.policy import HOST_DTYPE
import scipy.sparse as sp

from repro.decomposition.partition import (
    ComponentSpec,
    PartitionCounts,
    partition_components,
)
from repro.decomposition.subproblems import ComponentSubproblem, build_subproblem
from repro.formulation.centralized import CentralizedLP
from repro.utils.exceptions import DecompositionError


@dataclass
class SizeStats:
    """Summary statistics of one subproblem dimension (Table IV rows)."""

    minimum: int
    maximum: int
    mean: float
    stdev: float
    total: int

    @classmethod
    def of(cls, values: list[int]) -> "SizeStats":
        arr = np.asarray(values, dtype=HOST_DTYPE)
        return cls(
            minimum=int(arr.min()),
            maximum=int(arr.max()),
            mean=float(arr.mean()),
            stdev=float(arr.std(ddof=1)) if len(arr) > 1 else 0.0,
            total=int(arr.sum()),
        )


@dataclass
class DecomposedOPF:
    """Component-wise distributed form of a centralized LP."""

    lp: CentralizedLP
    specs: list[ComponentSpec]
    components: list[ComponentSubproblem]
    partition_counts: PartitionCounts
    global_cols: np.ndarray  # (sum n_s,) concatenated B_s index maps
    counts: np.ndarray  # (n,) diag of B^T B
    offsets: np.ndarray  # (S+1,) component slices into z

    @property
    def n_components(self) -> int:
        return len(self.components)

    @property
    def n_local(self) -> int:
        """Total stacked local dimension: sum of n_s."""
        return int(self.offsets[-1])

    def component_slice(self, s: int) -> slice:
        return slice(int(self.offsets[s]), int(self.offsets[s + 1]))

    def consensus_matrix(self) -> sp.csr_matrix:
        """The stacked 0-1 matrix ``B`` of (17), materialized (tests/IO)."""
        n_rows = self.n_local
        data = np.ones(n_rows)
        indptr = np.arange(n_rows + 1, dtype=np.int64)
        return sp.csr_matrix(
            (data, self.global_cols.astype(np.int64), indptr),
            shape=(n_rows, self.lp.n_vars),
        )

    def stacked_raw_system(self) -> tuple[sp.csr_matrix, np.ndarray]:
        """``vstack_s(A_s^{raw} B_s)`` and ``vstack(b_s^{raw})``.

        By construction this reproduces the centralized ``A x = b`` up to a
        row permutation — the equivalence of models (7) and (9) that the
        tests assert.
        """
        blocks = []
        rhs = []
        n = self.lp.n_vars
        for comp in self.components:
            m = comp.a_raw.shape[0]
            if m == 0:
                continue
            # Local dense rows scattered to global columns.
            rows_idx, cols_idx = np.nonzero(comp.a_raw)
            block = sp.csr_matrix(
                (comp.a_raw[rows_idx, cols_idx], (rows_idx, comp.global_cols[cols_idx])),
                shape=(m, n),
            )
            blocks.append(block)
            rhs.append(comp.b_raw)
        a = sp.vstack(blocks, format="csr") if blocks else sp.csr_matrix((0, n))
        b = np.concatenate(rhs) if rhs else np.zeros(0)
        return a, b

    def size_stats(self) -> tuple[SizeStats, SizeStats]:
        """(m_s stats, n_s stats) — the paper's Table IV."""
        ms = [c.n_rows for c in self.components]
        ns = [c.n_vars for c in self.components]
        return SizeStats.of(ms), SizeStats.of(ns)


def decompose(
    lp: CentralizedLP,
    merge_leaves: bool = True,
    rref_tol: float = 1e-9,
) -> DecomposedOPF:
    """Decompose a centralized LP into the component-wise model (9).

    Raises
    ------
    DecompositionError
        If any constraint row has an owner outside the partition, or some
        global variable has no local copy (consensus coverage violated).
    """
    specs, counts = partition_components(lp.network, merge_leaves=merge_leaves)
    owner_to_spec: dict[tuple, int] = {}
    for idx, spec in enumerate(specs):
        for owner in spec.owners():
            if owner in owner_to_spec:
                raise DecompositionError(f"owner {owner} claimed twice")
            owner_to_spec[owner] = idx

    rows_by_spec: list[list] = [[] for _ in specs]
    for row in lp.rows:
        try:
            rows_by_spec[owner_to_spec[row.owner]].append(row)
        except KeyError as exc:
            raise DecompositionError(f"row {row.tag!r} has unknown owner {row.owner}") from exc

    glb = lp.var_index.lower_bounds()
    gub = lp.var_index.upper_bounds()
    components = [
        build_subproblem(
            lp.network,
            spec,
            rows,
            lp.var_index,
            rref_tol=rref_tol,
            global_lb=glb,
            global_ub=gub,
        )
        for spec, rows in zip(specs, rows_by_spec)
    ]

    sizes = np.array([c.n_vars for c in components], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(sizes)])
    global_cols = (
        np.concatenate([c.global_cols for c in components])
        if components
        else np.zeros(0, dtype=np.int64)
    )
    copy_counts = np.bincount(global_cols, minlength=lp.n_vars).astype(HOST_DTYPE)
    if np.any(copy_counts == 0):
        missing = int(np.argmax(copy_counts == 0))
        raise DecompositionError(
            f"global variable {lp.var_index.key_of(missing)} has no local copy"
        )
    return DecomposedOPF(
        lp=lp,
        specs=specs,
        components=components,
        partition_counts=counts,
        global_cols=global_cols,
        counts=copy_counts,
        offsets=offsets,
    )
