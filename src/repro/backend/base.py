"""The ``Backend`` protocol: every array operation the ADMM loop needs.

The solver-free iteration is pure data-parallel linear algebra — a
scatter-add, a clip, one batched matmul, a saxpy and four norms — so the
whole algorithm ports across execution substrates by swapping the array
namespace those few primitives run on.  ``Backend`` pins that surface
down: allocation under an explicit :class:`~repro.backend.policy.
PrecisionPolicy`, the batched projection matmul, the consensus
scatter-add, the bound clip, and fp64-accumulated reductions.

The generic implementation below is written against the NumPy API
surface that CuPy mirrors (``xp``-style), so the CuPy backend is the same
code path with a different namespace and an explicit host/device
boundary (:meth:`Backend.to_numpy` / :meth:`Backend.from_numpy`).
"""

from __future__ import annotations

import numpy as np

from repro.backend.policy import PrecisionPolicy


class Backend:
    """Array-execution backend: an ``xp`` namespace plus a dtype policy.

    Subclasses set :attr:`xp` (the array namespace) and may override the
    host/device transfer hooks.  All ``repro`` hot loops must allocate
    through this object — never bare ``np.zeros`` / ``np.eye`` — so the
    fp32 policy cannot be silently promoted back to fp64.
    """

    #: Registry name (``numpy64``, ``numpy32``, ``cupy``).
    name: str = "abstract"
    #: True when the backend's arrays live on a device (host transfers
    #: needed for results and warm-start caches).
    device: bool = False

    def __init__(self, policy: PrecisionPolicy):
        self.policy = policy
        self.compute_dtype = np.dtype(policy.compute)
        self.accumulate_dtype = np.dtype(policy.accumulate)

    # -- namespace -----------------------------------------------------
    @property
    def xp(self):
        """The array namespace (``numpy`` or ``cupy``)."""
        raise NotImplementedError

    # -- allocation (compute dtype unless stated otherwise) ------------
    def asarray(self, a, copy: bool = False):
        """``a`` as a compute-dtype backend array (no copy if compliant)."""
        arr = self.xp.asarray(a, dtype=self.compute_dtype)
        if copy and arr is a:
            arr = arr.copy()
        return arr

    def zeros(self, shape):
        return self.xp.zeros(shape, dtype=self.compute_dtype)

    def empty(self, shape):
        return self.xp.empty(shape, dtype=self.compute_dtype)

    def full(self, shape, value):
        return self.xp.full(shape, value, dtype=self.compute_dtype)

    def eye(self, n):
        return self.xp.eye(n, dtype=self.compute_dtype)

    def index_array(self, idx):
        """Integer index vector in the backend's namespace (int64)."""
        return self.xp.asarray(idx, dtype=self.xp.int64)

    # -- the ADMM primitives -------------------------------------------
    def scatter_add(self, idx, weights, minlength: int):
        """``out[i] = sum(weights[idx == i])`` — the consensus gather of
        the global update (18).  Accumulates in fp64 (``bincount``'s
        native accumulator), then rounds once to the compute dtype."""
        out = self.xp.bincount(idx, weights=weights, minlength=minlength)
        return out.astype(self.compute_dtype, copy=False)

    def clip(self, x, lo, hi):
        """Elementwise box projection (the only place bounds (9d) live)."""
        return self.xp.clip(x, lo, hi)

    def matmul_batched(self, proj, v_pad):
        """One padded batched projection: ``(S, w, w) @ (S, w) -> (S*w,)``.

        The NumPy/CuPy equivalent of the paper's one-block-per-component
        CUDA kernel (Section IV-D).
        """
        sb, width = proj.shape[0], proj.shape[1]
        return self.xp.matmul(proj, v_pad.reshape(sb, width, 1)).reshape(-1)

    def norm(self, v) -> float:
        """Euclidean norm accumulated in the accumulate dtype (fp64)."""
        v = self.xp.asarray(v, dtype=self.accumulate_dtype)
        return float(self.xp.linalg.norm(v))

    def dot(self, a, b) -> float:
        """Inner product accumulated in fp64 (objective evaluation)."""
        a = self.xp.asarray(a, dtype=self.accumulate_dtype)
        b = self.xp.asarray(b, dtype=self.accumulate_dtype)
        return float(a @ b)

    # -- host/device boundary ------------------------------------------
    def to_numpy(self, a) -> np.ndarray:
        """Backend array -> host fp64 ndarray (results, caches, I/O)."""
        return np.asarray(a, dtype=np.float64)

    def from_numpy(self, a):
        """Host array -> backend compute array."""
        return self.asarray(a)

    # -- introspection -------------------------------------------------
    def capabilities(self) -> dict:
        """Machine-readable description (the ``repro backends`` listing)."""
        return {
            "name": self.name,
            "device": self.device,
            "compute_dtype": str(self.compute_dtype),
            "accumulate_dtype": str(self.accumulate_dtype),
            "precision": self.policy.name,
            "refinement": self.policy.refine,
            "itemsize": self.policy.itemsize,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.name} ({self.policy.name})>"
