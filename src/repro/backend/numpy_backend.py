"""NumPy backends: ``numpy64`` (default, bit-identical to the historical
implementation) and ``numpy32`` (fp32 compute, fp64 accumulation, with the
automatic fp64-refinement fallback enabled)."""

from __future__ import annotations

import numpy as np

from repro.backend.base import Backend
from repro.backend.policy import FP64, MIXED, PrecisionPolicy


class NumpyBackend(Backend):
    """Host-memory execution through the plain NumPy namespace."""

    device = False

    def __init__(self, policy: PrecisionPolicy, name: str | None = None):
        super().__init__(policy)
        self.name = name or (
            "numpy64" if self.compute_dtype == np.float64 else "numpy32"
        )

    @property
    def xp(self):
        return np

    def norm(self, v) -> float:
        # `asarray` is a no-copy pass-through for fp64 inputs, so the
        # numpy64 path is exactly the historical np.linalg.norm call.
        return float(np.linalg.norm(np.asarray(v, dtype=self.accumulate_dtype)))

    @staticmethod
    def is_available() -> bool:
        return True


def make_numpy64() -> NumpyBackend:
    return NumpyBackend(FP64, name="numpy64")


def make_numpy32() -> NumpyBackend:
    return NumpyBackend(MIXED, name="numpy32")
