"""CuPy backend: the NumPy code path re-run on a CUDA device.

Because every hot-loop primitive is expressed through the ``xp``
namespace of :class:`~repro.backend.base.Backend`, the CuPy backend is
mostly a namespace swap; only the host/device boundary (result
extraction, warm-start payloads) needs explicit transfers.  The backend
is auto-detected: it registers only when ``import cupy`` succeeds *and* a
device is actually reachable, so CPU-only environments (including CI)
skip it cleanly instead of failing at import time.
"""

from __future__ import annotations

import numpy as np

from repro.backend.base import Backend
from repro.backend.policy import FP64, PrecisionPolicy

try:  # pragma: no cover - exercised only on CUDA machines
    import cupy as _cupy
except Exception:  # ImportError, or a broken CUDA installation
    _cupy = None


def _device_reachable() -> bool:  # pragma: no cover - needs real hardware
    if _cupy is None:
        return False
    try:
        _cupy.cuda.runtime.getDeviceCount()
        return _cupy.cuda.runtime.getDeviceCount() > 0
    except Exception:
        return False


class CupyBackend(Backend):
    """Device-memory execution through the CuPy namespace."""

    name = "cupy"
    device = True

    def __init__(self, policy: PrecisionPolicy = FP64):
        if not self.is_available():  # pragma: no cover - CPU-only envs
            raise RuntimeError(
                "cupy backend requested but cupy (or a CUDA device) is unavailable"
            )
        super().__init__(policy)

    @property
    def xp(self):  # pragma: no cover - needs real hardware
        return _cupy

    @staticmethod
    def is_available() -> bool:
        return _device_reachable()

    # -- host/device boundary ------------------------------------------
    def to_numpy(self, a) -> np.ndarray:  # pragma: no cover - hardware
        return np.asarray(_cupy.asnumpy(a), dtype=np.float64)

    def norm(self, v) -> float:  # pragma: no cover - hardware
        v = _cupy.asarray(v, dtype=self.accumulate_dtype)
        return float(_cupy.linalg.norm(v))


def make_cupy() -> CupyBackend:  # pragma: no cover - hardware
    return CupyBackend(FP64)
