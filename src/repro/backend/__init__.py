"""repro.backend — the pluggable array-execution layer.

Every ADMM hot loop in this repository runs through a
:class:`~repro.backend.base.Backend`: a small protocol (batched matmul,
scatter-add, clip, fp64-accumulated norms, allocation under an explicit
dtype policy) with three implementations:

``numpy64``
    The default.  fp64 NumPy, bit-identical to the historical
    implementation (same ops in the same order).
``numpy32``
    fp32 compute with fp64 residual accumulation and the automatic
    fp64-refinement fallback (re-run the tail of a stalled solve in fp64,
    warm-started from the fp32 iterate).
``cupy``
    CUDA execution via CuPy, auto-detected; absent on CPU-only machines.

Selection precedence: an explicit ``backend=`` argument > the
``REPRO_BACKEND`` environment variable > ``numpy64``.
"""

from __future__ import annotations

import os

from repro.backend.base import Backend
from repro.backend.cupy_backend import CupyBackend, make_cupy
from repro.backend.numpy_backend import NumpyBackend, make_numpy32, make_numpy64
from repro.backend.policy import FP32, FP64, MIXED, PrecisionPolicy, policy_for

#: Environment variable naming the default backend for the process.
BACKEND_ENV_VAR = "REPRO_BACKEND"

_FACTORIES = {
    "numpy64": (make_numpy64, NumpyBackend.is_available),
    "numpy32": (make_numpy32, NumpyBackend.is_available),
    "cupy": (make_cupy, CupyBackend.is_available),
}

_INSTANCES: dict[str, Backend] = {}


def backend_names() -> list[str]:
    """All registered backend names, available or not."""
    return list(_FACTORIES)


def available_backends() -> list[str]:
    """Names of the backends usable on this machine."""
    return [name for name, (_, avail) in _FACTORIES.items() if avail()]


def get_backend(name: str) -> Backend:
    """The (cached) backend instance for ``name``.

    Raises
    ------
    ValueError
        Unknown name, or a registered backend whose runtime requirements
        (e.g. CuPy + a CUDA device) are not met.
    """
    try:
        factory, avail = _FACTORIES[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r} (registered: {', '.join(_FACTORIES)})"
        ) from None
    if not avail():
        raise ValueError(
            f"backend {name!r} is not available on this machine "
            f"(available: {', '.join(available_backends())})"
        )
    backend = _INSTANCES.get(name)
    if backend is None:
        backend = _INSTANCES[name] = factory()
    return backend


def default_backend() -> Backend:
    """The process default: ``$REPRO_BACKEND`` if set, else ``numpy64``."""
    return get_backend(os.environ.get(BACKEND_ENV_VAR, "numpy64"))


def resolve_backend(
    backend: "Backend | str | None" = None,
    precision: str | None = None,
) -> Backend:
    """Normalize a user-facing backend/precision spec to an instance.

    ``backend`` may be an instance (returned as-is unless ``precision``
    overrides its policy), a registry name, or ``None`` (process
    default).  ``precision`` (``fp64`` / ``fp32`` / ``mixed``) overlays a
    policy on the chosen backend family.
    """
    if backend is None:
        resolved = default_backend()
    elif isinstance(backend, Backend):
        resolved = backend
    else:
        resolved = get_backend(backend)
    if precision is None or resolved.policy.name == precision:
        return resolved
    policy = policy_for(precision)
    if isinstance(resolved, CupyBackend):  # pragma: no cover - hardware
        return CupyBackend(policy)
    return NumpyBackend(policy)


def refinement_backend(backend: Backend) -> Backend:
    """The fp64 twin used by the mixed-precision refinement fallback."""
    if isinstance(backend, CupyBackend):  # pragma: no cover - hardware
        return CupyBackend(FP64)
    return get_backend("numpy64")


__all__ = [
    "Backend",
    "NumpyBackend",
    "CupyBackend",
    "PrecisionPolicy",
    "FP64",
    "FP32",
    "MIXED",
    "policy_for",
    "BACKEND_ENV_VAR",
    "backend_names",
    "available_backends",
    "get_backend",
    "default_backend",
    "resolve_backend",
    "refinement_backend",
]
