"""Precision policies for the array-execution backends.

A policy separates the **compute** dtype (what the iterate arrays and the
batched projection tensors are stored and multiplied in) from the
**accumulate** dtype (what reductions — residual norms, objectives, the
scatter-add of the global update — are accumulated in).  The solver-free
iteration is a fixed-point map, so fp32 compute is usually fine *until*
the residuals approach fp32 round-off; accumulating the residual norms in
fp64 keeps the termination test (16) honest, and the optional refinement
fallback re-runs the tail of a stalled fp32 solve in fp64, warm-started
from the fp32 iterate (classical mixed-precision iterative refinement,
applied at the ADMM level).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: The host-side interchange dtype.  Problem *data* (feeder parameters,
#: scenario samples, cached warm starts, metric reservoirs) lives in host
#: fp64 regardless of the compute backend — only iterate arrays follow a
#: policy's compute dtype.  Code outside ``backend/`` spells that
#: ``dtype=HOST_DTYPE`` so the precision-discipline lint (R003) can tell
#: deliberate host pinning from a stray literal.
HOST_DTYPE = np.dtype("float64")


def as_host(a, copy: bool = False) -> np.ndarray:
    """``np.asarray`` pinned to the host interchange dtype."""
    return np.array(a, dtype=HOST_DTYPE, copy=copy) if copy else np.asarray(
        a, dtype=HOST_DTYPE
    )


@dataclass(frozen=True)
class PrecisionPolicy:
    """Dtype and refinement rules a backend allocates and reduces under.

    Attributes
    ----------
    name:
        ``"fp64"``, ``"fp32"`` or ``"mixed"``.
    compute:
        Dtype name of iterate arrays and projection operators.
    accumulate:
        Dtype name reductions (norms, objectives, scatter-adds) use.
    refine:
        Enable the automatic fp64-refinement fallback: when the relative
        residuals stall above tolerance (fp32 round-off floor), the solve
        is continued under an fp64 backend, warm-started from the current
        iterate.
    refine_check_every:
        Stall-detection period in iterations.
    refine_min_progress:
        Relative improvement of the *running best* of
        ``max(pres/eps_prim, dres/eps_dual)`` between consecutive checks
        below which the run is declared stalled.  ADMM residuals
        oscillate, so the watch compares best-so-far values over whole
        windows, not single iterates.
    refine_after:
        Earliest iteration at which a stall may be declared (early
        iterations legitimately plateau).
    """

    name: str
    compute: str = "float64"
    accumulate: str = "float64"
    refine: bool = False
    refine_check_every: int = 500
    refine_min_progress: float = 0.02
    refine_after: int = 500

    def __post_init__(self) -> None:
        if self.compute not in ("float32", "float64"):
            raise ValueError(f"unsupported compute dtype {self.compute!r}")
        if self.accumulate != "float64":
            raise ValueError("reductions must accumulate in float64")
        if self.refine_check_every < 1:
            raise ValueError("refine_check_every must be at least 1")
        if not 0.0 <= self.refine_min_progress < 1.0:
            raise ValueError("refine_min_progress must lie in [0, 1)")

    @property
    def itemsize(self) -> int:
        """Bytes per compute-dtype value (feeds the GPU cost models)."""
        return 4 if self.compute == "float32" else 8


#: Full double precision — the default, bit-identical to the historical
#: NumPy implementation.
FP64 = PrecisionPolicy(name="fp64")

#: Pure fp32 compute with fp64 residual accumulation, no fallback.
FP32 = PrecisionPolicy(name="fp32", compute="float32", refine=False)

#: fp32 compute with fp64 residual accumulation *and* the automatic
#: fp64-refinement fallback — what the ``numpy32`` backend ships with.
MIXED = PrecisionPolicy(name="mixed", compute="float32", refine=True)


def policy_for(precision: str) -> PrecisionPolicy:
    """Look up a policy by CLI-level name (``fp64`` / ``fp32`` / ``mixed``)."""
    try:
        return {"fp64": FP64, "fp32": FP32, "mixed": MIXED}[precision]
    except KeyError:
        raise ValueError(
            f"unknown precision {precision!r} (choose fp64, fp32 or mixed)"
        ) from None
