"""Two-stage stochastic OPF: scenario-expanded LP with CVaR epigraph.

The deterministic equivalent of the two-stage problem is one big LP over
all K sampled scenarios.  Like the multi-period expansion
(:mod:`repro.multiperiod.model`), it reuses the single-period row builder
unchanged: every scenario gets its own copy of the network's variables and
rows (keys and owners gain an ``@s<k>`` suffix), with loads scaled by the
scenario's multipliers and PV upper bounds scaled by its availability.

What makes it *two-stage* is which variables are **not** duplicated: the
active-power dispatch of the first-stage DERs keeps its unsuffixed key, so
the same column appears in every scenario's balance rows.  Under the
support-grouped consensus decomposition, each scenario's components then
hold their own local copy of the shared setpoint and the ADMM global
average ties them together — non-anticipativity *is* the consensus
constraint, no extra rows needed.  Reactive power, voltages, flows and the
substation import stay scenario-local (the recourse).

Risk objectives follow Rockafellar & Uryasev's epigraph LP (the
formulation GRIDOPT's ``problem_risk.py`` samples the same way):

    CVaR_a(cost) = min_t  t + 1/((1-a) K) sum_k u_k,
                   u_k >= cost_k - t,  u_k >= 0,

with each inequality written as an equality plus a slack so the rows fit
the equality-only component machinery: ``cost_k - t - u_k + s_k = 0``.
Every epigraph row is its own component (``("cvar", "s<k>")``), so the
projection batch absorbs them like any other component.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.formulation.centralized import CentralizedLP, build_rows
from repro.formulation.rows import Row, rows_to_matrix
from repro.formulation.variables import VariableIndex
from repro.network.network import DistributionNetwork
from repro.stochastic.sampler import SAMPLE_DTYPE, ScenarioSet
from repro.utils.exceptions import FormulationError

OBJECTIVE_EXPECTED = "expected"
OBJECTIVE_CVAR = "cvar"


def _suffix(name: str, k: int) -> str:
    return f"{name}@s{k}"


def sample_cvar(costs: np.ndarray, weights: np.ndarray, alpha: float) -> float:
    """CVaR_alpha of a finite cost distribution (Rockafellar-Uryasev).

    Evaluates ``min_t t + 1/(1-alpha) * E[(cost - t)+]`` exactly: the
    optimum is attained at a sample point, so scanning the samples as
    candidate ``t`` values suffices.
    """
    costs = np.asarray(costs, dtype=SAMPLE_DTYPE)
    weights = np.asarray(weights, dtype=SAMPLE_DTYPE)
    best = np.inf
    for t in costs:
        val = t + float(weights @ np.maximum(costs - t, 0.0)) / (1.0 - alpha)
        best = min(best, val)
    return float(best)


@dataclass
class StochasticProblem:
    """The assembled scenario-expanded LP plus its two-stage structure.

    Duck-types the attributes the generic consensus machinery needs
    (``rows``, ``var_index``, ``cost``, ``lb``, ``ub``) and can lower
    itself to a :class:`CentralizedLP` for the HiGHS reference.
    """

    network: DistributionNetwork
    scenarios: ScenarioSet
    first_stage: tuple[str, ...]
    alpha: float
    objective: str
    var_index: VariableIndex
    rows: list[Row]
    cost: np.ndarray
    lb: np.ndarray
    ub: np.ndarray

    @property
    def n_vars(self) -> int:
        return self.var_index.n

    @property
    def n_scenarios(self) -> int:
        return self.scenarios.n_scenarios

    def initial_point(self) -> np.ndarray:
        return self.var_index.initial_point()

    def to_centralized(self) -> CentralizedLP:
        """Lower to the plain LP container (for the HiGHS reference)."""
        a, b = rows_to_matrix(self.rows, self.var_index)
        return CentralizedLP(
            network=self.network,
            var_index=self.var_index,
            rows=self.rows,
            a_matrix=a,
            b_vector=b,
            cost=self.cost,
            lb=self.lb,
            ub=self.ub,
        )

    # Convenience extraction -------------------------------------------------
    def first_stage_setpoints(self, x: np.ndarray) -> dict[str, np.ndarray]:
        """Per-phase first-stage dispatch of each coupled DER."""
        vi = self.var_index
        out = {}
        for name in self.first_stage:
            gen = self.network.generators[name]
            out[name] = np.array(
                [float(x[vi.index(("pg", name, phi))]) for phi in gen.phases]
            )
        return out

    def first_stage_cost(self, x: np.ndarray) -> float:
        """Deterministic (here-and-now) part of the objective."""
        vi = self.var_index
        total = 0.0
        for name in self.first_stage:
            gen = self.network.generators[name]
            for phi in gen.phases:
                total += gen.cost * float(x[vi.index(("pg", name, phi))])
        return total

    def scenario_costs(self, x: np.ndarray) -> np.ndarray:
        """Recourse cost per scenario (scenario-local generation only)."""
        vi = self.var_index
        fs = set(self.first_stage)
        out = np.zeros(self.n_scenarios, dtype=SAMPLE_DTYPE)
        for k in range(self.n_scenarios):
            for name, gen in self.network.generators.items():
                if name in fs or gen.cost == 0.0:
                    continue
                nm = _suffix(name, k)
                for phi in gen.phases:
                    out[k] += gen.cost * float(x[vi.index(("pg", nm, phi))])
        return out

    def expected_cost(self, x: np.ndarray) -> float:
        """First-stage cost plus the expected recourse cost of ``x``."""
        rec = self.scenario_costs(x)
        return self.first_stage_cost(x) + float(self.scenarios.weights @ rec)

    def cvar_cost(self, x: np.ndarray) -> float:
        """First-stage cost plus the sample CVaR of the recourse of ``x``."""
        rec = self.scenario_costs(x)
        return self.first_stage_cost(x) + sample_cvar(
            rec, self.scenarios.weights, self.alpha
        )


def default_first_stage(net: DistributionNetwork, pv_names=()) -> list[str]:
    """Dispatchable non-substation, non-PV generators (the DERs)."""
    pv = set(pv_names)
    return sorted(
        name
        for name, gen in net.generators.items()
        if gen.bus != net.substation and name not in pv
    )


def build_stochastic_lp(
    net: DistributionNetwork,
    scenarios: ScenarioSet,
    first_stage: list[str] | None = None,
    alpha: float = 0.95,
    objective: str = OBJECTIVE_CVAR,
    fix_first_stage: dict[str, np.ndarray] | None = None,
) -> StochasticProblem:
    """Scenario-expand ``net`` into the two-stage deterministic equivalent.

    Parameters
    ----------
    scenarios:
        A :class:`~repro.stochastic.sampler.ScenarioSet`; its load and PV
        names must exist in the network.
    first_stage:
        Generator names whose active power is decided before the scenario
        is revealed (shared across scenarios).  Defaults to every
        dispatchable non-substation, non-PV generator.
    alpha:
        CVaR confidence level in (0, 1) — only used when ``objective`` is
        ``"cvar"``.
    objective:
        ``"expected"`` minimizes first-stage cost + expected recourse;
        ``"cvar"`` minimizes first-stage cost + CVaR_alpha of the recourse.
    fix_first_stage:
        Optional per-generator per-phase setpoints: collapses the
        first-stage boxes so the LP *evaluates* a given here-and-now
        decision (the recourse-evaluation mode VSS uses).

    Raises
    ------
    FormulationError
        On unknown names, bad alpha, or an unknown objective.
    """
    if objective not in (OBJECTIVE_EXPECTED, OBJECTIVE_CVAR):
        raise FormulationError(f"unknown objective {objective!r}")
    if not 0.0 < alpha < 1.0:
        raise FormulationError("alpha must be in (0, 1)")
    unknown = set(scenarios.load_names) - set(net.loads)
    if unknown:
        raise FormulationError(f"scenario set names unknown loads: {sorted(unknown)}")
    unknown = set(scenarios.pv_names) - set(net.generators)
    if unknown:
        raise FormulationError(f"scenario set names unknown PV units: {sorted(unknown)}")
    if first_stage is None:
        first_stage = default_first_stage(net, scenarios.pv_names)
    fs = set(first_stage)
    unknown = fs - set(net.generators)
    if unknown:
        raise FormulationError(f"unknown first-stage generators: {sorted(unknown)}")
    if fs & set(scenarios.pv_names):
        raise FormulationError("PV units cannot be first-stage (not dispatchable)")
    sub_gens = {g.name for g in net.generators_at(net.substation)}
    if fs & sub_gens:
        raise FormulationError("the substation source is recourse, not first-stage")
    net.validate()

    k_n = scenarios.n_scenarios
    weights = scenarios.weights
    vi = VariableIndex()
    rows: list[Row] = []

    # First-stage DER setpoints: one shared column per generator phase.
    # Their cost is deterministic, so it lives directly on the column in
    # both objective modes.
    for name in first_stage:
        gen = net.generators[name]
        for a, phi in enumerate(gen.phases):
            lo, hi = gen.p_min[a], gen.p_max[a]
            if fix_first_stage is not None and name in fix_first_stage:
                lo = hi = float(np.asarray(fix_first_stage[name]).reshape(-1)[a])
            vi.add(("pg", name, phi), lo, hi, cost=gen.cost)

    pv_index = {name: j for j, name in enumerate(scenarios.pv_names)}
    for k in range(k_n):
        # Scenario copy of the physical network: scaled loads, PV derated
        # by the drawn availability.
        scen_net = net.copy()
        for j, name in enumerate(scenarios.load_names):
            load = scen_net.loads[name]
            load.p_ref = load.p_ref * scenarios.load_multipliers[k, j]
            load.q_ref = load.q_ref * scenarios.load_multipliers[k, j]
        for name, j in pv_index.items():
            gen = scen_net.generators[name]
            gen.p_max = gen.p_max * scenarios.pv_availability[k, j]

        # Scenario-local variables.  First-stage pg columns are skipped
        # (shared); everything else is recourse.  In CVaR mode the
        # recourse cost enters through the epigraph rows, not the
        # objective vector.
        rec_weight = weights[k] if objective == OBJECTIVE_EXPECTED else 0.0
        for gen in scen_net.generators.values():
            nm = _suffix(gen.name, k)
            for a, phi in enumerate(gen.phases):
                if gen.name not in fs:
                    vi.add(("pg", nm, phi), gen.p_min[a], gen.p_max[a],
                           cost=gen.cost * rec_weight)
                vi.add(("qg", nm, phi), gen.q_min[a], gen.q_max[a])
        for bus in scen_net.buses.values():
            nm = _suffix(bus.name, k)
            for a, phi in enumerate(bus.phases):
                vi.add(("w", nm, phi), bus.w_min[a], bus.w_max[a], is_voltage=True)
        for load in scen_net.loads.values():
            nm = _suffix(load.name, k)
            for phi in load.bus_phases:
                vi.add(("pb", nm, phi))
                vi.add(("qb", nm, phi))
            for phi in load.phases:
                vi.add(("pd", nm, phi))
                vi.add(("qd", nm, phi))
        for line in scen_net.lines.values():
            nm = _suffix(line.name, k)
            for a, phi in enumerate(line.phases):
                vi.add(("pf", nm, phi), line.p_min[a], line.p_max[a])
                vi.add(("qf", nm, phi), line.q_min[a], line.q_max[a])
                vi.add(("pt", nm, phi), line.p_min[a], line.p_max[a])
                vi.add(("qt", nm, phi), line.q_min[a], line.q_max[a])

        # Scenario rows: suffix every key and owner except the shared
        # first-stage pg columns — the shared column landing in K
        # different scenario components is what couples the stages.
        for row in build_rows(scen_net):
            coeffs = {}
            for key, c in row.coeffs.items():
                kind, name, phi = key
                if kind == "pg" and name in fs:
                    coeffs[key] = c
                else:
                    coeffs[(kind, _suffix(name, k), phi)] = c
            kind, owner_name = row.owner
            rows.append(
                Row(coeffs, row.rhs, (kind, _suffix(owner_name, k)),
                    tag=f"{row.tag}@s{k}")
            )

    # CVaR epigraph: t (free), per-scenario excess u_k >= 0 and slack
    # s_k >= 0 with  rec_k - t - u_k + s_k = 0, each row its own component.
    if objective == OBJECTIVE_CVAR:
        vi.add(("ct", "cvar", 1), cost=1.0, init=0.0)
        for k in range(k_n):
            excess_w = float(weights[k]) / (1.0 - alpha)
            vi.add(("cu", f"s{k}", 1), 0.0, np.inf, cost=excess_w, init=0.0)
            vi.add(("cs", f"s{k}", 1), 0.0, np.inf, init=0.0)
            coeffs: dict = {
                ("ct", "cvar", 1): -1.0,
                ("cu", f"s{k}", 1): -1.0,
                ("cs", f"s{k}", 1): 1.0,
            }
            for name, gen in net.generators.items():
                if name in fs or gen.cost == 0.0:
                    continue
                nm = _suffix(name, k)
                for phi in gen.phases:
                    coeffs[("pg", nm, phi)] = gen.cost
            rows.append(Row(coeffs, 0.0, ("cvar", f"s{k}"), tag=f"cvar:s{k}"))

    return StochasticProblem(
        network=net,
        scenarios=scenarios,
        first_stage=tuple(first_stage),
        alpha=alpha,
        objective=objective,
        var_index=vi,
        rows=rows,
        cost=vi.costs(),
        lb=vi.lower_bounds(),
        ub=vi.upper_bounds(),
    )
