"""Seeded scenario sampling for stochastic OPF.

A :class:`ScenarioSampler` draws multiplicative load perturbations and PV
availability factors for a named set of loads and PV units.  Three design
rules make the samples reproducible enough to serve:

* **Determinism** — every draw comes from :func:`numpy.random.default_rng`
  seeded by the sampler seed, so the same seed always produces the same
  scenario matrices, bit for bit.
* **Common random numbers** — each load/PV unit owns an independent
  substream whose seed is derived from ``(seed, kind, name)`` via SHA-256.
  Adding or removing one unit therefore never reshuffles the draws of the
  others, and two configurations compared under the same seed see the
  same underlying noise (the classic CRN variance-reduction setup).
* **Antithetic variates** — consecutive scenarios ``(2j, 2j+1)`` use
  negated normals, which halves the variance of smooth sample means such
  as the expected recourse cost.

Sampling is pinned to host fp64 (``np.float64``) regardless of the
array-execution backend the solves later run under: scenario *data* is
part of the problem statement, so an fp32 compute backend must still see
bit-identical scenario matrices (see tests/test_stochastic.py).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace

import numpy as np

from repro.backend.policy import HOST_DTYPE

#: Sampling dtype, deliberately fixed: scenario data is problem statement,
#: not compute, so it never follows the backend's precision policy.
SAMPLE_DTYPE = HOST_DTYPE


@dataclass(frozen=True)
class UncertaintyModel:
    """Perturbation model of one scenario draw.

    Loads get mean-one lognormal multipliers ``exp(sigma*z - sigma^2/2)``;
    PV units get availability factors ``clip(mean + sigma*z, 0, 1)``.
    """

    load_sigma: float = 0.10
    pv_sigma: float = 0.15
    pv_availability: float = 0.8

    def __post_init__(self) -> None:
        if self.load_sigma < 0 or self.pv_sigma < 0:
            raise ValueError("sigmas must be nonnegative")
        if not 0.0 <= self.pv_availability <= 1.0:
            raise ValueError("pv_availability must be in [0, 1]")


@dataclass(frozen=True)
class ScenarioSet:
    """K sampled scenarios over named loads and PV units.

    ``load_multipliers`` is ``(K, n_loads)`` and ``pv_availability`` is
    ``(K, n_pv)``, both fp64, columns ordered like ``load_names`` /
    ``pv_names``.  ``weights`` are the scenario probabilities (uniform
    ``1/K`` when sampled).
    """

    load_names: tuple[str, ...]
    pv_names: tuple[str, ...]
    load_multipliers: np.ndarray
    pv_availability: np.ndarray
    weights: np.ndarray
    seed: int = 0
    antithetic: bool = True
    model: UncertaintyModel = field(default_factory=UncertaintyModel)

    def __post_init__(self) -> None:
        k = self.load_multipliers.shape[0]
        if self.load_multipliers.shape != (k, len(self.load_names)):
            raise ValueError("load_multipliers shape mismatch")
        if self.pv_availability.shape != (k, len(self.pv_names)):
            raise ValueError("pv_availability shape mismatch")
        if self.weights.shape != (k,):
            raise ValueError("weights shape mismatch")

    @property
    def n_scenarios(self) -> int:
        return int(self.load_multipliers.shape[0])

    def load_multiplier_dict(self, k: int) -> dict[str, float]:
        """Scenario ``k`` as the per-load multiplier mapping requests use."""
        row = self.load_multipliers[k]
        return {name: float(row[j]) for j, name in enumerate(self.load_names)}

    def pv_availability_dict(self, k: int) -> dict[str, float]:
        row = self.pv_availability[k]
        return {name: float(row[j]) for j, name in enumerate(self.pv_names)}

    def mean(self) -> "ScenarioSet":
        """The probability-weighted mean scenario as a K=1 set.

        This is the input of the deterministic "expected value problem"
        in the value-of-stochastic-solution comparison.
        """
        w = self.weights[:, None]
        return replace(
            self,
            load_multipliers=np.sum(w * self.load_multipliers, axis=0)[None, :],
            pv_availability=np.sum(w * self.pv_availability, axis=0)[None, :],
            weights=np.ones(1, dtype=SAMPLE_DTYPE),
        )


def _substream_seed(seed: int, kind: str, name: str) -> int:
    """Independent per-unit substream seed (the CRN mechanism)."""
    digest = hashlib.sha256(f"{seed}|{kind}|{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def _normals(seed: int, kind: str, name: str, k: int, antithetic: bool) -> np.ndarray:
    """K standard normals from the unit's substream, antithetic-paired."""
    rng = np.random.default_rng(_substream_seed(seed, kind, name))
    if not antithetic:
        return rng.standard_normal(k).astype(SAMPLE_DTYPE, copy=False)
    half = rng.standard_normal((k + 1) // 2).astype(SAMPLE_DTYPE, copy=False)
    z = np.empty(2 * half.size, dtype=SAMPLE_DTYPE)
    z[0::2] = half
    z[1::2] = -half
    return z[:k]


class ScenarioSampler:
    """Seeded load/PV scenario generator over explicit unit names.

    Parameters
    ----------
    load_names:
        Loads receiving lognormal demand multipliers (sorted internally so
        the draw never depends on caller ordering).
    pv_names:
        PV units receiving availability factors in [0, 1].
    model:
        The :class:`UncertaintyModel` (sigmas and mean availability).
    seed:
        Master seed; every unit's substream derives from it.
    antithetic:
        Pair consecutive scenarios with negated normals.
    """

    def __init__(
        self,
        load_names,
        pv_names=(),
        model: UncertaintyModel | None = None,
        seed: int = 0,
        antithetic: bool = True,
    ):
        self.load_names = tuple(sorted(load_names))
        self.pv_names = tuple(sorted(pv_names))
        self.model = model if model is not None else UncertaintyModel()
        self.seed = int(seed)
        self.antithetic = bool(antithetic)

    @classmethod
    def from_network(
        cls,
        net,
        model: UncertaintyModel | None = None,
        seed: int = 0,
        antithetic: bool = True,
        pv_prefix: str = "pv",
    ) -> "ScenarioSampler":
        """All loads of ``net`` plus every generator named ``pv*``."""
        return cls(
            load_names=sorted(net.loads),
            pv_names=sorted(g for g in net.generators if g.startswith(pv_prefix)),
            model=model,
            seed=seed,
            antithetic=antithetic,
        )

    def sample(self, n_scenarios: int) -> ScenarioSet:
        """Draw ``n_scenarios`` scenarios (fp64, deterministic in the seed)."""
        if n_scenarios < 1:
            raise ValueError("n_scenarios must be at least 1")
        m = self.model
        k = int(n_scenarios)
        loads = np.empty((k, len(self.load_names)), dtype=SAMPLE_DTYPE)
        for j, name in enumerate(self.load_names):
            z = _normals(self.seed, "load", name, k, self.antithetic)
            loads[:, j] = np.exp(m.load_sigma * z - 0.5 * m.load_sigma**2)
        pv = np.empty((k, len(self.pv_names)), dtype=SAMPLE_DTYPE)
        for j, name in enumerate(self.pv_names):
            z = _normals(self.seed, "pv", name, k, self.antithetic)
            pv[:, j] = np.clip(m.pv_availability + m.pv_sigma * z, 0.0, 1.0)
        weights = np.full(k, 1.0 / k, dtype=SAMPLE_DTYPE)
        return ScenarioSet(
            load_names=self.load_names,
            pv_names=self.pv_names,
            load_multipliers=loads,
            pv_availability=pv,
            weights=weights,
            seed=self.seed,
            antithetic=self.antithetic,
            model=m,
        )
