"""Two-stage stochastic OPF over sampled load/PV uncertainty.

The scenario batch *is* the ADMM batch: all K scenarios' components run
as one stacked :class:`~repro.core.batch.BatchedLocalSolver` solve, with
first-stage DER setpoints coupled across scenarios by the consensus
constraint itself.  See docs/STOCHASTIC.md.
"""

from repro.stochastic.model import (
    OBJECTIVE_CVAR,
    OBJECTIVE_EXPECTED,
    StochasticProblem,
    build_stochastic_lp,
    default_first_stage,
    sample_cvar,
)
from repro.stochastic.sampler import (
    SAMPLE_DTYPE,
    ScenarioSampler,
    ScenarioSet,
    UncertaintyModel,
)
from repro.stochastic.solve import (
    StochasticSolution,
    StochasticSolverFreeADMM,
    VSSReport,
    decompose_stochastic,
    evaluate_first_stage,
    solve_two_stage,
    value_of_stochastic_solution,
)

__all__ = [
    "SAMPLE_DTYPE",
    "UncertaintyModel",
    "ScenarioSampler",
    "ScenarioSet",
    "OBJECTIVE_EXPECTED",
    "OBJECTIVE_CVAR",
    "StochasticProblem",
    "build_stochastic_lp",
    "default_first_stage",
    "sample_cvar",
    "StochasticSolution",
    "StochasticSolverFreeADMM",
    "VSSReport",
    "decompose_stochastic",
    "evaluate_first_stage",
    "solve_two_stage",
    "value_of_stochastic_solution",
]
