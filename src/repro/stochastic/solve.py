"""Solving the two-stage stochastic problem with the consensus machinery.

The scenario-expanded LP is equality-constrained with bounds, so — like
the multi-period problem — it is the degenerate (zero-cone) case of the
conic consensus solver: the support-grouped components of *all* scenarios
(every scenario's buses/lines plus the per-scenario CVaR epigraph rows)
land in one :class:`~repro.core.batch.BatchedLocalSolver` batch, i.e. the
scenario set is solved as one stacked ADMM batch through the Backend
protocol.  The shared first-stage columns appear in K scenario components
at once, so the ADMM consensus average enforces non-anticipativity.

The module also hosts the evaluation utilities around the solve:
recourse evaluation of a fixed first-stage decision and the value of the
stochastic solution (VSS), both computed against the exact HiGHS
reference so the benchmark quantities are solver-noise-free.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.config import ADMMConfig
from repro.core.results import ADMMResult
from repro.reference import solve_reference
from repro.socp.solver import ConicDecomposition, ConicSolverFreeADMM, decompose_conic
from repro.stochastic.model import (
    OBJECTIVE_CVAR,
    OBJECTIVE_EXPECTED,
    StochasticProblem,
    build_stochastic_lp,
)
from repro.stochastic.sampler import ScenarioSet


class _ConicView:
    """Duck-type adapter: the stochastic problem as a cone-free conic one."""

    def __init__(self, problem: StochasticProblem):
        self._p = problem
        self.rows = problem.rows
        self.var_index = problem.var_index
        self.cones: list = []
        self.cost = problem.cost
        self.lb = problem.lb
        self.ub = problem.ub
        self.n_vars = problem.n_vars

    def initial_point(self):
        return self._p.initial_point()


def decompose_stochastic(problem: StochasticProblem) -> ConicDecomposition:
    """Support-grouped decomposition of the scenario-expanded LP."""
    return decompose_conic(_ConicView(problem))


class StochasticSolverFreeADMM(ConicSolverFreeADMM):
    """Solver-free consensus ADMM over all scenarios' components at once."""

    algorithm_name = "solver-free ADMM (two-stage stochastic)"

    def __init__(
        self,
        dec: ConicDecomposition,
        config: ADMMConfig | None = None,
        backend=None,
        precision: str | None = None,
    ):
        super().__init__(dec, config, backend=backend, precision=precision)


@dataclass
class StochasticSolution:
    """One solved two-stage instance plus its risk read-outs.

    ``expected_cost`` and ``cvar_cost`` are both evaluated on the *same*
    solution ``x`` (first-stage cost + expected / CVaR recourse), so
    ``cvar_cost >= expected_cost`` holds pointwise for any solution — the
    risk premium of the decision.
    """

    problem: StochasticProblem
    result: ADMMResult
    first_stage: dict[str, np.ndarray]
    scenario_costs: np.ndarray
    expected_cost: float
    cvar_cost: float

    @property
    def objective(self) -> float:
        return self.result.objective

    @property
    def converged(self) -> bool:
        return self.result.converged

    @property
    def iterations(self) -> int:
        return self.result.iterations


def solve_two_stage(
    net,
    scenarios: ScenarioSet,
    first_stage: list[str] | None = None,
    alpha: float = 0.95,
    objective: str = OBJECTIVE_CVAR,
    config: ADMMConfig | None = None,
    backend=None,
    precision: str | None = None,
    fix_first_stage: dict[str, np.ndarray] | None = None,
) -> StochasticSolution:
    """Build, decompose and solve one two-stage instance end to end."""
    problem = build_stochastic_lp(
        net,
        scenarios,
        first_stage=first_stage,
        alpha=alpha,
        objective=objective,
        fix_first_stage=fix_first_stage,
    )
    solver = StochasticSolverFreeADMM(
        decompose_stochastic(problem), config, backend=backend, precision=precision
    )
    result = solver.solve()
    x = result.x
    return StochasticSolution(
        problem=problem,
        result=result,
        first_stage=problem.first_stage_setpoints(x),
        scenario_costs=problem.scenario_costs(x),
        expected_cost=problem.expected_cost(x),
        cvar_cost=problem.cvar_cost(x),
    )


def evaluate_first_stage(
    net,
    scenarios: ScenarioSet,
    setpoints: dict[str, np.ndarray],
    first_stage: list[str] | None = None,
) -> float:
    """Exact expected total cost of a fixed here-and-now decision.

    Collapses the first-stage boxes to ``setpoints`` and solves the
    expected-value LP with the HiGHS reference: the recourse function
    evaluation ``E_k[Q(y, xi_k)]`` plus the first-stage cost.
    """
    problem = build_stochastic_lp(
        net,
        scenarios,
        first_stage=first_stage if first_stage is not None else sorted(setpoints),
        objective=OBJECTIVE_EXPECTED,
        fix_first_stage=setpoints,
    )
    ref = solve_reference(problem.to_centralized())
    return float(ref.objective)


@dataclass
class VSSReport:
    """Value of the stochastic solution on one sampled scenario set.

    ``vss = deterministic_eval - stochastic_eval >= 0``: how much expected
    cost the mean-scenario (expected value problem) first stage leaves on
    the table relative to the true two-stage optimum.
    """

    stochastic_eval: float
    deterministic_eval: float
    first_stage_stochastic: dict[str, np.ndarray]
    first_stage_deterministic: dict[str, np.ndarray]

    @property
    def vss(self) -> float:
        return self.deterministic_eval - self.stochastic_eval


def value_of_stochastic_solution(
    net,
    scenarios: ScenarioSet,
    first_stage: list[str] | None = None,
) -> VSSReport:
    """VSS via exact reference solves (benchmark-grade, solver-noise-free).

    Solves the expected-value problem on the full scenario set (the
    recourse problem RP) and on the mean scenario (the expected value
    problem EV), then evaluates both first stages against the full set.
    """
    rp = build_stochastic_lp(
        net, scenarios, first_stage=first_stage, objective=OBJECTIVE_EXPECTED
    )
    x_rp = solve_reference(rp.to_centralized()).x
    y_rp = rp.first_stage_setpoints(x_rp)

    ev = build_stochastic_lp(
        net, scenarios.mean(), first_stage=first_stage, objective=OBJECTIVE_EXPECTED
    )
    x_ev = solve_reference(ev.to_centralized()).x
    y_ev = ev.first_stage_setpoints(x_ev)

    fs = list(rp.first_stage)
    return VSSReport(
        stochastic_eval=evaluate_first_stage(net, scenarios, y_rp, first_stage=fs),
        deterministic_eval=evaluate_first_stage(net, scenarios, y_ev, first_stage=fs),
        first_stage_stochastic=y_rp,
        first_stage_deterministic=y_ev,
    )
