"""SARIF 2.1.0 emission for GitHub code scanning.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub's
``upload-sarif`` action ingests: findings become code-scanning alerts
annotated on PRs, rule metadata becomes the alert help text, and
``partialFingerprints`` keeps alert identity stable across line drift —
which is exactly what our content fingerprints already provide, so they
are passed through verbatim.

The emitter maps:

* each registered rule -> ``tool.driver.rules[]`` with id, short/full
  description (the rule's rationale) and default severity level;
* each finding -> ``results[]`` with ``ruleId``, level, message,
  one physical location, and ``partialFingerprints.reproLint/v1``;
* baselined findings -> ``baselineState: "unchanged"`` (new findings get
  ``"new"``), so a grandfathered finding uploads without re-alerting.

Only the small schema subset code scanning reads is emitted; the output
validates against the full 2.1.0 schema because everything emitted is
spelled per spec and everything omitted is optional.
"""

from __future__ import annotations

import json

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Our severities -> SARIF result levels.
_LEVELS = {"error": "error", "warning": "warning", "info": "note"}


def _rule_descriptor(rule) -> dict:
    return {
        "id": rule.id,
        "name": rule.name,
        "shortDescription": {"text": rule.name},
        "fullDescription": {"text": rule.rationale},
        "defaultConfiguration": {
            "level": _LEVELS.get(rule.severity, "warning"),
        },
        "properties": {"scope": list(rule.scope)},
    }


def _result(finding, rule_index: dict[str, int], baseline_state: str) -> dict:
    out = {
        "ruleId": finding.rule,
        "level": _LEVELS.get(finding.severity, "warning"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
        "partialFingerprints": {"reproLint/v1": finding.fingerprint},
        "baselineState": baseline_state,
    }
    if finding.rule in rule_index:
        out["ruleIndex"] = rule_index[finding.rule]
    return out


def sarif_log(result) -> dict:
    """The SARIF log document for one :class:`~repro.lint.LintResult`."""
    rules = sorted(result.rules, key=lambda r: r.id)
    # R000 (unused suppression) is emitted by the engine, not registered
    # as a rule object; synthesize its descriptor so every result's
    # ruleId resolves.
    descriptors = [
        {
            "id": "R000",
            "name": "unused-suppression",
            "shortDescription": {"text": "unused-suppression"},
            "fullDescription": {
                "text": "a suppression pragma that never fires is stale "
                "and must be removed"
            },
            "defaultConfiguration": {"level": "warning"},
            "properties": {"scope": []},
        }
    ] + [_rule_descriptor(r) for r in rules]
    rule_index = {d["id"]: i for i, d in enumerate(descriptors)}
    results = [_result(f, rule_index, "new") for f in result.findings] + [
        _result(f, rule_index, "unchanged") for f in result.baselined
    ]
    results.sort(
        key=lambda r: (
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"],
            r["locations"][0]["physicalLocation"]["region"]["startLine"],
            r["ruleId"],
        )
    )
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "informationUri": (
                            "https://github.com/paper-repro/repro"
                        ),
                        "rules": descriptors,
                    }
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///"},
                },
                "results": results,
                "columnKind": "utf16CodeUnits",
            }
        ],
    }


def format_sarif(result) -> str:
    return json.dumps(sarif_log(result), indent=2, sort_keys=False)
