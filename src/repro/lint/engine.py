"""The lint engine: file discovery, pragma handling, fingerprints.

The engine walks ``.py`` files, parses each once with :mod:`ast`, and
runs every in-scope rule over the tree.  Three layers filter the raw
rule output before anything reaches the report:

* **Suppressions** — ``# repro-lint: disable=R001`` on the offending
  line, or ``# repro-lint: disable-file=R001,R003`` anywhere in the
  file.  Suppressed findings vanish; a suppression that never fires is
  itself reported (rule ``R000``), so stale pragmas can't accumulate.
* **Baseline** — grandfathered findings matched by *content fingerprint*
  (rule + path + stripped source line + occurrence index, so the match
  survives unrelated line drift).  Baselined findings are kept on the
  result but do not fail the run; baseline entries that no longer match
  anything are reported as stale so the file ratchets downward.
* **Scope** — each rule's path prefixes, matched against the module's
  path *relative to the* ``repro`` *package* (``core/residuals.py``),
  so the same rules work on fixture trees in tests.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.rules import Rule, all_rules

# Suppression pragma syntax; matched against COMMENT tokens only, so a
# docstring *describing* the syntax never counts as a suppression.
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+)"
)

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".pytest_cache"})


class LintConfigError(Exception):
    """A problem with the lint invocation itself (bad rule id, unreadable
    baseline, unparseable source) — the CLI maps this to exit code 2 so CI
    can tell 'misconfigured' from 'found problems'."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    severity: str
    path: str  #: display path (as discovered, posix separators)
    line: int
    col: int
    message: str
    fingerprint: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class LintResult:
    """Everything one lint run produced, pre-partitioned for reporting."""

    findings: list[Finding] = field(default_factory=list)  #: new (failing)
    baselined: list[Finding] = field(default_factory=list)  #: grandfathered
    stale_baseline: list[str] = field(default_factory=list)  #: dead entries
    files: int = 0
    suppressed: int = 0
    rules: list[Rule] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    def record_metrics(self, registry) -> None:
        """Mirror the run into a :class:`~repro.telemetry.MetricsRegistry`."""
        registry.counter("lint.files").inc(self.files)
        registry.counter("lint.findings").inc(len(self.findings))
        registry.counter("lint.baselined").inc(len(self.baselined))
        registry.counter("lint.suppressed").inc(self.suppressed)


class _Suppressions:
    """Per-file pragma state with fired/unfired tracking."""

    def __init__(self, source: str):
        self.line_rules: dict[int, set[str]] = {}
        self.file_rules: set[str] = set()
        self._pragma_line: dict[str, int] = {}  # file-level rule -> decl line
        self.used: set[tuple[int, str]] = set()  # (0, rule) == file-level
        try:
            comments = [
                (tok.start[0], tok.string)
                for tok in tokenize.generate_tokens(io.StringIO(source).readline)
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, SyntaxError, IndentationError):
            comments = []
        for lineno, text in comments:
            m = _PRAGMA_RE.search(text)
            if not m:
                continue
            rules = {r.strip().upper() for r in m.group("rules").split(",")}
            rules.discard("")
            if m.group("kind") == "disable":
                self.line_rules.setdefault(lineno, set()).update(rules)
            else:
                self.file_rules.update(rules)
                for rule in rules:
                    self._pragma_line.setdefault(rule, lineno)

    def suppresses(self, lineno: int, rule: str) -> bool:
        if rule in self.file_rules:
            self.used.add((0, rule))
            return True
        if rule in self.line_rules.get(lineno, ()):
            self.used.add((lineno, rule))
            return True
        return False

    def unused(self) -> list[tuple[int, str]]:
        """``(line, rule)`` for every pragma that never fired."""
        out = []
        for lineno, rules in sorted(self.line_rules.items()):
            out.extend(
                (lineno, rule)
                for rule in sorted(rules)
                if (lineno, rule) not in self.used
            )
        out.extend(
            (self._pragma_line[rule], rule)
            for rule in sorted(self.file_rules)
            if (0, rule) not in self.used
        )
        return out


def fingerprint(rule: str, path: str, source_line: str, occurrence: int) -> str:
    """Content-based finding identity, stable across unrelated line drift."""
    key = f"{rule}|{path}|{source_line.strip()}|{occurrence}"
    return hashlib.sha1(key.encode()).hexdigest()[:16]


def discover(paths: list[str]) -> list[tuple[Path, Path]]:
    """``(file, root)`` for every ``.py`` file under ``paths``, sorted.

    ``root`` is the path argument the file was found under (its parent
    for file arguments) — the anchor scope matching falls back to for
    trees that do not contain a ``repro`` package.
    """
    out: dict[Path, Path] = {}
    for raw in paths:
        p = Path(raw)
        if not p.exists():
            raise LintConfigError(f"no such path: {raw}")
        if p.is_file():
            out.setdefault(p, p.parent)
            continue
        for f in p.rglob("*.py"):
            if not any(part in _SKIP_DIRS for part in f.parts):
                out.setdefault(f, p)
    return sorted(out.items())


def scope_path(path: Path, root: Path | None = None) -> str:
    """The path rules match scopes against: relative to the ``repro``
    package when the file lives under one, relative to ``root`` otherwise
    (which is what fixture trees in tests use)."""
    posix = path.as_posix()
    idx = posix.rfind("repro/")
    if idx >= 0:
        return posix[idx + len("repro/"):]
    if root is not None:
        try:
            return path.relative_to(root).as_posix()
        except ValueError:
            pass
    return posix


class LintEngine:
    """Run a rule set over a file list and partition the output."""

    def __init__(self, rules: list[Rule] | None = None):
        self.rules = rules if rules is not None else all_rules()

    def lint_file(
        self, path: Path, root: Path | None = None
    ) -> tuple[list[Finding], int]:
        """All findings for one file plus its suppressed-finding count."""
        try:
            source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as exc:
            raise LintConfigError(f"cannot lint {path}: {exc}") from exc
        lines = source.splitlines()
        rel = scope_path(path, root)
        display = path.as_posix()
        sup = _Suppressions(source)
        findings: list[Finding] = []
        suppressed = 0
        occurrences: dict[tuple[str, str], int] = {}
        for rule in self.rules:
            if not rule.applies(rel):
                continue
            for line, col, message in rule.check(tree, lines, rel):
                if sup.suppresses(line, rule.id):
                    suppressed += 1
                    continue
                text = lines[line - 1] if 0 < line <= len(lines) else ""
                occ_key = (rule.id, text.strip())
                occ = occurrences.get(occ_key, 0)
                occurrences[occ_key] = occ + 1
                findings.append(
                    Finding(
                        rule=rule.id,
                        severity=rule.severity,
                        path=display,
                        line=line,
                        col=col,
                        message=message,
                        # Fingerprints hash the *package-relative* path so
                        # the baseline matches however the linter is
                        # invoked (repo root, absolute paths, CI).
                        fingerprint=fingerprint(rule.id, rel, text, occ),
                    )
                )
        for line, rule_id in sup.unused():
            text = lines[line - 1] if 0 < line <= len(lines) else ""
            occ_key = ("R000", text.strip())
            occ = occurrences.get(occ_key, 0)
            occurrences[occ_key] = occ + 1
            findings.append(
                Finding(
                    rule="R000",
                    severity="warning",
                    path=display,
                    line=line,
                    col=0,
                    message=(
                        f"unused suppression: {rule_id} never fires here — "
                        "remove the pragma"
                    ),
                    fingerprint=fingerprint("R000", rel, text, occ),
                )
            )
        findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return findings, suppressed

    def run(
        self, paths: list[str], baseline: dict[str, dict] | None = None
    ) -> LintResult:
        """Lint every file under ``paths`` against ``baseline``."""
        result = LintResult(rules=list(self.rules))
        matched: set[str] = set()
        baseline = baseline or {}
        for path, root in discover(paths):
            findings, suppressed = self.lint_file(path, root)
            result.files += 1
            result.suppressed += suppressed
            for f in findings:
                if f.fingerprint in baseline:
                    matched.add(f.fingerprint)
                    result.baselined.append(f)
                else:
                    result.findings.append(f)
        result.stale_baseline = sorted(set(baseline) - matched)
        return result
