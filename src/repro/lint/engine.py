"""The lint engine: discovery, two-phase analysis, pragmas, fingerprints.

The engine runs in two phases.  **Phase one** walks ``.py`` files,
parses each once with :mod:`ast`, runs every in-scope *per-file* rule
over the tree, and extracts the file's :class:`~repro.lint.graph.
ModuleInfo` summary.  **Phase two** assembles the summaries into a
:class:`~repro.lint.graph.ProjectGraph` and runs the *whole-program*
rules (R100+) against it, attributing each finding back to a file so
the downstream machinery is shared.  Phase one is incremental (content
hashes via :class:`~repro.lint.cache.LintCache`) and optionally
parallel; phase two always recomputes — it is cheap, and recomputing is
what keeps cross-module findings fresh when a *different* file changed.

Three layers filter the raw rule output before anything reaches the
report:

* **Suppressions** — ``# repro-lint: disable=R001`` on the offending
  line, or ``# repro-lint: disable-file=R001,R003`` anywhere in the
  file.  Suppressed findings vanish; a suppression that never fires is
  itself reported (rule ``R000``), so stale pragmas can't accumulate.
  Project-rule findings honour the same pragmas.
* **Baseline** — grandfathered findings matched by *content fingerprint*
  (rule + path + stripped source line + occurrence index, so the match
  survives unrelated line drift).  Baselined findings are kept on the
  result but do not fail the run; baseline entries that no longer match
  anything are reported as stale so the file ratchets downward.
* **Scope** — each rule's path prefixes, matched against the module's
  path *relative to the* ``repro`` *package* (``core/residuals.py``),
  so the same rules work on fixture trees in tests.
"""

from __future__ import annotations

import ast
import hashlib
import io
import re
import time
import tokenize
from dataclasses import dataclass, field
from pathlib import Path

from repro.lint.graph import ModuleInfo, ProjectGraph, extract_module
from repro.lint.rules import ProjectRule, Rule, all_rules, get_rules

# Suppression pragma syntax; matched against COMMENT tokens only, so a
# docstring *describing* the syntax never counts as a suppression.
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+)"
)

#: Directory names never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".ruff_cache", ".pytest_cache"})


class LintConfigError(Exception):
    """A problem with the lint invocation itself (bad rule id, unreadable
    baseline, unparseable source) — the CLI maps this to exit code 2 so CI
    can tell 'misconfigured' from 'found problems'."""


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    severity: str
    path: str  #: display path (as discovered, posix separators)
    line: int
    col: int
    message: str
    fingerprint: str

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }


@dataclass
class LintResult:
    """Everything one lint run produced, pre-partitioned for reporting."""

    findings: list[Finding] = field(default_factory=list)  #: new (failing)
    baselined: list[Finding] = field(default_factory=list)  #: grandfathered
    stale_baseline: list[str] = field(default_factory=list)  #: dead entries
    files: int = 0
    suppressed: int = 0
    rules: list[Rule] = field(default_factory=list)
    #: incremental-cache accounting (zeros when run without a cache)
    cache_hits: int = 0
    cache_misses: int = 0
    #: graph-pass shape (zeros when no project rules ran)
    graph_modules: int = 0
    graph_edges: int = 0
    #: wall-clock per phase: file_pass / graph_build / graph_rules / total
    timings: dict[str, float] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        return not self.findings

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for f in self.findings:
            counts[f.rule] = counts.get(f.rule, 0) + 1
        return counts

    def record_metrics(self, registry) -> None:
        """Mirror the run into a :class:`~repro.telemetry.MetricsRegistry`."""
        registry.counter("lint.files").inc(self.files)
        registry.counter("lint.findings").inc(len(self.findings))
        registry.counter("lint.baselined").inc(len(self.baselined))
        registry.counter("lint.suppressed").inc(self.suppressed)
        registry.counter("lint.cache_hits").inc(self.cache_hits)


class _Suppressions:
    """Per-file pragma state with fired/unfired tracking.

    Serializable (:meth:`to_dict`/:meth:`from_dict`) so cached files
    keep honouring — and reporting unused — pragmas without re-reading
    source.  The cached ``used`` set holds phase-one firings only;
    phase-two (project-rule) firings are re-applied every run.
    """

    def __init__(self, source: str | None = None):
        self.line_rules: dict[int, set[str]] = {}
        self.file_rules: set[str] = set()
        self._pragma_line: dict[str, int] = {}  # file-level rule -> decl line
        self.used: set[tuple[int, str]] = set()  # (0, rule) == file-level
        if source is None:
            return
        try:
            comments = [
                (tok.start[0], tok.string)
                for tok in tokenize.generate_tokens(io.StringIO(source).readline)
                if tok.type == tokenize.COMMENT
            ]
        except (tokenize.TokenError, SyntaxError, IndentationError):
            comments = []
        for lineno, text in comments:
            m = _PRAGMA_RE.search(text)
            if not m:
                continue
            rules = {r.strip().upper() for r in m.group("rules").split(",")}
            rules.discard("")
            if m.group("kind") == "disable":
                self.line_rules.setdefault(lineno, set()).update(rules)
            else:
                self.file_rules.update(rules)
                for rule in rules:
                    self._pragma_line.setdefault(rule, lineno)

    def suppresses(self, lineno: int, rule: str) -> bool:
        if rule in self.file_rules:
            self.used.add((0, rule))
            return True
        if rule in self.line_rules.get(lineno, ()):
            self.used.add((lineno, rule))
            return True
        return False

    def unused(self) -> list[tuple[int, str]]:
        """``(line, rule)`` for every pragma that never fired."""
        out = []
        for lineno, rules in sorted(self.line_rules.items()):
            out.extend(
                (lineno, rule)
                for rule in sorted(rules)
                if (lineno, rule) not in self.used
            )
        out.extend(
            (self._pragma_line[rule], rule)
            for rule in sorted(self.file_rules)
            if (0, rule) not in self.used
        )
        return out

    def to_dict(self) -> dict:
        return {
            "line_rules": {
                str(line): sorted(rules) for line, rules in self.line_rules.items()
            },
            "file_rules": sorted(self.file_rules),
            "pragma_line": dict(self._pragma_line),
            "used": sorted([list(pair) for pair in self.used]),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "_Suppressions":
        sup = cls()
        sup.line_rules = {
            int(line): set(rules) for line, rules in d.get("line_rules", {}).items()
        }
        sup.file_rules = set(d.get("file_rules", []))
        sup._pragma_line = {
            rule: int(line) for rule, line in d.get("pragma_line", {}).items()
        }
        sup.used = {(int(line), rule) for line, rule in d.get("used", [])}
        return sup


def fingerprint(rule: str, path: str, source_line: str, occurrence: int) -> str:
    """Content-based finding identity, stable across unrelated line drift."""
    key = f"{rule}|{path}|{source_line.strip()}|{occurrence}"
    return hashlib.sha1(key.encode()).hexdigest()[:16]


def discover(paths: list[str]) -> list[tuple[Path, Path]]:
    """``(file, root)`` for every ``.py`` file under ``paths``, sorted.

    ``root`` is the path argument the file was found under (its parent
    for file arguments) — the anchor scope matching falls back to for
    trees that do not contain a ``repro`` package.
    """
    out: dict[Path, Path] = {}
    for raw in paths:
        p = Path(raw)
        if not p.exists():
            raise LintConfigError(f"no such path: {raw}")
        if p.is_file():
            out.setdefault(p, p.parent)
            continue
        for f in p.rglob("*.py"):
            if not any(part in _SKIP_DIRS for part in f.parts):
                out.setdefault(f, p)
    return sorted(out.items())


def scope_path(path: Path, root: Path | None = None) -> str:
    """The path rules match scopes against: relative to the ``repro``
    package when the file lives under one, relative to ``root`` otherwise
    (which is what fixture trees in tests use)."""
    posix = path.as_posix()
    idx = posix.rfind("repro/")
    if idx >= 0:
        return posix[idx + len("repro/"):]
    if root is not None:
        try:
            return path.relative_to(root).as_posix()
        except ValueError:
            pass
    return posix


@dataclass
class FileAnalysis:
    """Phase-one output for one file: findings, pragma state, summary.

    This is the cache unit — everything phase two and the report need
    without re-reading the file (source lines are re-read lazily only to
    fingerprint a project finding, which requires the file unchanged and
    is therefore safe on a cache hit).
    """

    display: str  #: path as discovered (posix)
    rel: str  #: scope path
    sha: str  #: content hash
    findings: list[Finding]  #: per-file rule findings (no R000 yet)
    suppressed: int
    module: ModuleInfo
    sup: _Suppressions

    def to_cache_entry(self) -> dict:
        return {
            "sha": self.sha,
            "rel": self.rel,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": self.suppressed,
            "module": self.module.to_dict(),
            "sup": self.sup.to_dict(),
        }

    @classmethod
    def from_cache_entry(cls, display: str, entry: dict) -> "FileAnalysis":
        return cls(
            display=display,
            rel=entry["rel"],
            sha=entry["sha"],
            findings=[Finding(**f) for f in entry["findings"]],
            suppressed=entry["suppressed"],
            module=ModuleInfo.from_dict(entry["module"]),
            sup=_Suppressions.from_dict(entry["sup"]),
        )


def _analyze_file_worker(args: tuple[str, str, list[str] | None]) -> FileAnalysis:
    """Module-level phase-one worker so parallel analysis pickles."""
    path_str, root_str, rule_ids = args
    engine = LintEngine(get_rules(rule_ids) if rule_ids is not None else None)
    return engine.analyze_file(Path(path_str), Path(root_str))


class LintEngine:
    """Run a rule set over a file list and partition the output."""

    def __init__(self, rules: list[Rule] | None = None):
        self.rules = rules if rules is not None else all_rules()
        self.file_rules = [r for r in self.rules if not isinstance(r, ProjectRule)]
        self.project_rules = [r for r in self.rules if isinstance(r, ProjectRule)]

    def rule_ids(self) -> list[str]:
        return sorted(r.id for r in self.rules)

    # ------------------------------------------------------------------
    # phase one
    # ------------------------------------------------------------------
    def analyze_file(
        self, path: Path, root: Path | None = None, source: str | None = None
    ) -> FileAnalysis:
        """Parse one file, run the per-file rules, extract the summary."""
        try:
            if source is None:
                source = path.read_text()
            tree = ast.parse(source, filename=str(path))
        except (OSError, SyntaxError) as exc:
            raise LintConfigError(f"cannot lint {path}: {exc}") from exc
        lines = source.splitlines()
        rel = scope_path(path, root)
        display = path.as_posix()
        sup = _Suppressions(source)
        findings: list[Finding] = []
        suppressed = 0
        occurrences: dict[tuple[str, str], int] = {}
        for rule in self.file_rules:
            if not rule.applies(rel):
                continue
            for line, col, message in rule.check(tree, lines, rel):
                if sup.suppresses(line, rule.id):
                    suppressed += 1
                    continue
                text = lines[line - 1] if 0 < line <= len(lines) else ""
                occ_key = (rule.id, text.strip())
                occ = occurrences.get(occ_key, 0)
                occurrences[occ_key] = occ + 1
                findings.append(
                    Finding(
                        rule=rule.id,
                        severity=rule.severity,
                        path=display,
                        line=line,
                        col=col,
                        message=message,
                        # Fingerprints hash the *package-relative* path so
                        # the baseline matches however the linter is
                        # invoked (repo root, absolute paths, CI).
                        fingerprint=fingerprint(rule.id, rel, text, occ),
                    )
                )
        return FileAnalysis(
            display=display,
            rel=rel,
            sha=hashlib.sha256(source.encode()).hexdigest()[:24],
            findings=findings,
            suppressed=suppressed,
            module=extract_module(tree, rel, source),
            sup=sup,
        )

    def _unused_pragma_findings(
        self, analysis: FileAnalysis, lines: list[str]
    ) -> list[Finding]:
        # A pragma can only be "unused" if its rule actually ran — a
        # `--rules R103` pass must not flag every R001 suppression.
        selected = {r.id for r in self.rules}
        findings = []
        occurrences: dict[str, int] = {}
        for line, rule_id in analysis.sup.unused():
            if rule_id not in selected:
                continue
            text = lines[line - 1] if 0 < line <= len(lines) else ""
            occ = occurrences.get(text.strip(), 0)
            occurrences[text.strip()] = occ + 1
            findings.append(
                Finding(
                    rule="R000",
                    severity="warning",
                    path=analysis.display,
                    line=line,
                    col=0,
                    message=(
                        f"unused suppression: {rule_id} never fires here — "
                        "remove the pragma"
                    ),
                    fingerprint=fingerprint("R000", analysis.rel, text, occ),
                )
            )
        return findings

    def lint_file(
        self, path: Path, root: Path | None = None
    ) -> tuple[list[Finding], int]:
        """All per-file findings for one file plus its suppressed count.

        Single-file view: per-file rules and unused-pragma reporting run;
        the whole-program rules need :meth:`run`'s graph pass and are not
        represented here.
        """
        analysis = self.analyze_file(path, root)
        lines = path.read_text().splitlines()
        findings = analysis.findings + self._unused_pragma_findings(analysis, lines)
        findings.sort(key=lambda f: (f.line, f.col, f.rule))
        return findings, analysis.suppressed

    # ------------------------------------------------------------------
    # phase two
    # ------------------------------------------------------------------
    def _project_findings(
        self, analyses: list[FileAnalysis], result: LintResult
    ) -> dict[str, list[Finding]]:
        """Run the whole-program rules; findings grouped by display path."""
        by_rel = {a.rel: a for a in analyses}
        lines_memo: dict[str, list[str]] = {}

        def lines_for(analysis: FileAnalysis) -> list[str]:
            if analysis.display not in lines_memo:
                try:
                    text = Path(analysis.display).read_text()
                except OSError:
                    text = ""
                lines_memo[analysis.display] = text.splitlines()
            return lines_memo[analysis.display]

        t0 = time.perf_counter()
        graph = ProjectGraph([a.module for a in analyses])
        result.graph_modules = len(graph.modules)
        result.graph_edges = len(graph.import_edges())
        t1 = time.perf_counter()
        out: dict[str, list[Finding]] = {}
        occurrences: dict[tuple[str, str, str], int] = {}
        for rule in self.project_rules:
            for rel, line, col, message in rule.check_project(graph):
                analysis = by_rel.get(rel)
                if analysis is None or not rule.applies(rel):
                    continue
                if analysis.sup.suppresses(line, rule.id):
                    result.suppressed += 1
                    continue
                lines = lines_for(analysis)
                text = lines[line - 1] if 0 < line <= len(lines) else ""
                occ_key = (rule.id, rel, text.strip())
                occ = occurrences.get(occ_key, 0)
                occurrences[occ_key] = occ + 1
                out.setdefault(analysis.display, []).append(
                    Finding(
                        rule=rule.id,
                        severity=rule.severity,
                        path=analysis.display,
                        line=line,
                        col=col,
                        message=message,
                        fingerprint=fingerprint(rule.id, rel, text, occ),
                    )
                )
        t2 = time.perf_counter()
        result.timings["graph_build"] = t1 - t0
        result.timings["graph_rules"] = t2 - t1
        return out

    # ------------------------------------------------------------------
    # the full run
    # ------------------------------------------------------------------
    def run(
        self,
        paths: list[str],
        baseline: dict[str, dict] | None = None,
        *,
        cache=None,
        jobs: int = 1,
        changed: set[Path] | None = None,
    ) -> LintResult:
        """Lint every file under ``paths`` against ``baseline``.

        ``cache`` is a :class:`~repro.lint.cache.LintCache` (or ``None``
        for a cold run); ``jobs`` > 1 analyzes changed files in parallel
        processes; ``changed`` restricts *per-file* findings to the given
        resolved paths (``--changed``) — whole-program findings are
        always reported, because their cause may live in a changed file
        even when their location does not.  Stale-baseline detection is
        skipped in changed mode (the scoped view cannot prove an entry
        dead).
        """
        t_start = time.perf_counter()
        result = LintResult(rules=list(self.rules))
        discovered = discover(paths)

        analyses: list[FileAnalysis] = []
        to_analyze: list[tuple[Path, Path, str]] = []  # (path, root, source)
        for path, root in discovered:
            if cache is not None:
                try:
                    source = path.read_text()
                except OSError as exc:
                    raise LintConfigError(f"cannot lint {path}: {exc}") from exc
                sha = hashlib.sha256(source.encode()).hexdigest()[:24]
                entry = cache.get(path.as_posix(), sha)
                if entry is not None:
                    analysis = FileAnalysis.from_cache_entry(path.as_posix(), entry)
                    analyses.append(analysis)
                    cache.put(path.as_posix(), entry)
                    continue
                to_analyze.append((path, root, source))
            else:
                to_analyze.append((path, root, None))

        if jobs > 1 and len(to_analyze) > 1:
            from concurrent.futures import ProcessPoolExecutor

            ids = self.rule_ids()
            with ProcessPoolExecutor(max_workers=jobs) as pool:
                fresh = list(
                    pool.map(
                        _analyze_file_worker,
                        [(str(p), str(r), ids) for p, r, _ in to_analyze],
                        chunksize=8,
                    )
                )
        else:
            fresh = [
                self.analyze_file(p, r, source=src) for p, r, src in to_analyze
            ]
        for analysis in fresh:
            analyses.append(analysis)
            if cache is not None:
                cache.put(analysis.display, analysis.to_cache_entry())
        analyses.sort(key=lambda a: a.display)
        result.files = len(analyses)
        if cache is not None:
            result.cache_hits = cache.hits
            result.cache_misses = cache.misses
        result.timings["file_pass"] = time.perf_counter() - t_start

        # Phase two: the whole-program pass (skipped when no project rule
        # is selected — e.g. `--rules R001`).
        project_by_file: dict[str, list[Finding]] = {}
        if self.project_rules:
            project_by_file = self._project_findings(analyses, result)

        changed_resolved = (
            {p.resolve() for p in changed} if changed is not None else None
        )
        matched: set[str] = set()
        baseline = baseline or {}
        for analysis in analyses:
            in_scope = (
                changed_resolved is None
                or Path(analysis.display).resolve() in changed_resolved
            )
            file_findings = list(project_by_file.get(analysis.display, []))
            if in_scope:
                file_findings.extend(analysis.findings)
                result.suppressed += analysis.suppressed
                try:
                    lines = Path(analysis.display).read_text().splitlines()
                except OSError:
                    lines = []
                file_findings.extend(
                    self._unused_pragma_findings(analysis, lines)
                )
            file_findings.sort(key=lambda f: (f.line, f.col, f.rule))
            for f in file_findings:
                if f.fingerprint in baseline:
                    matched.add(f.fingerprint)
                    result.baselined.append(f)
                else:
                    result.findings.append(f)
        if changed_resolved is None:
            result.stale_baseline = sorted(set(baseline) - matched)
        if cache is not None:
            cache.save()
        result.timings["total"] = time.perf_counter() - t_start
        return result
