"""Output formats for lint results.

``text`` is for humans at a terminal, ``json`` is the stable
machine-readable schema (version-stamped; consumed by tests and any
tooling that wants to diff runs), ``github`` emits workflow annotation
commands so findings land inline on the PR diff, and ``stats`` is the
``--stats`` aggregate view (per rule and per package).
"""

from __future__ import annotations

import json
from collections import Counter

from repro.lint.engine import Finding, LintResult

JSON_SCHEMA_VERSION = 1


def format_text(result: LintResult, verbose: bool = False) -> str:
    """Human-readable report: one line per finding plus a summary."""
    out = []
    for f in result.findings:
        out.append(f"{f.path}:{f.line}:{f.col + 1}: {f.rule} [{f.severity}] {f.message}")
    if verbose and result.baselined:
        out.append("")
        out.append(f"baselined ({len(result.baselined)} grandfathered):")
        for f in result.baselined:
            out.append(f"  {f.path}:{f.line}: {f.rule} {f.message}")
    for fp in result.stale_baseline:
        out.append(
            f"stale baseline entry {fp}: the finding it grandfathered is gone "
            "— regenerate with --write-baseline"
        )
    out.append("")
    out.append(summary_line(result))
    return "\n".join(out)


def summary_line(result: LintResult) -> str:
    parts = [
        f"{result.files} files",
        f"{len(result.findings)} findings",
        f"{len(result.baselined)} baselined",
        f"{result.suppressed} suppressed",
    ]
    if result.stale_baseline:
        parts.append(f"{len(result.stale_baseline)} stale baseline entries")
    status = "clean" if result.clean and not result.stale_baseline else "FAIL"
    return f"lint: {', '.join(parts)} — {status}"


def format_json(result: LintResult) -> str:
    """Stable machine-readable document (schema_version-stamped)."""
    doc = {
        "schema_version": JSON_SCHEMA_VERSION,
        "summary": {
            "files": result.files,
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed,
            "stale_baseline": len(result.stale_baseline),
            "clean": result.clean and not result.stale_baseline,
            "by_rule": result.by_rule(),
        },
        "findings": [f.to_dict() for f in result.findings],
        "baselined": [f.to_dict() for f in result.baselined],
        "stale_baseline": list(result.stale_baseline),
        "rules": [r.describe() for r in result.rules],
    }
    return json.dumps(doc, indent=2)


def format_github(result: LintResult) -> str:
    """GitHub Actions workflow annotations (``::error file=...``)."""
    out = []
    for f in result.findings:
        level = "error" if f.severity == "error" else "warning"
        # Annotation messages must keep to one line.
        message = f"{f.rule}: {f.message}".replace("\n", " ")
        out.append(
            f"::{level} file={f.path},line={f.line},col={f.col + 1}::{message}"
        )
    for fp in result.stale_baseline:
        out.append(
            f"::warning::stale lint baseline entry {fp} — regenerate with "
            "`repro lint --write-baseline`"
        )
    out.append(summary_line(result))
    return "\n".join(out)


def _package(f: Finding) -> str:
    """Top-level package of a finding, for the stats breakdown."""
    posix = f.path
    idx = posix.rfind("repro/")
    rel = posix[idx + len("repro/"):] if idx >= 0 else posix
    return rel.split("/", 1)[0] if "/" in rel else "(root)"


def format_stats(result: LintResult) -> str:
    """Aggregate view: counts per rule and per package, baseline included.

    Baselined findings count here — the point of ``--stats`` is to see
    where the debt lives, not only what is newly failing.
    """
    everything = result.findings + result.baselined
    rule_meta = {r.id: r for r in result.rules}
    by_rule = Counter(f.rule for f in everything)
    new_by_rule = Counter(f.rule for f in result.findings)
    out = ["per rule:"]
    for rid in sorted(set(by_rule) | set(rule_meta)):
        meta = rule_meta.get(rid)
        label = f"{rid} {meta.name}" if meta else rid
        out.append(
            f"  {label:32s} {by_rule.get(rid, 0):4d} total"
            f"  ({new_by_rule.get(rid, 0)} new)"
        )
    by_pkg = Counter(_package(f) for f in everything)
    out.append("per package:")
    for pkg, count in sorted(by_pkg.items(), key=lambda kv: (-kv[1], kv[0])):
        out.append(f"  {pkg:32s} {count:4d}")
    if result.graph_modules:
        out.append("project graph:")
        out.append(
            f"  {result.graph_modules} modules, "
            f"{result.graph_edges} internal import edges"
        )
    if result.timings:
        out.append("timings:")
        for key in ("file_pass", "graph_build", "graph_rules", "total"):
            if key in result.timings:
                out.append(f"  {key:12s} {result.timings[key] * 1000:8.1f} ms")
    if result.cache_hits or result.cache_misses:
        total = result.cache_hits + result.cache_misses
        out.append(
            f"cache: {result.cache_hits}/{total} hits "
            f"({result.cache_misses} analyzed fresh)"
        )
    out.append("")
    out.append(summary_line(result))
    return "\n".join(out)
