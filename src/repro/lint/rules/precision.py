"""R003 precision-discipline: float dtypes flow through PrecisionPolicy.

The whole point of :class:`repro.backend.policy.PrecisionPolicy` is that
there is exactly one place deciding what "the compute dtype" is.  A
literal ``dtype=np.float32`` hard-pins a precision the policy can no
longer steer; a bare ``.astype(np.float64)`` silently promotes an fp32
pipeline back to fp64 and hides the cast from the refinement logic.

The rule flags, everywhere except ``backend/`` and ``qp/`` (the two
packages that legitimately *implement* dtype handling — the backend owns
the policy, and the projection/interior-point kernels compute in fp64 and
restore the caller's dtype at their boundary):

* ``dtype=<float literal>`` keyword arguments, and
* ``.astype(<float literal>)`` calls,

where a float literal is ``np.float16/32/64``, the ``float`` builtin, or
a ``"float32"``-style string.  Integer and bool dtypes stay allowed —
index vectors and masks carry no precision-policy semantics.  Casting to
a *variable* dtype (``.astype(backend.compute_dtype)``) is the compliant
spelling and is never flagged.
"""

from __future__ import annotations

import ast

from repro.lint.rules import Rule, register
from repro.lint.rules.common import dotted_name, import_aliases, keyword_arg

#: numpy attribute names that denote float dtypes.
_NUMPY_FLOAT_ATTRS = frozenset(
    {"float16", "float32", "float64", "float128", "half", "single",
     "double", "longdouble", "float_"}
)

#: string spellings of float dtypes.
_FLOAT_STRINGS = frozenset(
    {"float16", "float32", "float64", "float128", "f2", "f4", "f8",
     "float", "half", "single", "double"}
)


def _float_dtype_literal(node: ast.AST, aliases: dict[str, str]) -> str | None:
    """The spelling of a float-dtype literal expression, or ``None``."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        if node.value in _FLOAT_STRINGS:
            return f'"{node.value}"'
        return None
    if isinstance(node, ast.Name) and node.id == "float":
        return "float"
    name = dotted_name(node, aliases)
    if name and name.startswith("numpy.") and name[len("numpy."):] in _NUMPY_FLOAT_ATTRS:
        return f"np.{name[len('numpy.'):]}"
    return None


@register
class PrecisionDiscipline(Rule):
    id = "R003"
    name = "precision-discipline"
    severity = "warning"
    rationale = (
        "float dtypes must flow through PrecisionPolicy / backend "
        "allocation — a hard-coded float literal pins a precision the "
        "policy can no longer steer and hides casts from the fp64 "
        "refinement logic"
    )
    # Exclusion scope: the two packages that implement dtype handling.
    EXCLUDED = ("backend/", "qp/")

    def applies(self, relpath: str) -> bool:
        return not relpath.startswith(self.EXCLUDED)

    def check(self, tree, lines, relpath):
        aliases = import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            if isinstance(node.func, ast.Attribute) and node.func.attr == "astype":
                target = node.args[0] if node.args else keyword_arg(node, "dtype")
                spelling = (
                    _float_dtype_literal(target, aliases) if target is not None else None
                )
                if spelling:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"bare `.astype({spelling})` outside backend/qp — cast "
                        "via the backend (asarray/to_numpy) or the policy's "
                        "compute/accumulate dtype",
                    )
                continue
            dtype = keyword_arg(node, "dtype")
            if dtype is None:
                continue
            spelling = _float_dtype_literal(dtype, aliases)
            if spelling:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"float dtype literal `dtype={spelling}` outside backend/qp "
                    "— allocate through the backend or take the dtype from "
                    "PrecisionPolicy",
                )
