"""Rule registry for :mod:`repro.lint`.

A *rule* is a small AST checker with an identity (``R001``), a severity,
a human-readable rationale, and a *scope* — the set of module-relative
path prefixes it applies to.  Rules register themselves with the
:func:`register` decorator at import time; :func:`all_rules` returns one
instance of every registered rule, and :func:`get_rules` resolves a
user-supplied selection (``--rules R001,R002``).

The registry is deliberately open: a future rule only needs a module in
``repro/lint/rules/`` with a ``@register``-decorated subclass of
:class:`Rule` plus an import line at the bottom of this file.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator


class Rule:
    """One invariant checker.

    Subclasses set the class attributes and implement :meth:`check`,
    yielding ``(line, col, message)`` triples.  ``scope`` is a tuple of
    module-relative path prefixes (``"core/"``, ``"parallel/runner.py"``);
    an empty tuple means the rule applies everywhere.  Rules that need an
    *exclusion* scope override :meth:`applies` instead.
    """

    id: str = "R000"
    name: str = "unnamed"
    severity: str = "error"
    rationale: str = ""
    scope: tuple[str, ...] = ()

    def applies(self, relpath: str) -> bool:
        if not self.scope:
            return True
        return any(
            relpath == prefix or relpath.startswith(prefix) for prefix in self.scope
        )

    def check(
        self, tree: ast.AST, lines: list[str], relpath: str
    ) -> Iterator[tuple[int, int, str]]:
        raise NotImplementedError

    def describe(self) -> dict:
        """Machine-readable rule card (the ``--format json`` rule list)."""
        return {
            "id": self.id,
            "name": self.name,
            "severity": self.severity,
            "scope": list(self.scope),
            "rationale": self.rationale,
        }


class ProjectRule(Rule):
    """A whole-program rule: runs once against the assembled
    :class:`~repro.lint.graph.ProjectGraph` instead of per file.

    Subclasses implement :meth:`check_project`, yielding ``(relpath,
    line, col, message)`` — the engine attributes each finding back to
    its file so suppression pragmas and baselining work unchanged.
    ``scope`` filters which files a project rule's findings may land in
    (the analysis itself always sees the whole graph).
    """

    def check(self, tree, lines, relpath):
        return iter(())  # project rules have no per-file pass

    def check_project(self, graph) -> Iterator[tuple[str, int, int, str]]:
        raise NotImplementedError


#: id -> rule class, in registration order.
RULE_REGISTRY: dict[str, type[Rule]] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id collisions fatal)."""
    if cls.id in RULE_REGISTRY:
        raise ValueError(f"duplicate lint rule id {cls.id}")
    RULE_REGISTRY[cls.id] = cls
    return cls


def all_rules() -> list[Rule]:
    """One fresh instance of every registered rule, ordered by id."""
    return [RULE_REGISTRY[rid]() for rid in sorted(RULE_REGISTRY)]


def get_rules(ids: Iterable[str] | None) -> list[Rule]:
    """Resolve a rule-id selection; ``None`` selects every rule.

    Raises
    ------
    KeyError
        On an unknown rule id (the CLI maps this to exit code 2).
    """
    if ids is None:
        return all_rules()
    selected = []
    for rid in ids:
        rid = rid.strip().upper()
        if not rid:
            continue
        if rid not in RULE_REGISTRY:
            known = ", ".join(sorted(RULE_REGISTRY))
            raise KeyError(f"unknown lint rule {rid!r} (known: {known})")
        selected.append(RULE_REGISTRY[rid]())
    if not selected:
        raise KeyError("empty rule selection")
    return selected


# Rule modules self-register on import (kept at the bottom so they can
# import Rule/register from this module).
from repro.lint.rules import backend_discipline  # noqa: E402,F401
from repro.lint.rules import determinism  # noqa: E402,F401
from repro.lint.rules import exception_discipline  # noqa: E402,F401
from repro.lint.rules import precision  # noqa: E402,F401
from repro.lint.rules import telemetry_hygiene  # noqa: E402,F401

# Whole-program rules (R100+): run against the ProjectGraph.
from repro.lint.rules import architecture  # noqa: E402,F401
from repro.lint.rules import cache_keys  # noqa: E402,F401
from repro.lint.rules import telemetry_registry  # noqa: E402,F401
from repro.lint.rules import protocol  # noqa: E402,F401
