"""R001 backend-discipline: no raw NumPy compute in backend-routed modules.

PR 4 made every hot-path array operation flow through the
:class:`repro.backend.Backend` protocol — allocation under an explicit
precision policy, the batched projection matmul, the consensus
scatter-add, the bound clip, and fp64-accumulated reductions.  A stray
``np.linalg.norm`` or ``np.bincount`` in those modules silently re-pins
the operation to host fp64 NumPy: the fp32/CuPy paths stop being
exercised, reductions lose their fp64 accumulation contract, and the GPU
cost model's itemsize-based traffic estimates drift from reality.

The rule flags *compute* calls (reductions, kernels, elementwise math,
anything under ``numpy.linalg``/``numpy.fft``) resolved through any
import alias of ``numpy``.  Shape/indexing/structural helpers
(``asarray``, ``arange``, ``concatenate``, ``flatnonzero``, ...) and
plain allocation stay allowed: they carry no accumulation or kernel
semantics, and setup-time allocation is rounded once at the backend
boundary anyway.
"""

from __future__ import annotations

import ast

from repro.lint.rules import Rule, register
from repro.lint.rules.common import call_name, import_aliases

#: NumPy callables that perform array compute and therefore must route
#: through the Backend protocol inside scoped modules.
COMPUTE_CALLS = frozenset(
    {
        # kernels / contractions
        "matmul", "dot", "vdot", "inner", "outer", "einsum", "tensordot",
        "bincount", "clip", "convolve", "cross",
        # reductions
        "sum", "prod", "mean", "std", "var", "median", "average",
        "percentile", "quantile", "min", "max", "amin", "amax",
        "nansum", "nanmean", "nanmin", "nanmax", "ptp", "trace", "norm",
        # elementwise math (dtype-sensitive)
        "abs", "absolute", "sqrt", "exp", "expm1", "log", "log1p", "log2",
        "log10", "power", "maximum", "minimum", "sign", "round", "around",
        "add", "subtract", "multiply", "divide", "true_divide",
        "floor_divide", "reciprocal", "hypot",
        # fitting / interpolation
        "polyfit", "polyval", "interp",
    }
)

#: Compliant spelling hints for the most common offenders.
_HINTS = {
    "linalg.norm": "Backend.norm (fp64-accumulated)",
    "norm": "Backend.norm (fp64-accumulated)",
    "dot": "Backend.dot (fp64-accumulated)",
    "vdot": "Backend.dot (fp64-accumulated)",
    "bincount": "Backend.scatter_add",
    "clip": "Backend.clip",
    "matmul": "Backend.matmul_batched",
    "einsum": "Backend.matmul_batched",
}


@register
class BackendDiscipline(Rule):
    id = "R001"
    name = "backend-discipline"
    severity = "error"
    rationale = (
        "hot-path array compute must route through the Backend protocol so "
        "fp32/CuPy execution, fp64-accumulated reductions and the GPU cost "
        "model stay honest"
    )
    scope = ("core/", "serve/", "parallel/runner.py", "resilience/runner.py")

    def check(self, tree, lines, relpath):
        aliases = import_aliases(tree)
        if "numpy" not in aliases.values() and not any(
            v.startswith("numpy.") for v in aliases.values()
        ):
            return
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, aliases)
            if not name or not name.startswith("numpy."):
                continue
            tail = name[len("numpy."):]
            if not (tail.startswith(("linalg.", "fft.")) or tail in COMPUTE_CALLS):
                continue
            hint = _HINTS.get(tail) or _HINTS.get(tail.rsplit(".", 1)[-1])
            suffix = f" — use {hint}" if hint else " — use the strategy's backend"
            yield (
                node.lineno,
                node.col_offset,
                f"raw NumPy compute call `np.{tail}` in a backend-routed "
                f"module bypasses the Backend protocol{suffix}",
            )
