"""R004 telemetry-hygiene: spans close, metric names stay queryable.

Two failure modes this rule gates:

* A ``tracer.span(...)`` opened without a ``with`` block leaks on any
  exception path: the span never records, the per-thread parent stack
  desynchronizes, and every later span in that thread reports the wrong
  parent.  The context-manager form is the only spelling that is correct
  under exceptions.
* Metric names are the query surface of every dashboard and trace
  summary.  The registry's convention is lowercase dotted paths,
  ``<namespace>.<quantity>[_<unit>]`` (``serve.latency_s``,
  ``rank.failover``), with a small registered namespace set — a typo'd
  ``Serve.Latency`` or an unregistered namespace silently forks the
  metric space.

Only *literal* names are checked; dynamically built names (the
``PhaseTimer`` prefix f-strings) are assumed to be derived from an
already-vetted literal.
"""

from __future__ import annotations

import ast
import re

from repro.lint.rules import Rule, register

#: Registered metric/span namespaces (first dotted segment).
NAMESPACES = frozenset(
    {
        "admm", "serve", "solve", "breaker", "fault", "rank",
        "resilience", "cluster", "comm", "gpu", "queue", "lint",
        # The multi-worker serving plane (docs/SERVING.md, fleet section).
        "fleet",
        # Two-stage stochastic / multi-period workloads (docs/STOCHASTIC.md).
        "stochastic",
        # The fidelity-ladder facade (docs/METHODS.md).
        "methods",
    }
)

#: Metric names: lowercase snake segments, at least one dot.
METRIC_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
#: Span names: lowercase dotted snake (single-segment allowed).
SPAN_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")

_METRIC_METHODS = frozenset({"counter", "gauge", "histogram"})


def _literal_first_arg(node: ast.Call) -> str | None:
    if node.args and isinstance(node.args[0], ast.Constant):
        if isinstance(node.args[0].value, str):
            return node.args[0].value
    return None


@register
class TelemetryHygiene(Rule):
    id = "R004"
    name = "telemetry-hygiene"
    severity = "error"
    rationale = (
        "spans must be context-managed so they close on every exception "
        "path, and literal metric names must match the registered "
        "lowercase-dotted namespace so the metric space stays queryable"
    )
    scope = ()  # everywhere

    def check(self, tree, lines, relpath):
        # First pass: span calls that appear directly as a `with` item.
        with_spans: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    # A span behind a conditional expression
                    # (`span(...) if tracing else nullcontext()`) is
                    # still directly context-managed.
                    candidates = [item.context_expr]
                    while candidates:
                        ce = candidates.pop()
                        if isinstance(ce, ast.IfExp):
                            candidates.extend((ce.body, ce.orelse))
                        elif (
                            isinstance(ce, ast.Call)
                            and isinstance(ce.func, ast.Attribute)
                            and ce.func.attr == "span"
                        ):
                            with_spans.add(id(ce))
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call) or not isinstance(
                node.func, ast.Attribute
            ):
                continue
            attr = node.func.attr
            if attr == "span":
                if id(node) not in with_spans:
                    yield (
                        node.lineno,
                        node.col_offset,
                        "tracer span opened outside a `with` block — use "
                        "`with tracer.span(...)` so the span closes on every "
                        "exception path",
                    )
                name = _literal_first_arg(node)
                if name is not None and not SPAN_NAME_RE.match(name):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"span name {name!r} is not lowercase dotted snake "
                        "(e.g. `admm.solve`)",
                    )
            elif attr in _METRIC_METHODS:
                name = _literal_first_arg(node)
                if name is None:
                    continue
                if not METRIC_NAME_RE.match(name):
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"metric name {name!r} does not match the "
                        "`namespace.quantity[_unit]` convention "
                        "(lowercase dotted snake)",
                    )
                elif name.split(".", 1)[0] not in NAMESPACES:
                    yield (
                        node.lineno,
                        node.col_offset,
                        f"metric namespace {name.split('.', 1)[0]!r} is not "
                        "registered (known: "
                        f"{', '.join(sorted(NAMESPACES))}) — add it to "
                        "repro.lint.rules.telemetry_hygiene.NAMESPACES "
                        "deliberately if it is new",
                    )
