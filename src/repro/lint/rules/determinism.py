"""R002 determinism: no wall clocks or unseeded RNG in simulation paths.

The resilience layer's failover replay is *bit-identical* only because
every source of randomness in the simulated stack is a seeded generator
and every notion of time is a virtual clock (``SimComm.clocks``, modeled
GPU time).  One ``time.time()`` in a checkpoint path or one unseeded
``np.random.default_rng()`` in a fault plan breaks replay in a way only a
flaky test would ever surface.

The rule flags, inside the simulation-bearing packages:

* wall-clock reads — ``time.time``/``time.time_ns``, ``datetime.now``/
  ``utcnow``/``today``, ``date.today`` (``time.perf_counter`` is allowed:
  it is a *relative* stamp that feeds phase timers and virtual clocks,
  never the iterates);
* the module-level (globally seeded) RNG surfaces — ``np.random.rand``,
  ``np.random.seed`` and friends, and ``random.random``-style calls;
* unseeded constructors — ``np.random.default_rng()`` / ``random.Random()``
  with no seed argument.
"""

from __future__ import annotations

import ast

from repro.lint.rules import Rule, register
from repro.lint.rules.common import call_name, import_aliases

#: Wall-clock reads (absolute time) — virtual clocks only in sim paths.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.ctime",
        "time.localtime",
        "time.gmtime",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Legacy global-state numpy RNG entry points (``numpy.random.<name>``).
NUMPY_GLOBAL_RNG = frozenset(
    {
        "seed", "rand", "randn", "randint", "random", "random_sample",
        "ranf", "sample", "uniform", "normal", "standard_normal",
        "shuffle", "permutation", "choice", "binomial", "poisson",
        "exponential", "beta", "gamma",
    }
)

#: Module-level stdlib RNG calls (share one hidden global generator).
STDLIB_GLOBAL_RNG = frozenset(
    {
        "random.random", "random.randint", "random.randrange",
        "random.uniform", "random.gauss", "random.normalvariate",
        "random.shuffle", "random.sample", "random.choice",
        "random.choices", "random.seed", "random.expovariate",
        "random.betavariate", "random.triangular", "random.vonmisesvariate",
    }
)

#: Constructors that are deterministic only when given a seed.
SEEDED_CONSTRUCTORS = frozenset({"numpy.random.default_rng", "random.Random"})


def _has_seed(node: ast.Call) -> bool:
    if node.args:
        return True
    return any(kw.arg in ("seed", "x") for kw in node.keywords)


@register
class Determinism(Rule):
    id = "R002"
    name = "determinism"
    severity = "error"
    rationale = (
        "simulated runs must be replayable bit-for-bit: seeded generators "
        "and virtual clocks only — wall time and global RNG state leak "
        "nondeterminism into checkpoints, fault plans and modeled timings"
    )
    scope = ("core/", "parallel/", "resilience/", "gpu/")

    def check(self, tree, lines, relpath):
        aliases = import_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node, aliases)
            if name is None:
                continue
            if name in WALL_CLOCK_CALLS:
                yield (
                    node.lineno,
                    node.col_offset,
                    f"wall-clock read `{name}` in a simulation path — use the "
                    "virtual clock (SimComm.clocks / modeled time); "
                    "time.perf_counter is allowed for relative phase stamps",
                )
            elif name in STDLIB_GLOBAL_RNG or (
                name.startswith("numpy.random.")
                and name[len("numpy.random."):] in NUMPY_GLOBAL_RNG
            ):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"global-state RNG call `{name}` — construct a seeded "
                    "generator (np.random.default_rng(seed) / random.Random(seed))",
                )
            elif name in SEEDED_CONSTRUCTORS and not _has_seed(node):
                yield (
                    node.lineno,
                    node.col_offset,
                    f"unseeded `{name}()` — pass an explicit seed so runs "
                    "(and failover replays) are reproducible",
                )
