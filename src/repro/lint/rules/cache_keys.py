"""R101 cache-key completeness: every request field keys or explains why.

The serving stack routes, plans and caches on two digests —
``topology_key()`` and ``scenario_key()`` — computed from request
fields.  A field that affects the solve but enters neither digest is a
silent cache-poisoning hazard: two requests that should solve
differently collide on the same cache identity (the exact hazard the
fidelity-ladder PR had to thread ``method`` through by hand).

This rule closes the class: for every dataclass that defines *both*
digest methods, every field must be

* read (``self.<field>``) somewhere in the transitive closure of the
  two digest methods over the class's own methods, or
* marked ``# repro-lint: non-keying=<reason>`` on its line — and the
  reason is mandatory, because "I forgot" and "identity only, echoed on
  the response" must be distinguishable in review.

A ``non-keying`` pragma on a field that *is* read by a digest is flagged
as stale, so the pragmas ratchet just like suppressions do.
"""

from __future__ import annotations

from repro.lint.graph import ClassInfo
from repro.lint.rules import ProjectRule, register

#: The digest-method pair that marks a class as cache-keyed.
DIGEST_METHODS = ("topology_key", "scenario_key")


def _digest_reads(cls: ClassInfo) -> set[str]:
    """Attributes read by the digest methods, transitively through the
    class's own method calls (``self.helper()`` pulls in helper's reads)."""
    seen: set[str] = set()
    queue = [m for m in DIGEST_METHODS if m in cls.methods]
    reads: set[str] = set()
    while queue:
        name = queue.pop()
        if name in seen:
            continue
        seen.add(name)
        method = cls.methods.get(name)
        if method is None:
            continue
        reads.update(method.self_reads)
        queue.extend(c for c in method.self_calls if c in cls.methods)
    return reads


@register
class CacheKeyCompleteness(ProjectRule):
    id = "R101"
    name = "cache-key-completeness"
    severity = "error"
    rationale = (
        "every field of a request class with topology_key/scenario_key "
        "digests must enter a digest or carry a reasoned "
        "`# repro-lint: non-keying=<reason>` pragma, so no field can "
        "silently affect the solve without affecting the cache identity"
    )
    scope = ()

    def check_project(self, graph):
        for mod in graph.modules:
            for cls in mod.classes.values():
                if not all(m in cls.methods for m in DIGEST_METHODS):
                    continue
                reads = _digest_reads(cls)
                for field in cls.fields:
                    keyed = field.name in reads
                    if keyed and field.non_keying:
                        yield (
                            mod.rel,
                            field.line,
                            0,
                            f"stale non-keying pragma: {cls.name}.{field.name} "
                            "is read by a digest method — remove the pragma",
                        )
                    elif not keyed and not field.non_keying:
                        yield (
                            mod.rel,
                            field.line,
                            0,
                            f"unkeyed field: {cls.name}.{field.name} enters "
                            "neither topology_key() nor scenario_key() — "
                            "key it, or mark it `# repro-lint: "
                            "non-keying=<reason>` if it cannot affect the "
                            "solve",
                        )
                    elif not keyed and not field.non_keying_reason:
                        yield (
                            mod.rel,
                            field.line,
                            0,
                            f"non-keying pragma on {cls.name}.{field.name} "
                            "has no reason — write `# repro-lint: "
                            "non-keying=<why this field cannot affect the "
                            "solve>`",
                        )
