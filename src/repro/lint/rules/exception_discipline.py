"""R005 exception-discipline: never swallow solver failures.

:class:`~repro.utils.exceptions.DivergenceError` and
:class:`~repro.utils.exceptions.ConvergenceError` are load-bearing
control flow: the divergence guard raises them *with the best-so-far
iterates attached* so callers can degrade gracefully, and the serving
engine's retry/circuit-breaker logic keys off them.  A bare ``except:``
— or an ``except Exception:`` whose body just ``pass``es — anywhere in
a solver path turns a diverged solve into a silently wrong dispatch.

Flagged:

* bare ``except:`` (also catches ``KeyboardInterrupt``/``SystemExit``);
* ``except Exception:`` / ``except BaseException:`` handlers whose body
  is only ``pass``/``...``/``continue`` (pure swallows).

``except Exception:`` with a real body (logging, cleanup, degradation,
re-raise) is allowed — boundary code like backend availability probes
legitimately needs it.
"""

from __future__ import annotations

import ast

from repro.lint.rules import Rule, register

_BROAD = frozenset({"Exception", "BaseException"})


def _names(expr: ast.AST) -> list[str]:
    if isinstance(expr, ast.Name):
        return [expr.id]
    if isinstance(expr, ast.Tuple):
        return [e.id for e in expr.elts if isinstance(e, ast.Name)]
    return []


def _is_swallow(body: list[ast.stmt]) -> bool:
    for stmt in body:
        if isinstance(stmt, (ast.Pass, ast.Continue)):
            continue
        if (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
            and (stmt.value.value is Ellipsis or isinstance(stmt.value.value, str))
        ):
            continue  # docstring or `...`
        return False
    return True


@register
class ExceptionDiscipline(Rule):
    id = "R005"
    name = "exception-discipline"
    severity = "error"
    rationale = (
        "DivergenceError/ConvergenceError carry recovery state and drive "
        "retry/degradation logic — a swallowing handler turns a diverged "
        "solve into a silently wrong answer"
    )
    scope = ()  # everywhere

    def check(self, tree, lines, relpath):
        for node in ast.walk(tree):
            if not isinstance(node, ast.Try):
                continue
            for handler in node.handlers:
                if handler.type is None:
                    yield (
                        handler.lineno,
                        handler.col_offset,
                        "bare `except:` — name the exceptions; this would "
                        "swallow DivergenceError (and KeyboardInterrupt)",
                    )
                    continue
                if any(n in _BROAD for n in _names(handler.type)) and _is_swallow(
                    handler.body
                ):
                    yield (
                        handler.lineno,
                        handler.col_offset,
                        "`except Exception: pass` swallows solver failures — "
                        "catch the specific exceptions or handle/re-raise",
                    )
