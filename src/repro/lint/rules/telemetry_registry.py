"""R102 telemetry-registry cross-check: the metric/span namespace, closed.

R004 checks each literal metric/span name's *shape* per file; this rule
closes the loop whole-program against the canonical registry
(:mod:`repro.telemetry.names`):

* every literal name used at a ``counter``/``gauge``/``histogram`` call
  site must be in ``METRIC_NAMES``, and every literal ``span``/
  ``add_complete``/``add_modeled`` name must be in ``SPAN_NAMES`` — a
  typo'd name can no longer silently fork the metric space, because the
  fork fails lint instead of appearing on no dashboard;
* every registered name must be used somewhere — a renamed metric whose
  registry entry lingers is flagged at the registry line, so the
  registry file describes exactly what the running system emits.

Dynamically built names (f-strings such as the per-worker
``fleet.queue_depth.<wid>`` gauges) are invisible here by design; their
*prefixes* are vetted by R004's namespace check, and the registry keeps
a ``DYNAMIC_METRIC_PREFIXES`` list documenting them.

The registry is located *in the graph* (the module whose scope path ends
with ``telemetry/names.py``), never imported — so fixture trees in tests
bring their own registry, and trees without one skip the rule.
"""

from __future__ import annotations

from repro.lint.rules import ProjectRule, register

#: Scope-path suffix of the registry module.
REGISTRY_MODULE = "telemetry/names.py"

_METRIC_ATTRS = frozenset({"counter", "gauge", "histogram"})
_SPAN_ATTRS = frozenset({"span", "add_complete", "add_modeled"})


@register
class TelemetryRegistryCrossCheck(ProjectRule):
    id = "R102"
    name = "telemetry-registry"
    severity = "error"
    rationale = (
        "every literal metric/span name must be registered in "
        "repro.telemetry.names and every registered name must be used, "
        "so the registry is exactly the set of series the system emits"
    )
    scope = ()

    def check_project(self, graph):
        metric_reg = graph.string_set(REGISTRY_MODULE, "METRIC_NAMES")
        span_reg = graph.string_set(REGISTRY_MODULE, "SPAN_NAMES")
        if not metric_reg and not span_reg:
            return  # tree has no registry module; nothing to cross-check
        metric_names = {value for value, _, _ in metric_reg}
        span_names = {value for value, _, _ in span_reg}
        used_metrics: set[str] = set()
        used_spans: set[str] = set()

        for mod in graph.modules:
            if mod.rel.endswith(REGISTRY_MODULE):
                continue
            for lit in mod.call_literals:
                if lit.attr in _METRIC_ATTRS:
                    used_metrics.add(lit.value)
                    if lit.value not in metric_names:
                        yield (
                            mod.rel,
                            lit.line,
                            lit.col,
                            f"metric name {lit.value!r} is not registered — "
                            "add it to METRIC_NAMES in "
                            "repro/telemetry/names.py (or fix the typo)",
                        )
                elif lit.attr in _SPAN_ATTRS:
                    used_spans.add(lit.value)
                    if lit.value not in span_names:
                        yield (
                            mod.rel,
                            lit.line,
                            lit.col,
                            f"span name {lit.value!r} is not registered — "
                            "add it to SPAN_NAMES in "
                            "repro/telemetry/names.py (or fix the typo)",
                        )

        for value, line, rel in metric_reg:
            if value not in used_metrics:
                yield (
                    rel,
                    line,
                    0,
                    f"registered metric {value!r} is never emitted — remove "
                    "it from METRIC_NAMES or restore the call site",
                )
        for value, line, rel in span_reg:
            if value not in used_spans:
                yield (
                    rel,
                    line,
                    0,
                    f"registered span {value!r} is never opened — remove it "
                    "from SPAN_NAMES or restore the call site",
                )
