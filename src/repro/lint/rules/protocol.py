"""R103 worker-protocol consistency: both sides of the pickle boundary.

The fleet's parent and child processes speak a tuple protocol whose
message kinds and control verbs are module-level ``__dunder__`` string
constants (``WORKER_BATCH``, ``CTRL_EXPORT``, ...).  The two sides live
in different modules — the sender in the frontend/supervisor, the
handler branch in the worker loop — so a per-file rule cannot see that a
verb was added to one side only.  That bug ships silently: the message
is produced, nothing consumes it (or vice versa), and the failure shows
up later as a timeout.

Whole-program, the check is simple.  Every protocol constant (a
module-level constant whose *value* matches ``__verb__``) must appear

* in a *send* position — inside a call's arguments (``response_q.put((
  WORKER_BATCH, ...))``, ``send_control(CTRL_EXPORT, keys)``) — and
* in a *handle* position — as an operand of a comparison
  (``kind == WORKER_BATCH``, ``verb in (CTRL_EXPORT, CTRL_IMPORT)``)

somewhere in the analyzed tree.  Sent-but-never-handled,
handled-but-never-sent and defined-but-unused constants are all flagged
at the definition line.  The rule keys on the constant *name*, so both
``from ... import CTRL_EXPORT`` re-exports and same-module uses count.
"""

from __future__ import annotations

from repro.lint.rules import ProjectRule, register

#: Value shape of a protocol token (``__ready__``, ``__export__``, ...).
PROTOCOL_VALUE_PATTERN = r"^__[a-z][a-z0-9_]*__$"


@register
class WorkerProtocolConsistency(ProjectRule):
    id = "R103"
    name = "worker-protocol"
    severity = "error"
    rationale = (
        "every protocol verb sent across the worker boundary must have a "
        "matching handler comparison somewhere, and vice versa — a "
        "one-sided verb is a silent timeout waiting to happen"
    )
    scope = ()

    def check_project(self, graph):
        constants = graph.constants_matching(PROTOCOL_VALUE_PATTERN)
        for mod, const in constants:
            uses = graph.name_uses(const.name)
            sends = [u for _, u in uses if u.role == "send"]
            handles = [u for _, u in uses if u.role == "compare"]
            if not sends and not handles:
                yield (
                    mod.rel,
                    const.line,
                    0,
                    f"protocol constant {const.name} ({const.value!r}) is "
                    "never sent or handled — dead protocol surface, remove "
                    "it",
                )
            elif not handles:
                yield (
                    mod.rel,
                    const.line,
                    0,
                    f"protocol verb {const.name} ({const.value!r}) is sent "
                    "but no handler compares against it — add the handler "
                    "branch on the receiving side",
                )
            elif not sends:
                yield (
                    mod.rel,
                    const.line,
                    0,
                    f"protocol verb {const.name} ({const.value!r}) has a "
                    "handler branch but is never sent — remove the dead "
                    "branch or restore the sender",
                )
