"""R100 architecture-layering: the declared layer map, enforced.

The repo's packages form a strict layering (documented in
docs/ARCHITECTURE.md) that keeps the math plane refactorable without the
serving stack and vice versa:

======== ==========================================================
layer    packages
======== ==========================================================
app      ``cli``, ``__main__``, ``lint``, the ``repro`` root package
serving  ``serve``, ``fleet``
runtime  ``parallel``, ``gpu``, ``resilience``, ``methods``,
         ``multiperiod``, ``stochastic``
numerics ``core``, ``decomposition``, ``socp``, ``reference``, ``io``
model    ``network``, ``formulation``, ``feeders``
found.   ``utils``, ``telemetry``, ``backend``, ``qp``
======== ==========================================================

Three checks, all over the whole-program import graph:

* a module may import only packages in its own layer or below — a
  ``core`` module importing ``serve`` (or anything importing ``cli``)
  is the classic layering escape this rule exists for;
* ``repro.telemetry`` enters the lower layers (foundation→runtime) only
  through the declared adapter seams — the solver-loop tracer hooks and
  the ``PhaseTimer`` adapter — so the math plane stays measurable
  without being wired to the measurement plane module by module;
* module-level import cycles over eager imports are forbidden (lazy
  function-body imports are the sanctioned decoupling seams and are
  exempt from the cycle check, but still count for layering; a package
  ``__init__`` importing its own submodules is the re-export idiom and
  likewise excluded from the cycle check only).
"""

from __future__ import annotations

from repro.lint.rules import ProjectRule, register

#: The declared layer map, lowest first.  A module may import packages
#: whose layer index is <= its own.
LAYERS: tuple[tuple[str, frozenset[str]], ...] = (
    ("foundation", frozenset({"utils", "telemetry", "backend", "qp"})),
    ("model", frozenset({"network", "formulation", "feeders"})),
    ("numerics", frozenset({"core", "decomposition", "socp", "reference", "io"})),
    (
        "runtime",
        frozenset(
            {"parallel", "gpu", "resilience", "methods", "multiperiod", "stochastic"}
        ),
    ),
    ("serving", frozenset({"serve", "fleet"})),
    ("app", frozenset({"cli", "__main__", "lint", ""})),
)

#: Modules in the foundation→runtime layers allowed to import
#: ``repro.telemetry`` directly: the solver-loop tracer entry points and
#: the ``PhaseTimer`` metrics adapter.  Everything else down there must
#: take a tracer/registry as an argument instead.
TELEMETRY_SEAMS: frozenset[str] = frozenset(
    {
        "utils/timing.py",
        "core/loop.py",
        "core/baseline.py",
        "core/solver_free.py",
        "parallel/runner.py",
        "resilience/faults.py",
        "resilience/runner.py",
    }
)

_LAYER_INDEX: dict[str, int] = {
    pkg: i for i, (_, pkgs) in enumerate(LAYERS) for pkg in pkgs
}
_LAYER_NAME: dict[str, str] = {
    pkg: name for name, pkgs in LAYERS for pkg in pkgs
}
#: Index of the highest layer whose telemetry imports are seam-gated.
_TELEMETRY_GATED_BELOW = next(
    i for i, (name, _) in enumerate(LAYERS) if name == "serving"
)


@register
class ArchitectureLayering(ProjectRule):
    id = "R100"
    name = "architecture-layering"
    severity = "error"
    rationale = (
        "the declared layer map (docs/ARCHITECTURE.md) keeps the math "
        "plane importable without the serving stack: lower layers must "
        "not import higher ones, telemetry enters the lower layers only "
        "through the adapter seams, and eager import cycles are forbidden"
    )
    scope = ()

    def check_project(self, graph):
        line_of: dict[tuple[str, str], tuple[str, int]] = {}
        for src, dst, line, _lazy in graph.import_edges():
            key = (src, dst)
            if key not in line_of:
                line_of[key] = (graph.by_module[src].rel, line)

        for mod in graph.modules:
            src_pkg = mod.package
            if src_pkg not in _LAYER_INDEX:
                yield (
                    mod.rel,
                    1,
                    0,
                    f"package {src_pkg!r} is not in the declared layer map — "
                    "add it to repro.lint.rules.architecture.LAYERS (and "
                    "docs/ARCHITECTURE.md) deliberately",
                )
                continue
            src_idx = _LAYER_INDEX[src_pkg]
            for edge in mod.imports:
                for dst in graph.resolve_target(edge):
                    if dst not in graph.by_module:
                        continue
                    dst_pkg = graph.by_module[dst].package
                    if dst_pkg == src_pkg or dst_pkg not in _LAYER_INDEX:
                        continue
                    dst_idx = _LAYER_INDEX[dst_pkg]
                    if dst_idx > src_idx:
                        yield (
                            mod.rel,
                            edge.line,
                            0,
                            f"layering escape: {_LAYER_NAME[src_pkg]}-layer "
                            f"module imports {dst} "
                            f"({_LAYER_NAME[dst_pkg]} layer) — invert the "
                            "dependency or move the shared piece down",
                        )
                    if (
                        dst_pkg == "telemetry"
                        and src_idx < _TELEMETRY_GATED_BELOW
                        and src_pkg != "telemetry"
                        and mod.rel not in TELEMETRY_SEAMS
                    ):
                        yield (
                            mod.rel,
                            edge.line,
                            0,
                            "telemetry imported outside the adapter seams — "
                            "take a Tracer/MetricsRegistry as an argument, "
                            "or add this module to TELEMETRY_SEAMS "
                            "deliberately",
                        )

        for cycle in graph.import_cycles():
            first = cycle[0]
            rel = graph.by_module[first].rel
            yield (
                rel,
                1,
                0,
                "eager import cycle: " + " -> ".join(cycle + [first]) + " — "
                "break it with a lazy (function-body) import at the "
                "sanctioned seam or by moving the shared piece down",
            )
