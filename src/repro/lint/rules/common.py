"""Shared AST helpers for the lint rules.

The rules reason about *canonical dotted names*: ``np.linalg.norm(x)``
must be recognized as ``numpy.linalg.norm`` whatever the import spelling
(``import numpy as np``, ``from numpy import linalg``, ``from
numpy.linalg import norm``).  :func:`import_aliases` builds the local
name -> canonical prefix map from a module's imports, and
:func:`dotted_name` resolves an attribute chain against it.  Names whose
root is not an imported module (``self.backend.norm``, ``b.clip``) do
not resolve — which is exactly right: backend-routed calls are the
compliant spelling.
"""

from __future__ import annotations

import ast


def import_aliases(tree: ast.AST) -> dict[str, str]:
    """Map every imported local name to its canonical dotted path."""
    aliases: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import numpy.linalg`` binds the *top* name.
                    top = alias.name.split(".")[0]
                    aliases[top] = top
        elif isinstance(node, ast.ImportFrom):
            if node.level or not node.module:
                continue  # relative imports never alias numpy/time/random
            for alias in node.names:
                aliases[alias.asname or alias.name] = f"{node.module}.{alias.name}"
    return aliases


def dotted_name(expr: ast.AST, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of an attribute chain rooted at an import.

    Returns ``None`` when the chain roots at a local variable (so
    ``backend.norm`` and ``self.xp.clip`` stay invisible to the rules).
    """
    parts: list[str] = []
    while isinstance(expr, ast.Attribute):
        parts.append(expr.attr)
        expr = expr.value
    if isinstance(expr, ast.Name):
        root = aliases.get(expr.id)
        if root is None:
            return None
        parts.append(root)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call, aliases: dict[str, str]) -> str | None:
    """Canonical dotted name of a call's target, if import-rooted."""
    return dotted_name(node.func, aliases)


def keyword_arg(node: ast.Call, name: str) -> ast.AST | None:
    """The value expression of keyword ``name``, if present."""
    for kw in node.keywords:
        if kw.arg == name:
            return kw.value
    return None
