"""AST-based invariant linter for the repo's own discipline rules.

Generic linters catch style; this package catches the invariants that
keep the *reproduction* honest and that a reviewer cannot reliably see
in a diff (see docs/LINTING.md for the catalog and fix recipes):

* **R001 backend-discipline** — no raw NumPy compute in backend-routed
  modules; array math flows through :class:`repro.backend.Backend`.
* **R002 determinism** — no wall clocks or unseeded RNG in simulation
  paths; failover replay stays bit-identical.
* **R003 precision-discipline** — float dtypes come from
  ``PrecisionPolicy``, never hard-coded literals.
* **R004 telemetry-hygiene** — spans are context-managed; metric names
  match the registered namespace convention.
* **R005 exception-discipline** — no bare ``except:`` / swallowed broad
  handlers around solver control flow.

Run it with ``repro lint``; grandfathered findings live in
``lint-baseline.json`` and ratchet downward.
"""

from repro.lint.baseline import load_baseline, save_baseline
from repro.lint.engine import (
    Finding,
    LintConfigError,
    LintEngine,
    LintResult,
    fingerprint,
    scope_path,
)
from repro.lint.report import (
    format_github,
    format_json,
    format_stats,
    format_text,
)
from repro.lint.rules import RULE_REGISTRY, Rule, all_rules, get_rules, register

__all__ = [
    "Finding",
    "LintConfigError",
    "LintEngine",
    "LintResult",
    "Rule",
    "RULE_REGISTRY",
    "all_rules",
    "get_rules",
    "register",
    "fingerprint",
    "scope_path",
    "load_baseline",
    "save_baseline",
    "format_text",
    "format_json",
    "format_github",
    "format_stats",
]
