"""AST-based invariant linter for the repo's own discipline rules.

Generic linters catch style; this package catches the invariants that
keep the *reproduction* honest and that a reviewer cannot reliably see
in a diff (see docs/LINTING.md for the catalog and fix recipes):

* **R001 backend-discipline** — no raw NumPy compute in backend-routed
  modules; array math flows through :class:`repro.backend.Backend`.
* **R002 determinism** — no wall clocks or unseeded RNG in simulation
  paths; failover replay stays bit-identical.
* **R003 precision-discipline** — float dtypes come from
  ``PrecisionPolicy``, never hard-coded literals.
* **R004 telemetry-hygiene** — spans are context-managed; metric names
  match the registered namespace convention.
* **R005 exception-discipline** — no bare ``except:`` / swallowed broad
  handlers around solver control flow.

On top of the per-file pass, a whole-program phase assembles a
:class:`~repro.lint.graph.ProjectGraph` (imports, dataclass fields,
tracked call literals, protocol-constant uses) and runs the
cross-module rules against it:

* **R100 architecture-layering** — the declared layer map holds: lower
  layers never import serving/app code, telemetry is reached only
  through the sanctioned seams, eager import cycles are forbidden.
* **R101 cache-key-completeness** — every field of a request dataclass
  is either read by its digest methods or carries an explicit
  ``# repro-lint: non-keying=<reason>`` pragma.
* **R102 telemetry-registry** — every literal metric/span name is
  registered in :mod:`repro.telemetry.names`, and every registered name
  is emitted somewhere.
* **R103 worker-protocol** — every fleet protocol verb that is sent has
  a handler comparison on the other side of the process boundary, and
  vice versa.

Run it with ``repro lint``; grandfathered findings live in
``lint-baseline.json`` and ratchet downward.  Warm runs are incremental
(:class:`~repro.lint.cache.LintCache`, content-hashed) and ``--format
sarif`` emits GitHub-code-scanning-ready output.
"""

from repro.lint.baseline import load_baseline, save_baseline
from repro.lint.cache import DEFAULT_CACHE_PATH, LintCache, engine_signature
from repro.lint.engine import (
    FileAnalysis,
    Finding,
    LintConfigError,
    LintEngine,
    LintResult,
    fingerprint,
    scope_path,
)
from repro.lint.graph import ModuleInfo, ProjectGraph, extract_module
from repro.lint.report import (
    format_github,
    format_json,
    format_stats,
    format_text,
)
from repro.lint.rules import (
    RULE_REGISTRY,
    ProjectRule,
    Rule,
    all_rules,
    get_rules,
    register,
)
from repro.lint.sarif import format_sarif, sarif_log

__all__ = [
    "FileAnalysis",
    "Finding",
    "LintConfigError",
    "LintEngine",
    "LintResult",
    "ModuleInfo",
    "ProjectGraph",
    "ProjectRule",
    "Rule",
    "RULE_REGISTRY",
    "all_rules",
    "get_rules",
    "register",
    "extract_module",
    "fingerprint",
    "scope_path",
    "load_baseline",
    "save_baseline",
    "DEFAULT_CACHE_PATH",
    "LintCache",
    "engine_signature",
    "format_text",
    "format_json",
    "format_github",
    "format_stats",
    "format_sarif",
    "sarif_log",
]
