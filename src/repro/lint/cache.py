"""Content-hash incremental caching for the lint engine.

A cold lint run parses every file; a warm run should not.  The cache
stores, per file, everything phase two (the graph pass) and the report
need: the phase-one findings, the suppression-pragma state, and the
extracted :class:`~repro.lint.graph.ModuleInfo`.  A file whose content
hash is unchanged contributes all three from the cache without being
read past the hash — the whole-program rules then run against the
assembled graph as usual, which is what "the graph pass invalidates
dependents" means here: cross-module findings are *recomputed every
run* from cheap cached summaries, so a change in ``worker.py`` moves a
finding in ``frontend.py`` with no staleness window.

The cache is keyed on an *engine signature* — a digest of the lint
package's own source plus the selected rule ids — so editing any rule,
the engine, or the graph extractor invalidates every entry at once.
Nothing ever lints against stale rule logic.

The file lives at :data:`DEFAULT_CACHE_PATH` (gitignored; CI persists it
via ``actions/cache`` keyed on the tree's content hashes).  A corrupt or
version-skewed cache is discarded silently — the cache is an
accelerator, never a source of truth.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

FORMAT_VERSION = 1

DEFAULT_CACHE_PATH = ".repro-lint-cache.json"


def content_hash(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:24]


def engine_signature(rule_ids: list[str]) -> str:
    """Digest of the linter's own source plus the rule selection.

    Hashing the package source means a rule edit, an engine fix or a
    graph-extractor change each invalidate the whole cache — the
    alternative (a hand-bumped version constant) fails exactly when
    someone forgets to bump it.
    """
    h = hashlib.sha256()
    pkg_root = Path(__file__).parent
    for path in sorted(pkg_root.rglob("*.py")):
        h.update(path.as_posix().encode())
        try:
            h.update(path.read_bytes())
        except OSError:
            continue
    h.update("|".join(sorted(rule_ids)).encode())
    return h.hexdigest()[:24]


class LintCache:
    """Per-file analysis store, loaded once and rewritten atomically."""

    def __init__(self, path: str | Path, signature: str):
        self.path = Path(path)
        self.signature = signature
        self.entries: dict[str, dict] = {}
        self._fresh: dict[str, dict] = {}
        self.hits = 0
        self.misses = 0
        self._load()

    def _load(self) -> None:
        try:
            doc = json.loads(self.path.read_text())
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return
        if (
            not isinstance(doc, dict)
            or doc.get("version") != FORMAT_VERSION
            or doc.get("signature") != self.signature
            or not isinstance(doc.get("files"), dict)
        ):
            return
        self.entries = doc["files"]

    def get(self, key: str, sha: str) -> dict | None:
        """The cached entry for ``key`` if its content hash matches."""
        entry = self.entries.get(key)
        if entry is not None and entry.get("sha") == sha:
            self.hits += 1
            return entry
        self.misses += 1
        return None

    def put(self, key: str, entry: dict) -> None:
        self._fresh[key] = entry

    def save(self) -> None:
        """Write only this run's entries (files that vanished drop out)."""
        doc = {
            "version": FORMAT_VERSION,
            "signature": self.signature,
            "files": self._fresh,
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        try:
            tmp.write_text(json.dumps(doc))
            tmp.replace(self.path)
        except OSError:
            # A read-only tree degrades to cold runs; never fail the lint.
            try:
                tmp.unlink(missing_ok=True)
            except OSError:
                pass
