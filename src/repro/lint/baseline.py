"""Baseline (grandfathering) support for :mod:`repro.lint`.

A baseline is a checked-in JSON file of finding *fingerprints* — the
debts that existed when a rule landed.  New code lints clean against it;
old findings neither fail CI nor silently grow, and because fingerprints
hash the stripped source line (not the line number), the baseline
survives unrelated edits above a grandfathered line.

The workflow is a ratchet:

* ``repro lint --write-baseline`` (re)captures the current findings;
* fixing a grandfathered finding makes its entry *stale*, which the
  next run reports — regenerate to shrink the file;
* a finding whose source line is edited loses its fingerprint match and
  fails the run, forcing the edit to fix it properly.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.engine import Finding, LintConfigError

FORMAT_VERSION = 1


def load_baseline(path: str | Path) -> dict[str, dict]:
    """Fingerprint -> entry map from a baseline file.

    Raises :class:`LintConfigError` on unreadable or malformed files —
    a broken baseline must fail loudly, not lint as if empty.
    """
    try:
        doc = json.loads(Path(path).read_text())
    except OSError as exc:
        raise LintConfigError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise LintConfigError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(doc, dict) or doc.get("version") != FORMAT_VERSION:
        raise LintConfigError(
            f"baseline {path} has unsupported format "
            f"(expected version {FORMAT_VERSION})"
        )
    entries = doc.get("entries")
    if not isinstance(entries, list):
        raise LintConfigError(f"baseline {path} has no entries list")
    out: dict[str, dict] = {}
    for entry in entries:
        if not isinstance(entry, dict) or "fingerprint" not in entry:
            raise LintConfigError(f"baseline {path} has a malformed entry")
        out[entry["fingerprint"]] = entry
    return out


def save_baseline(path: str | Path, findings: list[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, one entry each)."""
    entries = [
        {
            "fingerprint": f.fingerprint,
            "rule": f.rule,
            "path": f.path,
            "line": f.line,
            "message": f.message,
        }
        for f in sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    ]
    doc = {"version": FORMAT_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(doc, indent=2) + "\n")
