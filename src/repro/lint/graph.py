"""Phase one of the whole-program analyzer: the :class:`ProjectGraph`.

The per-file rules (R001–R005) see one module at a time, which is
exactly why they cannot catch the bug classes that bit recent PRs: a
request field that affects the solve but never enters a cache digest, a
core module quietly importing serving code, a worker-protocol verb
handled on one side of the pickle boundary only.  This module extracts a
*serializable* summary of every file — imports, dataclass fields,
``self.x`` usage per method, string-literal call sites, module-level
string constants and name-set registries — and assembles the summaries
into one :class:`ProjectGraph` that the cross-module rules (R100–R103)
query.

Extraction is deliberately flat data (dataclasses of str/int/bool) so
summaries round-trip through the incremental cache as JSON: an unchanged
file contributes its cached :class:`ModuleInfo` to the graph without
being re-parsed, which is where the warm-run speedup comes from.

Dotted module names are derived from the path *relative to the*
``repro`` *package* (``serve/requests.py`` → ``repro.serve.requests``),
the same convention rule scopes use — so fixture trees in tests get the
same treatment as the real tree.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import asdict, dataclass, field

#: Pragma marking a request field as deliberately absent from the cache
#: digests (R101).  The reason is mandatory: ``# repro-lint:
#: non-keying=identity only, echoed on the response``.
NON_KEYING_RE = re.compile(
    r"#\s*repro-lint:\s*non-keying\s*(?:=\s*(?P<reason>.*?))?\s*$"
)

#: Attribute-call names whose literal first argument enters the
#: string-literal registry.  Bounded so the registry (and the cache
#: entries carrying it) stays small: these are the telemetry emission
#: points R102 cross-checks.
TRACKED_CALL_ATTRS = frozenset(
    {"counter", "gauge", "histogram", "span", "add_complete", "add_modeled"}
)

#: Bare-name loads worth tracking for send/compare roles: module-level
#: constant spellings (R103's protocol verbs are all ALL_CAPS).
_CONST_NAME_RE = re.compile(r"^[A-Z][A-Z0-9_]+$")


@dataclass
class ImportEdge:
    """One import statement's repro-internal target.

    ``lazy`` marks imports nested inside a function body — the repo's
    deliberate decoupling seams ("repro.stochastic must stay importable
    without the serving stack").  Layering rules count lazy edges; the
    cycle check only counts eager ones, because a lazy edge never forms
    an import-time cycle.
    """

    target: str  #: absolute dotted module as written/resolved
    names: list[str] = field(default_factory=list)  #: from-import names
    line: int = 0
    lazy: bool = False


@dataclass
class MethodInfo:
    """Per-method ``self`` usage: which attributes it reads and which of
    the class's own methods it calls (one level of the transitive-read
    closure R101 computes)."""

    name: str
    line: int = 0
    self_reads: list[str] = field(default_factory=list)
    self_calls: list[str] = field(default_factory=list)


@dataclass
class FieldInfo:
    """One annotated dataclass field (``ClassVar`` annotations excluded)."""

    name: str
    line: int = 0
    non_keying: bool = False  #: carries a ``non-keying`` pragma
    non_keying_reason: str = ""


@dataclass
class ClassInfo:
    name: str
    line: int = 0
    is_dataclass: bool = False
    fields: list[FieldInfo] = field(default_factory=list)
    methods: dict[str, MethodInfo] = field(default_factory=dict)


@dataclass
class CallLiteral:
    """A string literal passed as the first argument of an attribute call
    (``registry.counter("serve.latency_s")`` → value/``counter``)."""

    value: str
    line: int
    col: int
    attr: str


@dataclass
class StrConstant:
    """A module-level ``NAME = "literal"`` binding."""

    name: str
    value: str
    line: int


@dataclass
class NameUse:
    """One load of a bare name, classified by syntactic role: ``send``
    (inside a call's arguments) or ``compare`` (operand of a comparison).
    R103 uses these to prove both sides of the worker protocol exist."""

    name: str
    line: int
    role: str  # "send" | "compare"


@dataclass
class ModuleInfo:
    """Everything the cross-module rules need to know about one file."""

    rel: str  #: scope path, e.g. ``serve/requests.py``
    module: str  #: dotted name, e.g. ``repro.serve.requests``
    imports: list[ImportEdge] = field(default_factory=list)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    call_literals: list[CallLiteral] = field(default_factory=list)
    constants: dict[str, StrConstant] = field(default_factory=dict)
    #: module-level ``NAME = frozenset({"a", "b"})``-style registries:
    #: name -> [(value, line), ...]
    string_sets: dict[str, list[tuple[str, int]]] = field(default_factory=dict)
    name_uses: list[NameUse] = field(default_factory=list)

    @property
    def package(self) -> str:
        """Top-level package of the module (``""`` for root files)."""
        return self.rel.split("/", 1)[0] if "/" in self.rel else ""

    # -- serialization (incremental cache) ---------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, d: dict) -> "ModuleInfo":
        return cls(
            rel=d["rel"],
            module=d["module"],
            imports=[ImportEdge(**e) for e in d.get("imports", [])],
            classes={
                name: ClassInfo(
                    name=c["name"],
                    line=c["line"],
                    is_dataclass=c["is_dataclass"],
                    fields=[FieldInfo(**f) for f in c.get("fields", [])],
                    methods={
                        m: MethodInfo(**mi) for m, mi in c.get("methods", {}).items()
                    },
                )
                for name, c in d.get("classes", {}).items()
            },
            call_literals=[CallLiteral(**l) for l in d.get("call_literals", [])],
            constants={
                name: StrConstant(**c) for name, c in d.get("constants", {}).items()
            },
            string_sets={
                name: [tuple(pair) for pair in pairs]
                for name, pairs in d.get("string_sets", {}).items()
            },
            name_uses=[NameUse(**u) for u in d.get("name_uses", [])],
        )


def module_name(rel: str) -> str:
    """Dotted module name of a scope path (``repro``-rooted)."""
    parts = rel[:-3].split("/") if rel.endswith(".py") else rel.split("/")
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(["repro"] + [p for p in parts if p])


def _non_keying_pragmas(source: str) -> dict[int, str]:
    """Line -> reason for every ``non-keying`` pragma in ``source``."""
    out: dict[int, str] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (tok.start[0], tok.string)
            for tok in tokens
            if tok.type == tokenize.COMMENT
        ]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        comments = []
    for lineno, text in comments:
        m = NON_KEYING_RE.search(text)
        if m:
            out[lineno] = (m.group("reason") or "").strip()
    return out


def _str_elements(node: ast.AST) -> list[tuple[str, int]] | None:
    """``(value, line)`` pairs if ``node`` is a literal collection of
    strings (optionally wrapped in ``frozenset(...)``/``set(...)``)."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("frozenset", "set", "tuple", "sorted")
        and len(node.args) == 1
    ):
        node = node.args[0]
    if not isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        return None
    out = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        out.append((elt.value, elt.lineno))
    return out


def _is_dataclass_decorated(node: ast.ClassDef) -> bool:
    for dec in node.decorator_list:
        target = dec.func if isinstance(dec, ast.Call) else dec
        if isinstance(target, ast.Name) and target.id == "dataclass":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "dataclass":
            return True
    return False


def _is_classvar(annotation: ast.AST) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):
        target = target.value
    if isinstance(target, ast.Name):
        return target.id == "ClassVar"
    if isinstance(target, ast.Attribute):
        return target.attr == "ClassVar"
    return False


def _method_info(node: ast.AST) -> MethodInfo:
    reads: list[str] = []
    calls: list[str] = []
    for sub in ast.walk(node):
        if (
            isinstance(sub, ast.Attribute)
            and isinstance(sub.value, ast.Name)
            and sub.value.id == "self"
        ):
            reads.append(sub.attr)
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Attribute)
            and isinstance(sub.func.value, ast.Name)
            and sub.func.value.id == "self"
        ):
            calls.append(sub.func.attr)
    return MethodInfo(
        name=node.name,
        line=node.lineno,
        self_reads=sorted(set(reads)),
        self_calls=sorted(set(calls)),
    )


def _class_info(node: ast.ClassDef, pragmas: dict[int, str]) -> ClassInfo:
    info = ClassInfo(
        name=node.name, line=node.lineno, is_dataclass=_is_dataclass_decorated(node)
    )
    for stmt in node.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
            if _is_classvar(stmt.annotation):
                continue
            reason = pragmas.get(stmt.lineno)
            info.fields.append(
                FieldInfo(
                    name=stmt.target.id,
                    line=stmt.lineno,
                    non_keying=reason is not None,
                    non_keying_reason=reason or "",
                )
            )
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            info.methods[stmt.name] = _method_info(stmt)
    return info


class _Extractor(ast.NodeVisitor):
    def __init__(self, info: ModuleInfo, pragmas: dict[int, str]):
        self.info = info
        self.pragmas = pragmas
        self._depth = 0  # function-nesting depth: >0 means lazy imports

    # -- imports -----------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "repro" or alias.name.startswith("repro."):
                self.info.imports.append(
                    ImportEdge(
                        target=alias.name, line=node.lineno, lazy=self._depth > 0
                    )
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = node.module or ""
        if node.level:
            # Resolve relative imports against this module's dotted name:
            # ``from ..sampler import X`` in repro.stochastic.solve.
            base = self.info.module
            if not self.info.rel.endswith("__init__.py"):
                base = base.rsplit(".", 1)[0] if "." in base else base
            for _ in range(node.level - 1):
                base = base.rsplit(".", 1)[0] if "." in base else base
            target = f"{base}.{target}" if target else base
        if target == "repro" or target.startswith("repro."):
            self.info.imports.append(
                ImportEdge(
                    target=target,
                    names=[a.name for a in node.names],
                    line=node.lineno,
                    lazy=self._depth > 0,
                )
            )
        self.generic_visit(node)

    # -- functions / classes ----------------------------------------------
    def visit_FunctionDef(self, node) -> None:
        self._depth += 1
        self.generic_visit(node)
        self._depth -= 1

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self.info.classes[node.name] = _class_info(node, self.pragmas)
        self.generic_visit(node)

    # -- module-level constants and registries ----------------------------
    def visit_Assign(self, node: ast.Assign) -> None:
        if self._depth == 0 and len(node.targets) == 1:
            target = node.targets[0]
            if isinstance(target, ast.Name):
                if isinstance(node.value, ast.Constant) and isinstance(
                    node.value.value, str
                ):
                    self.info.constants[target.id] = StrConstant(
                        name=target.id, value=node.value.value, line=node.lineno
                    )
                else:
                    elements = _str_elements(node.value)
                    if elements is not None:
                        self.info.string_sets[target.id] = elements
        self.generic_visit(node)

    # -- calls: literal names and name sends ------------------------------
    def visit_Call(self, node: ast.Call) -> None:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in TRACKED_CALL_ATTRS
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            self.info.call_literals.append(
                CallLiteral(
                    value=node.args[0].value,
                    line=node.args[0].lineno,
                    col=node.args[0].col_offset,
                    attr=node.func.attr,
                )
            )
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            for sub in ast.walk(arg):
                if (
                    isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and _CONST_NAME_RE.match(sub.id)
                ):
                    self.info.name_uses.append(
                        NameUse(name=sub.id, line=sub.lineno, role="send")
                    )
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        for operand in [node.left] + list(node.comparators):
            for sub in ast.walk(operand):
                if (
                    isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and _CONST_NAME_RE.match(sub.id)
                ):
                    self.info.name_uses.append(
                        NameUse(name=sub.id, line=sub.lineno, role="compare")
                    )
        self.generic_visit(node)


def extract_module(tree: ast.AST, rel: str, source: str) -> ModuleInfo:
    """Build one file's :class:`ModuleInfo` from its parsed tree."""
    info = ModuleInfo(rel=rel, module=module_name(rel))
    _Extractor(info, _non_keying_pragmas(source)).visit(tree)
    return info


class ProjectGraph:
    """The assembled whole-program view the cross-module rules query."""

    def __init__(self, modules: list[ModuleInfo]):
        self.modules = sorted(modules, key=lambda m: m.rel)
        self.by_rel = {m.rel: m for m in self.modules}
        self.by_module = {m.module: m for m in self.modules}

    # -- imports -----------------------------------------------------------
    def resolve_target(self, edge: ImportEdge) -> list[str]:
        """Dotted modules an edge points at, submodule-resolved.

        ``from repro.serve import requests`` targets ``repro.serve`` in
        the source text but ``repro.serve.requests`` in the graph; a
        from-import whose name is not a submodule collapses to the
        target module itself.
        """
        resolved = []
        for name in edge.names or [None]:
            cand = f"{edge.target}.{name}" if name else None
            if cand and cand in self.by_module:
                resolved.append(cand)
            else:
                resolved.append(edge.target)
        return sorted(set(resolved))

    def import_edges(
        self, include_lazy: bool = True
    ) -> list[tuple[str, str, int, bool]]:
        """``(src_module, dst_module, line, lazy)`` for every internal
        edge whose destination exists in the graph."""
        out = []
        for mod in self.modules:
            for edge in mod.imports:
                for dst in self.resolve_target(edge):
                    if dst in self.by_module and dst != mod.module:
                        if include_lazy or not edge.lazy:
                            out.append((mod.module, dst, edge.line, edge.lazy))
        return out

    def package_edges(self) -> dict[str, set[str]]:
        """Package -> imported packages (lazy edges included)."""
        out: dict[str, set[str]] = {}
        for src, dst, _, _ in self.import_edges():
            sp = self.by_module[src].package
            dp = self.by_module[dst].package
            if sp != dp:
                out.setdefault(sp, set()).add(dp)
        return out

    def import_cycles(self) -> list[list[str]]:
        """Module-level import cycles over *eager* edges only (a lazy
        import never participates in an import-time cycle), as sorted
        lists of dotted names, deterministically ordered.

        A package ``__init__`` importing its *own* submodules is the
        re-export / plugin-registry idiom (Python resolves the apparent
        cycle via partially-initialized modules, by construction: the
        ``__init__`` finishes defining everything the submodule needs
        before importing it); those parent→child edges are excluded
        here, though they still count for layering.
        """
        adj: dict[str, set[str]] = {m.module: set() for m in self.modules}
        for src, dst, _, lazy in self.import_edges():
            if not lazy and not dst.startswith(src + "."):
                adj[src].add(dst)
        # Tarjan's strongly-connected components, iterative.
        index: dict[str, int] = {}
        low: dict[str, int] = {}
        on_stack: set[str] = set()
        stack: list[str] = []
        cycles: list[list[str]] = []
        counter = [0]

        def strongconnect(root: str) -> None:
            work = [(root, iter(sorted(adj[root])))]
            index[root] = low[root] = counter[0]
            counter[0] += 1
            stack.append(root)
            on_stack.add(root)
            while work:
                node, it = work[-1]
                advanced = False
                for nxt in it:
                    if nxt not in index:
                        index[nxt] = low[nxt] = counter[0]
                        counter[0] += 1
                        stack.append(nxt)
                        on_stack.add(nxt)
                        work.append((nxt, iter(sorted(adj[nxt]))))
                        advanced = True
                        break
                    if nxt in on_stack:
                        low[node] = min(low[node], index[nxt])
                if advanced:
                    continue
                work.pop()
                if work:
                    parent = work[-1][0]
                    low[parent] = min(low[parent], low[node])
                if low[node] == index[node]:
                    scc = []
                    while True:
                        member = stack.pop()
                        on_stack.discard(member)
                        scc.append(member)
                        if member == node:
                            break
                    if len(scc) > 1 or node in adj[node]:
                        cycles.append(sorted(scc))

        for mod in sorted(adj):
            if mod not in index:
                strongconnect(mod)
        return sorted(cycles)

    # -- cross-module lookups ---------------------------------------------
    def string_set(self, rel_suffix: str, name: str) -> list[tuple[str, int, str]]:
        """``(value, line, rel)`` elements of registry ``name`` in the
        module whose scope path ends with ``rel_suffix`` (empty when the
        registry module is absent — rules then skip their check)."""
        for mod in self.modules:
            if mod.rel.endswith(rel_suffix) and name in mod.string_sets:
                return [
                    (value, line, mod.rel)
                    for value, line in mod.string_sets[name]
                ]
        return []

    def constants_matching(self, pattern: str) -> list[tuple[ModuleInfo, StrConstant]]:
        """Every module-level string constant whose *value* matches."""
        regex = re.compile(pattern)
        out = []
        for mod in self.modules:
            for const in mod.constants.values():
                if regex.match(const.value):
                    out.append((mod, const))
        return out

    def name_uses(self, name: str) -> list[tuple[ModuleInfo, NameUse]]:
        return [
            (mod, use)
            for mod in self.modules
            for use in mod.name_uses
            if use.name == name
        ]
