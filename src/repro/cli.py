"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Network, LP and decomposition statistics for a feeder.
``solve``
    Run the solver-free (or benchmark) ADMM and print a solution report,
    optionally validating against the centralized HiGHS optimum.
``methods``
    Run every rung of the fidelity ladder (linearized / qp / socp) on a
    feeder, reporting each method's accuracy gap against its HiGHS
    reference and the modeled GPU cost (see docs/METHODS.md).
``export``
    Convert a feeder between the named builtins, JSON, and CSV formats, or
    dump the assembled LP as ``.npz``.
``bench-iteration``
    Measure per-iteration update costs and show the modeled A100 times.
``serve-batch``
    Serve a JSON file of OPF scenarios through the batched scenario engine
    and print the serving metrics (see docs/SERVING.md).
``solve-stochastic``
    Solve the two-stage stochastic OPF — seeded scenario sampling, shared
    first-stage DER commitment, per-scenario recourse, expected-cost and
    CVaR objectives — through the stacked consensus ADMM (see
    docs/STOCHASTIC.md).
``schedule-der``
    Rolling-horizon DER/storage scheduling on the multi-period problem.
``trace-summary``
    Aggregate a trace captured with ``--trace`` into a per-phase table
    (see docs/OBSERVABILITY.md).
``backends``
    List the registered array-execution backends and their capabilities
    (see docs/BACKENDS.md).
``lint``
    Run the repo's AST-based invariant linter (backend discipline,
    determinism, precision, telemetry hygiene, exception discipline)
    against the checked-in baseline (see docs/LINTING.md).  Exit codes:
    0 clean, 1 findings, 2 configuration error.

``solve`` and ``serve-batch`` accept ``--backend {numpy64,numpy32,cupy}``
and ``--precision {fp64,fp32,mixed}`` to pick the array-execution layer;
the default honours the ``REPRO_BACKEND`` environment variable.

``solve`` and ``serve-batch`` accept ``--trace out.json`` to capture a
Chrome-trace/Perfetto span timeline of the run (``.jsonl`` extension
selects the JSONL sink instead).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.core import ADMMConfig, BenchmarkADMM, SolverFreeADMM
from repro.decomposition import decompose
from repro.formulation import build_centralized_lp
from repro.io import resolve_feeder as _resolve_feeder
from repro.io import save_lp_npz, save_network
from repro.io.csv_feeder import save_network_csv
from repro.network.analysis import solution_report
from repro.reference import solve_reference
from repro.telemetry import Tracer, format_trace_summary, load_trace_events
from repro.utils import ConvergenceError, format_table


def resolve_feeder(spec: str):
    """Resolve a feeder argument: builtin name, ``.json`` file, or CSV dir."""
    try:
        return _resolve_feeder(spec)
    except ValueError as exc:
        raise SystemExit(str(exc)) from None


def cmd_info(args) -> int:
    net = resolve_feeder(args.feeder)
    lp = build_centralized_lp(net)
    dec = decompose(lp)
    ms, ns = dec.size_stats()
    print(net.summary())
    print(f"radial: {net.is_radial()}   substation: {net.substation}")
    print(f"centralized LP: A is {lp.shape[0]} x {lp.shape[1]}")
    counts = dec.partition_counts
    print(
        f"decomposition: S = {dec.n_components} "
        f"({counts.n_nodes} nodes + {counts.n_lines} lines - {counts.n_leaves} leaves)"
    )
    print(
        format_table(
            ["dim", "min", "max", "mean", "stdev", "sum"],
            [
                ["m_s", ms.minimum, ms.maximum, round(ms.mean, 2), round(ms.stdev, 2), ms.total],
                ["n_s", ns.minimum, ns.maximum, round(ns.mean, 2), round(ns.stdev, 2), ns.total],
            ],
            title="component subproblem sizes",
        )
    )
    return 0


def cmd_solve(args) -> int:
    if getattr(args, "method", None):
        return _cmd_solve_method(args)
    net = resolve_feeder(args.feeder)
    lp = build_centralized_lp(net)
    dec = decompose(lp)
    cfg = ADMMConfig(
        rho=args.rho,
        eps_rel=args.eps_rel,
        max_iter=args.max_iter,
        relaxation=args.relaxation,
        record_history=args.diagnostics,
    )
    tracer = Tracer() if args.trace else None
    try:
        if args.algorithm == "solver-free":
            solver = SolverFreeADMM(
                dec, cfg, tracer=tracer,
                backend=args.backend, precision=args.precision,
            )
        else:
            solver = BenchmarkADMM(
                dec, cfg, local_mode=args.local_mode, tracer=tracer,
                backend=args.backend, precision=args.precision,
            )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    policy = solver.backend.policy
    print(f"backend: {solver.backend.name} (precision {policy.name}, "
          f"compute {policy.compute})")
    result = solver.solve()
    if tracer is not None:
        tracer.save(args.trace)
        print(f"trace ({len(tracer)} spans) written to {args.trace}")
    print(result.summary())
    report = solution_report(lp, result.x)
    print(
        format_table(
            ["quantity", "value"],
            [[k, v] for k, v in report.items()],
            title="solution report",
        )
    )
    if args.diagnostics:
        from repro.core.diagnostics import convergence_report

        diag = convergence_report(dec, result)
        print(
            format_table(
                ["check", "value"],
                [[k, v] for k, v in diag.items()],
                title="convergence diagnostics",
            )
        )
    if args.reference:
        ref = solve_reference(lp)
        print(
            f"reference objective {ref.objective:.6f}  "
            f"relative gap {ref.compare_objective(result.objective):.3e}"
        )
    if args.output:
        from repro.io import save_result

        save_result(result, args.output)
        print(f"result written to {args.output}")
    if args.require_convergence and not result.converged:
        raise ConvergenceError(
            f"solve did not converge within {result.iterations} iterations "
            f"(pres {result.pres:.3e}, dres {result.dres:.3e})"
        )
    return 0 if result.converged else 2


def _cmd_solve_method(args) -> int:
    """``repro solve --method ...``: one rung of the fidelity ladder
    through the unified :mod:`repro.methods` facade."""
    from repro.methods import (
        Method,
        build_method_problem,
        make_method_solver,
        reference_objective,
    )

    net = resolve_feeder(args.feeder)
    cfg = ADMMConfig(
        rho=args.rho,
        eps_rel=args.eps_rel,
        max_iter=args.max_iter,
        relaxation=args.relaxation,
        record_history=args.diagnostics,
    )
    tracer = Tracer() if args.trace else None
    try:
        method = Method.parse(args.method)
        problem = build_method_problem(net, method)
        solver = make_method_solver(
            problem, cfg, tracer=tracer,
            backend=args.backend, precision=args.precision,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    policy = solver.backend.policy
    print(f"method: {method}   backend: {solver.backend.name} "
          f"(precision {policy.name}, compute {policy.compute})")
    result = solver.solve()
    if tracer is not None:
        tracer.save(args.trace)
        print(f"trace ({len(tracer)} spans) written to {args.trace}")
    print(result.summary())
    if method is Method.SOCP:
        conic = problem.conic
        slack = conic.cone_slack(result.x)
        print(
            format_table(
                ["quantity", "value"],
                [
                    ["objective", f"{problem.objective(result.x):.6f}"],
                    ["worst cone violation", f"{conic.cone_violation(result.x):.3e}"],
                    ["min cone slack", f"{float(slack.min()):.3e}"],
                    ["tight cones (slack < 1e-6)", int((slack < 1e-6).sum())],
                    ["cones", len(conic.cones)],
                ],
                title="conic relaxation report",
            )
        )
    else:
        report = solution_report(problem.lp, result.x)
        print(
            format_table(
                ["quantity", "value"],
                [[k, v] for k, v in report.items()],
                title="solution report",
            )
        )
    if args.reference:
        ref = reference_objective(problem)
        obj = problem.objective(result.x)
        gap = abs(obj - ref) / max(abs(ref), 1e-12)
        print(f"reference objective {ref:.6f}  relative gap {gap:.3e}")
    if args.output:
        from repro.io import save_result

        save_result(result, args.output)
        print(f"result written to {args.output}")
    if args.require_convergence and not result.converged:
        raise ConvergenceError(
            f"solve did not converge within {result.iterations} iterations "
            f"(pres {result.pres:.3e}, dres {result.dres:.3e})"
        )
    return 0 if result.converged else 2


def cmd_methods(args) -> int:
    """``repro methods``: the accuracy/modeled-cost ladder on one feeder."""
    from repro.methods import method_report
    from repro.telemetry import MetricsRegistry

    net = resolve_feeder(args.feeder)
    methods = [m.strip() for m in args.methods.split(",") if m.strip()]
    try:
        reports = method_report(
            net,
            methods or None,
            backend=args.backend,
            precision=args.precision,
            metrics=MetricsRegistry(),
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    rows = [
        [
            r.method,
            "yes" if r.converged else "no",
            r.iterations,
            f"{r.objective:.6f}",
            f"{r.reference_objective:.6f}",
            f"{r.gap:.3e}",
            f"{r.gap_tol:g}",
            "yes" if r.within_tier else "NO",
            f"{r.modeled_iteration_s * 1e6:.1f}",
            f"{r.modeled_solve_s * 1e3:.2f}",
        ]
        for r in reports
    ]
    print(
        format_table(
            ["method", "conv", "iters", "objective", "reference",
             "gap", "tier", "ok", "us/iter", "modeled ms"],
            rows,
            title=f"fidelity ladder on {args.feeder!r} (gap vs HiGHS, A100 model)",
        )
    )
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(
                {"feeder": args.feeder, "methods": [r.to_dict() for r in reports]},
                fh,
                indent=1,
            )
        print(f"method report written to {args.output}")
    return 0 if all(r.within_tier for r in reports) else 2


def cmd_export(args) -> int:
    net = resolve_feeder(args.feeder)
    out = Path(args.output)
    if args.format == "json":
        save_network(net, out)
    elif args.format == "csv":
        save_network_csv(net, out)
    elif args.format == "npz":
        save_lp_npz(build_centralized_lp(net), out)
    print(f"{args.format} written to {out}")
    return 0


def cmd_bench_iteration(args) -> int:
    import numpy as np

    from repro.gpu import A100, iteration_times
    from repro.parallel import CPU_CLUSTER_COMM, SimulatedCluster

    net = resolve_feeder(args.feeder)
    lp = build_centralized_lp(net)
    dec = decompose(lp)
    solver = SolverFreeADMM(dec)
    res = solver.solve(max_iter=args.iterations)
    per = {k: v / res.iterations for k, v in res.timers.items()}
    rows = [[k, f"{v * 1e6:.1f}"] for k, v in per.items()]
    print(
        format_table(
            ["stage", "us/iteration"],
            rows,
            title=f"measured per-iteration cost ({res.iterations} iterations, this machine)",
        )
    )
    costs = solver.measure_local_costs(repeats=2)
    cluster = SimulatedCluster(dec, costs, args.cpus, CPU_CLUSTER_COMM)
    timing = cluster.local_update_timing()
    print(
        f"simulated {timing.n_ranks}-CPU local update: "
        f"{timing.total_s * 1e6:.1f} us (compute {timing.compute_s * 1e6:.1f}, "
        f"comm {timing.comm_s * 1e6:.1f})"
    )
    gpu = iteration_times(A100, dec)
    print(
        f"modeled A100 per-iteration: total {gpu.total_s * 1e6:.1f} us "
        f"(global {gpu.global_s * 1e6:.1f}, local {gpu.local_s * 1e6:.1f}, "
        f"dual {gpu.dual_s * 1e6:.1f})"
    )
    return 0


def generate_scenarios(
    feeder: str,
    count: int,
    seed: int,
    spread: float = 0.15,
    method: str = "linearized",
) -> list:
    """Random but reproducible load-perturbation scenarios for a feeder.

    Half the scenarios are fresh uniform draws; the other half perturb an
    earlier scenario slightly, so a serving run exercises both cold and
    warm-started solves.
    """
    import numpy as np

    from repro.serve import OPFRequest

    net = resolve_feeder(feeder)
    load_names = sorted(net.loads)
    rng = np.random.default_rng(seed)
    requests: list[OPFRequest] = []
    for i in range(count):
        if i >= count // 2 and requests:
            # a small perturbation of an already-generated scenario
            base = requests[int(rng.integers(0, count // 2))]
            mult = {
                name: m * float(1.0 + rng.uniform(-0.02, 0.02))
                for name, m in base.load_multipliers.items()
            }
            scale = base.load_scale
        else:
            mult = {
                name: float(1.0 + rng.uniform(-spread, spread))
                for name in load_names
            }
            scale = float(1.0 + rng.uniform(-spread, spread))
        requests.append(
            OPFRequest(
                request_id=f"scenario-{i:04d}",
                feeder=feeder,
                load_scale=scale,
                load_multipliers=mult,
                method=method,
            )
        )
    return requests


def cmd_serve_batch(args) -> int:
    from repro.serve import (
        ScenarioEngine,
        load_requests_json,
        save_requests_json,
    )

    if args.scenarios:
        try:
            requests = load_requests_json(args.scenarios)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot read scenarios: {exc}") from None
    else:
        requests = generate_scenarios(
            args.feeder, args.generate, args.seed, method=args.method
        )
        print(f"generated {len(requests)} scenarios on feeder {args.feeder!r}")
    if args.save_scenarios:
        save_requests_json(requests, args.save_scenarios)
        print(f"scenario file written to {args.save_scenarios}")

    tracer = Tracer() if args.trace else None
    try:
        engine = ScenarioEngine(
            max_batch=args.max_batch,
            queue_size=args.queue_size,
            cache_capacity=args.cache_capacity,
            tracer=tracer,
            backend=args.backend,
            precision=args.precision,
        )
    except ValueError as exc:
        raise SystemExit(str(exc)) from None
    policy = engine.backend.policy
    print(f"backend: {engine.backend.name} (precision {policy.name}, "
          f"compute {policy.compute})")
    responses = engine.serve(requests)
    snap = engine.snapshot()
    if tracer is not None:
        tracer.save(args.trace)
        print(f"trace ({len(tracer)} spans) written to {args.trace}")

    if args.verbose:
        rows = [
            [
                r.request_id,
                r.status,
                r.iterations,
                "warm" if r.warm_started else "cold",
                "-" if r.objective is None else f"{r.objective:.5f}",
            ]
            for r in responses
        ]
        print(
            format_table(
                ["request", "status", "iterations", "start", "objective"],
                rows,
                title="responses",
            )
        )
    print(
        format_table(
            ["metric", "value"],
            [[k, v] for k, v in snap.items()],
            title="serving metrics",
        )
    )
    if args.output:
        payload = {
            "metrics": snap,
            "responses": [r.to_dict() for r in responses],
        }
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=1)
        print(f"serving report written to {args.output}")
    failed = sum(1 for r in responses if r.status in ("error", "rejected", "timeout"))
    if args.require_convergence:
        unconverged = sum(1 for r in responses if r.status != "converged")
        if unconverged:
            raise ConvergenceError(
                f"{unconverged} of {len(responses)} scenarios did not converge"
            )
    return 0 if failed == 0 else 2


def cmd_serve_fleet(args) -> int:
    from repro.fleet import (
        FleetConfig,
        FleetFrontend,
        generate_mixed_scenarios,
        run_closed_loop,
        run_open_loop,
    )
    from repro.resilience import FaultPlan, WorkerCrash
    from repro.serve import load_requests_json

    if args.scenarios:
        try:
            requests = load_requests_json(args.scenarios)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            raise SystemExit(f"cannot read scenarios: {exc}") from None
    else:
        feeders = [f.strip() for f in args.feeders.split(",") if f.strip()]
        requests = generate_mixed_scenarios(
            feeders, args.generate, args.seed, method=args.method
        )
        print(
            f"generated {len(requests)} scenarios over "
            f"{len(feeders)} feeders"
        )

    faults = []
    for spec in args.crash or []:
        worker, _, after = spec.partition(":")
        try:
            faults.append(WorkerCrash(worker=worker, after_served=int(after or 0)))
        except ValueError:
            raise SystemExit(
                f"malformed --crash {spec!r}: expected WORKER[:AFTER_SERVED]"
            ) from None
    plan = FaultPlan(seed=args.seed, faults=tuple(faults)) if faults else None

    tracer = Tracer() if args.trace else None
    config = FleetConfig(
        n_workers=args.workers,
        mode="process" if args.procs else "sim",
        max_batch=args.max_batch,
        queue_size=args.queue_size,
        cache_capacity=args.cache_capacity,
        warm_start=not args.no_warm_start,
        backend=args.backend,
        precision=args.precision,
    )
    print(
        f"fleet: {config.n_workers} {config.mode} workers, "
        f"max_batch={config.max_batch}"
        + (f", chaos plan with {len(faults)} fault(s)" if faults else "")
    )
    report = None
    sup_snap = None
    with FleetFrontend(config, tracer=tracer, fault_plan=plan) as fleet:
        if args.supervise:
            from repro.fleet import FleetSupervisor, SupervisorConfig

            supervisor = FleetSupervisor(fleet, SupervisorConfig(
                restart_base_delay_s=args.restart_backoff,
                max_restarts=args.max_restarts,
                seed=args.seed,
            ))
            responses = supervisor.serve(requests)
            supervisor.stabilize()
            sup_snap = supervisor.snapshot()
        elif args.rate is not None:
            report = run_open_loop(fleet, requests, args.rate, seed=args.seed)
            responses = fleet.responses
        elif args.concurrency is not None:
            report = run_closed_loop(fleet, requests, args.concurrency)
            responses = fleet.responses
        else:
            responses = fleet.serve(requests)
        snap = fleet.snapshot()
    if tracer is not None:
        tracer.save(args.trace)
        print(f"trace ({len(tracer)} spans) written to {args.trace}")

    if args.verbose:
        rows = [
            [r.request_id, r.status, r.iterations,
             "-" if r.objective is None else f"{r.objective:.5f}"]
            for r in responses
        ]
        print(format_table(
            ["request", "status", "iterations", "objective"], rows,
            title="responses",
        ))
    fleet_rows = [[k, v] for k, v in snap.items() if k != "workers"]
    print(format_table(["metric", "value"], fleet_rows, title="fleet metrics"))
    worker_rows = [
        [wid, ws.get("worker.served", ws.get("served", "-")),
         "yes" if ws.get("worker.alive", True) else "no"]
        for wid, ws in snap["workers"].items()
    ]
    print(format_table(["worker", "served", "alive"], worker_rows, title="workers"))
    if sup_snap is not None:
        sup_rows = [
            ["capacity", f"{sup_snap['capacity']['alive']}"
             f"/{sup_snap['capacity']['target']} alive"],
            ["quarantined", ", ".join(sup_snap["quarantined"]) or "-"],
            ["restarts", sum(h["restarts"] for h in sup_snap["health"].values())],
            ["mttr_mean_s", f"{snap.get('fleet.restart.mttr_s_mean', 0.0):.3f}"],
        ]
        print(format_table(["metric", "value"], sup_rows, title="supervisor"))
    if report is not None:
        print(format_table(
            ["metric", "value"],
            [[k, v] for k, v in report.to_dict().items() if k != "fleet"],
            title=f"{report.mode}-loop load test",
        ))

    if args.output:
        payload = {
            "fleet": snap,
            "responses": [r.to_dict() for r in responses],
        }
        if report is not None:
            payload["load_test"] = report.to_dict()
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=1)
        print(f"fleet report written to {args.output}")

    failed = sum(1 for r in responses if r.status in ("error", "rejected", "timeout"))
    if args.require_convergence:
        unconverged = sum(1 for r in responses if r.status != "converged")
        if unconverged:
            raise ConvergenceError(
                f"{unconverged} of {len(responses)} scenarios did not converge"
            )
    return 0 if failed == 0 else 2


def cmd_fleet_chaos(args) -> int:
    from repro.fleet import SupervisorConfig, run_chaos_soak

    tracer = Tracer() if args.trace else None
    feeders = tuple(f.strip() for f in args.feeders.split(",") if f.strip())
    mode = "process" if args.procs else "sim"
    print(
        f"chaos soak: {args.workers} {mode} workers, {args.requests} requests, "
        f"{args.kills} kill draws, seed {args.seed}"
    )
    report = run_chaos_soak(
        n_workers=args.workers,
        n_requests=args.requests,
        kills=args.kills,
        seed=args.seed,
        mode=mode,
        feeders=feeders,
        max_batch=args.max_batch,
        supervisor=SupervisorConfig(
            heartbeat_interval_s=1.0 if mode == "sim" else 0.2,
            miss_threshold=2,
            restart_base_delay_s=0.05,
            max_restarts=args.max_restarts,
            seed=args.seed,
        ),
        tracer=tracer,
        require_ok=False,
    )
    if tracer is not None:
        tracer.save(args.trace)
        print(f"trace ({len(tracer)} spans) written to {args.trace}")
    d = report.as_dict()
    print(format_table(
        ["invariant / metric", "value"],
        [[k, d[k]] for k in (
            "deaths", "restarts", "quarantined", "exactly_once",
            "bit_identical", "capacity_recovered", "mttr_mean_s",
        )],
        title="chaos soak report",
    ))
    if report.mismatches:
        for line in report.mismatches:
            print(f"  mismatch: {line}")
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(d, fh, indent=1)
        print(f"soak report written to {args.output}")
    if not report.ok:
        print("chaos soak FAILED: invariants violated")
        return 2
    print("chaos soak ok: exactly-once, bit-identical, capacity recovered")
    return 0


def cmd_solve_stochastic(args) -> int:
    from repro.stochastic import (
        ScenarioSampler,
        UncertaintyModel,
        solve_two_stage,
        value_of_stochastic_solution,
    )
    from repro.telemetry import NULL_TRACER

    net = resolve_feeder(args.feeder)
    sampler = ScenarioSampler.from_network(
        net,
        model=UncertaintyModel(
            load_sigma=args.load_sigma, pv_sigma=args.pv_sigma
        ),
        seed=args.seed,
        antithetic=not args.no_antithetic,
    )
    scenarios = sampler.sample(args.scenarios)
    print(
        f"{scenarios.n_scenarios} scenarios on feeder {args.feeder!r} "
        f"(seed {args.seed}, load sigma {args.load_sigma}, pv sigma "
        f"{args.pv_sigma}, antithetic {not args.no_antithetic})"
    )
    cfg = ADMMConfig(rho=args.rho, eps_rel=args.eps_rel, max_iter=args.max_iter)
    tracer = Tracer() if args.trace else NULL_TRACER
    objectives = (
        ["expected", "cvar"] if args.objective == "both" else [args.objective]
    )
    solutions = {}
    rows = []
    for objective in objectives:
        with tracer.span(
            "stochastic.solve",
            cat="stochastic",
            objective=objective,
            n_scenarios=scenarios.n_scenarios,
        ):
            try:
                sol = solve_two_stage(
                    net,
                    scenarios,
                    alpha=args.alpha,
                    objective=objective,
                    config=cfg,
                    backend=args.backend,
                    precision=args.precision,
                )
            except ValueError as exc:
                raise SystemExit(str(exc)) from None
        solutions[objective] = sol
        rows.append(
            [
                objective,
                "yes" if sol.converged else "no",
                sol.iterations,
                f"{sol.objective:.6f}",
                f"{sol.expected_cost:.6f}",
                f"{sol.cvar_cost:.6f}",
            ]
        )
        if args.reference:
            ref = solve_reference(sol.problem.to_centralized())
            gap = ref.compare_objective(sol.objective)
            print(
                f"{objective}: reference objective {ref.objective:.6f}  "
                f"relative gap {gap:.3e}"
            )
    print(
        format_table(
            ["objective", "converged", "iterations", "value", "E[cost]",
             f"CVaR[{args.alpha}]"],
            rows,
            title="two-stage solutions",
        )
    )
    last = solutions[objectives[-1]]
    print(
        format_table(
            ["generator", "setpoint (pu per phase)"],
            [
                [name, " ".join(f"{v:.5f}" for v in vals)]
                for name, vals in sorted(last.first_stage.items())
            ],
            title="first-stage commitment",
        )
    )
    vss_report = None
    if args.vss:
        vss_report = value_of_stochastic_solution(net, scenarios)
        print(
            f"VSS: two-stage eval {vss_report.stochastic_eval:.6f}  "
            f"mean-scenario eval {vss_report.deterministic_eval:.6f}  "
            f"vss {vss_report.vss:.6f}"
        )
    if tracer is not NULL_TRACER:
        tracer.save(args.trace)
        print(f"trace ({len(tracer)} spans) written to {args.trace}")
    if args.output:
        payload = {
            "feeder": args.feeder,
            "n_scenarios": scenarios.n_scenarios,
            "seed": args.seed,
            "alpha": args.alpha,
            "solutions": {
                obj: {
                    "converged": sol.converged,
                    "iterations": sol.iterations,
                    "objective": sol.objective,
                    "expected_cost": sol.expected_cost,
                    "cvar_cost": sol.cvar_cost,
                    "first_stage": {
                        k: [float(v) for v in vals]
                        for k, vals in sol.first_stage.items()
                    },
                }
                for obj, sol in solutions.items()
            },
        }
        if vss_report is not None:
            payload["vss"] = vss_report.vss
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=1)
        print(f"stochastic report written to {args.output}")
    unconverged = [o for o, s in solutions.items() if not s.converged]
    if args.require_convergence and unconverged:
        raise ConvergenceError(
            f"objectives {unconverged} did not converge within "
            f"{args.max_iter} iterations"
        )
    return 0 if not unconverged else 2


def cmd_schedule_der(args) -> int:
    from repro.multiperiod import Storage, rolling_horizon
    from repro.utils.exceptions import FormulationError

    net = resolve_feeder(args.feeder)
    periods = args.periods
    # A stylized day: load ramps to an evening peak while the price
    # follows it — the spread the storage arbitrages.
    base = [0.7, 0.8, 1.0, 1.2, 1.1, 0.9]
    load_profile = [base[t % len(base)] for t in range(periods)]
    price_profile = [0.5 + 0.7 * (x - 0.7) / 0.5 for x in load_profile]
    storages = [
        Storage(
            name="bat675",
            bus="675",
            p_ch_max=args.storage_power,
            p_dis_max=args.storage_power,
            energy_max=args.storage_energy,
            soc0=args.storage_energy / 2,
        )
    ]
    cfg = ADMMConfig(rho=args.rho, eps_rel=args.eps_rel, max_iter=args.max_iter)
    try:
        horizon = rolling_horizon(
            net,
            load_profile,
            price_profile,
            storages,
            window=args.horizon,
            solver=args.solver,
            config=cfg,
            backend=args.backend,
            precision=args.precision,
        )
    except (FormulationError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    rows = [
        [
            s.period,
            f"{load_profile[s.period]:.2f}",
            f"{price_profile[s.period]:.2f}",
            f"{s.substation_p:.4f}",
            f"{s.storage_p['bat675']:+.4f}",
            f"{s.soc_after['bat675']:.4f}",
            s.iterations,
            "yes" if s.converged else "no",
        ]
        for s in horizon.steps
    ]
    print(
        format_table(
            ["t", "load", "price", "sub p", "storage p", "soc", "iters", "conv"],
            rows,
            title=f"rolling horizon (window {args.horizon})",
        )
    )
    print(f"committed cost: {horizon.committed_cost:.6f}")
    if args.output:
        payload = {
            "feeder": args.feeder,
            "periods": periods,
            "window": args.horizon,
            "committed_cost": horizon.committed_cost,
            "soc": {
                st.name: [float(v) for v in horizon.soc_trajectory(st.name)]
                for st in storages
            },
        }
        with open(args.output, "w") as fh:
            json.dump(payload, fh, indent=1)
        print(f"schedule written to {args.output}")
    unconverged = sum(1 for s in horizon.steps if not s.converged)
    if args.require_convergence and unconverged:
        raise ConvergenceError(
            f"{unconverged} of {len(horizon.steps)} window solves did not converge"
        )
    return 0 if unconverged == 0 else 2


def cmd_backends(args) -> int:
    import os

    from repro.backend import (
        BACKEND_ENV_VAR,
        available_backends,
        backend_names,
        default_backend,
        get_backend,
    )

    avail = set(available_backends())
    default = default_backend().name
    rows = []
    for name in backend_names():
        if name not in avail:
            rows.append([name, "no", "-", "-", "-", "-"])
            continue
        caps = get_backend(name).capabilities()
        rows.append(
            [
                name + (" *" if name == default else ""),
                "yes",
                caps["precision"],
                caps["compute_dtype"],
                "device" if caps["device"] else "host",
                "yes" if caps["refinement"] else "no",
            ]
        )
    print(
        format_table(
            ["backend", "available", "precision", "compute", "memory", "refinement"],
            rows,
            title="registered array-execution backends (* = default)",
        )
    )
    env = os.environ.get(BACKEND_ENV_VAR)
    if env:
        print(f"{BACKEND_ENV_VAR}={env} (set)")
    else:
        print(f"{BACKEND_ENV_VAR} unset — default is numpy64")
    return 0


def cmd_trace_summary(args) -> int:
    try:
        events = load_trace_events(args.trace)
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        raise SystemExit(f"cannot read trace: {exc}") from None
    if not events:
        print("trace contains no spans")
        return 2
    print(format_trace_summary(events))
    return 0


DEFAULT_BASELINE = "lint-baseline.json"


def _changed_files(base: str) -> set[Path]:
    """Changed + untracked ``.py`` files per git, for ``--changed``."""
    import subprocess

    from repro.lint import LintConfigError

    out: set[Path] = set()
    for cmd in (
        ["git", "diff", "--name-only", "--diff-filter=d", base],
        ["git", "ls-files", "--others", "--exclude-standard"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=True
            )
        except (OSError, subprocess.CalledProcessError) as exc:
            detail = getattr(exc, "stderr", "") or str(exc)
            raise LintConfigError(
                f"--changed needs a git checkout: {detail.strip()}"
            ) from exc
        for line in proc.stdout.splitlines():
            if line.endswith(".py"):
                out.add(Path(line))
    return out


def cmd_lint(args) -> int:
    import time

    from repro.lint import (
        DEFAULT_CACHE_PATH,
        LintCache,
        LintConfigError,
        LintEngine,
        engine_signature,
        format_github,
        format_json,
        format_sarif,
        format_stats,
        format_text,
        get_rules,
        load_baseline,
        save_baseline,
    )
    from repro.telemetry import MetricsRegistry

    try:
        rules = get_rules(args.rules.split(",") if args.rules else None)
    except KeyError as exc:
        print(f"lint: {exc.args[0]}", file=sys.stderr)
        return 2

    baseline_path = args.baseline or DEFAULT_BASELINE
    baseline: dict = {}
    try:
        if Path(baseline_path).exists():
            baseline = load_baseline(baseline_path)
        elif args.baseline is not None:
            # An explicitly named baseline must exist; only the default
            # path is allowed to be absent (fresh checkouts, fixtures).
            raise LintConfigError(f"baseline {baseline_path} does not exist")
        engine = LintEngine(rules)
        cache = None
        if not args.no_cache:
            cache = LintCache(
                args.cache or DEFAULT_CACHE_PATH,
                engine_signature(engine.rule_ids()),
            )
        changed = None
        if args.changed is not None:
            changed = _changed_files(args.changed or "HEAD")
            if not changed:
                print("lint: no changed python files — nothing to do")
                return 0
        t0 = time.perf_counter()
        if args.write_baseline:
            result = engine.run(args.paths, cache=cache, jobs=args.jobs)
            save_baseline(baseline_path, result.findings)
            print(
                f"lint: baseline with {len(result.findings)} entries "
                f"written to {baseline_path}"
            )
            return 0
        result = engine.run(
            args.paths, baseline, cache=cache, jobs=args.jobs, changed=changed
        )
        t1 = time.perf_counter()
    except LintConfigError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2

    result.record_metrics(MetricsRegistry())
    if args.trace:
        tracer = Tracer()
        tracer.add_complete(
            "lint.run",
            t0,
            t1,
            cat="lint",
            args={
                "lint_findings": len(result.findings),
                "lint_baselined": len(result.baselined),
                "lint_files": result.files,
            },
        )
        tracer.save(args.trace)

    if args.stats:
        print(format_stats(result))
    elif args.format == "json":
        print(format_json(result))
    elif args.format == "github":
        print(format_github(result))
    elif args.format == "sarif":
        print(format_sarif(result))
    else:
        print(format_text(result, verbose=args.verbose))
    return 0 if result.clean and not result.stale_baseline else 1


def _add_backend_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--backend",
        choices=["numpy64", "numpy32", "cupy"],
        help="array-execution backend (default: $REPRO_BACKEND or numpy64)",
    )
    p.add_argument(
        "--precision",
        choices=["fp64", "fp32", "mixed"],
        help="precision policy overlay (default: the backend's own policy)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Solver-free distributed multi-phase OPF (IPPS 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="feeder / LP / decomposition statistics")
    p.add_argument("--feeder", default="ieee13")
    p.set_defaults(func=cmd_info)

    p = sub.add_parser("solve", help="run the distributed OPF")
    p.add_argument("--feeder", default="ieee13")
    p.add_argument(
        "--method",
        choices=["linearized", "qp", "socp"],
        default=None,
        help="solve one rung of the fidelity ladder through the unified "
        "facade (docs/METHODS.md); omit for the classic --algorithm path",
    )
    p.add_argument("--algorithm", choices=["solver-free", "benchmark"], default="solver-free")
    p.add_argument("--local-mode", choices=["interior_point", "projection"], default="projection")
    _add_backend_flags(p)
    p.add_argument("--rho", type=float, default=100.0)
    p.add_argument("--eps-rel", type=float, default=1e-3)
    p.add_argument("--max-iter", type=int, default=100_000)
    p.add_argument("--relaxation", type=float, default=1.0)
    p.add_argument("--reference", action="store_true", help="validate against HiGHS")
    p.add_argument(
        "--diagnostics",
        action="store_true",
        help="print the convergence_report table (records iterate history)",
    )
    p.add_argument("--output", help="write the result summary as JSON")
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="capture a span trace (Chrome JSON; .jsonl extension for JSONL)",
    )
    p.add_argument(
        "--require-convergence",
        action="store_true",
        help="exit with an error (status 3) if the solve does not converge",
    )
    p.set_defaults(func=cmd_solve)

    p = sub.add_parser(
        "methods",
        help="cross-method validation: accuracy gap vs HiGHS and modeled "
        "GPU cost for every ladder rung on one feeder",
    )
    p.add_argument("--feeder", default="ieee13")
    p.add_argument(
        "--methods",
        default="linearized,qp,socp",
        help="comma-separated rungs to run (default: all)",
    )
    _add_backend_flags(p)
    p.add_argument("--output", help="write the method report as JSON")
    p.set_defaults(func=cmd_methods)

    p = sub.add_parser("export", help="convert a feeder / dump the LP")
    p.add_argument("--feeder", default="ieee13")
    p.add_argument("--format", choices=["json", "csv", "npz"], required=True)
    p.add_argument("--output", required=True)
    p.set_defaults(func=cmd_export)

    p = sub.add_parser("bench-iteration", help="per-iteration cost snapshot")
    p.add_argument("--feeder", default="ieee13")
    p.add_argument("--iterations", type=int, default=200)
    p.add_argument("--cpus", type=int, default=16)
    p.set_defaults(func=cmd_bench_iteration)

    p = sub.add_parser("serve-batch", help="serve a file of OPF scenarios")
    p.add_argument("--scenarios", help="scenario JSON file (see docs/SERVING.md)")
    p.add_argument("--feeder", default="ieee13", help="feeder for --generate")
    p.add_argument(
        "--generate",
        type=int,
        default=32,
        metavar="N",
        help="generate N random scenarios when no --scenarios file is given",
    )
    p.add_argument("--seed", type=int, default=0, help="seed for --generate")
    p.add_argument(
        "--method",
        choices=["linearized", "qp", "socp"],
        default="linearized",
        help="OPF method for generated scenarios (docs/METHODS.md)",
    )
    p.add_argument("--save-scenarios", help="also write the scenario file here")
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--queue-size", type=int, default=256)
    p.add_argument("--cache-capacity", type=int, default=64)
    _add_backend_flags(p)
    p.add_argument("--verbose", action="store_true", help="per-response table")
    p.add_argument("--output", help="write metrics + responses as JSON")
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="capture a span trace (Chrome JSON; .jsonl extension for JSONL)",
    )
    p.add_argument(
        "--require-convergence",
        action="store_true",
        help="exit with an error (status 3) if any scenario does not converge",
    )
    p.set_defaults(func=cmd_serve_batch)

    p = sub.add_parser(
        "serve-fleet", help="serve scenarios on a sharded multi-worker fleet"
    )
    p.add_argument("--workers", type=int, default=2, help="fleet size")
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--sim", action="store_true",
        help="in-process deterministic workers (default)",
    )
    mode.add_argument(
        "--procs", action="store_true",
        help="real multiprocessing workers (one engine per process)",
    )
    p.add_argument("--scenarios", help="scenario JSON file (see docs/SERVING.md)")
    p.add_argument(
        "--feeders",
        default="ieee13,synthetic:20:0,synthetic:20:2,synthetic:20:9",
        help="comma-separated feeder references for --generate "
        "(builtins or synthetic:<n_buses>[:<seed>])",
    )
    p.add_argument(
        "--generate", type=int, default=32, metavar="N",
        help="generate N mixed-topology scenarios when no --scenarios file",
    )
    p.add_argument("--seed", type=int, default=0, help="scenario / chaos seed")
    p.add_argument(
        "--method",
        choices=["linearized", "qp", "socp"],
        default="linearized",
        help="OPF method for generated scenarios (docs/METHODS.md)",
    )
    p.add_argument(
        "--crash", action="append", metavar="WORKER[:AFTER]",
        help="chaos: fail-stop WORKER after serving AFTER requests "
        "(repeatable, e.g. --crash w0:4)",
    )
    p.add_argument(
        "--rate", type=float, metavar="RPS",
        help="open-loop load test at seeded Poisson RPS arrivals",
    )
    p.add_argument(
        "--concurrency", type=int, metavar="C",
        help="closed-loop load test with C virtual clients",
    )
    p.add_argument("--max-batch", type=int, default=16)
    p.add_argument("--queue-size", type=int, default=256)
    p.add_argument("--cache-capacity", type=int, default=64)
    p.add_argument(
        "--no-warm-start", action="store_true",
        help="cold-start every solve (history-independent responses)",
    )
    _add_backend_flags(p)
    p.add_argument("--verbose", action="store_true", help="per-response table")
    p.add_argument("--output", help="write fleet metrics + responses as JSON")
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="capture a span trace (Chrome JSON; .jsonl extension for JSONL)",
    )
    p.add_argument(
        "--require-convergence",
        action="store_true",
        help="exit with an error (status 3) if any scenario does not converge",
    )
    p.add_argument(
        "--supervise", action="store_true",
        help="run a self-healing supervisor: heartbeat health checks, "
        "auto-restart with backoff, cache re-warming, crash-loop quarantine",
    )
    p.add_argument(
        "--restart-backoff", type=float, default=0.05, metavar="S",
        help="base restart backoff in seconds (exponential, seeded jitter)",
    )
    p.add_argument(
        "--max-restarts", type=int, default=3, metavar="N",
        help="per-worker restart budget before quarantine",
    )
    p.set_defaults(func=cmd_serve_fleet)

    p = sub.add_parser(
        "fleet-chaos",
        help="seeded kill/restart storm over a supervised fleet "
        "(exactly-once + bit-identical + capacity-recovered gate)",
    )
    p.add_argument("--workers", type=int, default=4, help="fleet size")
    mode = p.add_mutually_exclusive_group()
    mode.add_argument(
        "--sim", action="store_true",
        help="in-process deterministic workers (default)",
    )
    mode.add_argument(
        "--procs", action="store_true",
        help="real multiprocessing workers",
    )
    p.add_argument(
        "--requests", type=int, default=24, metavar="N",
        help="mixed-topology scenario count",
    )
    p.add_argument("--kills", type=int, default=3, help="storm kill draws")
    p.add_argument("--seed", type=int, default=5, help="storm + workload seed")
    p.add_argument(
        "--feeders",
        default="ieee13,synthetic:20:0,synthetic:20:2,synthetic:20:9",
        help="comma-separated feeder references",
    )
    p.add_argument("--max-batch", type=int, default=2)
    p.add_argument(
        "--max-restarts", type=int, default=3, metavar="N",
        help="per-worker restart budget before quarantine",
    )
    p.add_argument("--output", help="write the soak report as JSON")
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="capture a span trace (Chrome JSON; .jsonl extension for JSONL)",
    )
    p.set_defaults(func=cmd_fleet_chaos)

    p = sub.add_parser(
        "solve-stochastic",
        help="solve the two-stage stochastic OPF (CVaR / expected value)",
    )
    p.add_argument("--feeder", default="ieee13-der")
    p.add_argument("--scenarios", type=int, default=16, metavar="K")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--load-sigma", type=float, default=0.10)
    p.add_argument("--pv-sigma", type=float, default=0.15)
    p.add_argument("--alpha", type=float, default=0.95, help="CVaR level")
    p.add_argument(
        "--no-antithetic",
        action="store_true",
        help="disable antithetic scenario pairing",
    )
    p.add_argument(
        "--objective",
        choices=["expected", "cvar", "both"],
        default="both",
        help="risk objective(s) to solve",
    )
    _add_backend_flags(p)
    p.add_argument(
        "--rho",
        type=float,
        default=10.0,
        help="penalty; stochastic instances favour rho ~ 10 (docs/STOCHASTIC.md)",
    )
    p.add_argument("--eps-rel", type=float, default=1e-3)
    p.add_argument("--max-iter", type=int, default=60_000)
    p.add_argument("--reference", action="store_true", help="validate against HiGHS")
    p.add_argument(
        "--vss",
        action="store_true",
        help="report the value of the stochastic solution (exact reference solves)",
    )
    p.add_argument("--output", help="write the report as JSON")
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="capture a span trace (Chrome JSON; .jsonl extension for JSONL)",
    )
    p.add_argument(
        "--require-convergence",
        action="store_true",
        help="exit with an error (status 3) if a solve does not converge",
    )
    p.set_defaults(func=cmd_solve_stochastic)

    p = sub.add_parser(
        "schedule-der", help="rolling-horizon DER/storage schedule"
    )
    p.add_argument("--feeder", default="ieee13")
    p.add_argument("--periods", type=int, default=6)
    p.add_argument(
        "--horizon", type=int, default=4, metavar="W", help="lookahead window"
    )
    p.add_argument("--solver", choices=["admm", "reference"], default="admm")
    p.add_argument("--storage-power", type=float, default=0.05)
    p.add_argument("--storage-energy", type=float, default=0.2)
    _add_backend_flags(p)
    p.add_argument("--rho", type=float, default=10.0)
    p.add_argument("--eps-rel", type=float, default=1e-3)
    p.add_argument("--max-iter", type=int, default=40_000)
    p.add_argument("--output", help="write the schedule as JSON")
    p.add_argument(
        "--require-convergence",
        action="store_true",
        help="exit with an error (status 3) if a window solve does not converge",
    )
    p.set_defaults(func=cmd_schedule_der)

    p = sub.add_parser(
        "trace-summary", help="per-phase breakdown of a captured trace"
    )
    p.add_argument("trace", help="trace file written by --trace")
    p.set_defaults(func=cmd_trace_summary)

    p = sub.add_parser(
        "backends", help="list the array-execution backends on this machine"
    )
    p.set_defaults(func=cmd_backends)

    p = sub.add_parser(
        "lint", help="run the repo's AST-based invariant linter"
    )
    p.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories to lint"
    )
    p.add_argument(
        "--rules",
        help="comma-separated rule ids to run (default: all, e.g. R001,R002)",
    )
    p.add_argument(
        "--format",
        choices=["text", "json", "github", "sarif"],
        default="text",
        help="output format (github emits workflow annotations; sarif is "
        "the 2.1.0 code-scanning schema)",
    )
    p.add_argument(
        "--changed",
        nargs="?",
        const="HEAD",
        metavar="BASE",
        help="scope per-file findings to files changed vs BASE (default "
        "HEAD) plus untracked files; whole-program findings still report",
    )
    p.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="analyze files in N parallel processes (default: 1)",
    )
    p.add_argument(
        "--cache",
        metavar="FILE",
        help="incremental analysis cache path (default: .repro-lint-cache.json)",
    )
    p.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the incremental cache (cold run, nothing written)",
    )
    p.add_argument(
        "--baseline",
        metavar="FILE",
        help=f"baseline of grandfathered findings (default: {DEFAULT_BASELINE} "
        "if present; an explicitly given file must exist)",
    )
    p.add_argument(
        "--write-baseline",
        action="store_true",
        help="capture the current findings as the new baseline and exit 0",
    )
    p.add_argument(
        "--stats",
        action="store_true",
        help="print per-rule / per-package counts (baseline included)",
    )
    p.add_argument(
        "--verbose", action="store_true", help="also list baselined findings"
    )
    p.add_argument(
        "--trace",
        metavar="PATH",
        help="record a lint.run span (trace-summary then reports lint status)",
    )
    p.set_defaults(func=cmd_lint)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ConvergenceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 3


if __name__ == "__main__":
    sys.exit(main())
