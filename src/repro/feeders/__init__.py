"""Test feeder library: the hand-encoded IEEE 13-bus feeder, statistically
matched IEEE 123- and 8500-class instances, and a parameterized synthetic
radial feeder generator."""

from repro.feeders.ieee13 import ieee13
from repro.feeders.synthetic import (
    SyntheticFeederSpec,
    build_synthetic_feeder,
    ieee123,
    ieee8500,
)

__all__ = [
    "ieee13",
    "ieee123",
    "ieee8500",
    "SyntheticFeederSpec",
    "build_synthetic_feeder",
]
