"""Test feeder library: the hand-encoded IEEE 13-bus feeder (plus its
DER-augmented stochastic variant), statistically matched IEEE 34-, 123-
and 8500-class instances, and a parameterized synthetic radial feeder
generator."""

from repro.feeders.der import attach_ders, ieee13_der
from repro.feeders.ieee13 import ieee13
from repro.feeders.synthetic import (
    SyntheticFeederSpec,
    build_synthetic_feeder,
    ieee34,
    ieee123,
    ieee8500,
)

__all__ = [
    "ieee13",
    "ieee13_der",
    "ieee34",
    "ieee123",
    "ieee8500",
    "attach_ders",
    "SyntheticFeederSpec",
    "build_synthetic_feeder",
]
