"""The IEEE 13-bus test feeder, hand-encoded from the published data.

A small but deliberately nasty unbalanced feeder: single-, two- and
three-phase overhead and underground segments (configurations 601-607), an
in-line transformer (XFM-1), a three-phase voltage regulator at the
substation, a switch, shunt capacitors, and wye- and delta-connected loads
of all three ZIP types — exactly the feature set the paper's formulation
(Section II) must handle.

Modeling notes (documented substitutions, see DESIGN.md):

* The distributed load along 632-671 is split half-and-half onto its two
  terminal buses (a standard lumping).
* The voltage regulator is an ideal tap line: per-phase squared-voltage
  ratio, zero series impedance.
* Shunt capacitors enter as constant-susceptance bus shunts.
"""

from __future__ import annotations

import numpy as np

from repro.network.components import Bus, Connection, Generator, Line, Load
from repro.network.impedance import IEEE13_CONFIGS, line_impedance_pu
from repro.network.network import DistributionNetwork

#: System bases: 5 MVA three-phase, 4.16 kV line-to-line.
MVA_BASE = 5.0
KV_BASE = 4.16

#: (name, from, to, config, length_ft)
_SEGMENTS = [
    ("l_rg60_632", "rg60", "632", "601", 2000.0),
    ("l_632_633", "632", "633", "602", 500.0),
    ("l_632_645", "632", "645", "603", 500.0),
    ("l_645_646", "645", "646", "603", 300.0),
    ("l_632_671", "632", "671", "601", 2000.0),
    ("l_671_680", "671", "680", "601", 1000.0),
    ("l_671_684", "671", "684", "604", 300.0),
    ("l_684_611", "684", "611", "605", 300.0),
    ("l_684_652", "684", "652", "607", 800.0),
    ("l_692_675", "692", "675", "606", 500.0),
]

#: Buses and their phases.
_BUSES = {
    "650": (1, 2, 3),
    "rg60": (1, 2, 3),
    "632": (1, 2, 3),
    "633": (1, 2, 3),
    "634": (1, 2, 3),
    "645": (2, 3),
    "646": (2, 3),
    "671": (1, 2, 3),
    "680": (1, 2, 3),
    "684": (1, 3),
    "611": (3,),
    "652": (1,),
    "692": (1, 2, 3),
    "675": (1, 2, 3),
}

#: Regulator per-phase voltage boost (voltage ratio, not squared).
_REGULATOR_BOOST = {1: 1.0625, 2: 1.0500, 3: 1.0687}


def _pu(kw: float) -> float:
    """Convert kW (or kVAr) to per-unit on the system base."""
    return kw / 1000.0 / MVA_BASE


def ieee13(flow_limit: float = 10.0) -> DistributionNetwork:
    """Build the IEEE 13-bus feeder model.

    Parameters
    ----------
    flow_limit:
        Per-phase directed flow bound (pu) applied to every line, matching
        the box structure (2c)-(2d).
    """
    net = DistributionNetwork(name="ieee13", mva_base=MVA_BASE, kv_base=KV_BASE)

    for name, phases in _BUSES.items():
        w_min, w_max = 0.81, 1.21
        if name == "650":
            w_min = w_max = 1.0  # stiff source
        net.add_bus(Bus(name, phases, w_min=w_min, w_max=w_max))

    # Shunt capacitors: 675 has 200 kVAr per phase, 611 has 100 kVAr (c).
    net.buses["675"].b_sh[:] = _pu(200.0)
    net.buses["611"].b_sh[:] = _pu(100.0)

    # Substation source behind the regulator.
    net.add_generator(
        Generator(
            "source",
            bus="650",
            phases=(1, 2, 3),
            p_min=-10.0,
            p_max=10.0,
            q_min=-10.0,
            q_max=10.0,
            cost=1.0,
        )
    )

    # Voltage regulator 650 -> rg60: ideal per-phase tap, zero impedance.
    # In (5c), w_from = tap * w_to with zero M; boosting the downstream
    # voltage by ratio k means tap = 1 / k^2 in squared-magnitude units.
    tap = np.array([1.0 / _REGULATOR_BOOST[p] ** 2 for p in (1, 2, 3)])
    net.add_line(
        Line(
            "reg_650_rg60",
            from_bus="650",
            to_bus="rg60",
            phases=(1, 2, 3),
            tap=tap,
            p_min=-flow_limit,
            p_max=flow_limit,
            q_min=-flow_limit,
            q_max=flow_limit,
            is_transformer=True,
        )
    )

    # Overhead / underground segments from the configuration table.
    for name, f, t, cfg, length in _SEGMENTS:
        config = IEEE13_CONFIGS[cfg]
        r, x = line_impedance_pu(config, length, KV_BASE, MVA_BASE)
        net.add_line(
            Line(
                name,
                from_bus=f,
                to_bus=t,
                phases=config.phases,
                r=r,
                x=x,
                p_min=-flow_limit,
                p_max=flow_limit,
                q_min=-flow_limit,
                q_max=flow_limit,
            )
        )

    # XFM-1: 633 -> 634, 500 kVA, Z = 1.1 + j2 % on its own base.
    z_scale = MVA_BASE / 0.5
    r_t = 0.011 * z_scale
    x_t = 0.02 * z_scale
    net.add_line(
        Line(
            "xfm1_633_634",
            from_bus="633",
            to_bus="634",
            phases=(1, 2, 3),
            r=np.eye(3) * r_t,
            x=np.eye(3) * x_t,
            p_min=-flow_limit,
            p_max=flow_limit,
            q_min=-flow_limit,
            q_max=flow_limit,
            is_transformer=True,
        )
    )

    # Switch 671 -> 692 (closed): tiny impedance to keep rows well scaled.
    net.add_line(
        Line(
            "sw_671_692",
            from_bus="671",
            to_bus="692",
            phases=(1, 2, 3),
            r=np.eye(3) * 1e-4,
            x=np.eye(3) * 1e-4,
            p_min=-flow_limit,
            p_max=flow_limit,
            q_min=-flow_limit,
            q_max=flow_limit,
        )
    )

    # ------------------------------------------------------------------
    # Spot loads (kW, kVAr): (bus, connection, type, {phase: (p, q)}).
    # Types: PQ (alpha=0), I (alpha=1), Z (alpha=2).
    # ------------------------------------------------------------------
    def add_load(name, bus, conn, zip_exp, per_phase):
        phases = tuple(sorted(per_phase))
        p = np.array([_pu(per_phase[ph][0]) for ph in phases])
        q = np.array([_pu(per_phase[ph][1]) for ph in phases])
        net.add_load(
            Load(
                name,
                bus=bus,
                phases=phases,
                connection=conn,
                p_ref=p,
                q_ref=q,
                alpha=zip_exp,
                beta=zip_exp,
            )
        )

    wye, delta = Connection.WYE, Connection.DELTA
    add_load("ld634", "634", wye, 0.0, {1: (160, 110), 2: (120, 90), 3: (120, 90)})
    add_load("ld645", "645", wye, 0.0, {2: (170, 125)})
    # 646: delta constant-impedance on branch b-c (branch id 2).
    add_load("ld646", "646", delta, 2.0, {2: (230, 132)})
    add_load("ld652", "652", wye, 2.0, {1: (128, 86)})
    # 671: three-phase delta constant-power, 385 + j220 per branch.
    add_load("ld671", "671", delta, 0.0, {1: (385, 220), 2: (385, 220), 3: (385, 220)})
    add_load("ld675", "675", wye, 0.0, {1: (485, 190), 2: (68, 60), 3: (290, 212)})
    # 692: delta constant-current on branch c-a (branch id 3).
    add_load("ld692", "692", delta, 1.0, {3: (170, 151)})
    add_load("ld611", "611", wye, 1.0, {3: (170, 80)})
    # Distributed load 632-671 (Y-PQ), lumped half to each terminal bus.
    add_load("ld632_dist", "632", wye, 0.0, {1: (8.5, 5), 2: (33, 19), 3: (58.5, 34)})
    add_load("ld671_dist", "671", wye, 0.0, {1: (8.5, 5), 2: (33, 19), 3: (58.5, 34)})

    net.substation = "650"
    net.validate(require_radial=True)
    return net
