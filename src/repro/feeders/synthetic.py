"""Parameterized synthetic radial feeder generator.

The paper evaluates on the IEEE 13, 123 and 8500-node feeders.  The 13-bus
instance is hand-encoded (:mod:`repro.feeders.ieee13`); for the larger two,
whose full published datasets are not redistributable here, this module
generates *statistically matched* radial feeders: the same bus counts, a
three-phase trunk with one/two-phase laterals, service transformers, and
wye/delta ZIP loads of all three types.  The component-size statistics the
paper reports (Tables III-IV) are regenerated from these instances.

Generation is fully deterministic given the spec's ``seed``.

Design choices that keep the *linearized* model feasible:

* a higher voltage base (12.47 kV) so per-unit impedances stay small,
* load magnitudes drawn so the feeder-total stays well inside the
  substation rating, and
* lateral depth controlled by the frontier-sampling bias.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.network.components import Bus, Connection, Generator, Line, Load
from repro.network.impedance import IEEE13_CONFIGS, line_impedance_pu
from repro.network.network import DistributionNetwork
from repro.network.phases import DELTA_BRANCH_PHASES


@dataclass(frozen=True)
class SyntheticFeederSpec:
    """Parameters of a synthetic radial feeder.

    Attributes
    ----------
    n_buses:
        Total bus count, substation included.
    trunk_fraction:
        Fraction of buses forming the three-phase backbone chain from the
        substation (real feeders keep a 3-phase trunk; laterals branch off
        it with fewer phases).  The trunk is capped at ``max_trunk_len``
        buses and receives an ideal voltage regulator every
        ``regulator_every`` segments — mirroring the real 8500-node feeder,
        whose regulators are what keep a long feeder inside the voltage
        band.
    depth_bias:
        In [0, 1): probability of extending the *most recent* frontier bus
        (long laterals) versus a uniformly random one (bushy feeder).
    p_keep_phases:
        Probability a lateral child bus keeps all of its parent's phases;
        otherwise it drops exactly one phase (gradual 3 -> 2 -> 1 decay).
    load_density:
        Probability a non-substation bus carries a spot load.
    delta_fraction:
        Among loads at buses with >= 2 phases, fraction connected in delta.
    transformer_fraction:
        Probability a segment is a service transformer instead of a line.
    der_fraction:
        Probability a loaded three-phase bus also hosts a small DER
        generator (zero-cost, used by the DER example).
    avg_load_kw:
        Mean per-phase spot load; actual draws are U(0.3, 1.7) x mean.
    total_load_mw:
        If set, overrides ``avg_load_kw`` so the *feeder-total* reference
        load hits this target regardless of bus count — real feeders carry
        a conductor-limited total (a few MW) no matter how many service
        points hang off them, and per-unit voltage-drop feasibility depends
        on the total, not the count.
    """

    name: str = "synthetic"
    n_buses: int = 100
    seed: int = 0
    kv_base: float = 12.47
    trunk_fraction: float = 0.2
    max_trunk_len: int = 50
    regulator_every: int = 15
    depth_bias: float = 0.55
    p_keep_phases: float = 0.55
    load_density: float = 0.7
    delta_fraction: float = 0.25
    transformer_fraction: float = 0.04
    der_fraction: float = 0.0
    avg_load_kw: float = 25.0
    total_load_mw: float | None = None
    avg_length_ft: float = 700.0
    flow_limit: float = 10.0

    def __post_init__(self) -> None:
        if self.n_buses < 2:
            raise ValueError("need at least 2 buses")
        if not 0.0 <= self.depth_bias < 1.0:
            raise ValueError("depth_bias must be in [0, 1)")


_TWO_PHASE_CONFIG = {(2, 3): "603", (1, 3): "604"}
_ONE_PHASE_CONFIG = {(3,): "605", (1,): "607"}


def _segment_impedance(rng, phases: tuple[int, ...], length_ft: float, kv: float, mva: float):
    """Pick a published configuration matching the phase set; fall back to
    the 601 submatrix for phase sets without a dedicated configuration."""
    if len(phases) == 3:
        cfg = IEEE13_CONFIGS["601" if rng.random() < 0.8 else "606"]
        return line_impedance_pu(cfg, length_ft, kv, mva)
    if phases in _TWO_PHASE_CONFIG:
        cfg = IEEE13_CONFIGS[_TWO_PHASE_CONFIG[phases]]
        return line_impedance_pu(cfg, length_ft, kv, mva)
    if phases in _ONE_PHASE_CONFIG:
        cfg = IEEE13_CONFIGS[_ONE_PHASE_CONFIG[phases]]
        return line_impedance_pu(cfg, length_ft, kv, mva)
    cfg = IEEE13_CONFIGS["601"]
    return line_impedance_pu(cfg, length_ft, kv, mva, phases=phases)


def _child_phases(rng, parent: tuple[int, ...], p_keep: float) -> tuple[int, ...]:
    """Lateral phase inheritance: keep all phases or drop exactly one."""
    if len(parent) == 1 or rng.random() < p_keep:
        return parent
    drop = int(rng.integers(len(parent)))
    return tuple(p for i, p in enumerate(parent) if i != drop)


def _delta_branches_for(phases: tuple[int, ...]) -> tuple[int, ...]:
    """Delta branches realizable at a bus with the given phases."""
    return tuple(
        b for b, (f, t) in DELTA_BRANCH_PHASES.items() if f in phases and t in phases
    )


def build_synthetic_feeder(spec: SyntheticFeederSpec) -> DistributionNetwork:
    """Generate the radial feeder described by ``spec``.

    The returned network is validated, radial, and has a stiff three-phase
    source at the substation sized to 1.5x the total reference load.
    """
    rng = np.random.default_rng(spec.seed)
    if spec.total_load_mw is not None:
        # ~2 loaded phases per load on average.
        avg_load_kw = spec.total_load_mw * 1000.0 / max(
            spec.n_buses * spec.load_density * 2.0, 1.0
        )
    else:
        avg_load_kw = spec.avg_load_kw
    total_kw_estimate = spec.n_buses * spec.load_density * avg_load_kw * 2.0
    mva_base = max(1.0, 1.5 * total_kw_estimate / 1000.0)
    net = DistributionNetwork(name=spec.name, mva_base=mva_base, kv_base=spec.kv_base)

    sub = "bus0000"
    net.add_bus(Bus(sub, (1, 2, 3), w_min=1.0, w_max=1.0))
    net.substation = sub
    net.add_generator(
        Generator("source", bus=sub, phases=(1, 2, 3), p_min=-10.0, p_max=10.0,
                  q_min=-10.0, q_max=10.0, cost=1.0)
    )

    trunk_len = max(2, min(int(spec.trunk_fraction * spec.n_buses), spec.max_trunk_len))
    frontier: list[tuple[str, tuple[int, ...]]] = [(sub, (1, 2, 3))]
    total_load_pu = 0.0
    n_loads = 0
    n_ders = 0
    for i in range(1, spec.n_buses):
        if i < trunk_len:
            # Three-phase backbone: a chain from the substation.
            parent, parent_phases = frontier[-1]
            phases: tuple[int, ...] = (1, 2, 3)
        else:
            if rng.random() < spec.depth_bias:
                parent, parent_phases = frontier[-1]
            else:
                parent, parent_phases = frontier[int(rng.integers(len(frontier)))]
            phases = _child_phases(rng, parent_phases, spec.p_keep_phases)
        name = f"bus{i:04d}"
        net.add_bus(Bus(name, phases))
        length = float(rng.uniform(0.3, 1.7) * spec.avg_length_ft)
        is_regulator = (
            i < trunk_len and spec.regulator_every > 0 and i % spec.regulator_every == 0
        )
        is_xfmr = not is_regulator and rng.random() < spec.transformer_fraction
        tap = np.ones(len(phases))
        if is_regulator:
            # Ideal trunk regulator: 3% boost downstream, zero impedance.
            tap[:] = 1.0 / 1.03**2
            r = np.zeros((len(phases), len(phases)))
            x = np.zeros((len(phases), len(phases)))
        elif is_xfmr:
            z = 0.02 * mva_base / 0.5  # 2% on a 500 kVA unit base
            r = np.eye(len(phases)) * 0.5 * z
            x = np.eye(len(phases)) * z
        else:
            r, x = _segment_impedance(rng, phases, length, spec.kv_base, mva_base)
        net.add_line(
            Line(
                f"ln{i:04d}",
                from_bus=parent,
                to_bus=name,
                phases=phases,
                r=r,
                x=x,
                tap=tap,
                p_min=-spec.flow_limit,
                p_max=spec.flow_limit,
                q_min=-spec.flow_limit,
                q_max=spec.flow_limit,
                is_transformer=is_regulator or is_xfmr,
            )
        )
        frontier.append((name, phases))

        if rng.random() < spec.load_density:
            conn = Connection.WYE
            load_phases: tuple[int, ...] = phases
            if len(phases) >= 2 and rng.random() < spec.delta_fraction:
                branches = _delta_branches_for(phases)
                if branches:
                    conn = Connection.DELTA
                    if len(branches) > 1 and rng.random() < 0.5:
                        load_phases = branches
                    else:
                        load_phases = (branches[int(rng.integers(len(branches)))],)
            if conn is Connection.WYE and len(phases) > 1 and rng.random() < 0.5:
                # Partial-phase wye loads are common on laterals.
                k = int(rng.integers(1, len(phases) + 1))
                keep = rng.choice(len(phases), size=k, replace=False)
                load_phases = tuple(sorted(phases[j] for j in keep))
            nph = len(load_phases)
            p_kw = rng.uniform(0.3, 1.7, size=nph) * avg_load_kw
            q_kvar = p_kw * rng.uniform(0.3, 0.7, size=nph)
            zip_exp = float(rng.choice([0.0, 1.0, 2.0]))
            net.add_load(
                Load(
                    f"ld{i:04d}",
                    bus=name,
                    phases=load_phases,
                    connection=conn,
                    p_ref=p_kw / 1000.0 / mva_base,
                    q_ref=q_kvar / 1000.0 / mva_base,
                    alpha=zip_exp,
                    beta=zip_exp,
                )
            )
            total_load_pu += float(np.sum(p_kw)) / 1000.0 / mva_base
            n_loads += 1
            if spec.der_fraction > 0 and len(phases) == 3 and rng.random() < spec.der_fraction:
                cap = float(rng.uniform(0.2, 0.8) * spec.avg_load_kw) / 1000.0 / mva_base
                net.add_generator(
                    Generator(
                        f"der{i:04d}",
                        bus=name,
                        phases=phases,
                        p_min=0.0,
                        p_max=cap,
                        q_min=-cap,
                        q_max=cap,
                        cost=0.0,
                    )
                )
                n_ders += 1

    net.validate(require_radial=True)
    return net


def ieee34(seed: int = 34) -> DistributionNetwork:
    """An IEEE-34-class feeder (statistically matched substitute).

    A long rural 24.9 kV feeder: ~1.8 MW of load spread over long
    segments, mostly three-phase trunk with short single-phase laterals.
    Sized between the 13- and 123-bus instances, it is the second rung of
    the scenario-throughput scaling ladder in BENCH_stochastic.json.
    """
    spec = SyntheticFeederSpec(
        name="ieee34",
        n_buses=40,
        seed=seed,
        kv_base=24.9,
        depth_bias=0.5,
        p_keep_phases=0.6,
        load_density=0.65,
        delta_fraction=0.15,
        transformer_fraction=0.05,
        total_load_mw=1.8,
        avg_length_ft=1300.0,
    )
    return build_synthetic_feeder(spec)


def ieee123(seed: int = 123) -> DistributionNetwork:
    """An IEEE-123-class feeder (statistically matched substitute).

    147 graph nodes — the paper's Table III counts the 123 feeder buses plus
    transformer-coupling nodes — with one/two-phase laterals off a
    three-phase trunk and ~85 spot loads.
    """
    spec = SyntheticFeederSpec(
        name="ieee123",
        n_buses=147,
        seed=seed,
        kv_base=4.16,
        depth_bias=0.5,
        p_keep_phases=0.5,
        load_density=0.62,
        delta_fraction=0.2,
        transformer_fraction=0.03,
        total_load_mw=3.5,
        avg_length_ft=400.0,
    )
    return build_synthetic_feeder(spec)


def ieee8500(seed: int = 8500, n_buses: int = 8531) -> DistributionNetwork:
    """An IEEE-8500-node-class feeder (statistically matched substitute).

    Dominated by long single-phase secondaries behind service transformers,
    which is why its per-component subproblems are the *smallest* of the
    three instances (paper Table IV) while the component count is the
    largest (Table III).
    """
    spec = SyntheticFeederSpec(
        name="ieee8500",
        n_buses=n_buses,
        seed=seed,
        kv_base=12.47,
        depth_bias=0.62,
        p_keep_phases=0.35,
        load_density=0.45,
        delta_fraction=0.12,
        transformer_fraction=0.06,
        # The real 8500-node feeder serves ~11 MW; scale with bus count for
        # the downsized variants used in quick tests.
        total_load_mw=11.0 * min(1.0, n_buses / 8531.0),
        avg_length_ft=500.0,
    )
    return build_synthetic_feeder(spec)
