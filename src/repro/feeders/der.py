"""DER-augmented feeder variants for the stochastic workloads.

The base IEEE 13-bus feeder has a single substation source, which makes a
two-stage problem trivial (there is nothing to decide before the scenario
is revealed).  :func:`ieee13_der` is the canonical stochastic test
instance, built so the optimal first stage is a genuine newsvendor
trade-off rather than a corner:

* two dispatchable DERs priced between free PV and the substation energy
  price, with combined capacity comparable to the feeder load — enough
  that over-committing is possible in low-load/high-PV scenarios;
* an asymmetric substation: energy is *bought* at price 1.0 but excess
  feeder generation is *exported* at only ``EXPORT_PRICE`` — committed
  DER energy wasted on export loses money, under-commitment buys at the
  full price.  The optimal commitment is then a quantile of the net-load
  distribution, which is exactly what makes the value of the stochastic
  solution (VSS) strictly positive;
* two PV units whose availability the scenario sampler perturbs.

The variant is registered as the builtin feeder reference
``"ieee13-der"`` so serving requests, fleet routing and the CLI can name
it like any other feeder.
"""

from __future__ import annotations

from repro.feeders.ieee13 import ieee13
from repro.network.components import Generator
from repro.network.network import DistributionNetwork

#: Per-phase DER rating in pu on the 5 MVA base: 600 kW per phase across
#: both units, putting the combined capacity inside the load's uncertainty
#: band (the interior-optimum condition above).
DER_P_MAX = 0.12
#: Per-phase PV rating (150 kW per phase per unit).
PV_P_MAX = 0.03
#: Export (feed-in) price at the substation, well below every DER price.
EXPORT_PRICE = 0.1


def attach_ders(
    net: DistributionNetwork,
    ders: dict[str, tuple[str, float]],
    pv: dict[str, tuple[str, float]] | None = None,
) -> DistributionNetwork:
    """Attach dispatchable DERs and PV units to ``net`` (in place).

    ``ders`` maps generator name -> (bus, energy cost); ``pv`` maps
    name -> (bus, per-phase p_max).  DERs get the bus's full phase set,
    ``DER_P_MAX`` per phase and symmetric reactive capability; PV units
    run at unity power factor.
    """
    for name, (bus, cost) in ders.items():
        phases = net.buses[bus].phases
        net.add_generator(
            Generator(
                name,
                bus=bus,
                phases=phases,
                p_min=0.0,
                p_max=DER_P_MAX,
                q_min=-PV_P_MAX,
                q_max=PV_P_MAX,
                cost=cost,
            )
        )
    for name, (bus, p_max) in (pv or {}).items():
        phases = net.buses[bus].phases
        net.add_generator(
            Generator(
                name,
                bus=bus,
                phases=phases,
                p_min=0.0,
                p_max=p_max,
                q_min=0.0,
                q_max=0.0,
                cost=0.0,
            )
        )
    net.validate()
    return net


def ieee13_der() -> DistributionNetwork:
    """The IEEE 13-bus feeder plus two DERs, two PV units and asymmetric
    substation pricing (buy at 1.0, export at ``EXPORT_PRICE``).

    Deterministic (no randomness), so the ``"ieee13-der"`` reference is a
    stable topology key for serving and fleet routing.
    """
    net = ieee13()
    net.name = "ieee13-der"
    # Split the substation head into a buy-only source and a sell-only
    # export path: `cost * pg` prices imports at 1.0 and credits exports
    # (negative pg) at only EXPORT_PRICE.
    source = net.generators["source"]
    source.p_min[:] = 0.0
    net.add_generator(
        Generator(
            "export",
            bus="650",
            phases=(1, 2, 3),
            p_min=-10.0,
            p_max=0.0,
            q_min=0.0,
            q_max=0.0,
            cost=EXPORT_PRICE,
        )
    )
    attach_ders(
        net,
        ders={"der671": ("671", 0.40), "der675": ("675", 0.50)},
        pv={"pv680": ("680", PV_P_MAX), "pv632": ("632", PV_P_MAX)},
    )
    return net
