"""Tests for the batched (GPU-kernel-style) local update operators."""

import numpy as np
import pytest

from repro.core.batch import BatchedLocalSolver, _bucket_width, projection_data
from repro.utils.exceptions import DecompositionError


class TestProjectionData:
    def test_projection_properties(self, rng):
        a = rng.standard_normal((3, 7))
        b = rng.standard_normal(3)
        mmat, bbar = projection_data(a, b)
        # M annihilates the row space: A M = 0.
        np.testing.assert_allclose(a @ mmat, 0.0, atol=1e-10)
        # bbar solves the system: A bbar = b.
        np.testing.assert_allclose(a @ bbar, b, atol=1e-10)
        # M is the orthogonal projector onto null(A): idempotent, symmetric.
        np.testing.assert_allclose(mmat @ mmat, mmat, atol=1e-10)
        np.testing.assert_allclose(mmat, mmat.T, atol=1e-10)

    def test_projected_point_satisfies_system(self, rng):
        a = rng.standard_normal((2, 5))
        b = rng.standard_normal(2)
        mmat, bbar = projection_data(a, b)
        v = rng.standard_normal(5)
        z = mmat @ v + bbar
        np.testing.assert_allclose(a @ z, b, atol=1e-10)

    def test_projection_is_closest_point(self, rng):
        """z minimizes ||z - v|| over {A z = b} (eq. (15) optimality)."""
        a = rng.standard_normal((2, 4))
        b = rng.standard_normal(2)
        mmat, bbar = projection_data(a, b)
        v = rng.standard_normal(4)
        z = mmat @ v + bbar
        # Any feasible perturbation within null(A) must not reduce distance.
        ns = mmat @ rng.standard_normal(4)
        for t in (-0.1, 0.1):
            assert np.linalg.norm(z + t * ns - v) >= np.linalg.norm(z - v) - 1e-10

    def test_empty_system_identity(self):
        mmat, bbar = projection_data(np.zeros((0, 4)), np.zeros(0))
        np.testing.assert_allclose(mmat, np.eye(4))
        np.testing.assert_allclose(bbar, 0.0)

    def test_rank_deficient_rejected(self):
        a = np.array([[1.0, 2.0], [2.0, 4.0]])
        with pytest.raises(DecompositionError, match="full row rank"):
            projection_data(a, np.array([1.0, 2.0]))


class TestBucketing:
    def test_widths_power_of_two(self):
        assert _bucket_width(1) == 4
        assert _bucket_width(4) == 4
        assert _bucket_width(5) == 8
        assert _bucket_width(33) == 64

    def test_bucket_cover_all_components(self, ieee13_dec):
        solver = BatchedLocalSolver.from_decomposition(ieee13_dec)
        covered = sorted(
            int(s) for b in solver.buckets for s in b.comp_indices
        )
        assert covered == list(range(ieee13_dec.n_components))
        assert len(solver.component_location) == ieee13_dec.n_components

    def test_padding_bounded(self, ieee13_dec):
        solver = BatchedLocalSolver.from_decomposition(ieee13_dec)
        raw = float(np.sum(solver.sizes.astype(float) ** 2))
        # Power-of-two buckets waste at most 4x (and the minimum width floor).
        assert solver.padded_elements <= 4 * raw + 16 * ieee13_dec.n_components


class TestBatchedSolve:
    def test_matches_per_component(self, ieee13_dec, rng):
        solver = BatchedLocalSolver.from_decomposition(ieee13_dec)
        v = rng.standard_normal(ieee13_dec.n_local)
        z = solver.solve(v)
        for s in range(ieee13_dec.n_components):
            sl = ieee13_dec.component_slice(s)
            np.testing.assert_allclose(z[sl], solver.solve_one(s, v[sl]), atol=1e-12)

    def test_output_satisfies_local_systems(self, ieee13_dec, rng):
        solver = BatchedLocalSolver.from_decomposition(ieee13_dec)
        v = rng.standard_normal(ieee13_dec.n_local)
        z = solver.solve(v)
        for s, comp in enumerate(ieee13_dec.components):
            sl = ieee13_dec.component_slice(s)
            np.testing.assert_allclose(comp.a @ z[sl], comp.b, atol=1e-8)

    def test_wrong_length_rejected(self, ieee13_dec):
        solver = BatchedLocalSolver.from_decomposition(ieee13_dec)
        with pytest.raises(ValueError, match="stacked vector"):
            solver.solve(np.zeros(3))

    def test_out_buffer_reused(self, ieee13_dec, rng):
        solver = BatchedLocalSolver.from_decomposition(ieee13_dec)
        v = rng.standard_normal(ieee13_dec.n_local)
        out = np.empty(ieee13_dec.n_local)
        z = solver.solve(v, out=out)
        assert z is out

    def test_deterministic(self, ieee13_dec, rng):
        solver = BatchedLocalSolver.from_decomposition(ieee13_dec)
        v = rng.standard_normal(ieee13_dec.n_local)
        np.testing.assert_array_equal(solver.solve(v.copy()), solver.solve(v.copy()))

    def test_flop_counts_positive(self, ieee13_dec):
        solver = BatchedLocalSolver.from_decomposition(ieee13_dec)
        assert np.all(solver.flops > 0)
        assert solver.flops.shape == (ieee13_dec.n_components,)
