"""Unit tests for phase bookkeeping."""

import pytest

from repro.network.phases import (
    DELTA_BRANCH_PHASES,
    delta_branch_tuple,
    phase_index,
    phase_tuple,
    phases_of_delta_branches,
)


class TestPhaseTuple:
    def test_sorts_and_dedups(self):
        assert phase_tuple([3, 1, 1]) == (1, 3)

    def test_accepts_full_set(self):
        assert phase_tuple((1, 2, 3)) == (1, 2, 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            phase_tuple([])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match="phases must be"):
            phase_tuple([0, 1])
        with pytest.raises(ValueError, match="phases must be"):
            phase_tuple([4])

    def test_coerces_to_int(self):
        assert phase_tuple(["2", 3.0]) == (2, 3)


class TestDeltaBranches:
    def test_branch_pairs_cycle(self):
        assert DELTA_BRANCH_PHASES == {1: (1, 2), 2: (2, 3), 3: (3, 1)}

    def test_full_delta_touches_all_phases(self):
        assert phases_of_delta_branches((1, 2, 3)) == (1, 2, 3)

    def test_single_branch_touches_its_pair(self):
        assert phases_of_delta_branches((2,)) == (2, 3)
        assert phases_of_delta_branches((3,)) == (1, 3)

    def test_two_branches(self):
        assert phases_of_delta_branches((1, 2)) == (1, 2, 3)

    def test_normalization(self):
        assert delta_branch_tuple([3, 3, 1]) == (1, 3)


class TestPhaseIndex:
    def test_position(self):
        assert phase_index((1, 3), 3) == 1

    def test_missing_phase_raises(self):
        with pytest.raises(ValueError, match="not in"):
            phase_index((1, 2), 3)
