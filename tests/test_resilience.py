"""Tests for repro.resilience: fault plans, checkpoints, policies, and the
fault-tolerant distributed runner (chaos acceptance tests)."""

import numpy as np
import pytest

from repro.core import ADMMConfig, SolverFreeADMM
from repro.parallel import (
    CPU_CLUSTER_COMM,
    DistributedADMMRunner,
    assign_even,
    rank_partition,
    reassign_surviving,
)
from repro.resilience import (
    ANY_TARGET,
    CLOSED,
    HALF_OPEN,
    OPEN,
    CheckpointStore,
    CircuitBreaker,
    FaultInjector,
    FaultPlan,
    FaultTolerantADMMRunner,
    MessageDelay,
    MessageDrop,
    NaNCorruption,
    RankCrash,
    RetryPolicy,
    StragglerSlowdown,
)


class TestFaultPlan:
    def test_validation(self):
        with pytest.raises(ValueError, match="factor"):
            FaultPlan(faults=(StragglerSlowdown(rank=1, factor=0.5),))
        with pytest.raises(ValueError, match="fraction"):
            FaultPlan(faults=(NaNCorruption(target="x", at_iteration=1, fraction=0.0),))

    def test_crash_queries(self):
        plan = FaultPlan(faults=(RankCrash(rank=2, at_iteration=40),))
        assert plan.crash_iteration(2) == 40
        assert plan.crash_iteration(1) is None
        assert plan.crashed_ranks() == {2}

    def test_chaos_generator_reproducible_and_spares_aggregator(self):
        plans = [FaultPlan.chaos(seed=s, n_ranks=4, horizon=100) for s in range(20)]
        again = [FaultPlan.chaos(seed=s, n_ranks=4, horizon=100) for s in range(20)]
        assert plans == again
        for plan in plans:
            assert 0 not in plan.crashed_ranks()
            for f in plan.of_type(StragglerSlowdown):
                assert f.rank != 0


class TestFaultInjector:
    def test_corruption_mask_is_deterministic(self):
        plan = FaultPlan(seed=9, faults=(NaNCorruption(target="t", at_iteration=3),))
        masks = []
        for _ in range(2):
            inj = FaultInjector(plan)
            inj.begin_iteration(3)
            v = np.zeros(40)
            assert inj.corrupt(v, "t")
            masks.append(np.isnan(v))
        np.testing.assert_array_equal(masks[0], masks[1])
        assert masks[0].sum() == 10  # fraction 0.25 of 40

    def test_corruption_scoped_to_iteration_attempt_and_target(self):
        plan = FaultPlan(faults=(NaNCorruption(target="t", at_iteration=3, attempt=0),))
        inj = FaultInjector(plan)
        v = np.zeros(8)
        inj.begin_iteration(2)
        assert not inj.corrupt(v, "t")
        inj.begin_iteration(3)
        assert not inj.corrupt(v, "other")
        inj.begin_attempt(1)
        inj.begin_iteration(3)
        assert not inj.corrupt(v, "t")  # retry attempt runs clean
        assert not np.isnan(v).any()

    def test_wildcard_target(self):
        plan = FaultPlan(faults=(NaNCorruption(target=ANY_TARGET, at_iteration=1),))
        inj = FaultInjector(plan)
        inj.begin_iteration(1)
        v = np.zeros(8)
        assert inj.corrupt(v, "whatever")
        assert np.isnan(v).any()

    def test_injected_counter_counts_specs_once(self):
        plan = FaultPlan(
            faults=(
                RankCrash(rank=1, at_iteration=2),
                StragglerSlowdown(rank=2, factor=3.0),
            )
        )
        inj = FaultInjector(plan)
        inj.begin_iteration(5)
        for _ in range(4):
            assert inj.crashed(1)
            assert inj.slowdown(2) == 3.0
        assert inj.injected == 2

    def test_message_faults(self):
        plan = FaultPlan(
            faults=(
                MessageDrop(src=0, dst=1, at_iteration=2),
                MessageDelay(src=0, dst=2, delay_s=0.5),
            )
        )
        inj = FaultInjector(plan)
        inj.begin_iteration(2)
        assert inj.message_fault(0, 1) == (True, 0.0)
        assert inj.message_fault(0, 2) == (False, 0.5)
        inj.begin_iteration(3)
        assert inj.message_fault(0, 1) == (False, 0.0)


class TestCheckpointStore:
    def test_cadence_and_ring(self):
        store = CheckpointStore(every=10, keep=2)
        z = np.arange(3.0)
        lam = np.zeros(3)
        for i in range(1, 31):
            store.maybe_save(i, z + i, lam, 100.0)
        assert store.saves == 3
        assert len(store) == 2  # ring kept only the newest two
        assert store.latest().iteration == 30

    def test_restore_counts_and_copies(self):
        store = CheckpointStore(every=1)
        z = np.arange(3.0)
        store.save(5, z, z, 1.0)
        z[:] = -1.0  # the checkpoint must not alias caller buffers
        ckpt = store.restore()
        np.testing.assert_array_equal(ckpt.z, [0.0, 1.0, 2.0])
        assert store.restores == 1

    def test_empty_restore_raises(self):
        with pytest.raises(RuntimeError, match="no checkpoint"):
            CheckpointStore().restore()

    def test_validation(self):
        with pytest.raises(ValueError):
            CheckpointStore(every=0)
        with pytest.raises(ValueError):
            CheckpointStore(keep=0)


class TestRetryPolicy:
    def test_deterministic_backoff(self):
        policy = RetryPolicy(max_retries=3, base_delay_s=0.1, seed=4)
        delays = [policy.delay(a) for a in (1, 2, 3)]
        assert delays == [policy.delay(a) for a in (1, 2, 3)]
        # Exponential growth dominates the +-10% jitter.
        assert delays[0] < delays[1] < delays[2]
        for a, d in zip((1, 2, 3), delays):
            raw = 0.1 * 2.0 ** (a - 1)
            assert 0.9 * raw <= d <= 1.1 * raw

    def test_zero_base_is_immediate(self):
        assert RetryPolicy().delay(1) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ValueError):
            RetryPolicy(multiplier=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(0)


class TestCircuitBreaker:
    def make(self, **kw):
        self.now = 0.0
        kw.setdefault("failure_threshold", 2)
        kw.setdefault("recovery_s", 10.0)
        return CircuitBreaker(clock=lambda: self.now, **kw)

    def test_trips_after_threshold(self):
        b = self.make()
        assert b.allow()
        assert not b.record_failure()
        assert b.state == CLOSED
        assert b.record_failure()  # second consecutive failure trips
        assert b.state == OPEN
        assert not b.allow()
        assert b.retry_after_s() == pytest.approx(10.0)

    def test_half_open_probe_and_reopen(self):
        b = self.make()
        b.record_failure()
        b.record_failure()
        self.now = 10.5
        assert b.allow()  # window elapsed: half-open probe admitted
        assert b.state == HALF_OPEN
        b.record_failure()  # probe failed: straight back to open
        assert b.state == OPEN
        assert b.opened_count == 2

    def test_success_closes(self):
        b = self.make()
        b.record_failure()
        b.record_failure()
        self.now = 11.0
        assert b.allow()
        b.record_success()
        assert b.state == CLOSED
        assert b.consecutive_failures == 0
        assert b.allow()


class TestReassignment:
    def test_reassign_uses_survivors_evenly(self):
        owner = reassign_surviving(10, [0, 2, 3])
        assert set(np.unique(owner)) == {0, 2, 3}
        counts = np.bincount(owner, minlength=4)
        assert counts[1] == 0
        assert counts.max() - counts[[0, 2, 3]].min() <= 1

    def test_single_survivor(self):
        owner = reassign_surviving(5, [0])
        np.testing.assert_array_equal(owner, np.zeros(5, dtype=owner.dtype))

    def test_rank_partition_covers_everything(self):
        owner = assign_even(7, 3)
        offsets = np.arange(0, 8 * 4, 4)  # 7 components of width 4
        comps, slices = rank_partition(offsets, owner, 3)
        assert sorted(c for cs in comps for c in cs) == list(range(7))
        stacked = np.concatenate([s for s in slices if s.size])
        np.testing.assert_array_equal(np.sort(stacked), np.arange(28))


class TestFaultTolerantRunner:
    def test_clean_run_matches_plain_runner_exactly(self, small_dec):
        cfg = ADMMConfig(max_iter=80, record_history=True)
        plain = DistributedADMMRunner(small_dec, 3, CPU_CLUSTER_COMM, cfg).solve()
        ft = FaultTolerantADMMRunner(small_dec, 3, CPU_CLUSTER_COMM, cfg).solve()
        np.testing.assert_array_equal(ft.result.x, plain.result.x)
        np.testing.assert_array_equal(ft.result.z, plain.result.z)
        np.testing.assert_array_equal(ft.result.lam, plain.result.lam)
        assert not ft.failovers
        assert ft.metrics.snapshot()["fault.injected"] == 0

    def test_chaos_crash_and_straggler_bit_identical_recovery(self, ieee13_dec):
        """The acceptance scenario: rank 2 crashes at iteration 40 while
        rank 1 runs 10x slow.  After checkpoint recovery the trajectory
        must match the fault-free distributed run bit-for-bit (and the
        serial solver to float tolerance), with the failover visible in
        telemetry."""
        cfg = ADMMConfig(max_iter=120, record_history=True)
        # Runners pin numpy64; pin the serial reference for the same reason.
        serial = SolverFreeADMM(ieee13_dec, cfg, backend="numpy64").solve()
        plain = DistributedADMMRunner(ieee13_dec, 4, CPU_CLUSTER_COMM, cfg).solve()
        plan = FaultPlan(
            seed=7,
            faults=(
                RankCrash(rank=2, at_iteration=40),
                StragglerSlowdown(rank=1, factor=10.0, from_iteration=10),
            ),
        )
        run = FaultTolerantADMMRunner(
            ieee13_dec, 4, CPU_CLUSTER_COMM, cfg, fault_plan=plan, checkpoint_every=25
        ).solve()
        # Bit-identical to the fault-free distributed trajectory.
        np.testing.assert_array_equal(run.result.x, plain.result.x)
        np.testing.assert_array_equal(run.result.z, plain.result.z)
        np.testing.assert_array_equal(run.result.lam, plain.result.lam)
        assert run.result.history.pres == plain.result.history.pres
        # And equal to serial within float tolerance (different batching).
        np.testing.assert_allclose(run.result.x, serial.x, atol=1e-12)
        # Failover bookkeeping: crash detected at 40, resumed from the
        # iteration-25 checkpoint, rank 2 excluded from then on.
        assert len(run.failovers) == 1
        event = run.failovers[0]
        assert event.rank == 2
        assert event.iteration == 40
        assert event.resumed_from == 25
        assert event.survivors == (0, 1, 3)
        assert run.restores == 1
        snap = run.metrics.snapshot()
        assert snap["rank.failover"] == 1
        assert snap["fault.injected"] == 2  # the crash and the straggler
        # The straggler costs virtual time: slower than the plain run.
        assert run.simulated_total_s > plain.simulated_total_s

    def test_chaos_run_is_reproducible(self, small_dec):
        cfg = ADMMConfig(max_iter=60)
        plan = FaultPlan(seed=1, faults=(RankCrash(rank=1, at_iteration=20),))

        def run():
            return FaultTolerantADMMRunner(
                small_dec, 3, CPU_CLUSTER_COMM, cfg, fault_plan=plan, checkpoint_every=10
            ).solve()

        a, b = run(), run()
        np.testing.assert_array_equal(a.result.z, b.result.z)
        assert a.failovers == b.failovers

    def test_fault_injected_replay_is_bit_identical(self, small_dec):
        """R002 regression: a fault-injected run — iterates, residual
        history, failover bookkeeping — must replay bit-for-bit.  Any
        wall-clock read or unseeded RNG sneaking into the simulated
        numerics (what lint rule R002 guards statically) breaks this
        equality long before it would surface as flakiness.  (The
        timeline is exempt: virtual clocks advance by *measured* compute
        durations, which legitimately vary run to run.)
        """
        cfg = ADMMConfig(max_iter=80, record_history=True)
        plan = FaultPlan(
            seed=5,
            faults=(
                StragglerSlowdown(rank=2, factor=4.0, from_iteration=5, until_iteration=25),
                RankCrash(rank=1, at_iteration=30),
                MessageDrop(src=2, dst=0, at_iteration=12),
            ),
        )

        def run():
            return FaultTolerantADMMRunner(
                small_dec, 3, CPU_CLUSTER_COMM, cfg, fault_plan=plan, checkpoint_every=10
            ).solve()

        a, b = run(), run()
        for name in ("x", "z", "lam"):
            np.testing.assert_array_equal(
                getattr(a.result, name), getattr(b.result, name)
            )
        assert a.result.objective == b.result.objective
        assert a.result.iterations == b.result.iterations
        assert a.result.history.pres == b.result.history.pres
        assert a.result.history.dres == b.result.history.dres
        assert a.failovers == b.failovers
        assert len(a.timeline.total_s) == len(b.timeline.total_s)

    def test_crash_recovery_converges(self, small_dec, small_ref):
        plan = FaultPlan(faults=(RankCrash(rank=2, at_iteration=30),))
        run = FaultTolerantADMMRunner(
            small_dec,
            3,
            CPU_CLUSTER_COMM,
            ADMMConfig(max_iter=40000),
            fault_plan=plan,
            checkpoint_every=25,
        ).solve()
        assert run.result.converged
        assert small_ref.compare_objective(run.result.objective) < 2e-2
        assert len(run.failovers) == 1

    def test_stale_mode_beats_sync_under_straggler(self, small_dec):
        plan = FaultPlan(faults=(StragglerSlowdown(rank=1, factor=10.0),))
        cfg = ADMMConfig(max_iter=60, eps_rel=1e-12)

        def run(**kw):
            return FaultTolerantADMMRunner(
                small_dec, 3, CPU_CLUSTER_COMM, cfg, fault_plan=plan, **kw
            ).solve(max_iter=60)

        sync = run()
        stale = run(staleness_bound=3)
        assert stale.stale_rounds > 0
        assert stale.simulated_total_s < sync.simulated_total_s
        snap = stale.metrics.snapshot()
        assert snap["resilience.stale_rounds"] == stale.stale_rounds

    def test_stale_mode_still_converges(self, small_dec, small_ref):
        """A transient straggler ridden out in stale-iterate mode: once the
        slowdown lifts, deferrals stop and the run still converges near the
        reference.  Deferral timing rides on *measured* compute charged to
        the virtual clocks, so the trajectory (and the eps_rel=1e-3 early
        stop) jitters between runs — hence the looser objective bound than
        the deterministic synchronous tests."""
        plan = FaultPlan(
            faults=(StragglerSlowdown(rank=1, factor=10.0, until_iteration=1000),)
        )
        run = FaultTolerantADMMRunner(
            small_dec,
            3,
            CPU_CLUSTER_COMM,
            ADMMConfig(max_iter=40000),
            fault_plan=plan,
            staleness_bound=3,
        ).solve()
        assert run.result.converged
        assert small_ref.compare_objective(run.result.objective) < 8e-2

    def test_dropped_message_is_transient(self, small_dec):
        """A single dropped scatter message must not kill the run — the
        affected rank just reuses its stale slice for one round."""
        plan = FaultPlan(faults=(MessageDrop(src=0, dst=1, at_iteration=5),))
        run = FaultTolerantADMMRunner(
            small_dec, 3, CPU_CLUSTER_COMM, ADMMConfig(max_iter=80), fault_plan=plan
        ).solve()
        assert run.stale_rounds >= 1
        assert not run.failovers

    def test_rejects_aggregator_crash(self, small_dec):
        plan = FaultPlan(faults=(RankCrash(rank=0, at_iteration=5),))
        with pytest.raises(ValueError, match="aggregator"):
            FaultTolerantADMMRunner(
                small_dec, 3, CPU_CLUSTER_COMM, fault_plan=plan
            )

    def test_rejects_out_of_range_crash_rank(self, small_dec):
        plan = FaultPlan(faults=(RankCrash(rank=9, at_iteration=5),))
        with pytest.raises(ValueError, match="beyond"):
            FaultTolerantADMMRunner(
                small_dec, 3, CPU_CLUSTER_COMM, fault_plan=plan
            )

    def test_rejects_extensions(self, small_dec):
        with pytest.raises(ValueError, match="plain Algorithm 1"):
            FaultTolerantADMMRunner(
                small_dec, 2, CPU_CLUSTER_COMM, ADMMConfig(relaxation=1.5)
            )
