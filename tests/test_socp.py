"""Tests for the branch-flow SOCP extension (cones, formulation, solver)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core import ADMMConfig
from repro.socp import (
    ConicSolverFreeADMM,
    build_bfm_socp,
    decompose_conic,
    in_rotated_soc,
    positive_sequence_impedance,
    project_rotated_soc,
    project_rotated_soc_batch,
    project_soc,
    project_soc_batch,
)


class TestSOCProjection:
    def test_inside_unchanged(self):
        t, z = project_soc(2.0, np.array([1.0, 1.0]))
        assert t == 2.0
        np.testing.assert_array_equal(z, [1.0, 1.0])

    def test_polar_cone_to_origin(self):
        t, z = project_soc(-5.0, np.array([1.0, 0.0]))
        assert t == 0.0
        np.testing.assert_array_equal(z, 0.0)

    def test_boundary_case(self):
        t, z = project_soc(0.0, np.array([2.0, 0.0]))
        assert t == pytest.approx(1.0)
        np.testing.assert_allclose(z, [1.0, 0.0])

    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(-5, 5),
        arrays(np.float64, 3, elements=st.floats(-5, 5, allow_nan=False)),
    )
    def test_projection_properties(self, t, z):
        tp, zp = project_soc(t, z)
        # Feasibility.
        assert np.linalg.norm(zp) <= tp + 1e-9
        # Idempotency.
        tp2, zp2 = project_soc(tp, zp)
        assert tp2 == pytest.approx(tp, abs=1e-9)
        np.testing.assert_allclose(zp2, zp, atol=1e-9)

    def test_batch_matches_scalar(self, rng):
        t = rng.uniform(-2, 2, 40)
        z = rng.uniform(-2, 2, (40, 2))
        tb, zb = project_soc_batch(t, z)
        for i in range(40):
            ts, zs = project_soc(t[i], z[i])
            assert tb[i] == pytest.approx(ts)
            np.testing.assert_allclose(zb[i], zs, atol=1e-12)


class TestRotatedSOC:
    @settings(max_examples=50, deadline=None)
    @given(
        st.floats(-3, 3),
        st.floats(-3, 3),
        arrays(np.float64, 2, elements=st.floats(-3, 3, allow_nan=False)),
    )
    def test_projection_feasible_and_idempotent(self, u, v, w):
        up, vp, wp = project_rotated_soc(u, v, w)
        assert in_rotated_soc(up, vp, wp, tol=1e-7)
        up2, vp2, wp2 = project_rotated_soc(up, vp, wp)
        assert up2 == pytest.approx(up, abs=1e-8)
        assert vp2 == pytest.approx(vp, abs=1e-8)
        np.testing.assert_allclose(wp2, wp, atol=1e-8)

    @settings(max_examples=40, deadline=None)
    @given(
        st.floats(0.01, 3),
        st.floats(0.01, 3),
        arrays(np.float64, 2, elements=st.floats(-1, 1, allow_nan=False)),
    )
    def test_members_fixed(self, u, v, w):
        """Points already in the cone are untouched."""
        w = w * np.sqrt(2.0 * u * v) / (np.linalg.norm(w) + 1.0)
        assert in_rotated_soc(u, v, w)
        up, vp, wp = project_rotated_soc(u, v, w)
        assert up == pytest.approx(u, abs=1e-9)
        np.testing.assert_allclose(wp, w, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(
        st.floats(-3, 3), st.floats(-3, 3),
        arrays(np.float64, 2, elements=st.floats(-3, 3, allow_nan=False)),
    )
    def test_projection_is_closest_among_probes(self, u, v, w):
        up, vp, wp = project_rotated_soc(u, v, w)
        d_star = np.linalg.norm([u - up, v - vp]) ** 2 + np.linalg.norm(w - wp) ** 2
        rng = np.random.default_rng(0)
        for _ in range(10):
            cu, cv = rng.uniform(0, 3, 2)
            cw = rng.uniform(-1, 1, 2)
            if 2.0 * cu * cv < cw @ cw:
                continue
            d = np.linalg.norm([u - cu, v - cv]) ** 2 + np.linalg.norm(w - cw) ** 2
            assert d_star <= d + 1e-8

    def test_batch_shape(self, rng):
        u, v, w = project_rotated_soc_batch(
            rng.uniform(-1, 1, 9), rng.uniform(-1, 1, 9), rng.uniform(-1, 1, (9, 2))
        )
        assert u.shape == (9,) and w.shape == (9, 2)
        assert np.all(u >= 0) and np.all(v >= 0)


class TestBFMFormulation:
    def test_positive_sequence_reduction(self):
        from repro.network.components import Line

        line = Line(
            "e", "a", "b", (1, 2, 3),
            r=np.full((3, 3), 0.1) + np.eye(3) * 0.2,
            x=np.full((3, 3), 0.05) + np.eye(3) * 0.3,
        )
        r1, x1 = positive_sequence_impedance(line)
        assert r1 == pytest.approx(0.3 - 0.1)
        assert x1 == pytest.approx(0.35 - 0.05)

    def test_single_phase_passthrough(self):
        from repro.network.components import Line

        line = Line("e", "a", "b", (2,), r=[[0.4]], x=[[0.7]])
        assert positive_sequence_impedance(line) == (0.4, 0.7)

    def test_problem_structure(self, ieee13_net):
        prob = build_bfm_socp(ieee13_net)
        net = ieee13_net
        # 2 balance rows per bus + 1 drop row per line; one cone per line.
        assert len(prob.rows) == 2 * net.n_buses + net.n_lines
        assert len(prob.cones) == net.n_lines
        assert len(prob.orientation) == net.n_lines

    def test_orientation_away_from_root(self, ieee13_net):
        prob = build_bfm_socp(ieee13_net)
        parents = {j: i for i, j in prob.orientation.values()}
        assert ieee13_net.substation not in parents

    def test_requires_substation(self, ieee13_net):
        from repro.utils.exceptions import FormulationError

        net = ieee13_net.copy()
        net.substation = None
        with pytest.raises(FormulationError, match="substation"):
            build_bfm_socp(net)


class TestConicSolver:
    @pytest.fixture(scope="class")
    def ieee13_socp(self, ieee13_net):
        prob = build_bfm_socp(ieee13_net, le_max=10.0)
        dec = decompose_conic(prob)
        res = ConicSolverFreeADMM(
            dec, ADMMConfig(eps_rel=1e-4, max_iter=60000, record_history=False)
        ).solve()
        return prob, dec, res

    def test_every_variable_covered(self, ieee13_socp):
        _, dec, _ = ieee13_socp
        assert np.all(dec.counts >= 1)

    def test_converges_feasibly(self, ieee13_socp):
        prob, _, res = ieee13_socp
        assert res.converged
        a, b = prob.linear_system()
        assert np.abs(a @ res.x - b).max() < 1e-3
        assert prob.cone_violation(res.x) < 1e-6
        assert np.all(res.x >= prob.lb - 1e-9)
        assert np.all(res.x <= prob.ub + 1e-9)

    def test_relaxation_tight_on_loaded_lines(self, ieee13_socp):
        """Radial feeder: the SOC relaxation is exact — slack ~0 on every
        line that carries current (nonzero impedance)."""
        prob, _, res = ieee13_socp
        vi = prob.var_index
        slacks = prob.cone_slack(res.x)
        for k, cone in enumerate(prob.cones):
            p = res.x[vi.index(cone.w_keys[0])]
            line = prob.network.lines[cone.line]
            # Only meaningful resistance pins le to the cone surface; on
            # near-lossless elements (the switch) le is epsilon-regularized
            # but its slack is economically irrelevant.
            if abs(p) > 1e-3 and np.abs(line.r).max() > 1e-3:
                assert slacks[k] < 1e-2, cone.line

    def test_matches_slsqp_reference(self, ieee13_socp):
        """Cross-validate against scipy's SLSQP on the same SOCP."""
        from scipy.optimize import LinearConstraint, NonlinearConstraint, minimize

        prob, _, res = ieee13_socp
        a, b = prob.linear_system()
        vi = prob.var_index

        def cone_fun(x):
            vals = []
            for c in prob.cones:
                le = x[vi.index(c.u_key)]
                w = x[vi.index(c.v_key)]
                p = x[vi.index(c.w_keys[0])]
                q = x[vi.index(c.w_keys[1])]
                vals.append(2.0 * le * w - p * p - q * q)
            return np.array(vals)

        ref = minimize(
            lambda x: prob.cost @ x,
            prob.initial_point(),
            jac=lambda x: prob.cost,
            bounds=list(zip(prob.lb, prob.ub)),
            constraints=[
                LinearConstraint(a.toarray(), b, b),
                NonlinearConstraint(cone_fun, 0, np.inf),
            ],
            method="SLSQP",
            options={"maxiter": 500, "ftol": 1e-10},
        )
        assert ref.success
        assert abs(res.objective - ref.fun) / max(abs(ref.fun), 1e-9) < 5e-3

    def test_rejects_extension_configs(self, ieee13_net):
        prob = build_bfm_socp(ieee13_net)
        dec = decompose_conic(prob)
        with pytest.raises(ValueError, match="plain ADMM"):
            ConicSolverFreeADMM(dec, ADMMConfig(relaxation=1.5))

    def test_warm_start_shape_checked(self, ieee13_net):
        prob = build_bfm_socp(ieee13_net)
        dec = decompose_conic(prob)
        solver = ConicSolverFreeADMM(dec, ADMMConfig(max_iter=5))
        with pytest.raises(ValueError, match="wrong length"):
            solver.solve(x0=np.zeros(3))

    def test_synthetic_feeder_socp(self, small_net):
        prob = build_bfm_socp(small_net, le_max=10.0)
        dec = decompose_conic(prob)
        res = ConicSolverFreeADMM(
            dec, ADMMConfig(eps_rel=1e-4, max_iter=120000, record_history=False)
        ).solve()
        assert res.converged
        # The global iterate x carries a consensus-level (pres-sized)
        # violation; the projected local copies are exactly feasible.
        assert prob.cone_violation(res.x) < 1e-4
