"""Tests for the termination criterion (16): the stacked-norm shortcuts must
equal the paper's explicit per-component sums."""

import numpy as np
import pytest

from repro.core.residuals import compute_residuals


def explicit_residuals(dec, x, z, z_prev, lam, rho, eps_rel):
    """Direct implementation of (16) as written in the paper, component by
    component, scattering through B_s^T."""
    n = dec.lp.n_vars
    pres2 = dres2 = bx2 = z2 = lam2 = 0.0
    for s, comp in enumerate(dec.components):
        sl = dec.component_slice(s)
        bsx = x[comp.global_cols]
        pres2 += float(np.sum((bsx - z[sl]) ** 2))
        dz = np.zeros(n)
        np.add.at(dz, comp.global_cols, z[sl] - z_prev[sl])
        dres2 += float(np.sum(dz**2))
        bx2 += float(np.sum(bsx**2))
        z2 += float(np.sum(z[sl] ** 2))
        lam_scatter = np.zeros(n)
        np.add.at(lam_scatter, comp.global_cols, lam[sl])
        lam2 += float(np.sum(lam_scatter**2))
    return (
        np.sqrt(pres2),
        rho * np.sqrt(dres2),
        eps_rel * max(np.sqrt(bx2), np.sqrt(z2)),
        eps_rel * np.sqrt(lam2),
    )


class TestAgainstPaperFormulas:
    def test_matches_explicit_component_sums(self, ieee13_dec, rng):
        x = rng.standard_normal(ieee13_dec.lp.n_vars)
        z = rng.standard_normal(ieee13_dec.n_local)
        z_prev = rng.standard_normal(ieee13_dec.n_local)
        lam = rng.standard_normal(ieee13_dec.n_local)
        rho, eps = 100.0, 1e-3
        bx = x[ieee13_dec.global_cols]
        res = compute_residuals(bx, z, z_prev, lam, rho, eps)
        pres, dres, ep, ed = explicit_residuals(
            ieee13_dec, x, z, z_prev, lam, rho, eps
        )
        assert res.pres == pytest.approx(pres)
        assert res.dres == pytest.approx(dres)
        assert res.eps_prim == pytest.approx(ep)
        assert res.eps_dual == pytest.approx(ed)

    def test_converged_flag(self):
        z = np.ones(4)
        res = compute_residuals(z, z, z, np.zeros(4), 100.0, 1e-3)
        assert res.pres == 0.0 and res.dres == 0.0
        assert res.converged

    def test_not_converged_on_large_pres(self):
        bx = np.ones(4)
        z = np.zeros(4)
        res = compute_residuals(bx, z, z, np.zeros(4), 100.0, 1e-3)
        assert not res.converged

    def test_dual_residual_scales_with_rho(self, rng):
        z = rng.standard_normal(5)
        z_prev = rng.standard_normal(5)
        r1 = compute_residuals(z, z, z_prev, z, 1.0, 1e-3)
        r2 = compute_residuals(z, z, z_prev, z, 10.0, 1e-3)
        assert r2.dres == pytest.approx(10 * r1.dres)
